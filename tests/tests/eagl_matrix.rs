//! Table-driven matrix over all 17 EAGL methods: each method is driven
//! through three scenarios — valid use from the creating thread,
//! wrong-thread use (a second iOS thread adopts the context, which
//! exercises the impersonation path inside `setCurrentContext:`), and
//! use after full context teardown (`Eagl::destroy_context`). The
//! table is asserted to cover exactly the [`EAGL_METHODS`] census, so
//! adding an 18th method without a matrix row fails the suite.

use cycada::{CycadaDevice, EAGL_METHODS};
use cycada_gles::GlesVersion;
use cycada_iosurface::SurfaceProps;
use cycada_kernel::SimTid;

const SMALL: Option<(u32, u32)> = Some((64, 48));

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    /// Created and called from the session main thread.
    Valid,
    /// Called from a second iOS thread that adopted the context via
    /// `setCurrentContext:` (thread impersonation underneath, §7).
    WrongThread,
    /// Called with a context id that has been fully destroyed.
    Teardown,
}

struct Rig {
    device: CycadaDevice,
    caller: SimTid,
    ctx: u32,
    scenario: Scenario,
}

fn rig(scenario: Scenario) -> Rig {
    let device = CycadaDevice::boot_with_display(SMALL).unwrap();
    let main = device.main_tid();
    let eagl = device.eagl().clone();
    let ctx = eagl.init_with_api(main, GlesVersion::V2).unwrap();
    let caller = match scenario {
        Scenario::Valid => {
            eagl.set_current_context(main, Some(ctx)).unwrap();
            main
        }
        Scenario::WrongThread => {
            let tid2 = device.spawn_ios_thread().unwrap();
            // The iOS pattern: one thread creates the context, another
            // adopts and uses it. Adoption migrates the replica
            // connection TLS via impersonation of the creator.
            eagl.set_current_context(tid2, Some(ctx)).unwrap();
            tid2
        }
        Scenario::Teardown => {
            eagl.set_current_context(main, Some(ctx)).unwrap();
            eagl.destroy_context(main, ctx).unwrap();
            main
        }
    };
    Rig {
        device,
        caller,
        ctx,
        scenario,
    }
}

/// Expects `Ok` while the context lives and `Err` once it is gone.
fn live_only<T, E: std::fmt::Debug>(r: &Rig, what: &str, res: Result<T, E>) -> Result<(), String> {
    match (r.scenario, res) {
        (Scenario::Teardown, Ok(_)) => Err(format!("{what}: expected error after teardown")),
        (Scenario::Teardown, Err(_)) => Ok(()),
        (_, Ok(_)) => Ok(()),
        (_, Err(e)) => Err(format!("{what}: unexpected error {e:?}")),
    }
}

/// Gives the rig's context a drawable-backed framebuffer from the
/// calling thread (the `presentRenderbuffer:` precondition).
fn setup_drawable(r: &Rig) -> Result<(), String> {
    let eagl = r.device.eagl();
    let bridge = r.device.bridge();
    let rb = eagl
        .renderbuffer_storage_from_drawable(r.caller, r.ctx, 64, 48)
        .map_err(|e| format!("storage: {e:?}"))?;
    let fbo = bridge.gen_framebuffers(r.caller, 1).map_err(|e| format!("{e:?}"))?[0];
    bridge.bind_framebuffer(r.caller, fbo).map_err(|e| format!("{e:?}"))?;
    bridge.framebuffer_renderbuffer(r.caller, rb).map_err(|e| format!("{e:?}"))?;
    Ok(())
}

type MethodDrive = fn(&Rig) -> Result<(), String>;

/// One row per EAGL method, in [`EAGL_METHODS`] order.
const MATRIX: &[(&str, MethodDrive)] = &[
    ("initWithAPI:sharegroup:", |r| {
        // Creating a fresh context never depends on an existing one.
        let id = r
            .device
            .eagl()
            .init_with_api_sharegroup(r.caller, GlesVersion::V1, 3)
            .map_err(|e| format!("{e:?}"))?;
        r.device.eagl().destroy_context(r.caller, id).map_err(|e| format!("{e:?}"))
    }),
    ("setCurrentContext:", |r| {
        let res = r.device.eagl().set_current_context(r.caller, Some(r.ctx));
        live_only(r, "setCurrentContext:", res)?;
        if r.scenario != Scenario::Teardown
            && r.device.eagl().current_context(r.caller) != Some(r.ctx)
        {
            return Err("context not current after setCurrentContext:".into());
        }
        Ok(())
    }),
    ("renderbufferStorage:fromDrawable:", |r| {
        let res = r
            .device
            .eagl()
            .renderbuffer_storage_from_drawable(r.caller, r.ctx, 64, 48);
        live_only(r, "renderbufferStorage:fromDrawable:", res)
    }),
    ("presentRenderbuffer:", |r| {
        if r.scenario != Scenario::Teardown {
            setup_drawable(r)?;
        }
        let res = r.device.eagl().present_renderbuffer(r.caller, r.ctx);
        live_only(r, "presentRenderbuffer:", res)
    }),
    ("texImageIOSurface:", |r| {
        // Surface/texture scoped, not record scoped: works as long as
        // the calling thread has *a* current context — after tearing
        // down the rig context, a fresh one restores service.
        if r.scenario == Scenario::Teardown {
            let fresh = r
                .device
                .eagl()
                .init_with_api(r.caller, GlesVersion::V2)
                .map_err(|e| format!("{e:?}"))?;
            r.device
                .eagl()
                .set_current_context(r.caller, Some(fresh))
                .map_err(|e| format!("{e:?}"))?;
        }
        let surface = r
            .device
            .iosurface_bridge()
            .create(r.caller, SurfaceProps::bgra(16, 16))
            .map_err(|e| format!("{e:?}"))?;
        let tex = r.device.bridge().gen_textures(r.caller, 1).map_err(|e| format!("{e:?}"))?[0];
        r.device
            .eagl()
            .tex_image_io_surface(r.caller, &surface, tex)
            .map_err(|e| format!("{e:?}"))
    }),
    ("deleteDrawable", |r| {
        if r.scenario != Scenario::Teardown {
            setup_drawable(r)?;
        }
        let res = r.device.eagl().delete_drawable(r.caller, r.ctx);
        live_only(r, "deleteDrawable", res)
    }),
    ("initWithAPI:", |r| {
        let id = r
            .device
            .eagl()
            .init_with_api(r.caller, GlesVersion::V1)
            .map_err(|e| format!("{e:?}"))?;
        r.device.eagl().destroy_context(r.caller, id).map_err(|e| format!("{e:?}"))
    }),
    ("currentContext", |r| {
        let cur = r.device.eagl().current_context(r.caller);
        match r.scenario {
            // destroy_context clears currency on every thread.
            Scenario::Teardown if cur.is_some() => {
                Err("destroyed context still current".into())
            }
            Scenario::Valid | Scenario::WrongThread if cur != Some(r.ctx) => {
                Err(format!("expected ctx {} current, got {cur:?}", r.ctx))
            }
            _ => Ok(()),
        }
    }),
    ("API", |r| {
        let res = r.device.eagl().api(r.ctx);
        live_only(r, "API", res.clone())?;
        if r.scenario != Scenario::Teardown && res.unwrap() != GlesVersion::V2 {
            return Err("API reported the wrong GLES version".into());
        }
        Ok(())
    }),
    ("sharegroup", |r| {
        live_only(r, "sharegroup", r.device.eagl().sharegroup(r.ctx))
    }),
    ("isCurrentContext", |r| {
        let is = r.device.eagl().is_current_context(r.caller, r.ctx);
        let expect = r.scenario != Scenario::Teardown;
        if is == expect {
            Ok(())
        } else {
            Err(format!("isCurrentContext = {is}, expected {expect}"))
        }
    }),
    ("isMultiThreaded", |r| {
        live_only(r, "isMultiThreaded", r.device.eagl().is_multi_threaded(r.ctx))
    }),
    ("setMultiThreaded:", |r| {
        live_only(r, "setMultiThreaded:", r.device.eagl().set_multi_threaded(r.ctx, true))
    }),
    ("debugLabel", |r| {
        live_only(r, "debugLabel", r.device.eagl().debug_label(r.ctx))
    }),
    ("swapInterval", |r| {
        live_only(r, "swapInterval", r.device.eagl().swap_interval(r.ctx))
    }),
    ("setSwapInterval:", |r| {
        live_only(r, "setSwapInterval:", r.device.eagl().set_swap_interval(r.ctx, 2))
    }),
    ("setDebugLabel:", |r| {
        // The one never-called method: unimplemented in every scenario.
        match r.device.eagl().set_debug_label(r.ctx, "label") {
            Err(_) => Ok(()),
            Ok(()) => Err("setDebugLabel: should be unimplemented".into()),
        }
    }),
];

#[test]
fn matrix_covers_exactly_the_17_census_methods() {
    assert_eq!(MATRIX.len(), EAGL_METHODS.len());
    for ((row, _), (name, _)) in MATRIX.iter().zip(EAGL_METHODS.iter()) {
        assert_eq!(row, name, "matrix row order must match the census");
    }
}

#[test]
fn all_methods_valid_use() {
    for (name, drive) in MATRIX {
        let r = rig(Scenario::Valid);
        drive(&r).unwrap_or_else(|e| panic!("{name} (valid): {e}"));
    }
}

#[test]
fn all_methods_from_a_wrong_thread_under_impersonation() {
    for (name, drive) in MATRIX {
        let r = rig(Scenario::WrongThread);
        drive(&r).unwrap_or_else(|e| panic!("{name} (wrong thread): {e}"));
    }
}

#[test]
fn all_methods_after_context_teardown() {
    for (name, drive) in MATRIX {
        let r = rig(Scenario::Teardown);
        drive(&r).unwrap_or_else(|e| panic!("{name} (after teardown): {e}"));
    }
}

#[test]
fn destroy_context_releases_the_replica_connection() {
    let device = CycadaDevice::boot_with_display(SMALL).unwrap();
    let main = device.main_tid();
    let eagl = device.eagl();
    let ctx = eagl.init_with_api(main, GlesVersion::V1).unwrap();
    let with_replica = device.egl().connection_count();
    eagl.set_current_context(main, Some(ctx)).unwrap();
    eagl.renderbuffer_storage_from_drawable(main, ctx, 64, 48)
        .unwrap();
    eagl.destroy_context(main, ctx).unwrap();
    assert_eq!(
        device.egl().connection_count(),
        with_replica - 1,
        "DLR replica connection must be released on teardown"
    );
    assert!(eagl.api(ctx).is_err(), "record must be gone");
    assert_eq!(eagl.current_context(main), None);
}
