//! Failure-injection tests: dead threads, missing libraries, broken
//! services, misuse — the compatibility layer must fail loudly and
//! recover cleanly, never corrupt shared state.

use std::sync::Arc;

use cycada::{AppGl, CycadaDevice};
use cycada_diplomat::{DiplomatEngine, DiplomatEntry, DiplomatError, DiplomatPattern, HookKind};
use cycada_gles::GlesVersion;
use cycada_kernel::{IpcMessage, IpcReply, Kernel, KernelError, KernelService, Persona, SimTid};
use cycada_linker::DynamicLinker;
use cycada_sim::{trace, Platform};

fn device() -> CycadaDevice {
    CycadaDevice::boot_with_display(Some((64, 48))).unwrap()
}

#[test]
fn diplomat_call_on_exited_thread_fails_cleanly() {
    let dev = device();
    let victim = dev.spawn_ios_thread().unwrap();
    dev.kernel().exit_thread(victim).unwrap();
    let entry = DiplomatEntry::new(
        "probe",
        cycada_egl::loadout::VENDOR_GLES_LIB,
        "glFlush",
        DiplomatPattern::Direct,
        HookKind::None,
    );
    let err = dev.engine().call(victim, &entry, || {}).unwrap_err();
    assert!(matches!(err, DiplomatError::PersonaSwitch(_)));
    // The engine and other threads remain fully usable.
    dev.engine().call(dev.main_tid(), &entry, || {}).unwrap();
}

#[test]
fn diplomat_against_unregistered_library_fails_without_poisoning() {
    let kernel = Arc::new(Kernel::for_platform(Platform::CycadaIos));
    let linker = Arc::new(DynamicLinker::new(kernel.clock().clone()));
    let engine = DiplomatEngine::new(kernel.clone(), linker);
    let tid = kernel.spawn_process_main(Persona::Ios).unwrap();
    let entry = DiplomatEntry::new(
        "ghost",
        "libghost.so",
        "ghost_fn",
        DiplomatPattern::Direct,
        HookKind::None,
    );
    for _ in 0..3 {
        assert!(matches!(
            engine.call(tid, &entry, || {}),
            Err(DiplomatError::Resolution(_))
        ));
    }
    // The failed resolution never switched personas.
    assert_eq!(kernel.current_persona(tid).unwrap(), Persona::Ios);
    assert_eq!(kernel.syscall_counts().set_persona, 0);
}

#[test]
fn broken_kernel_service_surfaces_errors_not_panics() {
    struct Flaky;
    impl KernelService for Flaky {
        fn service_name(&self) -> &str {
            "FlakyService"
        }
        fn handle(&self, msg: IpcMessage) -> Result<IpcReply, KernelError> {
            if msg.selector == 0 {
                Err(KernelError::ServiceFailure("injected fault".into()))
            } else {
                Ok(IpcReply::empty())
            }
        }
    }
    let kernel = Kernel::for_platform(Platform::CycadaIos);
    kernel.register_service(Arc::new(Flaky));
    let tid = kernel.spawn_process_main(Persona::Ios).unwrap();
    let err = kernel
        .mach_ipc_call(tid, "FlakyService", IpcMessage::new(0, []))
        .unwrap_err();
    assert!(matches!(err, KernelError::ServiceFailure(_)));
    // Subsequent good calls still work.
    kernel
        .mach_ipc_call(tid, "FlakyService", IpcMessage::new(1, []))
        .unwrap();
}

#[test]
fn unbalanced_iosurface_unlock_is_rejected() {
    let dev = device();
    let tid = dev.main_tid();
    let eagl = dev.eagl();
    let ctx = eagl.init_with_api(tid, GlesVersion::V2).unwrap();
    eagl.set_current_context(tid, Some(ctx)).unwrap();
    let iosb = dev.iosurface_bridge();
    let surface = iosb
        .create(tid, cycada_iosurface::SurfaceProps::bgra(4, 4))
        .unwrap();
    // Unlock without lock: the GraphicBuffer layer refuses.
    assert!(iosb.unlock(tid, &surface).is_err());
    // A proper lock/unlock still works afterwards.
    iosb.lock(tid, &surface).unwrap();
    iosb.unlock(tid, &surface).unwrap();
}

#[test]
fn double_lock_is_rejected_and_state_recovers() {
    let dev = device();
    let tid = dev.main_tid();
    let eagl = dev.eagl();
    let ctx = eagl.init_with_api(tid, GlesVersion::V2).unwrap();
    eagl.set_current_context(tid, Some(ctx)).unwrap();
    let iosb = dev.iosurface_bridge();
    let surface = iosb
        .create(tid, cycada_iosurface::SurfaceProps::bgra(4, 4))
        .unwrap();
    iosb.lock(tid, &surface).unwrap();
    assert!(iosb.lock(tid, &surface).is_err(), "double lock refused");
    iosb.unlock(tid, &surface).unwrap();
    iosb.lock(tid, &surface).unwrap();
    iosb.unlock(tid, &surface).unwrap();
}

#[test]
fn releasing_an_mc_connection_in_use_keeps_other_contexts_working() {
    let dev = device();
    let tid = dev.main_tid();
    let eagl = dev.eagl();
    let a = eagl.init_with_api(tid, GlesVersion::V2).unwrap();
    let b = eagl.init_with_api(tid, GlesVersion::V1).unwrap();
    // Tear down context A's replica connection out from under it.
    let conn_a = eagl.connection(a).unwrap();
    dev.egl().release_mc_connection(conn_a).unwrap();
    // Context B is unaffected.
    eagl.set_current_context(tid, Some(b)).unwrap();
    let bridge = dev.bridge();
    bridge.clear_color(tid, 1.0, 0.0, 0.0, 1.0).unwrap();
    assert_eq!(
        bridge.get_error(tid).unwrap(),
        cycada_gles::GlError::NoError
    );
}

#[test]
fn gl_errors_propagate_but_do_not_stick_across_contexts() {
    let dev = device();
    let tid = dev.main_tid();
    let eagl = dev.eagl();
    let bridge = dev.bridge();
    let v2 = eagl.init_with_api(tid, GlesVersion::V2).unwrap();
    let v1 = eagl.init_with_api(tid, GlesVersion::V1).unwrap();

    eagl.set_current_context(tid, Some(v2)).unwrap();
    bridge.rotatef(tid, 10.0, 0.0, 0.0, 1.0).unwrap(); // v1 call on v2 ctx
    assert_eq!(
        bridge.get_error(tid).unwrap(),
        cycada_gles::GlError::InvalidOperation
    );

    // The error was per-context: the v1 context is clean.
    eagl.set_current_context(tid, Some(v1)).unwrap();
    assert_eq!(
        bridge.get_error(tid).unwrap(),
        cycada_gles::GlError::NoError
    );
}

#[test]
fn calls_with_no_current_context_are_counted_noops() {
    let dev = device();
    let tid = dev.main_tid();
    // Initialize EGL so the vendor library exists, but bind nothing.
    dev.egl().initialize(tid).unwrap();
    let bridge = dev.bridge();
    bridge.clear_color(tid, 1.0, 1.0, 1.0, 1.0).unwrap();
    let gles = dev.egl().gles_for_thread(tid).unwrap();
    assert!(gles.calls_without_context() > 0);
}

#[test]
fn app_boot_on_wrong_platform_is_a_clean_error() {
    let err = cycada::AndroidDevice::boot(Platform::NativeIos).unwrap_err();
    assert!(err.to_string().contains("unsupported"));
}

#[test]
fn present_recovers_after_transient_gl_misuse() {
    let app = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V2, Some((64, 48)))
        .unwrap();
    let device = app.cycada_device().unwrap();
    let bridge = device.bridge();
    // Misuse: draw without attribs via the raw bridge.
    bridge
        .draw_arrays(app.tid(), cycada_gles::Primitive::Triangles, 0, 3)
        .unwrap();
    assert_eq!(
        bridge.get_error(app.tid()).unwrap(),
        cycada_gles::GlError::InvalidOperation
    );
    // The frame pipeline still functions.
    app.clear(0.0, 1.0, 0.0, 1.0).unwrap();
    app.present().unwrap();
    assert_eq!(app.display().pixel(5, 5), [0, 255, 0, 255]);
}

#[test]
fn impersonation_guard_drop_during_panic_restores_tls() {
    let dev = device();
    let main = dev.main_tid();
    let worker = dev.spawn_ios_thread().unwrap();
    let engine = dev.engine().clone();
    engine
        .graphics_tls()
        .register_well_known(Persona::Android, 30);
    dev.kernel()
        .tls_set_raw(worker, Persona::Android, 30, Some(0x111))
        .unwrap();

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _guard = engine.impersonate(worker, main).unwrap();
        panic!("injected panic mid-impersonation");
    }));
    assert!(result.is_err());
    // The guard's Drop restored the worker's own TLS.
    assert_eq!(
        dev.kernel()
            .tls_get_raw(worker, Persona::Android, 30)
            .unwrap(),
        Some(0x111)
    );
}

// --------------------------------------------------------------------
// Impersonation-under-thread-death matrix: either endpoint of a live
// impersonation may die before teardown. Every cell must produce a clean
// error (never a panic), leave surviving threads with their own TLS, and
// make swallowed drop-path errors visible through the trace counter.
// --------------------------------------------------------------------

#[test]
fn impersonation_target_exits_before_finish_restores_all_personas() {
    let dev = device();
    let main = dev.main_tid();
    let worker = dev.spawn_ios_thread().unwrap();
    let engine = dev.engine().clone();
    engine.graphics_tls().register_well_known(Persona::Ios, 31);
    engine.graphics_tls().register_well_known(Persona::Android, 30);
    dev.kernel()
        .tls_set_raw(worker, Persona::Ios, 31, Some(0xA))
        .unwrap();
    dev.kernel()
        .tls_set_raw(worker, Persona::Android, 30, Some(0xB))
        .unwrap();

    let guard = engine.impersonate(worker, main).unwrap();
    // The impersonated target dies before the guard finishes: the
    // write-back of every persona fails, but finish must still restore
    // the running thread's own TLS in both personas and report cleanly.
    dev.kernel().exit_thread(main).unwrap();
    let err = guard.finish();
    assert!(matches!(err, Err(DiplomatError::TlsMigration(_))));
    assert_eq!(
        dev.kernel().tls_get_raw(worker, Persona::Ios, 31).unwrap(),
        Some(0xA),
        "iOS persona restored despite dead target"
    );
    assert_eq!(
        dev.kernel()
            .tls_get_raw(worker, Persona::Android, 30)
            .unwrap(),
        Some(0xB),
        "Android persona restored despite dead target"
    );
}

#[test]
fn impersonation_running_thread_exits_finish_errors_cleanly() {
    let dev = device();
    let main = dev.main_tid();
    let worker = dev.spawn_ios_thread().unwrap();
    let engine = dev.engine().clone();
    engine.graphics_tls().register_well_known(Persona::Android, 33);

    let guard = engine.impersonate(worker, main).unwrap();
    // The running (impersonating) thread itself dies: every teardown
    // syscall fails, finish reports the first error without panicking.
    dev.kernel().exit_thread(worker).unwrap();
    assert!(matches!(
        guard.finish(),
        Err(DiplomatError::TlsMigration(_))
    ));
    // The device is still healthy: the target thread kept its own TLS and
    // the engine serves fresh impersonations between live threads.
    let other = dev.spawn_ios_thread().unwrap();
    let g = engine.impersonate(other, main).unwrap();
    g.finish().unwrap();
}

#[test]
fn impersonation_dropped_guard_after_running_exit_counts_swallowed_error() {
    let dev = device();
    let main = dev.main_tid();
    let worker = dev.spawn_ios_thread().unwrap();
    let engine = dev.engine().clone();
    engine.graphics_tls().register_well_known(Persona::Android, 34);
    let before = trace::counter(trace::Counter::ImpersonationDropSwallowedErrors);
    {
        let _guard = engine.impersonate(worker, main).unwrap();
        // Live guard dropped (not finished) after its running thread died:
        // the restore error has no caller to reach.
        dev.kernel().exit_thread(worker).unwrap();
    }
    assert!(
        trace::counter(trace::Counter::ImpersonationDropSwallowedErrors) > before,
        "the drop path must surface the swallowed error via the trace counter"
    );
}

#[test]
fn exited_threads_do_not_break_gcd_queues() {
    let dev = device();
    let main = dev.main_tid();
    let eagl = dev.eagl();
    let ctx = eagl.init_with_api(main, GlesVersion::V2).unwrap();
    eagl.set_current_context(main, Some(ctx)).unwrap();

    let queue = cycada::DispatchQueue::new(&dev, "flaky");
    // First job learns its worker tid; we then kill that worker.
    let worker = queue.dispatch_sync(main, |w| w).unwrap();
    dev.kernel().exit_thread(worker).unwrap();
    // The queue notices the dead pooled worker at next dispatch and fails
    // cleanly (context adoption error) — then a fresh dispatch recovers
    // with a new worker.
    let second = queue.dispatch_sync(main, |w| w);
    match second {
        Ok(w) => assert_ne!(w, worker, "dead worker must not be reused silently"),
        Err(_) => {
            let third = queue.dispatch_sync(main, |w| w).unwrap();
            assert_ne!(third, worker);
        }
    }
}

/// Helper used by the dead-worker test above.
#[allow(dead_code)]
fn tid_of(t: SimTid) -> u64 {
    t.as_u64()
}
