//! EAGL API surface tests: the 17 methods, the GCD dispatch semantics, and
//! the native-iOS counterpart.

use cycada::{CycadaDevice, DispatchQueue, IosDevice};
use cycada_gles::{GlesVersion, TexFormat};

fn device() -> CycadaDevice {
    CycadaDevice::boot_with_display(Some((96, 64))).unwrap()
}

#[test]
fn scratch_methods_work() {
    let dev = device();
    let tid = dev.main_tid();
    let eagl = dev.eagl();

    let ctx = eagl.init_with_api_sharegroup(tid, GlesVersion::V2, 7).unwrap();
    assert_eq!(eagl.api(ctx).unwrap(), GlesVersion::V2);
    assert_eq!(eagl.sharegroup(ctx).unwrap(), 7);

    assert_eq!(eagl.current_context(tid), None);
    eagl.set_current_context(tid, Some(ctx)).unwrap();
    assert_eq!(eagl.current_context(tid), Some(ctx));
    assert!(eagl.is_current_context(tid, ctx));
    eagl.set_current_context(tid, None).unwrap();
    assert_eq!(eagl.current_context(tid), None);

    assert!(!eagl.is_multi_threaded(ctx).unwrap());
    eagl.set_multi_threaded(ctx, true).unwrap();
    assert!(eagl.is_multi_threaded(ctx).unwrap());

    assert_eq!(eagl.debug_label(ctx).unwrap(), None);
    assert_eq!(eagl.swap_interval(ctx).unwrap(), 1);
    eagl.set_swap_interval(ctx, 2).unwrap();
    assert_eq!(eagl.swap_interval(ctx).unwrap(), 2);
}

#[test]
fn set_debug_label_is_the_never_called_method() {
    let dev = device();
    let tid = dev.main_tid();
    let ctx = dev.eagl().init_with_api(tid, GlesVersion::V1).unwrap();
    let err = dev.eagl().set_debug_label(ctx, "game").unwrap_err();
    assert!(err.to_string().contains("unimplemented"));
}

#[test]
fn unknown_context_handles_error_cleanly() {
    let dev = device();
    let eagl = dev.eagl();
    assert!(eagl.api(999).is_err());
    assert!(eagl.sharegroup(999).is_err());
    assert!(eagl.is_multi_threaded(999).is_err());
    assert!(eagl.set_multi_threaded(999, true).is_err());
    assert!(eagl.swap_interval(999).is_err());
    assert!(eagl.drawable_image(999).is_err());
    assert!(eagl
        .set_current_context(dev.main_tid(), Some(999))
        .is_err());
    assert!(eagl
        .present_renderbuffer(dev.main_tid(), 999)
        .is_err());
}

#[test]
fn present_without_drawable_errors() {
    let dev = device();
    let tid = dev.main_tid();
    let ctx = dev.eagl().init_with_api(tid, GlesVersion::V1).unwrap();
    dev.eagl().set_current_context(tid, Some(ctx)).unwrap();
    let err = dev.eagl().present_renderbuffer(tid, ctx).unwrap_err();
    assert!(err.to_string().contains("drawable"));
}

#[test]
fn delete_drawable_releases_the_iosurface() {
    let dev = device();
    let tid = dev.main_tid();
    let eagl = dev.eagl();
    let ctx = eagl.init_with_api(tid, GlesVersion::V2).unwrap();
    eagl.set_current_context(tid, Some(ctx)).unwrap();
    eagl.renderbuffer_storage_from_drawable(tid, ctx, 32, 32)
        .unwrap();
    assert_eq!(dev.iosurface_bridge().live_surfaces(), 1);
    eagl.delete_drawable(tid, ctx).unwrap();
    assert_eq!(dev.iosurface_bridge().live_surfaces(), 0);
    assert!(eagl.drawable_image(ctx).is_err());
}

#[test]
fn gcd_jobs_adopt_the_submitters_context() {
    let dev = device();
    let main = dev.main_tid();
    let eagl = dev.eagl();
    let bridge = dev.bridge();

    let ctx = eagl.init_with_api(main, GlesVersion::V2).unwrap();
    eagl.set_current_context(main, Some(ctx)).unwrap();

    let queue = DispatchQueue::new(&dev, "com.example.texture-loader");
    // Async texture loading on a GCD worker — the §7 WebKit/GCD pattern.
    let tex = queue
        .dispatch_sync(main, |worker| {
            assert!(eagl.is_current_context(worker, ctx), "implicit adoption");
            let tex = bridge.gen_textures(worker, 1).unwrap()[0];
            bridge.bind_texture(worker, tex).unwrap();
            bridge
                .tex_image_2d(worker, 4, 4, TexFormat::Rgba, None)
                .unwrap();
            tex
        })
        .unwrap();

    // The texture loaded by the worker is visible from the main thread.
    bridge.bind_texture(main, tex).unwrap();
    bridge
        .tex_sub_image_2d(main, 0, 0, 1, 1, TexFormat::Rgba, &[1, 2, 3, 255])
        .unwrap();
    assert_eq!(
        bridge.get_error(main).unwrap(),
        cycada_gles::GlError::NoError
    );
    assert_eq!(queue.idle_workers(), 1, "worker returned to the pool");
}

#[test]
fn gcd_workers_are_pooled_and_reused() {
    let dev = device();
    let main = dev.main_tid();
    let eagl = dev.eagl();
    let ctx = eagl.init_with_api(main, GlesVersion::V1).unwrap();
    eagl.set_current_context(main, Some(ctx)).unwrap();

    let queue = DispatchQueue::new(&dev, "serial");
    let first = queue.dispatch_sync(main, |w| w).unwrap();
    let second = queue.dispatch_sync(main, |w| w).unwrap();
    assert_eq!(first, second, "serial dispatch reuses the pooled worker");

    let results = queue
        .dispatch_apply(
            main,
            vec![
                Box::new(|w| w) as Box<dyn FnOnce(_) -> _ + Send>,
                Box::new(|w| w),
                Box::new(|w| w),
            ],
        )
        .unwrap();
    assert_eq!(results.len(), 3);
}

#[test]
fn native_ios_allows_multiple_versions_without_dlr() {
    // The freedom Android lacks: on real iOS, no replication is needed.
    let dev = IosDevice::boot_with_display(Some((96, 64))).unwrap();
    let tid = dev.main_tid();
    let stack = dev.stack();
    let v1 = stack.init_with_api(GlesVersion::V1);
    let v2 = stack.init_with_api(GlesVersion::V2);
    assert_eq!(stack.api(v1).unwrap(), GlesVersion::V1);
    assert_eq!(stack.api(v2).unwrap(), GlesVersion::V2);
    stack.set_current_context(tid, Some(v1)).unwrap();
    stack.set_current_context(tid, Some(v2)).unwrap();

    // And any thread can use any context.
    let worker = dev.spawn_thread().unwrap();
    stack.set_current_context(worker, Some(v1)).unwrap();

    // No replicas were created anywhere.
    assert_eq!(dev.linker().replica_count(), 0);
}

#[test]
fn eagl_method_census_is_6_10_1() {
    assert_eq!(cycada::Eagl::method_census(), (6, 10, 1));
}
