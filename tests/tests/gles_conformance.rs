//! GLES conformance battery: every feature is rendered through the Cycada
//! bridge (iOS app on Android) and natively (Android app on Android) and
//! compared **pixel for pixel** — the reproduction of the paper's claim of
//! "robust binary compatible graphics device support across a broad range
//! of graphics functions".

use cycada::AppGl;
use cycada_gles::{Capability, GlesVersion, Primitive, TexFormat};
use cycada_sim::Platform;

const SMALL: Option<(u32, u32)> = Some((96, 72));

/// Renders `scene` on both paths and asserts identical displayed pixels.
fn assert_conformant(version: GlesVersion, name: &str, scene: impl Fn(&mut AppGl)) {
    let mut native = AppGl::boot_with_display(Platform::StockAndroid, version, SMALL).unwrap();
    scene(&mut native);
    native.present().unwrap();
    let expect = native.display().scanout().to_vec();

    let mut bridged = AppGl::boot_with_display(Platform::CycadaIos, version, SMALL).unwrap();
    scene(&mut bridged);
    bridged.present().unwrap();
    let got = bridged.display().scanout().to_vec();

    assert_eq!(expect, got, "{name} diverged between native and bridged");
}

#[test]
fn triangles_flat() {
    assert_conformant(GlesVersion::V1, "triangles", |app| {
        app.clear(0.1, 0.1, 0.1, 1.0).unwrap();
        app.draw(
            Primitive::Triangles,
            &[-0.8, -0.8, 0.0, 0.8, -0.8, 0.0, 0.0, 0.7, 0.0],
            [0.9, 0.2, 0.1, 1.0],
        )
        .unwrap();
    });
}

#[test]
fn triangle_strip_and_fan() {
    assert_conformant(GlesVersion::V1, "strip+fan", |app| {
        app.clear(0.0, 0.0, 0.0, 1.0).unwrap();
        app.draw(
            Primitive::TriangleStrip,
            &[
                -0.9, -0.9, 0.0, -0.9, 0.0, 0.0, -0.2, -0.9, 0.0, -0.2, 0.0, 0.0,
            ],
            [0.2, 0.8, 0.3, 1.0],
        )
        .unwrap();
        app.draw(
            Primitive::TriangleFan,
            &[
                0.5, 0.5, 0.0, 0.9, 0.5, 0.0, 0.8, 0.8, 0.0, 0.5, 0.9, 0.0, 0.2, 0.8, 0.0,
            ],
            [0.3, 0.3, 0.9, 1.0],
        )
        .unwrap();
    });
}

#[test]
fn lines_points_loops() {
    assert_conformant(GlesVersion::V1, "lines", |app| {
        app.clear(1.0, 1.0, 1.0, 1.0).unwrap();
        app.draw(
            Primitive::Lines,
            &[-0.9, -0.5, 0.0, 0.9, -0.5, 0.0, -0.9, 0.5, 0.0, 0.9, 0.6, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        )
        .unwrap();
        app.draw(
            Primitive::LineStrip,
            &[-0.5, -0.9, 0.0, 0.0, 0.9, 0.0, 0.5, -0.9, 0.0],
            [0.8, 0.0, 0.0, 1.0],
        )
        .unwrap();
        app.draw(
            Primitive::LineLoop,
            &[-0.3, -0.3, 0.0, 0.3, -0.3, 0.0, 0.3, 0.3, 0.0, -0.3, 0.3, 0.0],
            [0.0, 0.4, 0.0, 1.0],
        )
        .unwrap();
        app.draw(
            Primitive::Points,
            &[0.7, 0.7, 0.0, -0.7, 0.7, 0.0],
            [0.0, 0.0, 1.0, 1.0],
        )
        .unwrap();
    });
}

#[test]
fn alpha_blending() {
    assert_conformant(GlesVersion::V1, "blend", |app| {
        app.clear(0.0, 0.0, 0.3, 1.0).unwrap();
        app.set_capability(Capability::Blend, true).unwrap();
        app.draw(
            Primitive::Triangles,
            &[-1.0, -1.0, 0.0, 3.0, -1.0, 0.0, -1.0, 3.0, 0.0],
            [1.0, 0.0, 0.0, 0.5],
        )
        .unwrap();
        app.set_capability(Capability::Blend, false).unwrap();
    });
}

#[test]
fn depth_testing() {
    assert_conformant(GlesVersion::V1, "depth", |app| {
        app.set_capability(Capability::DepthTest, true).unwrap();
        app.clear(0.0, 0.0, 0.0, 1.0).unwrap();
        // Far red quad first, then near green; then a far blue that must
        // lose against both.
        app.draw(
            Primitive::Triangles,
            &[-1.0, -1.0, 0.8, 3.0, -1.0, 0.8, -1.0, 3.0, 0.8],
            [1.0, 0.0, 0.0, 1.0],
        )
        .unwrap();
        app.draw(
            Primitive::Triangles,
            &[-0.5, -0.5, 0.2, 0.9, -0.5, 0.2, -0.5, 0.9, 0.2],
            [0.0, 1.0, 0.0, 1.0],
        )
        .unwrap();
        app.draw(
            Primitive::Triangles,
            &[-1.0, -1.0, 0.9, 3.0, -1.0, 0.9, -1.0, 3.0, 0.9],
            [0.0, 0.0, 1.0, 1.0],
        )
        .unwrap();
    });
}

#[test]
fn texturing_rgba_and_565() {
    for format in [TexFormat::Rgba, TexFormat::Rgb565] {
        assert_conformant(GlesVersion::V1, "texturing", move |app| {
            app.clear(0.2, 0.2, 0.2, 1.0).unwrap();
            let bpp = format.bytes_per_pixel();
            let mut data = vec![0u8; 4 * 4 * bpp];
            for (i, byte) in data.iter_mut().enumerate() {
                *byte = (i * 37 % 251) as u8;
            }
            let tex = app.create_texture(4, 4, format, &data).unwrap();
            app.draw_textured_quad(tex, -0.8, -0.8, 0.8, 0.8).unwrap();
        });
    }
}

#[test]
fn texture_sub_updates() {
    assert_conformant(GlesVersion::V2, "texsub", |app| {
        app.clear(0.0, 0.0, 0.0, 1.0).unwrap();
        let tex = app
            .create_texture(8, 8, TexFormat::Rgba, &[128u8; 8 * 8 * 4])
            .unwrap();
        app.update_texture(tex, 2, 2, 4, 4, TexFormat::Rgba, &[255u8; 4 * 4 * 4])
            .unwrap();
        app.draw_textured_quad_indexed(tex, -1.0, -1.0, 1.0, 1.0)
            .unwrap();
    });
}

#[test]
fn transform_stack_composition() {
    for version in [GlesVersion::V1, GlesVersion::V2] {
        assert_conformant(version, "transforms", |app| {
            app.clear(0.05, 0.05, 0.05, 1.0).unwrap();
            let tri = [-0.2f32, -0.2, 0.0, 0.2, -0.2, 0.0, 0.0, 0.25, 0.0];
            for i in 0..6 {
                app.push_transform().unwrap();
                app.rotate(i as f32 * 60.0).unwrap();
                app.translate(0.0, 0.55, 0.0).unwrap();
                app.scale(0.8, 0.8, 1.0).unwrap();
                app.draw(Primitive::Triangles, &tri, [0.9, 0.7, 0.1, 1.0])
                    .unwrap();
                app.pop_transform().unwrap();
            }
        });
    }
}

#[test]
fn v2_shader_pipeline_scene() {
    assert_conformant(GlesVersion::V2, "shaders", |app| {
        app.clear(0.0, 0.1, 0.2, 1.0).unwrap();
        app.rotate(30.0).unwrap();
        app.draw(
            Primitive::Triangles,
            &[-0.6, -0.6, 0.0, 0.6, -0.6, 0.0, 0.0, 0.8, 0.0],
            [0.9, 0.9, 0.9, 1.0],
        )
        .unwrap();
        app.load_identity().unwrap();
    });
}

#[test]
fn bgra_textures_match_native_rgba() {
    // The iOS app uploads BGRA (which Android rejects); the bridge's
    // data-dependent conversion must make the result identical to a
    // native app uploading the same colors as RGBA.
    let colors_rgba: Vec<u8> = (0..16).flat_map(|i| [i * 16, 255 - i * 16, i * 8, 255]).collect();
    let colors_bgra: Vec<u8> = colors_rgba
        .chunks_exact(4)
        .flat_map(|px| [px[2], px[1], px[0], px[3]])
        .collect();

    let native = AppGl::boot_with_display(Platform::StockAndroid, GlesVersion::V2, SMALL).unwrap();
    native.clear(0.0, 0.0, 0.0, 1.0).unwrap();
    let tex = native.create_texture(4, 4, TexFormat::Rgba, &colors_rgba).unwrap();
    native.draw_textured_quad(tex, -1.0, -1.0, 1.0, 1.0).unwrap();
    native.present().unwrap();

    let bridged = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V2, SMALL).unwrap();
    bridged.clear(0.0, 0.0, 0.0, 1.0).unwrap();
    let tex = bridged.create_texture(4, 4, TexFormat::Bgra, &colors_bgra).unwrap();
    bridged.draw_textured_quad(tex, -1.0, -1.0, 1.0, 1.0).unwrap();
    bridged.present().unwrap();

    assert_eq!(
        native.display().scanout().to_vec(),
        bridged.display().scanout().to_vec()
    );
}

#[test]
fn multi_frame_animation_stays_in_sync() {
    // Several presents in a row (double buffering on Android vs EAGL
    // off-screen present on Cycada) must still converge frame by frame.
    let run = |platform| {
        let mut app = AppGl::boot_with_display(platform, GlesVersion::V1, SMALL).unwrap();
        let mut frames = Vec::new();
        for i in 0..4 {
            app.clear(0.0, 0.0, 0.0, 1.0).unwrap();
            app.push_transform().unwrap();
            app.rotate(i as f32 * 45.0).unwrap();
            app.draw(
                Primitive::Triangles,
                &[-0.5, -0.5, 0.0, 0.5, -0.5, 0.0, 0.0, 0.6, 0.0],
                [0.1, 0.9, 0.5, 1.0],
            )
            .unwrap();
            app.pop_transform().unwrap();
            app.present().unwrap();
            frames.push(app.display().scanout().to_vec());
        }
        frames
    };
    assert_eq!(run(Platform::StockAndroid), run(Platform::CycadaIos));
}

#[test]
fn fences_are_usable_from_the_ios_surface() {
    // APPLE_fence (bridged onto NV_fence) behaves like native NV_fence.
    let app = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V1, SMALL).unwrap();
    let device = app.cycada_device().unwrap();
    let bridge = device.bridge();
    let tid = app.tid();
    let fence = bridge.gen_fences_apple(tid, 1).unwrap()[0];
    assert!(bridge.is_fence_apple(tid, fence).unwrap());
    app.draw(
        Primitive::Triangles,
        &[-1.0, -1.0, 0.0, 3.0, -1.0, 0.0, -1.0, 3.0, 0.0],
        [1.0, 1.0, 1.0, 1.0],
    )
    .unwrap();
    bridge.set_fence_apple(tid, fence).unwrap();
    assert!(!bridge.test_fence_apple(tid, fence).unwrap());
    bridge.flush(tid).unwrap();
    assert!(bridge.test_fence_apple(tid, fence).unwrap());
    bridge.delete_fences_apple(tid, &[fence]).unwrap();
    assert!(!bridge.is_fence_apple(tid, fence).unwrap());
}

#[test]
fn read_pixels_matches_across_paths() {
    let scene = |app: &AppGl| {
        app.clear(0.3, 0.6, 0.9, 1.0).unwrap();
    };
    let native = AppGl::boot_with_display(Platform::StockAndroid, GlesVersion::V2, SMALL).unwrap();
    scene(&native);
    let native_gles = native.cycada_device().is_none();
    assert!(native_gles);

    let bridged = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V2, SMALL).unwrap();
    scene(&bridged);
    let device = bridged.cycada_device().unwrap();
    let pixels = device
        .bridge()
        .read_pixels(bridged.tid(), 0, 0, 4, 4, TexFormat::Rgba)
        .unwrap();
    assert_eq!(&pixels[0..4], &[77, 153, 230, 255]);
}
