//! Session-plane stress tests: N app sessions on ONE shared Cycada device,
//! driven from N host threads concurrently.
//!
//! The determinism contract (DESIGN.md §5c): concurrency may interleave
//! *host* wall time only, never simulated accounting. Concretely, for every
//! session in an N-way concurrent run:
//!
//! (a) the final framebuffer is byte-identical to the same workload run
//!     solo on a private device, and
//! (b) the virtual-time total metered inside the session's scope is
//!     identical to the solo run — i.e. independent of interleaving.

use std::sync::{Arc, Barrier};

use cycada::{AppGl, CycadaDevice};
use cycada_gles::{GlesVersion, Primitive, TexFormat};
use cycada_sim::{Nanos, Platform};

const W: u32 = 48;
const H: u32 = 32;
const FRAMES: u32 = 3;

fn seed(i: usize) -> u64 {
    0xC0FFEE + i as u64 * 17
}

/// Per-session setup: a small texture plus one warm-up frame. The warm-up
/// resolves every diplomat symbol the metered frames will use — symbol
/// resolution is charged once per *device*, so which session pays it is
/// interleaving-dependent and must stay outside the metered scope.
fn drive_setup(app: &mut AppGl, seed: u64) -> u32 {
    let tex_data: Vec<u8> = (0..16u8)
        .flat_map(|i| {
            let v = (seed as u8).wrapping_mul(31).wrapping_add(i.wrapping_mul(5));
            [v, v ^ 0x3c, 128, 255]
        })
        .collect();
    let tex = app.create_texture(2, 2, TexFormat::Rgba, &tex_data).unwrap();
    drive_frames(app, tex, seed, 1);
    tex
}

/// The metered workload: `frames` frames of clear + rotated triangle +
/// textured quad + present, all parameterised by the session's seed.
fn drive_frames(app: &mut AppGl, tex: u32, seed: u64, frames: u32) {
    let tri = [-0.8f32, -0.6, 0.0, 0.8, -0.6, 0.0, 0.0, 0.9, 0.0];
    for f in 0..frames {
        let r = ((seed * 37 + u64::from(f) * 11) % 255) as f32 / 255.0;
        app.clear(r, 0.25, 1.0 - r, 1.0).unwrap();
        app.rotate((seed as f32 * 13.0 + f as f32 * 7.0) % 360.0).unwrap();
        app.draw(Primitive::Triangles, &tri, [r, 0.8, 0.3, 1.0]).unwrap();
        app.draw_textured_quad(tex, -0.5, -0.5, 0.5, 0.5).unwrap();
        app.present().unwrap();
    }
}

/// Runs the workload solo — one session on a private device — returning
/// the final framebuffer bytes and the metered virtual-time total.
fn solo_run(seed: u64) -> (Vec<u8>, Nanos) {
    let mut app =
        AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V1, Some((W, H))).unwrap();
    let tex = drive_setup(&mut app, seed);
    {
        let _scope = app.session_scope();
        drive_frames(&mut app, tex, seed, FRAMES);
    }
    (
        app.render_target().unwrap().to_rgba_vec(),
        app.session_virtual_ns(),
    )
}

#[test]
fn concurrent_sessions_match_solo_runs() {
    // Solo baselines, one per distinct workload.
    let solos: Vec<(Vec<u8>, Nanos)> = (0..8).map(|i| solo_run(seed(i))).collect();
    assert!(solos[0].1 > 0, "the meter must actually accumulate");

    for &n in &[1usize, 2, 4, 8] {
        let device = CycadaDevice::boot_with_display(Some((W, H))).unwrap();
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let mut app = AppGl::attach_cycada(&device, GlesVersion::V1).unwrap();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let tex = drive_setup(&mut app, seed(i));
                    // Line every session up so the metered frames really
                    // interleave on the shared device.
                    barrier.wait();
                    {
                        let _scope = app.session_scope();
                        drive_frames(&mut app, tex, seed(i), FRAMES);
                    }
                    (
                        i,
                        app.render_target().unwrap().to_rgba_vec(),
                        app.session_virtual_ns(),
                    )
                })
            })
            .collect();
        for handle in handles {
            let (i, rgba, virtual_ns) = handle.join().unwrap();
            assert_eq!(
                rgba, solos[i].0,
                "N={n}: session {i} framebuffer differs from its solo run"
            );
            assert_eq!(
                virtual_ns, solos[i].1,
                "N={n}: session {i} virtual-time total differs from its solo run"
            );
        }
    }
}

#[test]
fn sessions_share_one_device_but_not_figures() {
    // Two sessions on one device: the device clock totals both, but each
    // session's scope only ever sees its own charges.
    let device = CycadaDevice::boot_with_display(Some((W, H))).unwrap();
    let mut a = AppGl::attach_cycada(&device, GlesVersion::V1).unwrap();
    let mut b = AppGl::attach_cycada(&device, GlesVersion::V1).unwrap();
    let tex_a = drive_setup(&mut a, seed(0));
    let tex_b = drive_setup(&mut b, seed(0));
    {
        let _scope = a.session_scope();
        drive_frames(&mut a, tex_a, seed(0), FRAMES);
    }
    {
        let _scope = b.session_scope();
        drive_frames(&mut b, tex_b, seed(0), FRAMES);
    }
    assert_eq!(a.session_virtual_ns(), b.session_virtual_ns(),
        "identical call sequences cost the same regardless of session");
    assert!(
        device.kernel().clock().now_ns() >= a.session_virtual_ns() + b.session_virtual_ns(),
        "the shared device clock totals at least both sessions' metered work"
    );
    // Session stats stay private: each session recorded its own present
    // calls, not its neighbour's.
    let stats_a = a.session_stats().unwrap();
    let stats_b = b.session_stats().unwrap();
    let swaps = |s: &cycada_sim::stats::FunctionStats| {
        s.get("eglSwapBuffers").map(|r| r.calls).unwrap_or(0)
    };
    assert_eq!(swaps(&stats_a), u64::from(FRAMES));
    assert_eq!(swaps(&stats_b), u64::from(FRAMES));
}

#[test]
fn attach_reuses_the_shared_stack() {
    let device = CycadaDevice::boot_with_display(Some((W, H))).unwrap();
    let before = device.kernel().clock().now_ns();
    let session = device.attach_session().unwrap();
    let attach_cost = device.kernel().clock().now_ns() - before;
    assert!(session.main_tid() != device.main_tid());
    // Attaching spawns a process; it must not re-boot the platform stack
    // (library loads, service registration), which costs milliseconds of
    // virtual time at boot.
    assert!(
        attach_cost < 1_000_000,
        "attach charged {attach_cost} ns — did it re-boot the stack?"
    );
}
