//! End-to-end pipeline tests: iOS app code through the Cycada bridge to
//! the display, compared against the native paths.

use cycada::AppGl;
use cycada_gles::{GlesVersion, Primitive};
use cycada_sim::{Persona, Platform};

const SMALL: Option<(u32, u32)> = Some((128, 96));

fn triangle() -> [f32; 9] {
    [-1.0, -1.0, 0.0, 3.0, -1.0, 0.0, -1.0, 3.0, 0.0]
}

#[test]
fn cycada_ios_renders_to_display_through_the_whole_stack() {
    let app = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V1, SMALL).unwrap();
    app.clear(0.0, 0.0, 0.0, 1.0).unwrap();
    app.draw(Primitive::Triangles, &triangle(), [1.0, 0.0, 0.0, 1.0])
        .unwrap();
    app.present().unwrap();
    assert_eq!(app.display().pixel(20, 20), [255, 0, 0, 255]);
    assert_eq!(app.display().frames_presented(), 1);
}

#[test]
fn all_four_platforms_render_the_same_scene() {
    let mut hashes = Vec::new();
    for platform in [
        Platform::StockAndroid,
        Platform::CycadaAndroid,
        Platform::CycadaIos,
        Platform::NativeIos,
    ] {
        let app = AppGl::boot_with_display(platform, GlesVersion::V1, SMALL).unwrap();
        app.clear(0.0, 0.0, 0.2, 1.0).unwrap();
        app.draw(Primitive::Triangles, &triangle(), [0.0, 1.0, 0.0, 1.0])
            .unwrap();
        app.present().unwrap();
        let hash: u64 = {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in app.display().scanout().to_vec() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        };
        hashes.push((platform, hash));
    }
    // Pixel-for-pixel identical output across every configuration.
    let first = hashes[0].1;
    for (platform, hash) in &hashes {
        assert_eq!(*hash, first, "{platform:?} diverged");
    }
}

#[test]
fn diplomat_calls_switch_personas_around_every_gl_call() {
    let app = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V1, SMALL).unwrap();
    let device = app.cycada_device().unwrap();
    let kernel = device.kernel();
    let before = kernel.syscall_counts().set_persona;
    app.clear(0.0, 0.0, 0.0, 1.0).unwrap();
    let after = kernel.syscall_counts().set_persona;
    // clear_color + clear = 2 diplomats = 4 persona switches.
    assert_eq!(after - before, 4);
    // And the thread ends back in its iOS persona.
    assert_eq!(
        kernel.current_persona(app.tid()).unwrap(),
        Persona::Ios
    );
}

#[test]
fn v2_path_works_through_the_bridge() {
    let app = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V2, SMALL).unwrap();
    app.clear(0.0, 0.0, 0.0, 1.0).unwrap();
    app.draw(Primitive::Triangles, &triangle(), [0.0, 0.0, 1.0, 1.0])
        .unwrap();
    app.present().unwrap();
    assert_eq!(app.display().pixel(10, 10), [0, 0, 255, 255]);
}

#[test]
fn transform_stack_matches_across_v1_gl_and_v2_uniform_paths() {
    let render = |version| {
        let mut app =
            AppGl::boot_with_display(Platform::StockAndroid, version, SMALL).unwrap();
        app.clear(0.0, 0.0, 0.0, 1.0).unwrap();
        app.push_transform().unwrap();
        app.rotate(90.0).unwrap();
        app.scale(0.5, 0.5, 1.0).unwrap();
        app.draw(Primitive::Triangles, &triangle(), [1.0, 1.0, 0.0, 1.0])
            .unwrap();
        app.pop_transform().unwrap();
        app.present().unwrap();
        app.display().scanout().to_vec()
    };
    assert_eq!(render(GlesVersion::V1), render(GlesVersion::V2));
}

#[test]
fn eagl_present_goes_through_draw_fbo_tex_and_swap() {
    let app = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V1, SMALL).unwrap();
    app.clear(1.0, 0.5, 0.0, 1.0).unwrap();
    app.present().unwrap();
    let stats = app.gl_stats().unwrap();
    // The §5 presentRenderbuffer path.
    assert!(stats.get("aegl_bridge_draw_fbo_tex").is_some());
    assert!(stats.get("eglSwapBuffers").is_some());
    // Its cost is dominated by the full-screen quad + composition, not the
    // diplomat mechanism.
    let draw_fbo = stats.get("aegl_bridge_draw_fbo_tex").unwrap();
    assert!(draw_fbo.avg_ns() > 10_000.0);
}

#[test]
fn apple_fence_maps_to_nv_fence_on_cycada() {
    let app = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V1, SMALL).unwrap();
    let device = app.cycada_device().unwrap();
    let bridge = device.bridge();
    let tid = app.tid();

    let fence = bridge.gen_fences_apple(tid, 1).unwrap()[0];
    app.draw(Primitive::Triangles, &triangle(), [1.0, 1.0, 1.0, 1.0])
        .unwrap();
    bridge.set_fence_apple(tid, fence).unwrap();
    assert!(!bridge.test_fence_apple(tid, fence).unwrap());
    bridge.finish_fence_apple(tid, fence).unwrap();
    assert!(bridge.test_fence_apple(tid, fence).unwrap());
    bridge.delete_fences_apple(tid, &[fence]).unwrap();

    // The bridge recorded these as indirect diplomats.
    assert_eq!(
        bridge.called_pattern("glSetFenceAPPLE"),
        Some(cycada_diplomat::DiplomatPattern::Indirect)
    );
}

#[test]
fn gl_get_string_reports_android_extensions_and_apple_param_is_custom() {
    let app = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V1, SMALL).unwrap();
    let device = app.cycada_device().unwrap();
    let bridge = device.bridge();
    let tid = app.tid();

    let exts = bridge
        .get_string(tid, cycada_gles::StringName::Extensions)
        .unwrap()
        .unwrap();
    assert!(exts.contains("GL_NV_fence"), "Android extension string");

    // Apple's proprietary parameter: answered in foreign code with a
    // custom (empty) string, not an error.
    let apple = bridge
        .get_string(tid, cycada_gles::StringName::AppleExtensions)
        .unwrap();
    assert_eq!(apple, Some(String::new()));
}

#[test]
fn apple_row_bytes_repack_round_trips_through_the_bridge() {
    let app = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V2, SMALL).unwrap();
    let device = app.cycada_device().unwrap();
    let bridge = device.bridge();
    let tid = app.tid();

    // Upload a 2x2 texture from 12-byte rows (APPLE_row_bytes).
    bridge
        .pixel_storei(tid, cycada_gles::PixelStoreParam::UnpackRowBytesApple, 12)
        .unwrap();
    let mut data = vec![0u8; 24];
    data[0..4].copy_from_slice(&[255, 0, 0, 255]);
    data[12..16].copy_from_slice(&[0, 255, 0, 255]);
    let tex = bridge.gen_textures(tid, 1).unwrap()[0];
    bridge.bind_texture(tid, tex).unwrap();
    bridge
        .tex_image_2d(tid, 2, 2, cycada_gles::TexFormat::Rgba, Some(&data))
        .unwrap();
    // No GL error on the Android side: the unknown enum never reached it.
    assert_eq!(
        bridge.get_error(tid).unwrap(),
        cycada_gles::GlError::NoError
    );

    // Read pixels back with a padded pack stride.
    bridge
        .pixel_storei(tid, cycada_gles::PixelStoreParam::PackRowBytesApple, 20)
        .unwrap();
    bridge.clear_color(tid, 0.0, 0.0, 1.0, 1.0).unwrap();
    bridge.clear(tid, true, false).unwrap();
    let out = bridge
        .read_pixels(tid, 0, 0, 2, 2, cycada_gles::TexFormat::Rgba)
        .unwrap();
    assert_eq!(out.len(), 40, "rows padded to 20 bytes");
    assert_eq!(&out[0..4], &[0, 0, 255, 255]);
    assert_eq!(&out[20..24], &[0, 0, 255, 255]);
}

#[test]
fn bgra_textures_are_swizzled_for_the_tegra() {
    let app = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V2, SMALL).unwrap();
    // BGRA bytes for pure red: [0, 0, 255, 255].
    let tex = app
        .create_texture(1, 1, cycada_gles::TexFormat::Bgra, &[0, 0, 255, 255])
        .unwrap();
    app.clear(0.0, 0.0, 0.0, 1.0).unwrap();
    app.draw_textured_quad(tex, -1.0, -1.0, 1.0, 1.0).unwrap();
    app.present().unwrap();
    assert_eq!(
        app.display().pixel(5, 5),
        [255, 0, 0, 255],
        "red BGRA texel displayed as red"
    );
}

#[test]
fn extensions_differ_per_platform_as_apps_see_them() {
    let cycada = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V1, SMALL).unwrap();
    let cycada_exts = cycada.extensions().unwrap().unwrap();
    assert!(cycada_exts.contains("GL_NV_fence"));

    let ios = AppGl::boot_with_display(Platform::NativeIos, GlesVersion::V1, SMALL).unwrap();
    let ios_exts = ios.extensions().unwrap().unwrap();
    assert!(ios_exts.contains("GL_APPLE_fence"));
    assert!(!ios_exts.contains("GL_NV_fence"));
}
