//! Concurrency tests: simulated threads mapped onto real host threads,
//! exercising the kernel, linker and GLES stacks under true parallelism.

use std::sync::Arc;

use cycada::CycadaDevice;
use cycada_gles::{GlesVersion, TexFormat};
use cycada_kernel::{Kernel, Persona};
use cycada_sim::Platform;

#[test]
fn parallel_syscalls_accumulate_exact_virtual_time() {
    let kernel = Arc::new(Kernel::for_platform(Platform::CycadaAndroid));
    let threads = 8;
    let iters = 500u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let k = kernel.clone();
            let tid = k.spawn_process_main(Persona::Android).unwrap();
            std::thread::spawn(move || {
                for _ in 0..iters {
                    k.null_syscall(tid).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(kernel.clock().now_ns(), threads * iters * 244);
    assert_eq!(kernel.syscall_counts().null, threads * iters);
}

#[test]
fn parallel_dlforce_produces_isolated_replicas() {
    let device = Arc::new(CycadaDevice::boot_with_display(Some((64, 48))).unwrap());
    device.egl().initialize(device.main_tid()).unwrap();
    let linker = device.linker().clone();
    let before = linker.constructor_runs(cycada::LIBUI_WRAPPER);
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let l = linker.clone();
            std::thread::spawn(move || {
                let replica = l.dlforce(cycada::LIBUI_WRAPPER).unwrap();
                replica.root().instance_id()
            })
        })
        .collect();
    let ids: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let unique: std::collections::HashSet<_> = ids.iter().collect();
    assert_eq!(unique.len(), 6, "every replica got a fresh instance");
    assert_eq!(
        linker.constructor_runs(cycada::LIBUI_WRAPPER) - before,
        6
    );
}

#[test]
fn parallel_eagl_contexts_from_many_threads() {
    // Several "GCD" threads each create their own EAGLContext (each with
    // its own DLR replica) and upload a texture, concurrently.
    let device = Arc::new(CycadaDevice::boot_with_display(Some((64, 48))).unwrap());
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let dev = device.clone();
            std::thread::spawn(move || {
                let tid = dev.spawn_ios_thread().unwrap();
                let version = if i % 2 == 0 {
                    GlesVersion::V1
                } else {
                    GlesVersion::V2
                };
                let eagl = dev.eagl();
                let ctx = eagl.init_with_api(tid, version).unwrap();
                eagl.set_current_context(tid, Some(ctx)).unwrap();
                let bridge = dev.bridge();
                let tex = bridge.gen_textures(tid, 1).unwrap()[0];
                bridge.bind_texture(tid, tex).unwrap();
                bridge
                    .tex_image_2d(tid, 8, 8, TexFormat::Rgba, None)
                    .unwrap();
                assert_eq!(
                    bridge.get_error(tid).unwrap(),
                    cycada_gles::GlError::NoError
                );
                eagl.connection(ctx).unwrap()
            })
        })
        .collect();
    let connections: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let unique: std::collections::HashSet<_> = connections.iter().collect();
    assert_eq!(unique.len(), 4, "each context has its own connection");
}

#[test]
fn concurrent_iosurface_traffic_is_consistent() {
    let device = Arc::new(CycadaDevice::boot_with_display(Some((64, 48))).unwrap());
    // One context so the GLES side exists.
    let main = device.main_tid();
    let eagl = device.eagl();
    let ctx = eagl.init_with_api(main, GlesVersion::V2).unwrap();
    eagl.set_current_context(main, Some(ctx)).unwrap();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let dev = device.clone();
            std::thread::spawn(move || {
                let tid = dev.spawn_ios_thread().unwrap();
                let iosb = dev.iosurface_bridge();
                let surface = iosb
                    .create(tid, cycada_iosurface::SurfaceProps::bgra(8, 8))
                    .unwrap();
                // CPU draws while nothing is bound: plain lock/unlock.
                iosb.lock(tid, &surface).unwrap();
                surface.as_image().set_pixel(0, 0, cycada_gpu::Rgba::RED);
                iosb.unlock(tid, &surface).unwrap();
                iosb.release(tid, &surface).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(device.iosurface_bridge().live_surfaces(), 0);
    assert_eq!(device.coresurface().live_surfaces(), 0);
}

#[test]
fn send_sync_bounds_hold() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Kernel>();
    assert_send_sync::<cycada_linker::DynamicLinker>();
    assert_send_sync::<cycada_gpu::GpuDevice>();
    assert_send_sync::<cycada_gles::VendorGles>();
    assert_send_sync::<cycada_egl::AndroidEgl>();
    assert_send_sync::<cycada_diplomat::DiplomatEngine>();
    assert_send_sync::<CycadaDevice>();
}
