//! Multi-context DLR conformance: two app sessions on one shared
//! Cycada device, one GLES v1 context and one GLES v2 context — a
//! combination stock Android EGL cannot express (single connection,
//! one locked version) and Cycada supports through EGL_multi_context
//! plus dynamic library replication (§8.2). The sessions' draws are
//! interleaved step by step, and each context's framebuffer must come
//! out byte-identical to the same scene rendered solo on a private
//! device: replica isolation means a neighbor context can never bleed
//! GL state, pixels, or transform stacks into yours.

use cycada::{AppGl, CycadaDevice};
use cycada_gles::{GlesVersion, Primitive, TexFormat};

const SMALL: Option<(u32, u32)> = Some((64, 48));

type Phase = fn(&mut AppGl);

/// The v1 scene, split into interleavable phases (fixed-function
/// transforms, textured quad via client arrays).
const V1_PHASES: &[Phase] = &[
    |app| app.clear(0.05, 0.1, 0.2, 1.0).unwrap(),
    |app| {
        app.rotate(20.0).unwrap();
        app.draw(
            Primitive::Triangles,
            &[-0.7, -0.6, 0.0, 0.7, -0.6, 0.0, 0.0, 0.8, 0.0],
            [0.9, 0.2, 0.1, 1.0],
        )
        .unwrap();
    },
    |app| {
        let data: Vec<u8> = (0..8 * 8 * 4).map(|i| (i * 5 % 256) as u8).collect();
        let tex = app.create_texture(8, 8, TexFormat::Rgba, &data).unwrap();
        app.draw_textured_quad(tex, -0.4, -0.4, 0.4, 0.4).unwrap();
    },
    |app| {
        app.push_transform().unwrap();
        app.scale(0.5, 0.5, 1.0).unwrap();
        app.draw(
            Primitive::TriangleFan,
            &[0.0, 0.0, 0.0, 0.9, 0.0, 0.0, 0.6, 0.6, 0.0, 0.0, 0.9, 0.0],
            [0.1, 0.8, 0.3, 0.9],
        )
        .unwrap();
        app.pop_transform().unwrap();
    },
    |app| app.present().unwrap(),
];

/// The v2 scene: shader pipeline, `u_mvp`/`u_color` uniforms.
const V2_PHASES: &[Phase] = &[
    |app| app.clear(0.3, 0.05, 0.05, 1.0).unwrap(),
    |app| {
        app.translate(0.2, -0.1, 0.0).unwrap();
        app.draw(
            Primitive::TriangleStrip,
            &[-0.8, -0.2, 0.0, -0.2, -0.8, 0.0, 0.2, 0.6, 0.0, 0.8, 0.0, 0.0],
            [0.2, 0.4, 1.0, 1.0],
        )
        .unwrap();
    },
    |app| {
        let data: Vec<u8> = (0..8 * 8 * 2).map(|i| (i * 11 % 256) as u8).collect();
        let tex = app.create_texture(8, 8, TexFormat::Rgb565, &data).unwrap();
        app.draw_textured_quad_indexed(tex, 0.0, 0.0, 0.8, 0.8).unwrap();
    },
    |app| {
        app.rotate(45.0).unwrap();
        app.draw(
            Primitive::Triangles,
            &[-0.3, -0.3, 0.0, 0.3, -0.3, 0.0, 0.0, 0.4, 0.0],
            [1.0, 1.0, 0.2, 0.8],
        )
        .unwrap();
    },
    |app| app.present().unwrap(),
];

fn solo_frame(version: GlesVersion, phases: &[Phase]) -> Vec<u8> {
    let device = CycadaDevice::boot_with_display(SMALL).unwrap();
    let mut app = AppGl::attach_cycada(&device, version).unwrap();
    for phase in phases {
        phase(&mut app);
    }
    app.render_target().unwrap().to_rgba_vec()
}

#[test]
fn interleaved_v1_and_v2_contexts_match_solo_runs() {
    let solo_v1 = solo_frame(GlesVersion::V1, V1_PHASES);
    let solo_v2 = solo_frame(GlesVersion::V2, V2_PHASES);

    let device = CycadaDevice::boot_with_display(SMALL).unwrap();
    let mut app1 = AppGl::attach_cycada(&device, GlesVersion::V1).unwrap();
    let after_first = device.egl().connection_count();
    let mut app2 = AppGl::attach_cycada(&device, GlesVersion::V2).unwrap();

    // Two simultaneous GLES versions on one device: the stock-EGL
    // impossibility DLR makes work. Each context brought up its own
    // replica connection (the first attach may also materialize the
    // lazily-created default connection, so deltas are measured from
    // after it).
    assert_eq!(app1.version(), GlesVersion::V1);
    assert_eq!(app2.version(), GlesVersion::V2);
    assert_eq!(
        device.egl().connection_count(),
        after_first + 1,
        "each EAGLContext must own a fresh DLR replica connection"
    );

    assert_eq!(V1_PHASES.len(), V2_PHASES.len());
    for (p1, p2) in V1_PHASES.iter().zip(V2_PHASES.iter()) {
        p1(&mut app1);
        p2(&mut app2);
    }

    let got_v1 = app1.render_target().unwrap().to_rgba_vec();
    let got_v2 = app2.render_target().unwrap().to_rgba_vec();
    assert_eq!(
        got_v1, solo_v1,
        "v1 context diverged from its solo run under interleaving"
    );
    assert_eq!(
        got_v2, solo_v2,
        "v2 context diverged from its solo run under interleaving"
    );
    // The two scenes are genuinely different content, so a pass is not
    // vacuous (e.g. both targets all-clear).
    assert_ne!(got_v1, got_v2);
}

#[test]
fn reversed_interleaving_order_is_also_isolated() {
    let solo_v1 = solo_frame(GlesVersion::V1, V1_PHASES);
    let solo_v2 = solo_frame(GlesVersion::V2, V2_PHASES);

    let device = CycadaDevice::boot_with_display(SMALL).unwrap();
    let mut app2 = AppGl::attach_cycada(&device, GlesVersion::V2).unwrap();
    let mut app1 = AppGl::attach_cycada(&device, GlesVersion::V1).unwrap();
    for (p1, p2) in V1_PHASES.iter().zip(V2_PHASES.iter()) {
        p2(&mut app2);
        p1(&mut app1);
    }
    assert_eq!(app1.render_target().unwrap().to_rgba_vec(), solo_v1);
    assert_eq!(app2.render_target().unwrap().to_rgba_vec(), solo_v2);
}
