//! Fleet-plane correctness: the work-stealing orchestrator
//! (`cycada-fleet`) must not perturb the session plane's determinism
//! contract, no matter how sessions interleave across workers and
//! shared devices.
//!
//! Three angles:
//!  * small-fleet-matches-solo — every session's framebuffer hash and
//!    metered virtual total equals a solo run of the same
//!    `(scenario, seed, frames, display)` on a private device;
//!  * two-run determinism — the full per-session digest of a fleet run
//!    is identical across two runs of the same seed and config, even
//!    though scheduling (and who steals what) differs;
//!  * oversubscription — sessions ≫ workers ≫ devices completes with
//!    every session accounted for and no starvation.

use cycada_fleet::{
    determinism_digest, run_fleet, session_seed, solo_outcome, FleetConfig, Scenario,
};

const DISPLAY: (u32, u32) = (48, 32);
const FRAMES: u32 = 3;

fn small_config(name: &str, devices: usize, sessions: usize, workers: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(name, devices, sessions);
    cfg.frames = FRAMES;
    cfg.workers = workers;
    cfg.display = DISPLAY;
    cfg
}

#[test]
fn small_fleet_sessions_match_solo_runs_exactly() {
    // 8 sessions = the 4-scenario mix twice over, on 2 shared devices
    // with enough workers that sessions genuinely run concurrently.
    let cfg = small_config("solo-parity", 2, 8, 4);
    let report = run_fleet(&cfg).expect("fleet run must succeed");
    assert_eq!(report.outcomes.len(), 8);

    for outcome in &report.outcomes {
        let scenario = Scenario::mix(outcome.session);
        let seed = session_seed(cfg.seed, outcome.session);
        assert_eq!(outcome.seed, seed, "session {} seed drifted", outcome.session);
        let (solo_hash, solo_virtual_ns) =
            solo_outcome(scenario, seed, FRAMES, DISPLAY).expect("solo run must succeed");
        assert_eq!(
            outcome.fb_hash, solo_hash,
            "session {} ({}) framebuffer differs from its solo run",
            outcome.session,
            scenario.label()
        );
        assert_eq!(
            outcome.virtual_ns, solo_virtual_ns,
            "session {} ({}) metered virtual time differs from its solo run",
            outcome.session,
            scenario.label()
        );
    }
}

#[test]
fn same_seed_and_config_reproduce_the_same_digest() {
    let cfg = small_config("repro", 2, 12, 4);
    let first = run_fleet(&cfg).expect("first fleet run must succeed");
    let second = run_fleet(&cfg).expect("second fleet run must succeed");
    assert_eq!(
        determinism_digest(&first.outcomes),
        determinism_digest(&second.outcomes),
        "per-session (hash, virtual_ns) digest must be schedule-independent"
    );
}

#[test]
fn different_seeds_change_the_digest() {
    // Guards against the digest being vacuously stable (e.g. hashing
    // nothing): a different fleet seed must actually change results.
    let cfg_a = small_config("seed-a", 1, 4, 2);
    let mut cfg_b = small_config("seed-b", 1, 4, 2);
    cfg_b.seed = cfg_a.seed ^ 0xDEAD_BEEF;
    let a = run_fleet(&cfg_a).expect("fleet run must succeed");
    let b = run_fleet(&cfg_b).expect("fleet run must succeed");
    assert_ne!(determinism_digest(&a.outcomes), determinism_digest(&b.outcomes));
}

#[test]
fn oversubscribed_fleet_completes_every_session() {
    // Sessions ≫ workers ≫ devices: 48 sessions churn through 3 workers
    // on 2 shared devices. Every session completes (no starvation), the
    // device rollups account for all of them, and with deques this
    // oversubscribed the load stays meaningfully spread.
    let cfg = small_config("oversub", 2, 48, 3);
    let report = run_fleet(&cfg).expect("oversubscribed fleet must complete");
    assert_eq!(report.outcomes.len(), 48, "every session must finish");
    let mut sessions: Vec<usize> = report.outcomes.iter().map(|o| o.session).collect();
    sessions.sort_unstable();
    assert_eq!(sessions, (0..48).collect::<Vec<_>>(), "no session lost or duplicated");
    assert!(report.outcomes.iter().all(|o| o.frame_wall_ns.len() == FRAMES as usize));
    let rollup: usize = report.devices.iter().map(|d| d.sessions).sum();
    assert_eq!(rollup, 48, "device rollups must account for every session");
    assert!(
        report.devices.iter().all(|d| d.sessions > 0 && d.virtual_ns > 0),
        "both shared devices must have done real work"
    );
}
