//! Replay-plane integration tests (DESIGN.md §5i).
//!
//! The replay contract under test: a recorded call stream, re-driven
//! through a fresh session, reproduces the recording byte-for-byte
//! (every present's framebuffer digest) and nanosecond-for-nanosecond
//! (every call's virtual timestamp and the metered totals); recording is
//! invisible to the simulation (recorded runs equal unrecorded runs);
//! the `.cyt` encoding is stable (same run → same bytes); and a forced
//! divergence ddmin-shrinks to a minimal trace that still reproduces.

use cycada_fleet::{solo_outcome, FleetConfig};
use cycada_replay::{
    corpus, replay_on_device, replay_stream, shrink_divergence, DivergenceKind, Fault,
    ReplayError, ReplayOptions,
};
use cycada_sim::replay::Stream;
use cycada_workloads::scenario::Scenario;

const SEED: u64 = 0x5EED;
const FRAMES: u32 = 3;
const DISPLAY: (u32, u32) = (48, 32);

/// Every recordable scenario replays clean under the full contract:
/// byte-identical frames and nanosecond-identical virtual time, call by
/// call and at the metered-region markers.
#[test]
fn every_scenario_round_trips_with_full_checks() {
    for scenario in Scenario::CORPUS {
        let stream = cycada_replay::record_scenario(scenario, SEED, FRAMES, DISPLAY)
            .expect("record must succeed");
        assert!(!stream.calls.is_empty(), "{}: empty recording", scenario.label());
        let outcome = replay_stream(&stream, &ReplayOptions::default())
            .unwrap_or_else(|e| panic!("{}: replay diverged: {e}", scenario.label()));
        assert!(outcome.presents > 0, "{}: no presents replayed", scenario.label());
        assert_eq!(outcome.calls, stream.calls.len());
    }
}

/// Recording is a pure observer: the recorded run's final digest and
/// metered virtual time equal an unrecorded solo run of the same
/// workload, and the replayed run lands on the same numbers again.
#[test]
fn recording_does_not_perturb_the_simulation() {
    for scenario in [Scenario::Passmark, Scenario::AssetChurn] {
        let (solo_hash, solo_ns) = solo_outcome(scenario, SEED, FRAMES, DISPLAY)
            .expect("solo run must succeed");
        let stream = cycada_replay::record_scenario(scenario, SEED, FRAMES, DISPLAY)
            .expect("record must succeed");
        let outcome = replay_stream(&stream, &ReplayOptions::default())
            .unwrap_or_else(|e| panic!("{}: replay diverged: {e}", scenario.label()));
        assert_eq!(outcome.digest, solo_hash, "{}: digest", scenario.label());
        assert_eq!(outcome.metered_ns, solo_ns, "{}: metered ns", scenario.label());
    }
}

/// The `.cyt` encoding is a pure function of the run: recording the same
/// workload twice yields byte-identical files, and decode inverts
/// encode exactly.
#[test]
fn two_recordings_encode_identical_bytes() {
    let a = cycada_replay::record_scenario(Scenario::Browser, SEED, FRAMES, DISPLAY)
        .expect("first recording");
    let b = cycada_replay::record_scenario(Scenario::Browser, SEED, FRAMES, DISPLAY)
        .expect("second recording");
    let bytes = a.encode();
    assert_eq!(bytes, b.encode(), "same run must serialize identically");
    assert_eq!(Stream::decode(&bytes).expect("decode"), a);
}

/// Replaying with re-recording on produces a stream that serializes
/// byte-identically to the original — record → replay → record is a
/// fixed point.
#[test]
fn rerecorded_replay_is_byte_identical() {
    for scenario in [Scenario::MultiGles, Scenario::ContextLoss] {
        let stream = cycada_replay::record_scenario(scenario, SEED, FRAMES, DISPLAY)
            .expect("record must succeed");
        let opts = ReplayOptions { rerecord: true, ..Default::default() };
        let outcome = replay_stream(&stream, &opts)
            .unwrap_or_else(|e| panic!("{}: replay diverged: {e}", scenario.label()));
        let rerec = outcome.rerecording.expect("rerecording requested");
        assert_eq!(
            rerec.encode(),
            stream.encode(),
            "{}: rerecorded stream must serialize identically",
            scenario.label()
        );
    }
}

/// Cross-format stability: a trace recorded on a device with deferred
/// rasterization (record-then-rasterize) replays pixel-identically on a
/// device with recording off. Per-call charge points legitimately shift
/// — that mode moves rasterization cost between calls — so only the
/// digest checks run, and they must all pass.
#[test]
fn replays_across_gpu_recording_modes() {
    let stream = cycada_replay::record_scenario(Scenario::Passmark, SEED, FRAMES, DISPLAY)
        .expect("record must succeed");
    let device = cycada::CycadaDevice::boot_with_display(Some(DISPLAY)).expect("boot");
    device.gpu().set_recording(false);
    let outcome = replay_on_device(&device, &stream, &ReplayOptions::digests_only())
        .expect("digest-only replay must pass with immediate rasterization");
    assert!(outcome.presents > 0);
}

/// The env-gated wrong-clear-color fault forces a pixel divergence, and
/// ddmin shrinks the diverging trace to a minimal (≤ 3 call) trace that
/// still reproduces it.
#[test]
fn fault_diverges_and_shrinks_to_minimal_trace() {
    let stream = cycada_replay::record_scenario(Scenario::Passmark, SEED, FRAMES, DISPLAY)
        .expect("record must succeed");

    std::env::set_var("CYCADA_REPLAY_FAULT", "wrong-clear-color");
    let opts = ReplayOptions::from_env();
    std::env::remove_var("CYCADA_REPLAY_FAULT");
    assert_eq!(opts.fault, Some(Fault::WrongClearColor), "env gate must select the fault");

    let err = replay_stream(&stream, &opts).expect_err("faulted replay must diverge");
    match &err {
        ReplayError::Diverged(d) => assert_eq!(d.kind, DivergenceKind::Pixels, "{err}"),
        other => panic!("expected a pixel divergence, got: {other}"),
    }

    let minimal = shrink_divergence(&stream, &opts);
    assert!(
        minimal.calls.len() <= 3,
        "ddmin must reach a ≤3-call trace, got {} calls",
        minimal.calls.len()
    );
    assert!(!minimal.calls.is_empty(), "minimal trace cannot be empty");

    // The minimal trace still reproduces, and survives a codec round
    // trip (it is a committable .cyt).
    let probe = ReplayOptions { check_timestamps: false, ..opts.clone() };
    assert!(
        matches!(replay_stream(&minimal, &probe), Err(ReplayError::Diverged(_))),
        "minimal trace must still diverge"
    );
    let decoded = Stream::decode(&minimal.encode()).expect("minimal trace must encode/decode");
    assert_eq!(decoded, minimal);

    // Without the fault machinery the original stream replays clean —
    // the divergence was the fault's, not the recorder's.
    replay_stream(&stream, &ReplayOptions::default()).expect("unfaulted replay is clean");
}

/// Golden-file lock: every committed corpus trace replays clean under
/// the full contract, and re-recording it from source produces the
/// committed bytes exactly. A legitimate behaviour change regenerates
/// the corpus via `record_corpus` and reviews the diff.
#[test]
fn committed_corpus_replays_clean_and_matches_source() {
    for entry in &corpus::ENTRIES {
        let path = corpus::path(entry);
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("{}: missing corpus file ({e}); run record_corpus", entry.file));
        let stream = Stream::decode(&committed)
            .unwrap_or_else(|e| panic!("{}: corpus decode failed: {e}", entry.file));
        assert_eq!(stream.meta.label, entry.scenario.label(), "{}: label", entry.file);
        replay_stream(&stream, &ReplayOptions::default())
            .unwrap_or_else(|e| panic!("{}: committed trace diverged: {e}", entry.file));
        let fresh = corpus::record_entry(entry)
            .unwrap_or_else(|e| panic!("{}: re-recording failed: {e}", entry.file));
        assert_eq!(
            fresh.encode(),
            committed,
            "{}: fresh recording differs from committed corpus — regenerate via record_corpus and review",
            entry.file
        );
    }
}

/// The fleet's fifth scenario kind: `replay:<path>` fans a corpus trace
/// out across shared devices. Every session must reproduce the
/// recording's pixels and metered virtual time exactly — warm-up wall
/// costs differ per session, determinism doesn't.
/// `CYCADA_REPLAY_FLEET_SESSIONS` scales the fan-out (nightly uses 512).
#[test]
fn fleet_fans_out_corpus_replay() {
    let sessions = std::env::var("CYCADA_REPLAY_FLEET_SESSIONS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(8);
    for entry in &corpus::ENTRIES {
        let path = corpus::path(entry);
        let committed = std::fs::read(&path).expect("corpus file (run record_corpus)");
        let stream = Stream::decode(&committed).expect("corpus decode");
        let solo = replay_stream(&stream, &ReplayOptions::default()).expect("solo replay");

        let spec = format!("replay:{}", path.display());
        let cfg = FleetConfig::new(&format!("replay_{}", entry.scenario.label()), 2, sessions)
            .with_scenario_spec(&spec)
            .expect("replay spec must load");
        let report = cycada_fleet::run_fleet(&cfg).expect("replay fleet must run");

        assert_eq!(report.outcomes.len(), sessions);
        for o in &report.outcomes {
            assert_eq!(o.scenario.label(), "replay");
            assert_eq!(
                o.fb_hash, solo.digest,
                "{} session {}: pixels must match the recording",
                entry.file, o.session
            );
            assert_eq!(
                o.virtual_ns, solo.metered_ns,
                "{} session {}: metered ns must match",
                entry.file, o.session
            );
        }
    }

    // Spec parsing: "mix" keeps the scripted mix, junk is rejected.
    assert!(FleetConfig::new("mix", 1, 1).with_scenario_spec("mix").unwrap().replay.is_none());
    assert!(FleetConfig::new("bad", 1, 1).with_scenario_spec("nonsense").is_err());
    assert!(FleetConfig::new("gone", 1, 1).with_scenario_spec("replay:/no/such.cyt").is_err());
}
