//! Integration tests for the paper's three OS mechanisms working together:
//! diplomat usage patterns, thread impersonation, and dynamic library
//! replication — plus the IOSurface lock/unlock dance.

use cycada::CycadaDevice;
use cycada_gles::GlesVersion;
use cycada_iosurface::SurfaceProps;
use cycada_sim::Persona;

fn device() -> CycadaDevice {
    CycadaDevice::boot_with_display(Some((96, 64))).unwrap()
}

#[test]
fn each_eagl_context_gets_its_own_dlr_replica() {
    let device = device();
    let tid = device.main_tid();
    let eagl = device.eagl();
    let linker = device.linker();

    // Establish the default process-wide connection first so the baseline
    // includes its vendor-library load.
    device.egl().initialize(tid).unwrap();
    let runs_before = linker.constructor_runs(cycada_egl::loadout::VENDOR_GLES_LIB);
    let a = eagl.init_with_api(tid, GlesVersion::V2).unwrap();
    let b = eagl.init_with_api(tid, GlesVersion::V1).unwrap();
    let runs_after = linker.constructor_runs(cycada_egl::loadout::VENDOR_GLES_LIB);

    // Two fresh vendor GLES instances — one DLR replica per EAGLContext.
    assert_eq!(runs_after - runs_before, 2);
    assert_ne!(
        eagl.connection(a).unwrap(),
        eagl.connection(b).unwrap(),
        "separate EGL-to-GLES connections"
    );
    // libui_wrapper was replicated per context (§8.2).
    assert!(linker.constructor_runs(cycada::LIBUI_WRAPPER) >= 2);
    // The paper's §8 headline: v1 and v2 contexts coexist in one process.
    assert_eq!(eagl.api(a).unwrap(), GlesVersion::V2);
    assert_eq!(eagl.api(b).unwrap(), GlesVersion::V1);
}

#[test]
fn game_plus_webkit_multi_version_scenario() {
    // "An iOS game may use GLES v1 APIs to render game graphics, but use a
    // WebKit view to render an HTML 'about' page which uses GLES v2 APIs."
    let device = device();
    let tid = device.main_tid();
    let eagl = device.eagl();
    let bridge = device.bridge();

    // WebKit's implicit v2 context.
    let webkit = eagl.init_with_api(tid, GlesVersion::V2).unwrap();
    // The game's v1 context.
    let game = eagl.init_with_api(tid, GlesVersion::V1).unwrap();

    // The game renders with v1 matrix calls...
    eagl.set_current_context(tid, Some(game)).unwrap();
    bridge.matrix_mode(tid, cycada_gles::MatrixMode::ModelView).unwrap();
    bridge.load_identity(tid).unwrap();
    bridge.rotatef(tid, 45.0, 0.0, 0.0, 1.0).unwrap();
    assert_eq!(
        bridge.get_error(tid).unwrap(),
        cycada_gles::GlError::NoError
    );

    // ...then switches to the WebKit view, whose v2 context rejects v1
    // matrix calls but accepts shaders.
    eagl.set_current_context(tid, Some(webkit)).unwrap();
    bridge.push_matrix(tid).unwrap();
    assert_eq!(
        bridge.get_error(tid).unwrap(),
        cycada_gles::GlError::InvalidOperation,
        "v1 call on the v2 context"
    );
    let shader = bridge.create_shader(tid).unwrap();
    assert_ne!(shader, 0);

    // And back to the game: its matrix stack survived untouched.
    eagl.set_current_context(tid, Some(game)).unwrap();
    bridge.pop_matrix(tid).unwrap();
    assert_eq!(
        bridge.get_error(tid).unwrap(),
        cycada_gles::GlError::InvalidOperation,
        "single-entry stack pops are still errors (state was preserved, not reset)"
    );
}

#[test]
fn worker_thread_uses_context_created_by_another_thread() {
    // The §7 scenario Android forbids: thread B uses a GLES context thread
    // A created. Cycada bridges it with impersonation + TLS migration.
    let device = device();
    let main = device.main_tid();
    let worker = device.spawn_ios_thread().unwrap();
    let eagl = device.eagl();
    let bridge = device.bridge();

    let ctx = eagl.init_with_api(main, GlesVersion::V2).unwrap();
    eagl.set_current_context(main, Some(ctx)).unwrap();

    // The worker takes over the context (GCD-style async rendering).
    eagl.set_current_context(worker, Some(ctx)).unwrap();
    assert!(eagl.is_current_context(worker, ctx));

    // The worker can now issue GLES work on the shared context.
    let tex = bridge.gen_textures(worker, 1).unwrap()[0];
    bridge.bind_texture(worker, tex).unwrap();
    bridge
        .tex_image_2d(worker, 4, 4, cycada_gles::TexFormat::Rgba, None)
        .unwrap();
    assert_eq!(
        bridge.get_error(worker).unwrap(),
        cycada_gles::GlError::NoError
    );

    // Impersonation used the TLS migration syscalls.
    let counts = device.kernel().syscall_counts();
    assert!(counts.locate_tls > 0);
    assert!(counts.propagate_tls > 0);
}

#[test]
fn impersonation_migrates_both_personas() {
    let device = device();
    let main = device.main_tid();
    let worker = device.spawn_ios_thread().unwrap();
    let engine = device.engine();
    let kernel = device.kernel();

    // Graphics TLS in both personas on the target (main) thread.
    engine.graphics_tls().register_well_known(Persona::Android, 20);
    kernel
        .tls_set_raw(main, Persona::Android, 20, Some(0xA))
        .unwrap();
    kernel
        .tls_set_raw(main, Persona::Ios, cycada::APPLE_GRAPHICS_TLS_SLOTS[0], Some(0xB))
        .unwrap();

    let guard = engine.impersonate(worker, main).unwrap();
    assert_eq!(
        kernel.tls_get_raw(worker, Persona::Android, 20).unwrap(),
        Some(0xA)
    );
    assert_eq!(
        kernel
            .tls_get_raw(worker, Persona::Ios, cycada::APPLE_GRAPHICS_TLS_SLOTS[0])
            .unwrap(),
        Some(0xB)
    );
    guard.finish().unwrap();
    assert_eq!(
        kernel.tls_get_raw(worker, Persona::Android, 20).unwrap(),
        None,
        "worker TLS restored"
    );
}

#[test]
fn iosurface_lock_dance_defeats_the_android_restriction() {
    let device = device();
    let tid = device.main_tid();
    let eagl = device.eagl();
    let bridge = device.bridge();
    let iosb = device.iosurface_bridge();

    // Need a current context for the GLES side of the dance.
    let ctx = eagl.init_with_api(tid, GlesVersion::V2).unwrap();
    eagl.set_current_context(tid, Some(ctx)).unwrap();

    // IOSurfaceCreate: backed by a GraphicBuffer via an indirect diplomat.
    let surface = iosb.create(tid, SurfaceProps::bgra(8, 8)).unwrap();
    let buffer = iosb.buffer_for(surface.id()).unwrap();
    assert!(
        buffer.image().buffer().same_allocation(surface.base_address()),
        "zero-copy: IOSurface and GraphicBuffer share memory"
    );

    // Bind to a GLES texture (glTexImageIOSurfaceAPPLE, a multi diplomat).
    let tex = bridge.gen_textures(tid, 1).unwrap()[0];
    iosb.tex_image_io_surface(tid, surface.id(), tex).unwrap();
    assert!(buffer.gles_association_count() > 0);
    // The raw Android rule would refuse a CPU lock right now.
    assert!(buffer.lock_cpu().is_err());

    // IOSurfaceLock: the multi diplomat rebinds the texture to a 1px
    // buffer, destroys the EGLImage, and locks.
    iosb.lock(tid, &surface).unwrap();
    assert!(buffer.is_cpu_locked());
    assert_eq!(buffer.gles_association_count(), 0);

    // CPU (CoreGraphics) draws into the surface while locked.
    surface.as_image().set_pixel(0, 0, cycada_gpu::Rgba::GREEN);

    // IOSurfaceUnlock: re-creates the EGLImage and rebinds.
    iosb.unlock(tid, &surface).unwrap();
    assert!(!buffer.is_cpu_locked());
    assert!(buffer.gles_association_count() > 0);

    // The CPU-drawn pixel is visible through the rebound GLES texture.
    let gles = device.egl().gles_for_thread(tid).unwrap();
    let tex_image = gles
        .context(device.egl().vendor_context(eagl_ctx_of(&device, ctx)).unwrap())
        .unwrap()
        .lock()
        .texture_image(tex)
        .unwrap();
    assert_eq!(tex_image.pixel_rgba(0, 0).to_bytes(), [0, 255, 0, 255]);

    // glDeleteTextures interposition drops the association (§6.1).
    bridge.delete_textures(tid, &[tex]).unwrap();
    assert_eq!(buffer.gles_association_count(), 0);
    buffer.lock_cpu().unwrap();
}

/// Helper: the EGL context behind an EAGL context.
fn eagl_ctx_of(device: &CycadaDevice, _ctx: cycada::EaglContextId) -> cycada_egl::EglContextId {
    // The EAGL context's EGL handle is internal; recover it via the
    // current-context binding.
    device
        .egl()
        .current_context(device.main_tid())
        .expect("context current")
}

#[test]
fn table2_totals_hold_at_runtime() {
    let t = cycada::Table2::compute();
    assert_eq!(
        (t.direct, t.indirect, t.data_dependent, t.multi, t.unimplemented),
        (312, 15, 5, 2, 10)
    );
}

#[test]
fn gralloc_buffers_do_not_leak_across_surface_release() {
    let device = device();
    let tid = device.main_tid();
    let eagl = device.eagl();
    let iosb = device.iosurface_bridge();

    let ctx = eagl.init_with_api(tid, GlesVersion::V2).unwrap();
    eagl.set_current_context(tid, Some(ctx)).unwrap();
    let live_before = device.gralloc().live_buffers();
    let surface = iosb.create(tid, SurfaceProps::bgra(8, 8)).unwrap();
    assert_eq!(device.gralloc().live_buffers(), live_before + 1);
    iosb.release(tid, &surface).unwrap();
    assert_eq!(device.gralloc().live_buffers(), live_before);
    assert_eq!(iosb.live_surfaces(), 0);
}
