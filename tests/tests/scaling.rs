//! Release-mode scaling smoke test (DESIGN.md §5f): with the parallel
//! plane in place, four sessions driven from four host threads must beat
//! the same frames driven back-to-back from one thread — on hosts that
//! actually have cores to scale onto.
//!
//! The bound is deliberately generous (concurrent ≤ 0.75× serial, best of
//! several repetitions) so the test catches a reintroduced device-wide
//! serialization point without flaking on a busy CI runner. On hosts with
//! fewer cores than sessions the speedup is physically impossible, so the
//! test degrades to a smoke run: the workload still executes both ways
//! (exercising the concurrent seams) but the wall-time assertion is
//! skipped.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use cycada::{AppGl, CycadaDevice};
use cycada_gles::{GlesVersion, Primitive};

const W: u32 = 160;
const H: u32 = 120;
const SESSIONS: usize = 4;
const FRAMES: u32 = 8;
const REPS: usize = 5;

fn drive_frames(app: &AppGl, frames: u32) {
    let tri = [-0.8f32, -0.6, 0.0, 0.8, -0.6, 0.0, 0.0, 0.9, 0.0];
    for f in 0..frames {
        let r = (f % 5) as f32 / 5.0;
        app.clear(r, 0.25, 1.0 - r, 1.0).unwrap();
        app.draw(Primitive::Triangles, &tri, [r, 0.8, 0.3, 1.0]).unwrap();
        app.present().unwrap();
    }
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Best-of-`REPS` wall time of the N×FRAMES workload on one host thread.
fn serial_wall(apps: &[AppGl]) -> Duration {
    (0..REPS)
        .map(|_| {
            let t = Instant::now();
            for app in apps {
                drive_frames(app, FRAMES);
            }
            t.elapsed()
        })
        .min()
        .unwrap()
}

/// Best-of-`REPS` wall time of the same workload from N host threads.
fn concurrent_wall(apps: &mut [AppGl]) -> Duration {
    (0..REPS)
        .map(|_| {
            let barrier = Barrier::new(apps.len());
            let t = Instant::now();
            std::thread::scope(|scope| {
                for app in apps.iter_mut() {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        drive_frames(app, FRAMES);
                    });
                }
            });
            t.elapsed()
        })
        .min()
        .unwrap()
}

#[test]
fn four_concurrent_sessions_beat_serial_on_multicore_hosts() {
    let device = CycadaDevice::boot_with_display(Some((W, H))).unwrap();
    let mut apps: Vec<AppGl> = (0..SESSIONS)
        .map(|_| AppGl::attach_cycada(&device, GlesVersion::V1).unwrap())
        .collect();
    // Warm symbol resolution and lazy statics out of the measurement.
    for app in &apps {
        drive_frames(app, 1);
    }

    let serial = serial_wall(&apps);
    let concurrent = concurrent_wall(&mut apps);
    eprintln!(
        "scaling smoke: serial={serial:?} concurrent={concurrent:?} \
         ({SESSIONS} sessions x {FRAMES} frames, best of {REPS}, {} cores)",
        host_cores()
    );

    if cfg!(debug_assertions) {
        eprintln!("scaling smoke: debug build — wall-time assertion skipped");
        return;
    }
    if host_cores() < SESSIONS {
        eprintln!(
            "scaling smoke: only {} cores for {SESSIONS} sessions — \
             wall-time assertion skipped",
            host_cores()
        );
        return;
    }
    assert!(
        concurrent <= serial.mul_f64(0.75),
        "{SESSIONS} concurrent sessions took {concurrent:?}, expected \
         <= 0.75x the serial {serial:?}: a device-wide serialization \
         point is back in the frame path"
    );
}
