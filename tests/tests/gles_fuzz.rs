//! Differential GLES conformance fuzzing: seeded random call scripts
//! executed through the full diplomat path and through the reference
//! rasterizer must produce byte-identical framebuffers, equal per-draw
//! fragment counts, and — across a recording-enabled and a
//! recording-disabled diplomat run (DESIGN.md §5f) — identical pixels
//! and metered virtual time. Failures shrink to a minimal replayable
//! script before the test panics.
//!
//! Case count: 24 under `cargo test` (debug), 200 in release CI;
//! `CYCADA_FUZZ_CASES` overrides both (the nightly long run sets it to
//! several thousand).

use cycada_gles::{Capability, GlesVersion, Primitive};
use cycada_integration::fuzz::{check_script, generate, shrink, GlOp, Script, Step};

/// Base seed for the sweep; shifting it re-randomizes every case while
/// keeping each CI run reproducible from the test log alone.
const BASE_SEED: u64 = 0xD1FF_2026;

fn case_count() -> u64 {
    if let Ok(v) = std::env::var("CYCADA_FUZZ_CASES") {
        return v.parse().expect("CYCADA_FUZZ_CASES must be an integer");
    }
    if cfg!(debug_assertions) {
        24
    } else {
        200
    }
}

#[test]
fn differential_seeded_sweep() {
    for i in 0..case_count() {
        let seed = BASE_SEED + i;
        let script = generate(seed);
        if let Err(err) = check_script(&script) {
            let shrunk = shrink(&script, |s| check_script(s).is_err());
            let final_err = check_script(&shrunk).expect_err("shrunk script must still fail");
            panic!(
                "seed {seed} diverged: {err}\n\
                 minimal failing script ({} of {} steps, error: {final_err}):\n{shrunk}",
                shrunk.steps.len(),
                script.steps.len(),
            );
        }
    }
}

/// A hand-minimized script exercising every op class across a V1 and a
/// V2 context — the committed regression artifact the shrinker's
/// output is meant to look like, proving minimal scripts replay
/// through the same entry point as fuzz cases.
#[test]
fn minimal_committed_script_replays_clean() {
    let steps = [
        (0, GlOp::Clear { rgba: [0.1, 0.2, 0.3, 1.0] }),
        (1, GlOp::Clear { rgba: [0.9, 0.6, 0.0, 1.0] }),
        (0, GlOp::CreateTexture { format: cycada_gles::TexFormat::Rgba }),
        (0, GlOp::Rotate { degrees: 30.0 }),
        (0, GlOp::PushTransform),
        (0, GlOp::Scale { v: [0.5, 0.75, 1.0] }),
        (
            0,
            GlOp::Draw {
                mode: Primitive::Triangles,
                xyz: vec![-0.8, -0.8, 0.0, 0.8, -0.8, 0.0, 0.0, 0.9, 0.0],
                color: [1.0, 0.0, 0.25, 1.0],
            },
        ),
        (0, GlOp::PopTransform),
        (0, GlOp::TexQuad { slot: 0, rect: [-0.5, -0.5, 0.5, 0.5] }),
        (1, GlOp::Translate { v: [0.25, -0.25, 0.0] }),
        (
            1,
            GlOp::Draw {
                mode: Primitive::TriangleFan,
                xyz: vec![0.0, 0.0, 0.0, 0.7, 0.0, 0.0, 0.5, 0.5, 0.0, 0.0, 0.7, 0.0],
                color: [0.0, 0.5, 1.0, 0.75],
            },
        ),
        (0, GlOp::UpdateTexture { slot: 0, x: 2, y: 2, w: 4, h: 4 }),
        (0, GlOp::TexQuadIndexed { slot: 0, rect: [0.0, 0.0, 0.9, 0.9] }),
        (0, GlOp::Present),
        (1, GlOp::Present),
        // Partial redraw: scissored clear then a second present — the
        // damage-tracked compositor must recompose exactly this frame's
        // dirty region (checked against the damage-off re-run).
        (0, GlOp::SetCapability { cap: Capability::ScissorTest, on: true }),
        (0, GlOp::Scissor { x: 8, y: 8, w: 16, h: 12 }),
        (0, GlOp::Clear { rgba: [0.0, 1.0, 0.2, 1.0] }),
        (0, GlOp::SetCapability { cap: Capability::ScissorTest, on: false }),
        (0, GlOp::Present),
    ];
    let script = Script {
        versions: vec![GlesVersion::V1, GlesVersion::V2],
        steps: steps
            .into_iter()
            .map(|(ctx, op)| Step { ctx, op })
            .collect(),
    };
    check_script(&script).expect("committed minimal script must replay clean");
}
