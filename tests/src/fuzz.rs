//! Differential GLES conformance fuzzing.
//!
//! A seeded generator produces random GLES call scripts — one or two
//! contexts on a shared device (exercising EGL_multi_context / DLR when
//! the contexts use different GLES versions), clears, colored and
//! textured draws, transform-stack churn, capability toggles, flushes
//! and presents. Each script is executed two ways:
//!
//! 1. **Diplomat path** — [`AppGl::attach_cycada`] sessions on a booted
//!    [`CycadaDevice`]: every call crosses the diplomatic bridge,
//!    persona switches, the replica vendor stack, and the tiled
//!    rasterizer.
//! 2. **Reference path** — a bare [`GlesContext`] per script context on
//!    a private [`GpuDevice`] with
//!    [`GpuDevice::set_reference_raster`] enabled, so every draw runs
//!    the per-pixel executable-specification rasterizer.
//!
//! The differ asserts byte-identical canonical-RGBA framebuffers and
//! equal per-draw fragment counts, then re-runs the diplomat path on a
//! fresh device **with command recording disabled** and asserts the
//! metered virtual time and pixels repeat exactly — one pass checks
//! both the determinism contract the figure regenerators rely on and
//! the DESIGN.md §5f contract that the record-then-execute present
//! plane is indistinguishable from immediate rasterization.
//!
//! A third diplomat run then disables the compositor damage plane
//! (DESIGN.md §5g) and asserts pixels, scanout bytes, and virtual time
//! still repeat exactly — tile-wise composition with clean/occlusion
//! skips must be indistinguishable from full recomposition, including
//! under the scissored partial-redraw ops the generator emits.
//!
//! Failures shrink with a ddmin-style [`shrink`] pass to a minimal
//! script that still fails, printed in replayable form.

use std::fmt;
use std::sync::Arc;

use cycada::{AppGl, CycadaDevice};
use cycada_gles::{
    ApiFlavor, Capability, ClientState, GlesContext, GlesVersion, Primitive, TexFormat,
};
use cycada_gpu::math::Mat4;
use cycada_gpu::{GpuDevice, Image, PixelFormat};
use cycada_sim::{GpuCostModel, Nanos, SimRng, VirtualClock};

/// Framebuffer size used by every fuzz case (small keeps 200 cases
/// fast; large enough that tiled-raster tile boundaries land inside
/// the target).
pub const WIDTH: u32 = 64;
/// See [`WIDTH`].
pub const HEIGHT: u32 = 48;

/// One GLES call (or short canned call sequence) against a single
/// context. Texture references are *slot indices* into the list of
/// textures created so far on that context; an out-of-range slot makes
/// the op a no-op on both executors, which keeps every subsequence of a
/// script executable — the property the shrinker relies on.
#[derive(Debug, Clone, PartialEq)]
pub enum GlOp {
    /// `glClearColor` + `glClear(COLOR|DEPTH)`.
    Clear {
        /// Clear color.
        rgba: [f32; 4],
    },
    /// A colored primitive draw (the [`AppGl::draw`] call shape).
    Draw {
        /// Primitive topology.
        mode: Primitive,
        /// Flat `[x, y, z]*` vertex array.
        xyz: Vec<f32>,
        /// Flat color.
        color: [f32; 4],
    },
    /// Create an 8x8 texture from deterministic pixel data.
    CreateTexture {
        /// Texel format.
        format: TexFormat,
    },
    /// `glTexSubImage2D` into a previously created texture slot.
    UpdateTexture {
        /// Texture slot (index into the context's created textures).
        slot: usize,
        /// Sub-rect x within the 8x8 texture.
        x: u32,
        /// Sub-rect y.
        y: u32,
        /// Sub-rect width.
        w: u32,
        /// Sub-rect height.
        h: u32,
    },
    /// Textured quad via `glDrawArrays` (the WebKit tile path).
    TexQuad {
        /// Texture slot.
        slot: usize,
        /// `[x0, y0, x1, y1]` in NDC.
        rect: [f32; 4],
    },
    /// Textured quad via `glDrawElements`.
    TexQuadIndexed {
        /// Texture slot.
        slot: usize,
        /// `[x0, y0, x1, y1]` in NDC.
        rect: [f32; 4],
    },
    /// `glTranslatef` / `u_mvp` update.
    Translate {
        /// Translation vector.
        v: [f32; 3],
    },
    /// `glRotatef` about Z / `u_mvp` update.
    Rotate {
        /// Degrees about +Z.
        degrees: f32,
    },
    /// `glScalef` / `u_mvp` update.
    Scale {
        /// Scale factors.
        v: [f32; 3],
    },
    /// `glPushMatrix` (v1) / host-stack push (v2).
    PushTransform,
    /// `glPopMatrix` (v1) / host-stack pop (v2).
    PopTransform,
    /// `glLoadIdentity` / identity `u_mvp`.
    LoadIdentity,
    /// `glEnable` / `glDisable`.
    SetCapability {
        /// Which capability.
        cap: Capability,
        /// Enable or disable.
        on: bool,
    },
    /// `glScissor` — with `Capability::ScissorTest` toggles in the
    /// stream this produces partial-redraw frames, the workload the
    /// damage-tracked compositor plane must handle bit-exactly
    /// (DESIGN.md §5g).
    Scissor {
        /// Box origin x.
        x: i32,
        /// Box origin y.
        y: i32,
        /// Box width.
        w: u32,
        /// Box height.
        h: u32,
    },
    /// `glFlush`.
    Flush,
    /// `presentRenderbuffer:` (diplomat path only; the reference path
    /// has no compositor, so this is a timing-plane no-op there).
    Present,
}

/// One script step: an op addressed to one of the script's contexts.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Index into [`Script::versions`].
    pub ctx: usize,
    /// The call.
    pub op: GlOp,
}

/// A replayable fuzz case: the GLES version of each context plus the
/// interleaved call sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// One entry per context; two entries with different versions
    /// exercise EGL_multi_context + DLR.
    pub versions: Vec<GlesVersion>,
    /// The interleaved calls.
    pub steps: Vec<Step>,
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "contexts: {:?}", self.versions)?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  [{i:3}] ctx{} {:?}", s.ctx, s.op)?;
        }
        Ok(())
    }
}

/// Texture edge used by every `CreateTexture` (fixed so sub-updates
/// stay in bounds no matter which creates the shrinker removes).
const TEX_EDGE: u32 = 8;

fn bytes_per_texel(format: TexFormat) -> usize {
    match format {
        TexFormat::Rgba | TexFormat::Bgra => 4,
        TexFormat::Rgb565 => 2,
        TexFormat::Alpha => 1,
    }
}

/// Deterministic texel bytes for a `(format, w, h, tag)` tuple — both
/// executors call this, so texture contents always agree. Rows are
/// padded to the default `GL_UNPACK_ALIGNMENT` of 4, which sub-image
/// uploads honor when reading source rows.
fn tex_bytes(format: TexFormat, w: u32, h: u32, tag: u64) -> Vec<u8> {
    let bpp = bytes_per_texel(format);
    let stride = (w as usize * bpp).div_ceil(4) * 4;
    let n = (h as usize - 1) * stride + w as usize * bpp;
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(73).wrapping_add(tag.wrapping_mul(151)) % 251) as u8)
        .collect()
}

// ---------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------

fn coord(rng: &mut SimRng) -> f32 {
    (rng.below(251) as f32 - 125.0) / 100.0
}

fn unit(rng: &mut SimRng) -> f32 {
    rng.below(17) as f32 / 16.0
}

fn gen_color(rng: &mut SimRng) -> [f32; 4] {
    [unit(rng), unit(rng), unit(rng), unit(rng)]
}

fn gen_rect(rng: &mut SimRng) -> [f32; 4] {
    let x0 = coord(rng);
    let y0 = coord(rng);
    [x0, y0, x0 + unit(rng) + 0.1, y0 + unit(rng) + 0.1]
}

/// Generates the deterministic script for `seed`.
pub fn generate(seed: u64) -> Script {
    let mut rng = SimRng::new(seed ^ 0xF022_D1FF);
    let nctx = 1 + rng.below(2) as usize;
    let versions: Vec<GlesVersion> = (0..nctx)
        .map(|_| {
            if rng.below(2) == 0 {
                GlesVersion::V1
            } else {
                GlesVersion::V2
            }
        })
        .collect();
    let mut tex_count = vec![0usize; nctx];
    let nops = 10 + rng.below(26) as usize;
    let mut steps = Vec::with_capacity(nops + nctx);
    // Every context starts from a known clear so leftover framebuffer
    // contents never alias between cases.
    for (ctx, _) in versions.iter().enumerate() {
        steps.push(Step {
            ctx,
            op: GlOp::Clear {
                rgba: gen_color(&mut rng),
            },
        });
    }
    for _ in 0..nops {
        let ctx = rng.below(nctx as u64) as usize;
        let op = match rng.below(17) {
            0 => GlOp::Clear {
                rgba: gen_color(&mut rng),
            },
            1..=3 => {
                let mode = match rng.below(5) {
                    0 => Primitive::Triangles,
                    1 => Primitive::TriangleStrip,
                    2 => Primitive::TriangleFan,
                    3 => Primitive::Lines,
                    _ => Primitive::Points,
                };
                let verts = 3 + rng.below(4) as usize;
                let xyz = (0..verts * 3).map(|_| coord(&mut rng)).collect();
                GlOp::Draw {
                    mode,
                    xyz,
                    color: gen_color(&mut rng),
                }
            }
            4 => {
                let format = match rng.below(3) {
                    0 => TexFormat::Rgba,
                    1 => TexFormat::Bgra,
                    _ => TexFormat::Rgb565,
                };
                tex_count[ctx] += 1;
                GlOp::CreateTexture { format }
            }
            5 if tex_count[ctx] > 0 => {
                let x = rng.below(u64::from(TEX_EDGE) - 1) as u32;
                let y = rng.below(u64::from(TEX_EDGE) - 1) as u32;
                GlOp::UpdateTexture {
                    slot: rng.below(tex_count[ctx] as u64) as usize,
                    x,
                    y,
                    w: 1 + rng.below(u64::from(TEX_EDGE - x) - 1) as u32,
                    h: 1 + rng.below(u64::from(TEX_EDGE - y) - 1) as u32,
                }
            }
            6 | 7 if tex_count[ctx] > 0 => GlOp::TexQuad {
                slot: rng.below(tex_count[ctx] as u64) as usize,
                rect: gen_rect(&mut rng),
            },
            8 if tex_count[ctx] > 0 => GlOp::TexQuadIndexed {
                slot: rng.below(tex_count[ctx] as u64) as usize,
                rect: gen_rect(&mut rng),
            },
            9 => GlOp::Translate {
                v: [coord(&mut rng), coord(&mut rng), 0.0],
            },
            10 => GlOp::Rotate {
                degrees: rng.below(24) as f32 * 15.0,
            },
            11 => GlOp::Scale {
                v: [
                    0.25 + unit(&mut rng),
                    0.25 + unit(&mut rng),
                    1.0,
                ],
            },
            12 => match rng.below(3) {
                0 => GlOp::PushTransform,
                1 => GlOp::PopTransform,
                _ => GlOp::LoadIdentity,
            },
            13 => GlOp::SetCapability {
                cap: match rng.below(3) {
                    0 => Capability::Blend,
                    1 => Capability::DepthTest,
                    _ => Capability::ScissorTest,
                },
                on: rng.below(2) == 0,
            },
            14 => GlOp::Flush,
            15 => {
                // Partial-redraw box: small and occasionally hanging
                // past the framebuffer edge (clamping must agree).
                let x = rng.below(u64::from(WIDTH)) as i32 - 4;
                let y = rng.below(u64::from(HEIGHT)) as i32 - 4;
                GlOp::Scissor {
                    x,
                    y,
                    w: 1 + rng.below(24) as u32,
                    h: 1 + rng.below(24) as u32,
                }
            }
            _ => GlOp::Present,
        };
        steps.push(Step { ctx, op });
    }
    Script { versions, steps }
}

// ---------------------------------------------------------------------
// Executors
// ---------------------------------------------------------------------

/// What one executor produced for a script: canonical-RGBA framebuffer
/// bytes per context, shaded-fragment counts per draw op (in step
/// order), and per-context session virtual time (diplomat path only —
/// zeros on the reference path, which has no session plane).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Canonical RGBA bytes of each context's render target.
    pub frames: Vec<Vec<u8>>,
    /// Fragments shaded per draw-class op, in step order.
    pub frags: Vec<u64>,
    /// Per-context session virtual nanoseconds.
    pub session_ns: Vec<Nanos>,
    /// Display scanout bytes after the last step (diplomat path only —
    /// empty on the reference path, which has no compositor).
    pub scanout: Vec<u8>,
}

fn quad_arrays(rect: [f32; 4]) -> ([f32; 18], [f32; 12]) {
    let [x0, y0, x1, y1] = rect;
    (
        [
            x0, y0, 0.0, x1, y0, 0.0, x1, y1, 0.0, x0, y0, 0.0, x1, y1, 0.0, x0, y1, 0.0,
        ],
        [0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0],
    )
}

/// Runs `script` through the full diplomat path: one booted
/// [`CycadaDevice`], one attached [`AppGl`] session per context, with
/// the device's present-plane command recording left at its default
/// (enabled).
///
/// # Errors
///
/// Returns a description of the first failing call.
pub fn run_diplomat(script: &Script) -> Result<RunResult, String> {
    run_diplomat_mode(script, true)
}

/// [`run_diplomat`] with the GPU's present-plane command recording
/// forced on or off. Both modes must produce identical pixels, fragment
/// counts and virtual time — [`check_script`] exercises them
/// differentially.
///
/// # Errors
///
/// Returns a description of the first failing call.
pub fn run_diplomat_mode(script: &Script, recording: bool) -> Result<RunResult, String> {
    run_diplomat_planes(script, recording, true)
}

/// [`run_diplomat_mode`] with the compositor damage plane forced on or
/// off as well (DESIGN.md §5g). The kill switch is process-wide, so it
/// is restored to its default (on) before returning.
///
/// # Errors
///
/// Returns a description of the first failing call.
pub fn run_diplomat_planes(
    script: &Script,
    recording: bool,
    damage_tracking: bool,
) -> Result<RunResult, String> {
    let result = run_diplomat_inner(script, recording, damage_tracking);
    if !damage_tracking {
        cycada_sim::damage::set_tracking(true);
    }
    result
}

fn run_diplomat_inner(
    script: &Script,
    recording: bool,
    damage_tracking: bool,
) -> Result<RunResult, String> {
    let device = CycadaDevice::boot_with_display(Some((WIDTH, HEIGHT)))
        .map_err(|e| format!("boot: {e}"))?;
    device.gpu().set_recording(recording);
    device.gpu().set_damage_tracking(damage_tracking);
    let mut apps = Vec::with_capacity(script.versions.len());
    for (i, v) in script.versions.iter().enumerate() {
        apps.push(
            AppGl::attach_cycada(&device, *v).map_err(|e| format!("attach ctx{i}: {e}"))?,
        );
    }
    let mut textures: Vec<Vec<(u32, TexFormat)>> = vec![Vec::new(); apps.len()];
    let mut frags = Vec::new();
    for (i, step) in script.steps.iter().enumerate() {
        let app = &mut apps[step.ctx];
        let _scope = app.session_scope();
        let err = |e| format!("step {i} ({:?}): {e}", step.op);
        match &step.op {
            GlOp::Clear { rgba } => app.clear(rgba[0], rgba[1], rgba[2], rgba[3]).map_err(err)?,
            GlOp::Draw { mode, xyz, color } => {
                frags.push(app.draw(*mode, xyz, *color).map_err(err)?);
            }
            GlOp::CreateTexture { format } => {
                let tag = textures[step.ctx].len() as u64;
                let data = tex_bytes(*format, TEX_EDGE, TEX_EDGE, tag);
                let tex = app
                    .create_texture(TEX_EDGE, TEX_EDGE, *format, &data)
                    .map_err(err)?;
                textures[step.ctx].push((tex, *format));
            }
            GlOp::UpdateTexture { slot, x, y, w, h } => {
                if let Some(&(tex, format)) = textures[step.ctx].get(*slot) {
                    let data = tex_bytes(format, *w, *h, *slot as u64 + 97);
                    app.update_texture(tex, *x, *y, *w, *h, format, &data)
                        .map_err(err)?;
                }
            }
            GlOp::TexQuad { slot, rect } => {
                if let Some(&(tex, _)) = textures[step.ctx].get(*slot) {
                    frags.push(
                        app.draw_textured_quad(tex, rect[0], rect[1], rect[2], rect[3])
                            .map_err(err)?,
                    );
                }
            }
            GlOp::TexQuadIndexed { slot, rect } => {
                if let Some(&(tex, _)) = textures[step.ctx].get(*slot) {
                    frags.push(
                        app.draw_textured_quad_indexed(tex, rect[0], rect[1], rect[2], rect[3])
                            .map_err(err)?,
                    );
                }
            }
            GlOp::Translate { v } => app.translate(v[0], v[1], v[2]).map_err(err)?,
            GlOp::Rotate { degrees } => app.rotate(*degrees).map_err(err)?,
            GlOp::Scale { v } => app.scale(v[0], v[1], v[2]).map_err(err)?,
            GlOp::PushTransform => app.push_transform().map_err(err)?,
            GlOp::PopTransform => app.pop_transform().map_err(err)?,
            GlOp::LoadIdentity => app.load_identity().map_err(err)?,
            GlOp::SetCapability { cap, on } => app.set_capability(*cap, *on).map_err(err)?,
            GlOp::Scissor { x, y, w, h } => app.set_scissor(*x, *y, *w, *h).map_err(err)?,
            GlOp::Flush => app.flush().map_err(err)?,
            GlOp::Present => app.present().map_err(err)?,
        }
    }
    let mut frames = Vec::with_capacity(apps.len());
    for (i, app) in apps.iter().enumerate() {
        frames.push(
            app.render_target()
                .map_err(|e| format!("render_target ctx{i}: {e}"))?
                .to_rgba_vec(),
        );
    }
    let session_ns = apps.iter().map(AppGl::session_virtual_ns).collect();
    let scanout = apps
        .first()
        .map(|app| app.display().scanout().read(|b| b.to_vec()))
        .unwrap_or_default();
    Ok(RunResult {
        frames,
        frags,
        session_ns,
        scanout,
    })
}

/// Mirror of [`AppGl`]'s vendor-side call sequences against a bare
/// [`GlesContext`] — the same calls `AppGl` issues through the bridge,
/// replayed directly (no diplomat layer, no sessions, reference
/// rasterizer).
struct RefCtx {
    c: GlesContext,
    version: GlesVersion,
    target: Image,
    mvp: Vec<Mat4>,
    mvp_loc: i32,
    color_loc: i32,
}

impl RefCtx {
    fn new(version: GlesVersion, device: Arc<GpuDevice>) -> RefCtx {
        let target = Image::new(WIDTH, HEIGHT, PixelFormat::Bgra8888);
        let mut c = GlesContext::new(version, ApiFlavor::Ios, device);
        c.set_default_framebuffer(Some(target.clone()));
        c.set_viewport(0, 0, WIDTH, HEIGHT);
        let mut this = RefCtx {
            c,
            version,
            target,
            mvp: vec![Mat4::identity()],
            mvp_loc: -1,
            color_loc: -1,
        };
        match version {
            GlesVersion::V1 => {
                this.c.set_client_state(ClientState::VertexArray, true);
            }
            GlesVersion::V2 => {
                let c = &mut this.c;
                let vs = c.create_shader();
                c.shader_source(vs, "attribute vec3 a_pos; uniform mat4 u_mvp;");
                c.compile_shader(vs);
                let fs = c.create_shader();
                c.shader_source(fs, "uniform vec4 u_color;");
                c.compile_shader(fs);
                let program = c.create_program();
                c.attach_shader(program, vs);
                c.attach_shader(program, fs);
                c.link_program(program);
                c.use_program(program);
                this.mvp_loc = c.uniform_location(program, "u_mvp");
                this.color_loc = c.uniform_location(program, "u_color");
                c.set_vertex_attrib_enabled(0, true);
            }
        }
        this
    }

    fn top(&self) -> Mat4 {
        *self.mvp.last().expect("stack never empty")
    }

    fn upload_mvp(&mut self) {
        let m = self.top();
        self.c.uniform_matrix4(self.mvp_loc, m);
    }

    fn draw(&mut self, mode: Primitive, xyz: &[f32], color: [f32; 4]) -> u64 {
        let count = xyz.len() / 3;
        match self.version {
            GlesVersion::V1 => {
                self.c.color4f(color[0], color[1], color[2], color[3]);
                self.c.client_pointer(ClientState::VertexArray, 3, xyz);
                self.c.draw_arrays(mode, 0, count)
            }
            GlesVersion::V2 => {
                self.c
                    .uniform4f(self.color_loc, color[0], color[1], color[2], color[3]);
                self.c.vertex_attrib_pointer(0, 3, xyz);
                self.c.draw_arrays(mode, 0, count)
            }
        }
    }

    fn tex_quad(&mut self, tex: u32, rect: [f32; 4], indexed: bool) -> u64 {
        if indexed {
            let [x0, y0, x1, y1] = rect;
            let xyz = [x0, y0, 0.0, x1, y0, 0.0, x1, y1, 0.0, x0, y1, 0.0];
            let uv = [0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
            let indices = [0u32, 1, 2, 0, 2, 3];
            match self.version {
                GlesVersion::V1 => {
                    let c = &mut self.c;
                    c.bind_texture(tex);
                    c.enable(Capability::Texture2D);
                    c.set_client_state(ClientState::TexCoordArray, true);
                    c.client_pointer(ClientState::TexCoordArray, 2, &uv);
                    c.color4f(1.0, 1.0, 1.0, 1.0);
                    c.client_pointer(ClientState::VertexArray, 3, &xyz);
                    let frags = c.draw_elements(Primitive::Triangles, &indices);
                    c.set_client_state(ClientState::TexCoordArray, false);
                    c.disable(Capability::Texture2D);
                    frags
                }
                GlesVersion::V2 => {
                    let color_loc = self.color_loc;
                    let c = &mut self.c;
                    c.bind_texture(tex);
                    c.uniform4f(color_loc, 1.0, 1.0, 1.0, 1.0);
                    c.vertex_attrib_pointer(0, 3, &xyz);
                    c.set_vertex_attrib_enabled(2, true);
                    c.vertex_attrib_pointer(2, 2, &uv);
                    c.draw_elements(Primitive::Triangles, &indices)
                }
            }
        } else {
            let (xyz, uv) = quad_arrays(rect);
            match self.version {
                GlesVersion::V1 => {
                    let c = &mut self.c;
                    c.bind_texture(tex);
                    c.enable(Capability::Texture2D);
                    c.set_client_state(ClientState::TexCoordArray, true);
                    c.client_pointer(ClientState::TexCoordArray, 2, &uv);
                    c.color4f(1.0, 1.0, 1.0, 1.0);
                    c.client_pointer(ClientState::VertexArray, 3, &xyz);
                    let frags = c.draw_arrays(Primitive::Triangles, 0, 6);
                    c.set_client_state(ClientState::TexCoordArray, false);
                    c.disable(Capability::Texture2D);
                    frags
                }
                GlesVersion::V2 => {
                    let color_loc = self.color_loc;
                    let c = &mut self.c;
                    c.bind_texture(tex);
                    c.uniform4f(color_loc, 1.0, 1.0, 1.0, 1.0);
                    c.vertex_attrib_pointer(0, 3, &xyz);
                    c.set_vertex_attrib_enabled(2, true);
                    c.vertex_attrib_pointer(2, 2, &uv);
                    c.draw_arrays(Primitive::Triangles, 0, 6)
                }
            }
        }
    }
}

/// Runs `script` against bare per-context [`GlesContext`]s on a private
/// [`GpuDevice`] in reference-rasterizer mode.
///
/// # Errors
///
/// Returns a description of the first failing call (the reference path
/// is infallible today; the signature matches [`run_diplomat`]).
pub fn run_reference(script: &Script) -> Result<RunResult, String> {
    let device = Arc::new(GpuDevice::new(VirtualClock::new(), GpuCostModel::tegra3()));
    device.set_reference_raster(true);
    let mut ctxs: Vec<RefCtx> = script
        .versions
        .iter()
        .map(|v| RefCtx::new(*v, device.clone()))
        .collect();
    let mut textures: Vec<Vec<(u32, TexFormat)>> = vec![Vec::new(); ctxs.len()];
    let mut frags = Vec::new();
    for step in &script.steps {
        let rc = &mut ctxs[step.ctx];
        match &step.op {
            GlOp::Clear { rgba } => {
                rc.c.clear_color(rgba[0], rgba[1], rgba[2], rgba[3]);
                rc.c.clear(true, true);
            }
            GlOp::Draw { mode, xyz, color } => frags.push(rc.draw(*mode, xyz, *color)),
            GlOp::CreateTexture { format } => {
                let tag = textures[step.ctx].len() as u64;
                let data = tex_bytes(*format, TEX_EDGE, TEX_EDGE, tag);
                let tex = rc.c.gen_textures(1)[0];
                rc.c.bind_texture(tex);
                rc.c.tex_image_2d(TEX_EDGE, TEX_EDGE, *format, Some(&data));
                textures[step.ctx].push((tex, *format));
            }
            GlOp::UpdateTexture { slot, x, y, w, h } => {
                if let Some(&(tex, format)) = textures[step.ctx].get(*slot) {
                    let data = tex_bytes(format, *w, *h, *slot as u64 + 97);
                    rc.c.bind_texture(tex);
                    rc.c.tex_sub_image_2d(*x, *y, *w, *h, format, &data);
                }
            }
            GlOp::TexQuad { slot, rect } => {
                if let Some(&(tex, _)) = textures[step.ctx].get(*slot) {
                    frags.push(rc.tex_quad(tex, *rect, false));
                }
            }
            GlOp::TexQuadIndexed { slot, rect } => {
                if let Some(&(tex, _)) = textures[step.ctx].get(*slot) {
                    frags.push(rc.tex_quad(tex, *rect, true));
                }
            }
            GlOp::Translate { v } => {
                let top = rc.mvp.last_mut().expect("stack never empty");
                *top = top.mul(&Mat4::translate(v[0], v[1], v[2]));
                match rc.version {
                    GlesVersion::V1 => rc.c.translate(v[0], v[1], v[2]),
                    GlesVersion::V2 => rc.upload_mvp(),
                }
            }
            GlOp::Rotate { degrees } => {
                let top = rc.mvp.last_mut().expect("stack never empty");
                *top = top.mul(&Mat4::rotate_z(*degrees));
                match rc.version {
                    GlesVersion::V1 => rc.c.rotate(*degrees, 0.0, 0.0, 1.0),
                    GlesVersion::V2 => rc.upload_mvp(),
                }
            }
            GlOp::Scale { v } => {
                let top = rc.mvp.last_mut().expect("stack never empty");
                *top = top.mul(&Mat4::scale(v[0], v[1], v[2]));
                match rc.version {
                    GlesVersion::V1 => rc.c.scale(v[0], v[1], v[2]),
                    GlesVersion::V2 => rc.upload_mvp(),
                }
            }
            GlOp::PushTransform => {
                let top = rc.top();
                rc.mvp.push(top);
                if rc.version == GlesVersion::V1 {
                    rc.c.push_matrix();
                }
            }
            GlOp::PopTransform => {
                if rc.mvp.len() > 1 {
                    rc.mvp.pop();
                }
                if rc.version == GlesVersion::V1 {
                    rc.c.pop_matrix();
                }
            }
            GlOp::LoadIdentity => {
                *rc.mvp.last_mut().expect("stack never empty") = Mat4::identity();
                match rc.version {
                    GlesVersion::V1 => rc.c.load_identity(),
                    GlesVersion::V2 => rc.upload_mvp(),
                }
            }
            GlOp::SetCapability { cap, on } => {
                if *on {
                    rc.c.enable(*cap);
                } else {
                    rc.c.disable(*cap);
                }
            }
            GlOp::Scissor { x, y, w, h } => rc.c.set_scissor(*x, *y, *w, *h),
            GlOp::Flush | GlOp::Present => {}
        }
    }
    let frames = ctxs.iter().map(|rc| rc.target.to_rgba_vec()).collect();
    let session_ns = vec![0; ctxs.len()];
    Ok(RunResult {
        frames,
        frags,
        session_ns,
        scanout: Vec::new(),
    })
}

// ---------------------------------------------------------------------
// Differ + shrinker
// ---------------------------------------------------------------------

/// Executes `script` on both paths and checks the conformance and
/// determinism contracts.
///
/// # Errors
///
/// Returns a human-readable description of the first divergence.
pub fn check_script(script: &Script) -> Result<(), String> {
    let diplomat = run_diplomat(script).map_err(|e| format!("diplomat path failed: {e}"))?;
    let reference = run_reference(script).map_err(|e| format!("reference path failed: {e}"))?;
    if diplomat.frags != reference.frags {
        return Err(format!(
            "fragment counts diverged: diplomat {:?} vs reference {:?}",
            diplomat.frags, reference.frags
        ));
    }
    for (ctx, (d, r)) in diplomat
        .frames
        .iter()
        .zip(reference.frames.iter())
        .enumerate()
    {
        if d != r {
            let first = d
                .iter()
                .zip(r.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            let px = first / 4;
            return Err(format!(
                "ctx{ctx} framebuffer diverged at pixel ({}, {}): diplomat {:?} vs reference {:?}",
                px as u32 % WIDTH,
                px as u32 / WIDTH,
                &d[px * 4..px * 4 + 4],
                &r[px * 4..px * 4 + 4],
            ));
        }
    }
    // Determinism of the metered plane AND record/immediate equivalence:
    // a second fresh diplomat run with present-plane recording disabled
    // must repeat pixels and virtual time exactly (the first run used
    // the default record-then-execute path).
    let again = run_diplomat_mode(script, false)
        .map_err(|e| format!("diplomat re-run (recording off) failed: {e}"))?;
    if again.frames != diplomat.frames {
        return Err(
            "diplomat re-run with recording disabled produced different pixels".into(),
        );
    }
    if again.session_ns != diplomat.session_ns {
        return Err(format!(
            "diplomat re-run with recording disabled metered different virtual time: \
             recorded {:?} vs immediate {:?}",
            diplomat.session_ns, again.session_ns
        ));
    }
    if again.scanout != diplomat.scanout {
        return Err(
            "diplomat re-run with recording disabled produced a different scanout".into(),
        );
    }
    // Third diplomat run with the compositor damage plane disabled
    // (DESIGN.md §5g): tile-wise composition with clean/occlusion skips
    // must be indistinguishable — pixels, scanout bytes, and metered
    // virtual time — from full recomposition.
    let undamaged = run_diplomat_planes(script, true, false)
        .map_err(|e| format!("diplomat re-run (damage off) failed: {e}"))?;
    if undamaged.frames != diplomat.frames {
        return Err(
            "diplomat re-run with damage tracking disabled produced different pixels".into(),
        );
    }
    if undamaged.scanout != diplomat.scanout {
        return Err(
            "diplomat re-run with damage tracking disabled produced a different scanout".into(),
        );
    }
    if undamaged.session_ns != diplomat.session_ns {
        return Err(format!(
            "diplomat re-run with damage tracking disabled metered different virtual time: \
             damage-on {:?} vs damage-off {:?}",
            diplomat.session_ns, undamaged.session_ns
        ));
    }
    Ok(())
}

/// Delta-debugging shrink: repeatedly removes step chunks (halving the
/// chunk size down to single steps) while `fails` still holds, then
/// drops contexts no remaining step references. The result is
/// 1-minimal: removing any single remaining step makes the failure
/// disappear.
pub fn shrink(script: &Script, fails: impl Fn(&Script) -> bool) -> Script {
    let mut steps = script.steps.clone();
    let mut chunk = steps.len().max(1);
    while chunk >= 1 {
        let mut i = 0;
        while i < steps.len() {
            let mut candidate = steps.clone();
            candidate.drain(i..(i + chunk).min(candidate.len()));
            let cand = Script {
                versions: script.versions.clone(),
                steps: candidate,
            };
            if fails(&cand) {
                steps = cand.steps;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    let mut shrunk = Script {
        versions: script.versions.clone(),
        steps,
    };
    // Drop unreferenced contexts (highest first so indices stay valid),
    // keeping the failure intact.
    for ctx in (0..shrunk.versions.len()).rev() {
        if shrunk.versions.len() == 1 || shrunk.steps.iter().any(|s| s.ctx == ctx) {
            continue;
        }
        let mut cand = shrunk.clone();
        cand.versions.remove(ctx);
        for s in &mut cand.steps {
            if s.ctx > ctx {
                s.ctx -= 1;
            }
        }
        if fails(&cand) {
            shrunk = cand;
        }
    }
    shrunk
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(generate(7), generate(7));
        assert_ne!(generate(7), generate(8));
    }

    #[test]
    fn generated_scripts_start_with_clears_and_stay_in_bounds() {
        for seed in 0..20 {
            let script = generate(seed);
            assert!(!script.versions.is_empty() && script.versions.len() <= 2);
            for (ctx, _) in script.versions.iter().enumerate() {
                assert!(
                    matches!(script.steps[ctx].op, GlOp::Clear { .. }),
                    "seed {seed}: ctx{ctx} does not start with a clear"
                );
            }
            for s in &script.steps {
                assert!(s.ctx < script.versions.len());
                if let GlOp::UpdateTexture { x, y, w, h, .. } = s.op {
                    assert!(x + w <= TEX_EDGE && y + h <= TEX_EDGE);
                }
            }
        }
    }

    #[test]
    fn shrinker_reaches_a_one_minimal_script() {
        let script = generate(42);
        // Synthetic failure: the script contains at least one rotate
        // and at least one colored draw. The minimal script has
        // exactly one of each.
        let fails = |s: &Script| {
            s.steps.iter().any(|st| matches!(st.op, GlOp::Rotate { .. }))
                && s.steps.iter().any(|st| matches!(st.op, GlOp::Draw { .. }))
        };
        if !fails(&script) {
            panic!("seed 42 no longer generates a rotate and a draw; pick a new seed");
        }
        let shrunk = shrink(&script, fails);
        assert!(fails(&shrunk));
        assert_eq!(
            shrunk.steps.len(),
            2,
            "expected exactly one rotate + one draw, got:\n{shrunk}"
        );
        assert_eq!(shrunk.versions.len(), 1, "unreferenced context kept");
    }
}
