//! Host crate for the cross-crate integration tests in `tests/tests/`.
//!
//! The tests exercise the full Cycada pipeline end-to-end: iOS app code →
//! diplomatic GLES bridge → persona switches → Android vendor stack →
//! SurfaceFlinger → display, plus the three headline OS mechanisms
//! (diplomat usage patterns, thread impersonation, dynamic library
//! replication) in combination.
//!
//! The [`fuzz`] module is the differential GLES conformance fuzzer: it
//! generates seeded random call scripts and executes them through both
//! the full diplomat path and the reference rasterizer, asserting
//! byte-identical framebuffers and deterministic metered virtual time.

pub mod fuzz;
