//! Host crate for the cross-crate integration tests in `tests/tests/`.
//!
//! The tests exercise the full Cycada pipeline end-to-end: iOS app code →
//! diplomatic GLES bridge → persona switches → Android vendor stack →
//! SurfaceFlinger → display, plus the three headline OS mechanisms
//! (diplomat usage patterns, thread impersonation, dynamic library
//! replication) in combination.
