//! Traced frame: capture one EAGL frame as a Chrome trace.
//!
//! Boots the Cycada stack, turns on the trace plane, renders and presents
//! one frame, then dumps the capture two ways: Chrome `trace_event` JSON
//! (written to `traced_frame.json` — open it in `chrome://tracing` or
//! Perfetto) and the plain-text per-function summary on stdout.
//!
//! Tracing never touches the virtual clock, so the frame's simulated cost
//! is identical with the recorder on or off.

use cycada::AppGl;
use cycada_gles::{GlesVersion, Primitive};
use cycada_sim::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = AppGl::boot(Platform::CycadaIos, GlesVersion::V1)?;

    // Warm the stack (symbol resolution, context adoption) outside the
    // capture so the trace shows a steady-state frame.
    app.clear(0.0, 0.0, 0.0, 1.0)?;
    app.present()?;

    let virtual_before = app.clock().now_ns();
    app.trace_begin();

    app.trace_mark("frame_start", 1);
    app.clear(0.1, 0.1, 0.2, 1.0)?;
    app.draw(
        Primitive::Triangles,
        &[-0.8, -0.8, 0.0, 0.8, -0.8, 0.0, 0.0, 0.8, 0.0],
        [1.0, 0.0, 0.0, 1.0],
    )?;
    // presentRenderbuffer: → copy_tex_buf → draw_fbo_tex → eglSwapBuffers
    // → SurfaceFlinger composition: the full §5 path, span by span.
    app.present()?;
    app.trace_mark("frame_end", 1);

    let summary = app.trace_end_summary();
    println!("One EAGL frame, per-function:\n\n{summary}");

    // Re-capture the same frame for the JSON export.
    app.trace_begin();
    app.clear(0.1, 0.1, 0.2, 1.0)?;
    app.draw(
        Primitive::Triangles,
        &[-0.8, -0.8, 0.0, 0.8, -0.8, 0.0, 0.0, 0.8, 0.0],
        [1.0, 0.0, 0.0, 1.0],
    )?;
    app.present()?;
    let json = app.trace_end_json();
    std::fs::write("traced_frame.json", &json)?;
    println!(
        "Wrote traced_frame.json ({} bytes) — load it in chrome://tracing.",
        json.len()
    );

    println!("\nTrace counters:");
    for (name, value) in app.trace_counters() {
        if value > 0 {
            println!("  {name:<40} {value}");
        }
    }
    println!(
        "\nVirtual time for both frames: {} us (unchanged by tracing).",
        (app.clock().now_ns() - virtual_before) / 1000
    );
    Ok(())
}
