//! Quickstart: run an iOS graphics app on a (simulated) Android tablet.
//!
//! Boots the full Cycada stack — kernel with dual personas, DLR-enabled
//! linker, Android vendor graphics, the diplomatic GLES bridge and the
//! EAGL reimplementation — then renders and presents one frame the way an
//! iOS app would, and verifies the pixels on the Android display.

use cycada::AppGl;
use cycada_gles::{GlesVersion, Primitive};
use cycada_sim::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Booting a Nexus 7 running Cycada, starting an iOS app...");
    let app = AppGl::boot(Platform::CycadaIos, GlesVersion::V1)?;
    println!(
        "  display: {}x{}, GLES {:?}",
        app.width(),
        app.height(),
        app.version()
    );

    // The app draws exactly as it would on iOS: EAGL drawable + GLES calls.
    app.clear(0.1, 0.1, 0.2, 1.0)?;
    // A red triangle...
    app.draw(
        Primitive::Triangles,
        &[-0.8, -0.8, 0.0, 0.8, -0.8, 0.0, 0.0, 0.8, 0.0],
        [1.0, 0.0, 0.0, 1.0],
    )?;
    // ...and an overlay drawn with line primitives.
    app.draw(
        Primitive::LineLoop,
        &[-0.9, -0.9, 0.0, 0.9, -0.9, 0.0, 0.9, 0.9, 0.0, -0.9, 0.9, 0.0],
        [1.0, 1.0, 1.0, 1.0],
    )?;
    // presentRenderbuffer: through libEGLbridge to SurfaceFlinger.
    app.present()?;

    let center = app.display().pixel(app.width() / 2, app.height() / 2);
    println!("  frames presented: {}", app.display().frames_presented());
    println!("  center pixel:     {center:?} (expect red)");
    assert_eq!(center, [255, 0, 0, 255]);

    // Peek at the compatibility layer: every GL call above was a diplomat.
    let stats = app.gl_stats().expect("Cycada instrumentation");
    println!("\nDiplomat calls made by this one frame:");
    for share in stats.top_n(8) {
        println!(
            "  {:<28} {:>5} calls  {:>10.1} us total",
            share.name,
            share.record.calls,
            share.record.total_ns as f64 / 1000.0
        );
    }
    let counts = app.kernel().syscall_counts();
    println!(
        "\nKernel: {} set_persona syscalls, {} Mach IPC calls, {} ioctls",
        counts.set_persona, counts.mach_ipc, counts.ioctl
    );
    println!("\nOK: the iOS app rendered through Android's GPU stack.");
    Ok(())
}
