//! Quick wall-time profile of the bench frame loop.
use std::time::Instant;

use cycada::{AppGl, CycadaDevice};
use cycada_gles::{GlesVersion, Primitive};

fn main() {
    let device = CycadaDevice::boot_with_display(Some((160, 120))).unwrap();
    let app = AppGl::attach_cycada(&device, GlesVersion::V1).unwrap();
    let tri = [-0.8f32, -0.6, 0.0, 0.8, -0.6, 0.0, 0.0, 0.9, 0.0];
    // warm
    app.clear(0.1, 0.25, 0.9, 1.0).unwrap();
    app.draw(Primitive::Triangles, &tri, [0.2, 0.8, 0.3, 1.0]).unwrap();
    app.present().unwrap();

    const N: u32 = 200;
    let t0 = Instant::now();
    for _ in 0..N {
        app.clear(0.1, 0.25, 0.9, 1.0).unwrap();
    }
    let t_clear = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..N {
        app.draw(Primitive::Triangles, &tri, [0.2, 0.8, 0.3, 1.0]).unwrap();
    }
    let t_draw = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..N {
        app.present().unwrap();
    }
    let t_present = t0.elapsed();
    println!(
        "per-frame: clear {:?}  draw {:?}  present {:?}",
        t_clear / N,
        t_draw / N,
        t_present / N
    );
}
