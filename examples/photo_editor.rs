//! CPU/GPU sharing through IOSurfaces — the §6.2 dance, end to end.
//!
//! A photo-editor-style iOS app draws into an IOSurface with the CPU
//! (CoreGraphics-style), displays it through a GLES texture, applies a CPU
//! filter while the surface is `IOSurfaceLock`ed, and re-renders. On
//! Android the backing GraphicBuffer cannot be CPU-locked while a GLES
//! texture holds it — Cycada's multi diplomats transparently break and
//! re-establish the association around every lock/unlock pair.

use cycada::CycadaDevice;
use cycada_gles::GlesVersion;
use cycada_gpu::Rgba;
use cycada_iosurface::SurfaceProps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = CycadaDevice::boot_with_display(Some((256, 160)))?;
    let tid = device.main_tid();
    let eagl = device.eagl();
    let bridge = device.bridge();
    let iosb = device.iosurface_bridge();

    // Standard EAGL setup: context + drawable + FBO.
    let ctx = eagl.init_with_api(tid, GlesVersion::V2)?;
    eagl.set_current_context(tid, Some(ctx))?;
    let rb = eagl.renderbuffer_storage_from_drawable(tid, ctx, 256, 160)?;
    let fbo = bridge.gen_framebuffers(tid, 1)?[0];
    bridge.bind_framebuffer(tid, fbo)?;
    bridge.framebuffer_renderbuffer(tid, rb)?;

    // The "photo": an IOSurface the CPU will draw into.
    let photo = iosb.create(tid, SurfaceProps::bgra(64, 64))?;
    let buffer = iosb.buffer_for(photo.id())?;
    println!(
        "IOSurface {} backed by GraphicBuffer {} (zero-copy: {})",
        photo.id(),
        buffer.handle(),
        buffer.image().buffer().same_allocation(photo.base_address()),
    );

    // CoreGraphics draws the original image (CPU, surface unlocked is
    // fine while no texture is bound yet).
    let image = photo.as_image();
    for y in 0..64 {
        for x in 0..64 {
            let v = ((x ^ y) & 31) as f32 / 31.0;
            image.set_pixel(x, y, Rgba::new(v, 0.4, 1.0 - v, 1.0));
        }
    }

    // Bind the IOSurface to a GLES texture and display it.
    let tex = bridge.gen_textures(tid, 1)?[0];
    iosb.tex_image_io_surface(tid, photo.id(), tex)?;
    bridge.clear_color(tid, 0.0, 0.0, 0.0, 1.0)?;
    bridge.clear(tid, true, false)?;
    println!(
        "texture bound: GraphicBuffer GLES associations = {}",
        buffer.gles_association_count()
    );
    assert!(buffer.lock_cpu().is_err(), "raw Android rule: lock refused");

    // Apply a CPU filter: IOSurfaceLock -> draw -> IOSurfaceUnlock.
    // Behind the scenes: texture rebinds to a 1x1 buffer, the EGLImage is
    // destroyed, the GraphicBuffer is CPU-locked... and on unlock it is
    // all transparently re-established (§6.2).
    iosb.lock(tid, &photo)?;
    println!(
        "locked:  associations = {}, cpu_locked = {}",
        buffer.gles_association_count(),
        buffer.is_cpu_locked()
    );
    for y in 0..64 {
        for x in 0..64 {
            let px = image.pixel_rgba(x, y);
            // "Sepia" filter.
            image.set_pixel(
                x,
                y,
                Rgba::new(px.r * 0.9 + 0.1, px.g * 0.7 + 0.1, px.b * 0.4, 1.0),
            );
        }
    }
    iosb.unlock(tid, &photo)?;
    println!(
        "unlocked: associations = {} (texture rebound transparently)",
        buffer.gles_association_count()
    );

    // The filtered photo renders through the same texture name.
    let vendor_ctx = device
        .egl()
        .vendor_context(device.egl().current_context(tid).expect("current"))?;
    let gles = device.egl().gles_for_thread(tid)?;
    let tex_pixel = gles
        .context(vendor_ctx)
        .expect("context")
        .lock()
        .texture_image(tex)
        .expect("texture storage")
        .pixel_rgba(10, 10)
        .to_bytes();
    println!("texture sees the filtered pixel: {tex_pixel:?}");
    eagl.present_renderbuffer(tid, ctx)?;

    // Cleanup: deleting the texture drops the association (§6.1).
    bridge.delete_textures(tid, &[tex])?;
    assert_eq!(buffer.gles_association_count(), 0);
    iosb.release(tid, &photo)?;
    println!(
        "released; remaining bridged surfaces = {} (the EAGL drawable)",
        iosb.live_surfaces()
    );
    println!("\nOK: CPU and GPU shared one IOSurface across the lock dance.");
    Ok(())
}
