//! GCD-style asynchronous texture loading via thread impersonation (§7).
//!
//! iOS code routinely creates a GLES context on one thread and dispatches
//! texture-loading jobs to worker threads — "each thread ... implicitly
//! takes on the GLES and EAGL context of the thread that submitted the
//! asynchronous job." Android GLES forbids this pattern; Cycada makes it
//! work with thread impersonation and kernel TLS migration.

use cycada::CycadaDevice;
use cycada_gles::{GlesVersion, TexFormat};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = CycadaDevice::boot_with_display(Some((256, 160)))?;
    let main = device.main_tid();
    let eagl = device.eagl();
    let bridge = device.bridge();

    // Main thread: create the context and drawable (the render thread).
    let ctx = eagl.init_with_api(main, GlesVersion::V2)?;
    eagl.set_current_context(main, Some(ctx))?;
    let rb = eagl.renderbuffer_storage_from_drawable(main, ctx, 256, 160)?;
    let fbo = bridge.gen_framebuffers(main, 1)?[0];
    bridge.bind_framebuffer(main, fbo)?;
    bridge.framebuffer_renderbuffer(main, rb)?;
    println!("Main thread {main} created EAGLContext {ctx}.");

    // Dispatch async texture loads to worker "GCD" threads.
    let mut textures = Vec::new();
    for job in 0..3u8 {
        let worker = device.spawn_ios_thread()?;
        // The worker implicitly takes on the submitting thread's context:
        // impersonation migrates the graphics TLS of both personas.
        eagl.set_current_context(worker, Some(ctx))?;
        let tex = bridge.gen_textures(worker, 1)?[0];
        bridge.bind_texture(worker, tex)?;
        let shade = 60 + job * 60;
        let pixels: Vec<u8> = (0..16 * 16)
            .flat_map(|_| [shade, 255 - shade, shade / 2, 255])
            .collect();
        bridge.tex_image_2d(worker, 16, 16, TexFormat::Rgba, Some(&pixels))?;
        println!("  worker {worker} loaded texture {tex} on the shared context");
        textures.push(tex);
    }

    // Back on the main thread: all worker-loaded textures are usable.
    let counts = device.kernel().syscall_counts();
    println!(
        "\nTLS migration syscalls: locate_tls={} propagate_tls={}",
        counts.locate_tls, counts.propagate_tls
    );
    bridge.clear_color(main, 0.0, 0.0, 0.0, 1.0)?;
    bridge.clear(main, true, false)?;
    for (i, &tex) in textures.iter().enumerate() {
        bridge.bind_texture(main, tex)?;
        // The texture image exists and is the right size — loaded by a
        // different thread, visible here.
        let egl_ctx = device.egl().current_context(main).expect("current");
        let vendor = device.egl().vendor_context(egl_ctx)?;
        let gles = device.egl().gles_for_thread(main)?;
        let image = gles
            .context(vendor)
            .expect("context")
            .lock()
            .texture_image(tex)
            .expect("texture has storage");
        println!("  main thread sees texture {tex}: {}x{}", image.width(), image.height());
        let _ = i;
    }
    eagl.present_renderbuffer(main, ctx)?;
    println!("\nOK: multi-threaded iOS GLES semantics on Android libraries.");
    Ok(())
}
