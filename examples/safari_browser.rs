//! Safari on Cycada: browse the top-30 US sites and run the Acid test.
//!
//! Reproduces the §9 functionality experiments: every page rendered by the
//! iOS browser through the Cycada bridge is compared pixel-for-pixel
//! against the reference rendering (the same engine on stock Android —
//! same panel, same GPU, different code path).

use cycada_sim::Platform;
use cycada_workloads::browser::Browser;
use cycada_workloads::pages::TOP_30_SITES;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small panel keeps the software rasterizer quick for a demo.
    let display = Some((320, 200));
    println!("Launching reference browser (stock Android) and Safari (Cycada iOS)...");
    let mut reference = Browser::launch_with_display(Platform::StockAndroid, display)?;
    let mut safari = Browser::launch_with_display(Platform::CycadaIos, display)?;

    let mut matched = 0;
    for &site in TOP_30_SITES.iter() {
        let expect = reference.browse(site)?;
        let got = safari.browse(site)?;
        let ok = expect == got;
        matched += u32::from(ok);
        println!(
            "  {:<24} {}",
            site,
            if ok { "ok (pixel-identical)" } else { "MISMATCH" }
        );
    }
    println!("Rendered correctly: {matched}/30 sites");

    let (ref_score, ref_hash) = reference.run_acid3()?;
    let (score, hash) = safari.run_acid3()?;
    println!("\nAcid test: Safari on Cycada scores {score}/100 (reference {ref_score}/100)");
    println!(
        "Reference rendering comparison: {}",
        if hash == ref_hash {
            "pixel for pixel identical"
        } else {
            "DIVERGED"
        }
    );

    // SunSpider, the JIT story: Safari on Cycada runs without JIT.
    let run = safari.run_sunspider(None)?;
    let reference_run = reference.run_sunspider(None)?;
    println!(
        "\nSunSpider total: Cycada iOS {:.1} ms vs Android {:.1} ms ({:.1}x, JIT {})",
        run.total as f64 / 1e6,
        reference_run.total as f64 / 1e6,
        run.total as f64 / reference_run.total as f64,
        if run.jit { "on" } else { "off — the Mach VM bug" }
    );
    Ok(())
}
