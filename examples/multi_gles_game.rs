//! The paper's §8 motivating scenario: an iOS game that renders its world
//! with GLES **v1** while a WebKit "about" page renders with GLES **v2**
//! in the same process — impossible on stock Android (one EGL-to-GLES
//! connection, one version per process), made to work by Cycada's dynamic
//! library replication behind the `EGL_multi_context` extension.

use cycada::CycadaDevice;
use cycada_gles::{GlesVersion, MatrixMode, Primitive};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = CycadaDevice::boot_with_display(Some((320, 200)))?;
    let tid = device.main_tid();
    let eagl = device.eagl();
    let bridge = device.bridge();
    let linker = device.linker();

    println!("iOS game starting: creating its GLES v1 EAGLContext...");
    let game = eagl.init_with_api(tid, GlesVersion::V1)?;
    println!("WebKit creating its implicit GLES v2 EAGLContext...");
    let webkit = eagl.init_with_api(tid, GlesVersion::V2)?;

    println!(
        "\nDLR at work: libui_wrapper constructors run {} times, vendor GLES {} times, {} live replicas",
        linker.constructor_runs(cycada::LIBUI_WRAPPER),
        linker.constructor_runs(cycada_egl::loadout::VENDOR_GLES_LIB),
        linker.replica_count(),
    );
    println!(
        "Connections: game={} webkit={} (distinct replicas, distinct GLES versions)",
        eagl.connection(game)?,
        eagl.connection(webkit)?
    );

    // Render a game frame with fixed-function v1 calls.
    eagl.set_current_context(tid, Some(game))?;
    let rb = eagl.renderbuffer_storage_from_drawable(tid, game, 320, 200)?;
    let fbo = bridge.gen_framebuffers(tid, 1)?[0];
    bridge.bind_framebuffer(tid, fbo)?;
    bridge.framebuffer_renderbuffer(tid, rb)?;
    bridge.clear_color(tid, 0.0, 0.2, 0.0, 1.0)?;
    bridge.clear(tid, true, false)?;
    bridge.matrix_mode(tid, MatrixMode::ModelView)?;
    bridge.load_identity(tid)?;
    bridge.rotatef(tid, 30.0, 0.0, 0.0, 1.0)?;
    bridge.enable_client_state(tid, cycada_gles::ClientState::VertexArray)?;
    bridge.vertex_pointer(tid, 2, &[-0.5, -0.5, 0.5, -0.5, 0.0, 0.6])?;
    bridge.color4f(tid, 1.0, 0.8, 0.0, 1.0)?;
    bridge.draw_arrays(tid, Primitive::Triangles, 0, 3)?;
    eagl.present_renderbuffer(tid, game)?;
    println!("\nGame frame (v1 matrix pipeline) presented.");

    // The player opens the "about" page: WebKit renders with v2 shaders.
    eagl.set_current_context(tid, Some(webkit))?;
    let rb2 = eagl.renderbuffer_storage_from_drawable(tid, webkit, 320, 200)?;
    let fbo2 = bridge.gen_framebuffers(tid, 1)?[0];
    bridge.bind_framebuffer(tid, fbo2)?;
    bridge.framebuffer_renderbuffer(tid, rb2)?;
    let vs = bridge.create_shader(tid)?;
    bridge.shader_source(tid, vs, "attribute vec3 a_pos; uniform mat4 u_mvp;")?;
    bridge.compile_shader(tid, vs)?;
    let fs = bridge.create_shader(tid)?;
    bridge.shader_source(tid, fs, "uniform vec4 u_color;")?;
    bridge.compile_shader(tid, fs)?;
    let prog = bridge.create_program(tid)?;
    bridge.attach_shader(tid, prog, vs)?;
    bridge.attach_shader(tid, prog, fs)?;
    bridge.link_program(tid, prog)?;
    bridge.use_program(tid, prog)?;
    let color = bridge.uniform_location(tid, prog, "u_color")?;
    bridge.uniform4f(tid, color, 1.0, 1.0, 1.0, 1.0)?;
    bridge.clear_color(tid, 0.15, 0.15, 0.15, 1.0)?;
    bridge.clear(tid, true, false)?;
    bridge.enable_vertex_attrib_array(tid, 0)?;
    bridge.vertex_attrib_pointer(tid, 0, 2, &[-0.9, -0.2, 0.9, -0.2, 0.0, 0.8])?;
    bridge.draw_arrays(tid, Primitive::Triangles, 0, 3)?;
    eagl.present_renderbuffer(tid, webkit)?;
    println!("About page (v2 shader pipeline) presented.");

    // Back to the game — its v1 state is intact in its own replica.
    eagl.set_current_context(tid, Some(game))?;
    bridge.draw_arrays(tid, Primitive::Triangles, 0, 3)?;
    eagl.present_renderbuffer(tid, game)?;
    println!("Game resumed; {} frames on screen.", device.kernel().display().frames_presented());
    println!("\nOK: two GLES versions, one process — stock Android EGL cannot do this.");
    Ok(())
}
