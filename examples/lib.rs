//! Host crate for the runnable examples in this directory.
//!
//! Run them with, e.g.:
//!
//! ```sh
//! cargo run -p cycada-examples --example quickstart
//! cargo run -p cycada-examples --example safari_browser
//! cargo run -p cycada-examples --example multi_gles_game
//! cargo run -p cycada-examples --example async_texture_loader
//! ```
