//! The session plane in action: ONE booted Cycada device, TWO iOS apps —
//! a PassMark-style 3D benchmark and a WebKit browser — attached as
//! concurrent sessions, each rendering from its own host thread into its
//! own EAGL drawable. SurfaceFlinger composites both drawables side by
//! side on the shared panel, and each session keeps private virtual-time
//! and per-function figures even though the device (kernel, linker, GPU,
//! vendor libraries) is shared.

use std::thread;

use cycada::{AppGl, CycadaDevice, Result};
use cycada_gles::{GlesVersion, Primitive};
use cycada_gpu::raster::Rect;
use cycada_gpu::DrawClass;
use cycada_workloads::pages::WebPage;
use cycada_workloads::webkit::WebView;

const FRAMES: u32 = 8;

/// A PassMark-style complex-scene loop: rotating fans of triangles.
fn run_benchmark(app: &mut AppGl) -> Result<u64> {
    app.set_draw_class(DrawClass::ThreeD);
    let mut fragments = 0;
    for frame in 0..FRAMES {
        app.clear(0.02, 0.02, 0.1, 1.0)?;
        app.rotate(7.0 * frame as f32)?;
        for blade in 0..6 {
            let a = blade as f32 * 60.0_f32.to_radians();
            let tri = [0.0, 0.0, 0.0, a.cos() * 0.9, a.sin() * 0.9, 0.0,
                (a + 0.5).cos() * 0.9, (a + 0.5).sin() * 0.9, 0.0];
            fragments += app.draw(Primitive::Triangles, &tri, [0.9, 0.5, 0.1, 1.0])?;
        }
        app.present()?;
    }
    Ok(fragments)
}

/// A browsing loop: WebKit tile grid re-rendering a few sites.
fn run_browser(app: &mut AppGl) -> Result<usize> {
    let mut view = WebView::new(app)?;
    for site in ["google.com", "wikipedia.org", "apple.com", "youtube.com"] {
        view.render_page(app, &WebPage::for_site(site))?;
    }
    Ok(view.tile_count())
}

fn main() -> Result<()> {
    let device = CycadaDevice::boot_with_display(Some((320, 240)))?;
    println!("Device booted once: kernel + linker + GPU + SurfaceFlinger shared.");

    // Two apps attach; no second boot happens.
    let mut benchmark = AppGl::attach_cycada(&device, GlesVersion::V1)?;
    let mut browser = AppGl::attach_cycada(&device, GlesVersion::V2)?;
    println!(
        "Attached 2 sessions (tids {:?} / {:?}); {} DLR replicas back their contexts.",
        benchmark.cycada_session().unwrap().main_tid(),
        browser.cycada_session().unwrap().main_tid(),
        device.linker().replica_count(),
    );

    // Split the panel: benchmark on the left, browser on the right.
    benchmark.set_display_layer(Rect { x: 0, y: 0, w: 160, h: 240 })?;
    browser.set_display_layer(Rect { x: 160, y: 0, w: 160, h: 240 })?;

    let (fragments, tiles) = thread::scope(|s| -> Result<(u64, usize)> {
        let bench_thread = s.spawn(|| -> Result<u64> {
            let _scope = benchmark.session_scope();
            run_benchmark(&mut benchmark)
        });
        let browse_thread = s.spawn(|| -> Result<usize> {
            let _scope = browser.session_scope();
            run_browser(&mut browser)
        });
        Ok((
            bench_thread.join().expect("benchmark thread")?,
            browse_thread.join().expect("browser thread")?,
        ))
    })?;

    let display = device.kernel().display();
    println!(
        "\nBoth apps on one panel: {} frames latched, left pixel {:?}, right pixel {:?}",
        display.frames_presented(),
        display.pixel(80, 120),
        display.pixel(240, 120),
    );
    println!(
        "Benchmark session: {} fragments shaded, {} ns virtual time",
        fragments,
        benchmark.session_virtual_ns(),
    );
    println!(
        "Browser session:   {} tiles composited, {} ns virtual time",
        tiles,
        browser.session_virtual_ns(),
    );
    let stats = browser.session_stats().expect("cycada session stats");
    println!(
        "Browser's private figure data: {} glTexSubImage2D calls (benchmark made none).",
        stats.get("glTexSubImage2D").map_or(0, |r| r.calls),
    );
    println!("\nOK: two apps, one device, zero shared accounting.");
    Ok(())
}
