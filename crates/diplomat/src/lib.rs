//! Cycada's diplomat machinery and thread impersonation.
//!
//! A **diplomat** (diplomatic function) "temporarily switches the persona
//! of a calling thread to execute domestic code from within a foreign app"
//! (§1). This crate implements the paper's extended diplomat construction:
//!
//! * the complete 11-step call procedure of §3 — lazy symbol resolution
//!   through the dynamic linker, **prelude** in the foreign persona,
//!   argument save, `set_persona` syscall, domestic invocation, return-value
//!   save, `set_persona` back, errno translation into the foreign TLS,
//!   **postlude**, return — with virtual-time costs calibrated to Table 3
//!   (816 ns bare, 828 ns with empty prelude/postlude, 933 ns with the GLES
//!   prelude/postlude);
//! * the four **diplomat usage patterns** of §4.1 (direct, indirect,
//!   data-dependent, multi) as a typed classification carried by every
//!   [`DiplomatEntry`];
//! * **graphics TLS discovery**: the libc `pthread_key_create` /
//!   `pthread_key_delete` hooks, gated open inside graphics diplomats'
//!   preludes/postludes so only graphics-related slots are tracked (§7.1);
//! * **thread impersonation** (§7.1): a running thread temporarily assumes
//!   the graphics TLS of a target thread across *both* personas, with
//!   updates reflected back on return.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod error;
mod impersonation;
mod table;
mod tls;

pub use engine::{DiplomatEngine, DiplomatEntry, DiplomatPattern, HookKind, StatsScopeGuard};
pub use error::DiplomatError;
pub use impersonation::ImpersonationGuard;
pub use table::DiplomatTable;
pub use tls::GraphicsTls;

// Re-exported so bridge crates can name ids without a direct cycada-sim
// import (and so `cycada_sim::fn_id!` composes with diplomat tables).
pub use cycada_sim::intern::FnId;

/// Convenient result alias for diplomat operations.
pub type Result<T> = std::result::Result<T, DiplomatError>;
