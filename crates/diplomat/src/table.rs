//! Dense, lock-free diplomat dispatch tables.
//!
//! The bridges (GLES, EGL, IOSurface) used to cache their registered
//! diplomats in `Mutex<HashMap<&'static str, Arc<DiplomatEntry>>>`, paying
//! a lock acquisition and a string hash on every bridged call. A
//! [`DiplomatTable`] replaces that: entries are registered once under their
//! interned [`FnId`] and steady-state dispatch is a dense-array index —
//! two pointer loads, no lock, no hashing.
//!
//! # Examples
//!
//! ```
//! use cycada_diplomat::{DiplomatEntry, DiplomatPattern, DiplomatTable, HookKind};
//! use cycada_sim::fn_id;
//!
//! let table = DiplomatTable::new();
//! let id = fn_id!("glFlush");
//! let entry = table.get_or_register(id, || {
//!     DiplomatEntry::with_id(
//!         id,
//!         "libGLESv2_tegra.so",
//!         "glFlush",
//!         DiplomatPattern::Direct,
//!         HookKind::Gles,
//!     )
//! });
//! assert_eq!(entry.name(), "glFlush");
//! assert_eq!(table.len(), 1);
//! assert!(table.by_name("glFlush").is_some());
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cycada_sim::intern::{FnId, FnTable};

use crate::engine::DiplomatEntry;

/// A dense map from [`FnId`] to a registered [`DiplomatEntry`].
///
/// Registration (first call per function) initializes the slot under the
/// table's internal once-cell; every later dispatch is lock-free.
#[derive(Default)]
pub struct DiplomatTable {
    entries: FnTable<Arc<DiplomatEntry>>,
    len: AtomicUsize,
}

impl DiplomatTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the entry registered for `id`, if any. Lock-free.
    pub fn get(&self, id: FnId) -> Option<&Arc<DiplomatEntry>> {
        self.entries.get(id)
    }

    /// Returns the entry for `id`, registering `init`'s result on first
    /// use. Concurrent registrations race benignly; one entry wins.
    pub fn get_or_register(
        &self,
        id: FnId,
        init: impl FnOnce() -> DiplomatEntry,
    ) -> &Arc<DiplomatEntry> {
        self.entries.get_or_init(id, || {
            self.len.fetch_add(1, Ordering::Relaxed);
            Arc::new(init())
        })
    }

    /// Looks an entry up by name (snapshot/introspection path; takes the
    /// intern table's read lock, so keep it off per-call dispatch).
    pub fn by_name(&self, name: &str) -> Option<&Arc<DiplomatEntry>> {
        self.get(FnId::lookup(name)?)
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether no entries have been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for DiplomatTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiplomatTable")
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DiplomatPattern, HookKind};

    fn entry(id: FnId) -> DiplomatEntry {
        DiplomatEntry::with_id(
            id,
            "libGLESv2_tegra.so",
            "glFlush",
            DiplomatPattern::Direct,
            HookKind::None,
        )
    }

    #[test]
    fn registration_is_once_per_id() {
        let table = DiplomatTable::new();
        let id = FnId::intern("table_test_fn");
        assert!(table.get(id).is_none());
        let a = Arc::clone(table.get_or_register(id, || entry(id)));
        let b = Arc::clone(table.get_or_register(id, || entry(id)));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn by_name_finds_registered_entries_only() {
        let table = DiplomatTable::new();
        let id = FnId::intern("table_test_named");
        table.get_or_register(id, || entry(id));
        assert!(table.by_name("table_test_named").is_some());
        assert!(table.by_name("table_test_absent").is_none());
    }
}
