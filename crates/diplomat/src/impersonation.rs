//! Thread impersonation (§7.1).
//!
//! "A thread impersonating another thread temporarily takes on the identity
//! of another thread to perform an action that may be thread-dependent."
//! For graphics, an iOS thread invoking a GLES function on a context it did
//! not create impersonates the Android thread that did: the running
//! thread's graphics-related TLS — in *both* its iOS and Android personas —
//! is saved and replaced with the target thread's, updates made while
//! executing are reflected back, and the original TLS is restored on
//! return. Only the kernel knows both TLS areas, so the migration uses the
//! `locate_tls` / `propagate_tls` syscalls.

use std::fmt;
use std::sync::Arc;

use cycada_kernel::{SimTid, TlsValue};
use cycada_sim::{trace, Persona};

use crate::engine::DiplomatEngine;
use crate::error::DiplomatError;
use crate::Result;

/// RAII state of one impersonation: created by
/// [`DiplomatEngine::impersonate`], ended by [`ImpersonationGuard::finish`]
/// (or best-effort on drop).
pub struct ImpersonationGuard {
    engine: Arc<DiplomatEngine>,
    running: SimTid,
    target: SimTid,
    slots: [Vec<usize>; 2],
    saved: [Vec<Option<TlsValue>>; 2],
    finished: bool,
}

impl DiplomatEngine {
    /// Begins impersonation: `running` (the thread invoking a GLES
    /// function) assumes the graphics TLS of `target` (the thread that
    /// created the GLES context), across both personas.
    ///
    /// # Errors
    ///
    /// Returns [`DiplomatError::TlsMigration`] if either thread is gone.
    pub fn impersonate(
        self: &Arc<Self>,
        running: SimTid,
        target: SimTid,
    ) -> Result<ImpersonationGuard> {
        let kernel = self.kernel();
        let mut slots_arr: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        let mut saved_arr: [Vec<Option<TlsValue>>; 2] = [Vec::new(), Vec::new()];
        for persona in Persona::ALL {
            // One schedule point per persona step: the checker interleaves
            // competitor threads (e.g. the target exiting) between the
            // per-persona TLS migrations.
            cycada_sim::schedule_point!(
                "impersonation.begin",
                running.as_u64() as usize,
                cycada_sim::check::Access::Write
            );
            let slots = self.graphics_tls().slots(persona);
            // (3) Save the running thread's graphics TLS...
            let saved = kernel
                .locate_tls(running, running, persona, &slots)
                .map_err(migration_err)?;
            // ...and replace it with the TLS associated with the context's
            // creating thread.
            let target_vals = kernel
                .locate_tls(running, target, persona, &slots)
                .map_err(migration_err)?;
            kernel
                .propagate_tls(running, running, persona, &slots, &target_vals)
                .map_err(migration_err)?;
            slots_arr[persona.index()] = slots;
            saved_arr[persona.index()] = saved;
        }
        trace::bump(trace::Counter::ImpersonationsBegun);
        trace::instant(
            trace::Category::Impersonation,
            "impersonation_begin",
            running.as_u64(),
        );
        Ok(ImpersonationGuard {
            engine: self.clone(),
            running,
            target,
            slots: slots_arr,
            saved: saved_arr,
            finished: false,
        })
    }
}

impl ImpersonationGuard {
    /// The thread doing the impersonating.
    pub fn running(&self) -> SimTid {
        self.running
    }

    /// The thread being impersonated.
    pub fn target(&self) -> SimTid {
        self.target
    }

    fn end(&mut self) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        let kernel = self.engine.kernel();
        // A failing step must not abort the rest of the teardown: the
        // running thread must never be left wearing another thread's TLS
        // in *any* persona. Attempt the target write-back and the
        // self-restore for every persona, collect failures, report the
        // first. (A dead target fails only the write-back; the running
        // thread's own restore still succeeds.)
        let mut first_err: Option<DiplomatError> = None;
        for persona in Persona::ALL {
            cycada_sim::schedule_point!(
                "impersonation.end",
                self.running.as_u64() as usize,
                cycada_sim::check::Access::Write
            );
            let slots = &self.slots[persona.index()];
            // (4) Updates made while impersonating are reflected back into
            // the TLS associated with the GLES context (the target thread).
            let write_back = kernel
                .locate_tls(self.running, self.running, persona, slots)
                .and_then(|current| {
                    kernel.propagate_tls(self.running, self.target, persona, slots, &current)
                });
            if let Err(e) = write_back {
                first_err.get_or_insert_with(|| migration_err(e));
            }
            // (5) Restore the running thread's original graphics TLS —
            // unconditionally, even after a failed write-back.
            let restore = kernel.propagate_tls(
                self.running,
                self.running,
                persona,
                slots,
                &self.saved[persona.index()],
            );
            if let Err(e) = restore {
                first_err.get_or_insert_with(|| migration_err(e));
            }
        }
        match first_err {
            None => {
                trace::bump(trace::Counter::ImpersonationsFinished);
                trace::instant(
                    trace::Category::Impersonation,
                    "impersonation_finish",
                    self.running.as_u64(),
                );
                Ok(())
            }
            Some(e) => Err(e),
        }
    }

    /// Ends the impersonation: writes updates back to the target and
    /// restores the running thread's own TLS.
    ///
    /// # Errors
    ///
    /// Returns [`DiplomatError::TlsMigration`] if a thread died mid-way.
    pub fn finish(mut self) -> Result<()> {
        self.end()
    }
}

impl Drop for ImpersonationGuard {
    fn drop(&mut self) {
        // Best effort; failures here mean a thread already exited. There
        // is no caller to report to, so the error is counted (always, even
        // with tracing off) and recorded as a trace event — each swallowed
        // error is a thread that may have run with partially foreign TLS.
        if self.end().is_err() {
            trace::bump(trace::Counter::ImpersonationDropSwallowedErrors);
            trace::instant(
                trace::Category::Impersonation,
                "impersonation_drop_swallowed",
                self.running.as_u64(),
            );
        }
    }
}

impl fmt::Debug for ImpersonationGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImpersonationGuard")
            .field("running", &self.running)
            .field("target", &self.target)
            .field("finished", &self.finished)
            .finish()
    }
}

fn migration_err(e: cycada_kernel::KernelError) -> DiplomatError {
    DiplomatError::TlsMigration(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycada_kernel::Kernel;
    use cycada_linker::DynamicLinker;
    use cycada_sim::Platform;

    fn setup() -> (Arc<Kernel>, Arc<DiplomatEngine>, SimTid, SimTid) {
        let kernel = Arc::new(Kernel::for_platform(Platform::CycadaIos));
        let linker = Arc::new(DynamicLinker::new(kernel.clock().clone()));
        let engine = DiplomatEngine::new(kernel.clone(), linker);
        let target = kernel.spawn_process_main(Persona::Ios).unwrap();
        let running = kernel.spawn_thread(target, Persona::Ios).unwrap();
        (kernel, engine, running, target)
    }

    #[test]
    fn impersonation_adopts_and_restores_tls() {
        let (kernel, engine, running, target) = setup();
        // A graphics slot in each persona.
        engine.graphics_tls().register_well_known(Persona::Android, 10);
        engine.graphics_tls().register_well_known(Persona::Ios, 11);
        kernel.tls_set_raw(target, Persona::Android, 10, Some(0xAAA)).unwrap();
        kernel.tls_set_raw(target, Persona::Ios, 11, Some(0xBBB)).unwrap();
        kernel.tls_set_raw(running, Persona::Android, 10, Some(0x111)).unwrap();

        let guard = engine.impersonate(running, target).unwrap();
        // The running thread now sees the target's graphics TLS in both
        // personas.
        assert_eq!(
            kernel.tls_get_raw(running, Persona::Android, 10).unwrap(),
            Some(0xAAA)
        );
        assert_eq!(
            kernel.tls_get_raw(running, Persona::Ios, 11).unwrap(),
            Some(0xBBB)
        );
        guard.finish().unwrap();
        // Originals restored.
        assert_eq!(
            kernel.tls_get_raw(running, Persona::Android, 10).unwrap(),
            Some(0x111)
        );
        assert_eq!(kernel.tls_get_raw(running, Persona::Ios, 11).unwrap(), None);
    }

    #[test]
    fn updates_reflect_back_to_target() {
        let (kernel, engine, running, target) = setup();
        engine.graphics_tls().register_well_known(Persona::Android, 10);
        kernel.tls_set_raw(target, Persona::Android, 10, Some(1)).unwrap();

        let guard = engine.impersonate(running, target).unwrap();
        // The impersonating thread updates the context's TLS value.
        kernel.tls_set_raw(running, Persona::Android, 10, Some(2)).unwrap();
        guard.finish().unwrap();
        // The update lives on in the target thread's TLS.
        assert_eq!(
            kernel.tls_get_raw(target, Persona::Android, 10).unwrap(),
            Some(2)
        );
    }

    #[test]
    fn drop_restores_best_effort() {
        let (kernel, engine, running, target) = setup();
        engine.graphics_tls().register_well_known(Persona::Android, 10);
        kernel.tls_set_raw(running, Persona::Android, 10, Some(7)).unwrap();
        {
            let _guard = engine.impersonate(running, target).unwrap();
            assert_eq!(
                kernel.tls_get_raw(running, Persona::Android, 10).unwrap(),
                None,
                "target had no value; running sees none"
            );
        }
        assert_eq!(
            kernel.tls_get_raw(running, Persona::Android, 10).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn impersonating_dead_thread_errors() {
        let (kernel, engine, running, target) = setup();
        kernel.exit_thread(target).unwrap();
        assert!(matches!(
            engine.impersonate(running, target),
            Err(DiplomatError::TlsMigration(_))
        ));
    }

    #[test]
    fn end_restores_every_persona_when_target_dies_mid_guard() {
        let (kernel, engine, running, target) = setup();
        engine.graphics_tls().register_well_known(Persona::Ios, 11);
        engine.graphics_tls().register_well_known(Persona::Android, 10);
        kernel.tls_set_raw(running, Persona::Ios, 11, Some(0x222)).unwrap();
        kernel.tls_set_raw(running, Persona::Android, 10, Some(0x111)).unwrap();

        let guard = engine.impersonate(running, target).unwrap();
        // The target exits mid-guard: the persona-iOS write-back (the
        // first teardown step) now fails with NoSuchThread.
        kernel.exit_thread(target).unwrap();
        let err = guard.finish();
        assert!(matches!(err, Err(DiplomatError::TlsMigration(_))));
        // Despite the iOS-persona error, the running thread's own TLS must
        // be restored in BOTH personas — the old `end` returned at the
        // first failure and left everything after it foreign.
        assert_eq!(
            kernel.tls_get_raw(running, Persona::Ios, 11).unwrap(),
            Some(0x222),
            "iOS persona restored after its own write-back failed"
        );
        assert_eq!(
            kernel.tls_get_raw(running, Persona::Android, 10).unwrap(),
            Some(0x111),
            "Android persona still restored after the iOS persona errored"
        );
    }

    #[test]
    fn drop_with_dead_target_counts_swallowed_error() {
        let (kernel, engine, running, target) = setup();
        engine.graphics_tls().register_well_known(Persona::Android, 10);
        kernel.tls_set_raw(running, Persona::Android, 10, Some(0x42)).unwrap();
        let before = trace::counter(trace::Counter::ImpersonationDropSwallowedErrors);
        {
            let _guard = engine.impersonate(running, target).unwrap();
            kernel.exit_thread(target).unwrap();
        } // drop: write-back fails, error has nowhere to go
        assert!(
            trace::counter(trace::Counter::ImpersonationDropSwallowedErrors) > before,
            "swallowed drop error must be observable via the trace counter"
        );
        // And the running thread still got its own TLS back.
        assert_eq!(
            kernel.tls_get_raw(running, Persona::Android, 10).unwrap(),
            Some(0x42)
        );
    }

    #[test]
    fn impersonation_uses_tls_syscalls() {
        let (kernel, engine, running, target) = setup();
        engine.graphics_tls().register_well_known(Persona::Android, 10);
        let before = kernel.syscall_counts();
        let guard = engine.impersonate(running, target).unwrap();
        guard.finish().unwrap();
        let after = kernel.syscall_counts();
        assert!(after.locate_tls > before.locate_tls);
        assert!(after.propagate_tls > before.propagate_tls);
    }
}
