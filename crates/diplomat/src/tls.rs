//! Graphics-related TLS slot tracking.
//!
//! "Cycada thread impersonation allows selective migration of TLS data by
//! modifying Android's libc to send out a notification whenever a new TLS
//! key is reserved ... By registering for a hook that is invoked on every
//! `pthread_key_create` and `pthread_key_delete` call, we can selectively
//! monitor TLS slot allocation" (§7.1). The hooks are *gated*: they only
//! record keys while a graphics diplomat's prelude has the gate open, so
//! only graphics-relevant slots are migrated. Well-known iOS slots used by
//! Apple graphics libraries are registered explicitly.

use std::collections::BTreeSet;
use std::fmt;

use parking_lot::Mutex;

use cycada_kernel::TlsKeyEvent;
use cycada_sim::Persona;

/// The registry of graphics-related TLS slots, per persona.
#[derive(Default)]
pub struct GraphicsTls {
    slots: Mutex<[BTreeSet<usize>; 2]>,
}

impl GraphicsTls {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a well-known slot (the iOS slots Apple graphics libraries
    /// reserve; "since vendor graphics libraries, along with their TLS
    /// slots, are opaque, we can assume that the TLS slots they reserve are
    /// not used by any other subsystems").
    pub fn register_well_known(&self, persona: Persona, slot: usize) {
        self.slots.lock()[persona.index()].insert(slot);
    }

    /// Applies a (gate-approved) libc key event.
    pub fn apply_event(&self, event: TlsKeyEvent) {
        let key = event.key();
        let mut slots = self.slots.lock();
        match event {
            TlsKeyEvent::Created(_) => {
                slots[key.persona().index()].insert(key.slot());
            }
            TlsKeyEvent::Deleted(_) => {
                slots[key.persona().index()].remove(&key.slot());
            }
        }
    }

    /// The tracked slots for a persona, in ascending order.
    pub fn slots(&self, persona: Persona) -> Vec<usize> {
        self.slots.lock()[persona.index()].iter().copied().collect()
    }

    /// Whether a slot is tracked.
    pub fn contains(&self, persona: Persona, slot: usize) -> bool {
        self.slots.lock()[persona.index()].contains(&slot)
    }

    /// Total tracked slots across personas.
    pub fn len(&self) -> usize {
        let slots = self.slots.lock();
        slots[0].len() + slots[1].len()
    }

    /// Whether no slots are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for GraphicsTls {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let slots = self.slots.lock();
        f.debug_struct("GraphicsTls")
            .field("ios_slots", &slots[Persona::Ios.index()])
            .field("android_slots", &slots[Persona::Android.index()])
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycada_kernel::TlsKey;

    #[test]
    fn well_known_and_events() {
        let g = GraphicsTls::new();
        assert!(g.is_empty());
        g.register_well_known(Persona::Ios, 7);
        assert!(g.contains(Persona::Ios, 7));
        assert!(!g.contains(Persona::Android, 7));

        // Simulate a gated create/delete. TlsKey construction is
        // kernel-internal, so route through a real kernel.
        let kernel = cycada_kernel::Kernel::for_platform(cycada_sim::Platform::CycadaIos);
        let key: TlsKey = kernel.tls_key_create(Persona::Android);
        g.apply_event(TlsKeyEvent::Created(key));
        assert!(g.contains(Persona::Android, key.slot()));
        assert_eq!(g.len(), 2);
        g.apply_event(TlsKeyEvent::Deleted(key));
        assert!(!g.contains(Persona::Android, key.slot()));
    }

    #[test]
    fn slots_sorted() {
        let g = GraphicsTls::new();
        g.register_well_known(Persona::Ios, 9);
        g.register_well_known(Persona::Ios, 4);
        assert_eq!(g.slots(Persona::Ios), vec![4, 9]);
    }
}
