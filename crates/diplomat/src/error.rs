//! Diplomat error types.

use std::error::Error;
use std::fmt;

/// Errors from diplomat calls and impersonation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiplomatError {
    /// The domestic library or symbol could not be resolved (step 1).
    Resolution(String),
    /// A persona switch failed (the platform lacks the ABI, or the thread
    /// died mid-call).
    PersonaSwitch(String),
    /// TLS migration failed during impersonation.
    TlsMigration(String),
}

impl fmt::Display for DiplomatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiplomatError::Resolution(msg) => write!(f, "diplomat symbol resolution failed: {msg}"),
            DiplomatError::PersonaSwitch(msg) => write!(f, "persona switch failed: {msg}"),
            DiplomatError::TlsMigration(msg) => write!(f, "TLS migration failed: {msg}"),
        }
    }
}

impl Error for DiplomatError {}

impl From<cycada_linker::LinkerError> for DiplomatError {
    fn from(e: cycada_linker::LinkerError) -> Self {
        DiplomatError::Resolution(e.to_string())
    }
}

impl From<cycada_kernel::KernelError> for DiplomatError {
    fn from(e: cycada_kernel::KernelError) -> Self {
        DiplomatError::PersonaSwitch(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DiplomatError::Resolution("libGLESv2.so".into())
            .to_string()
            .contains("libGLESv2.so"));
    }
}
