//! The diplomat engine: the 11-step call procedure.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use cycada_kernel::{bsd_errno_from_linux, Kernel, SimTid};
use cycada_linker::{DynamicLinker, SymbolAddr};
use cycada_sim::{intern::FnId, stats::FunctionStats, trace, Nanos, Persona};

use crate::tls::GraphicsTls;
use crate::Result;

// --- Step costs, calibrated so Table 3 reproduces exactly -------------
// bare diplomat   = 69+305+40+9+30+244+70+49            = 816 ns
// + empty pre/post= 816 + 6 + 6                         = 828 ns
// + GLES pre/post = 828 + 52 + 53                       = 933 ns
// (305/244 are the Cycada iOS/Android kernel-trap costs charged by the
// kernel's set_persona; 9 ns is the plain function call.)

/// Step 3: arguments stored on the stack.
const ARG_SAVE_NS: Nanos = 69;
/// Step 5: arguments restored from the stack.
const ARG_RESTORE_NS: Nanos = 40;
/// Step 6: the plain function-call cost of invoking the domestic symbol.
const FUNCTION_CALL_NS: Nanos = 9;
/// Step 7: return value saved on the stack.
const RET_SAVE_NS: Nanos = 30;
/// Step 9: domestic TLS values (errno) converted into the foreign area.
const ERRNO_CONVERT_NS: Nanos = 70;
/// Step 11: return value restored, control returned.
const RET_RESTORE_NS: Nanos = 49;
/// Dispatching a (possibly empty) prelude or postlude.
const HOOK_DISPATCH_NS: Nanos = 6;
/// Body of the GLES prelude (TLS gate open + bookkeeping).
const GLES_PRELUDE_NS: Nanos = 52;
/// Body of the GLES postlude (gate close + TLS write-back).
const GLES_POSTLUDE_NS: Nanos = 53;

/// The four diplomat usage patterns of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiplomatPattern {
    /// Directly invokes the corresponding Android function.
    Direct,
    /// A small foreign-side wrapper redirects to a similar Android API
    /// (e.g. `APPLE_fence` → `NV_fence`) or re-arranges inputs.
    Indirect,
    /// Input-dependent logic runs first and may skip the Android call
    /// entirely (e.g. `glGetString` with Apple's proprietary parameter).
    DataDependent,
    /// Coalesces several Android functions behind one diplomat (the
    /// libEGLbridge EAGL/IOSurface machinery).
    Multi,
}

impl fmt::Display for DiplomatPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DiplomatPattern::Direct => "direct",
            DiplomatPattern::Indirect => "indirect",
            DiplomatPattern::DataDependent => "data-dependent",
            DiplomatPattern::Multi => "multi",
        };
        f.write_str(name)
    }
}

/// Which prelude/postlude pair a diplomat carries. "This function is
/// common to all diplomats and specified at compile time" (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HookKind {
    /// No prelude/postlude (the basic Cycada diplomat).
    #[default]
    None,
    /// Empty prelude/postlude (dispatch cost only).
    Empty,
    /// The GLES prelude/postlude: opens/closes the TLS-key gate and
    /// performs graphics TLS bookkeeping.
    Gles,
}

/// One diplomat: a foreign-callable entry that invokes a domestic symbol.
///
/// Holds the lazily resolved symbol "in a locally-scoped static variable
/// for efficient reuse" (§3 step 1).
pub struct DiplomatEntry {
    fn_id: FnId,
    domestic_library: String,
    domestic_symbol: String,
    pattern: DiplomatPattern,
    hooks: HookKind,
    resolved: OnceLock<SymbolAddr>,
    calls: AtomicU64,
}

impl DiplomatEntry {
    /// Defines a diplomat named `name` targeting `symbol` in `library`.
    /// Interns `name`, so the entry is addressable by [`FnId`] everywhere
    /// downstream (dense dispatch tables, stats accounting).
    pub fn new(
        name: impl AsRef<str>,
        library: impl Into<String>,
        symbol: impl Into<String>,
        pattern: DiplomatPattern,
        hooks: HookKind,
    ) -> Self {
        Self::with_id(
            FnId::intern(name.as_ref()),
            library,
            symbol,
            pattern,
            hooks,
        )
    }

    /// Defines a diplomat for an already-interned function id.
    pub fn with_id(
        fn_id: FnId,
        library: impl Into<String>,
        symbol: impl Into<String>,
        pattern: DiplomatPattern,
        hooks: HookKind,
    ) -> Self {
        DiplomatEntry {
            fn_id,
            domestic_library: library.into(),
            domestic_symbol: symbol.into(),
            pattern,
            hooks,
            resolved: OnceLock::new(),
            calls: AtomicU64::new(0),
        }
    }

    /// The diplomat's (foreign-visible) name.
    pub fn name(&self) -> &'static str {
        self.fn_id.name()
    }

    /// The interned id of the diplomat's foreign-visible name.
    pub fn fn_id(&self) -> FnId {
        self.fn_id
    }

    /// The usage pattern classification.
    pub fn pattern(&self) -> DiplomatPattern {
        self.pattern
    }

    /// The hook pair specified at compile time.
    pub fn hooks(&self) -> HookKind {
        self.hooks
    }

    /// How many times the diplomat has been invoked.
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// The resolved domestic symbol, if the diplomat has been called.
    pub fn resolved_symbol(&self) -> Option<SymbolAddr> {
        self.resolved.get().copied()
    }
}

impl fmt::Debug for DiplomatEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiplomatEntry")
            .field("name", &self.name())
            .field("pattern", &self.pattern)
            .field("hooks", &self.hooks)
            .field("calls", &self.call_count())
            .finish()
    }
}

/// The engine executing diplomat calls for one Cycada process.
pub struct DiplomatEngine {
    kernel: Arc<Kernel>,
    linker: Arc<DynamicLinker>,
    foreign: Persona,
    domestic: Persona,
    stats: FunctionStats,
    graphics_tls: Arc<GraphicsTls>,
    gate_depth: Arc<AtomicUsize>,
    hook_id: u64,
}

impl DiplomatEngine {
    /// Creates an engine bridging foreign iOS code onto domestic Android
    /// libraries (the Cycada configuration). Installs the gated libc TLS
    /// hooks.
    pub fn new(kernel: Arc<Kernel>, linker: Arc<DynamicLinker>) -> Arc<Self> {
        let graphics_tls = Arc::new(GraphicsTls::new());
        let gate_depth = Arc::new(AtomicUsize::new(0));
        let (hook_tls, hook_gate) = (graphics_tls.clone(), gate_depth.clone());
        let hook_id = kernel.add_tls_hook(move |event| {
            // Only record keys reserved while a graphics diplomat's
            // prelude holds the gate open (§7.1).
            if hook_gate.load(Ordering::Acquire) > 0 {
                hook_tls.apply_event(event);
            }
        });
        Arc::new(DiplomatEngine {
            kernel,
            linker,
            foreign: Persona::Ios,
            domestic: Persona::Android,
            stats: FunctionStats::new(),
            graphics_tls,
            gate_depth,
            hook_id,
        })
    }

    /// The foreign persona (iOS).
    pub fn foreign(&self) -> Persona {
        self.foreign
    }

    /// The domestic persona (Android).
    pub fn domestic(&self) -> Persona {
        self.domestic
    }

    /// The kernel this engine drives.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The linker used for step-1 symbol resolution.
    pub fn linker(&self) -> &Arc<DynamicLinker> {
        &self.linker
    }

    /// Per-diplomat virtual-time statistics (Figures 7–10).
    pub fn stats(&self) -> &FunctionStats {
        &self.stats
    }

    /// The graphics TLS slot registry.
    pub fn graphics_tls(&self) -> &Arc<GraphicsTls> {
        &self.graphics_tls
    }

    /// Whether the TLS-key gate is currently open (diagnostics).
    pub fn gate_open(&self) -> bool {
        self.gate_depth.load(Ordering::Acquire) > 0
    }

    /// Executes a diplomat call: the full 11-step procedure of §3. The
    /// `domestic` closure is the Android function body; it runs with the
    /// calling thread switched to its Android persona.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DiplomatError::Resolution`] if the domestic symbol
    /// cannot be resolved, or [`crate::DiplomatError::PersonaSwitch`] if the
    /// kernel refuses the persona change.
    pub fn call<R>(
        &self,
        tid: SimTid,
        entry: &DiplomatEntry,
        domestic: impl FnOnce() -> R,
    ) -> Result<R> {
        let clock = self.kernel.clock();
        // Measure the thread's own charges, not global clock movement:
        // under concurrent sessions the shared clock advances from other
        // host threads mid-call, and recording that would make per-call
        // figures depend on interleaving.
        let span = clock.thread_span();
        // One relaxed load when tracing is off; when on, the span records
        // the whole 11-step procedure with the diplomat's name, pattern,
        // and this thread's wall/virtual durations. The per-call counters
        // are gated on the span so the disabled path has zero shared
        // atomic traffic.
        let mut tspan = trace::span(trace::Category::Diplomat, entry.name());
        if tspan.is_active() {
            tspan.set_arg(entry.pattern as u64);
            trace::bump(trace::Counter::DiplomatCalls);
        }
        entry.calls.fetch_add(1, Ordering::Relaxed);

        // (1) Lazy symbol resolution, cached for efficient reuse.
        if entry.resolved.get().is_none() {
            let lib = self.linker.dlopen(&entry.domestic_library)?;
            let addr = self.linker.dlsym(&lib, &entry.domestic_symbol)?;
            let _ = entry.resolved.set(addr);
        }

        // (2) Prelude in the foreign persona.
        match entry.hooks {
            HookKind::None => {}
            HookKind::Empty => {
                clock.charge_ns(HOOK_DISPATCH_NS);
            }
            HookKind::Gles => {
                clock.charge_ns(HOOK_DISPATCH_NS + GLES_PRELUDE_NS);
                self.gate_depth.fetch_add(1, Ordering::AcqRel);
            }
        }

        // (3) Arguments stored on the stack.
        clock.charge_ns(ARG_SAVE_NS);

        // (4) set_persona: foreign -> domestic.
        self.kernel.set_persona(tid, self.domestic)?;
        if tspan.is_active() {
            trace::bump(trace::Counter::PersonaSwitches);
        }

        // (5) Arguments restored; (6) direct invocation via the stored
        // symbol.
        clock.charge_ns(ARG_RESTORE_NS + FUNCTION_CALL_NS);
        let result = domestic();

        // (7) Return value saved.
        clock.charge_ns(RET_SAVE_NS);

        // (8) set_persona: domestic -> foreign.
        self.kernel.set_persona(tid, self.foreign)?;
        if tspan.is_active() {
            trace::bump(trace::Counter::PersonaSwitches);
        }

        // (9) Domestic TLS values (errno) converted into the foreign area.
        clock.charge_ns(ERRNO_CONVERT_NS);
        let linux_errno = self.kernel.errno(tid, self.domestic)?;
        self.kernel
            .set_errno(tid, self.foreign, bsd_errno_from_linux(linux_errno))?;

        // (10) Postlude in the foreign persona.
        match entry.hooks {
            HookKind::None => {}
            HookKind::Empty => {
                clock.charge_ns(HOOK_DISPATCH_NS);
            }
            HookKind::Gles => {
                clock.charge_ns(HOOK_DISPATCH_NS + GLES_POSTLUDE_NS);
                self.gate_depth.fetch_sub(1, Ordering::AcqRel);
            }
        }

        // (11) Return value restored; control returns to foreign code.
        clock.charge_ns(RET_RESTORE_NS);
        self.record_call(entry.fn_id, span.elapsed_ns());
        Ok(result)
    }

    /// Records one call's elapsed time in the engine-wide stats and in any
    /// session stats scopes installed on the calling thread. Bridge-side
    /// foreign-only paths use this so their calls are attributed the same
    /// way diplomat calls are.
    pub fn record_call(&self, id: FnId, elapsed: Nanos) {
        self.stats.record_id(id, elapsed);
        STATS_SCOPES.with(|scopes| {
            for scoped in scopes.borrow().iter() {
                scoped.record_id(id, elapsed);
            }
        });
    }

    /// Installs `stats` as an additional per-call sink for diplomat calls
    /// made *by the calling host thread* until the guard drops. Sessions use
    /// this to keep their own function-time breakdown on a shared engine.
    pub fn enter_stats_scope(stats: FunctionStats) -> StatsScopeGuard {
        STATS_SCOPES.with(|scopes| scopes.borrow_mut().push(stats));
        StatsScopeGuard { _not_send: std::marker::PhantomData }
    }
}

thread_local! {
    /// Per-thread stack of extra stats sinks (session scopes).
    static STATS_SCOPES: std::cell::RefCell<Vec<FunctionStats>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Live stats scope on one host thread; dropping it uninstalls the sink.
#[must_use = "the scope only records while the guard is alive"]
#[derive(Debug)]
pub struct StatsScopeGuard {
    // Scope entries are per-thread; keep the guard on the installing thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for StatsScopeGuard {
    fn drop(&mut self) {
        STATS_SCOPES.with(|scopes| {
            scopes.borrow_mut().pop();
        });
    }
}

impl Drop for DiplomatEngine {
    fn drop(&mut self) {
        self.kernel.remove_tls_hook(self.hook_id);
    }
}

impl fmt::Debug for DiplomatEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiplomatEngine")
            .field("foreign", &self.foreign)
            .field("domestic", &self.domestic)
            .field("graphics_tls", &self.graphics_tls)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DiplomatError;
    use cycada_linker::LibraryImage;
    use cycada_sim::Platform;

    fn setup() -> (Arc<Kernel>, Arc<DiplomatEngine>, SimTid) {
        let kernel = Arc::new(Kernel::for_platform(Platform::CycadaIos));
        let linker = Arc::new(DynamicLinker::new(kernel.clock().clone()));
        linker.register_image(
            LibraryImage::builder("libGLESv2_tegra.so")
                .symbols(["glFlush"])
                .build(),
        );
        let engine = DiplomatEngine::new(kernel.clone(), linker);
        let tid = kernel.spawn_process_main(Persona::Ios).unwrap();
        (kernel, engine, tid)
    }

    fn entry(hooks: HookKind) -> DiplomatEntry {
        DiplomatEntry::new(
            "glFlush",
            "libGLESv2_tegra.so",
            "glFlush",
            DiplomatPattern::Direct,
            hooks,
        )
    }

    #[test]
    fn table3_bare_diplomat_costs_816ns() {
        let (kernel, engine, tid) = setup();
        let e = entry(HookKind::None);
        engine.call(tid, &e, || {}).unwrap(); // first call resolves symbols
        let before = kernel.clock().now_ns();
        engine.call(tid, &e, || {}).unwrap();
        assert_eq!(kernel.clock().now_ns() - before, 816);
    }

    #[test]
    fn table3_empty_hooks_cost_828ns() {
        let (kernel, engine, tid) = setup();
        let e = entry(HookKind::Empty);
        engine.call(tid, &e, || {}).unwrap();
        let before = kernel.clock().now_ns();
        engine.call(tid, &e, || {}).unwrap();
        assert_eq!(kernel.clock().now_ns() - before, 828);
    }

    #[test]
    fn table3_gles_hooks_cost_933ns() {
        let (kernel, engine, tid) = setup();
        let e = entry(HookKind::Gles);
        engine.call(tid, &e, || {}).unwrap();
        let before = kernel.clock().now_ns();
        engine.call(tid, &e, || {}).unwrap();
        assert_eq!(kernel.clock().now_ns() - before, 933);
    }

    #[test]
    fn persona_round_trips_and_syscalls_counted() {
        let (kernel, engine, tid) = setup();
        let e = entry(HookKind::None);
        let observed = engine
            .call(tid, &e, || kernel.current_persona(tid).unwrap())
            .unwrap();
        assert_eq!(observed, Persona::Android, "domestic body runs as Android");
        assert_eq!(kernel.current_persona(tid).unwrap(), Persona::Ios);
        // "A GLES diplomatic call costs almost the same as three system
        // calls" — two of them are the persona switches.
        assert_eq!(kernel.syscall_counts().set_persona, 2);
    }

    #[test]
    fn errno_translated_into_foreign_tls() {
        let (kernel, engine, tid) = setup();
        let e = entry(HookKind::None);
        let k = kernel.clone();
        engine
            .call(tid, &e, || {
                // The domestic function sets Linux EAGAIN (11).
                k.set_errno(tid, Persona::Android, 11).unwrap();
            })
            .unwrap();
        // The foreign (BSD) view must read 35.
        assert_eq!(kernel.errno(tid, Persona::Ios).unwrap(), 35);
    }

    #[test]
    fn symbol_resolution_is_lazy_and_cached() {
        let (_kernel, engine, tid) = setup();
        let e = entry(HookKind::None);
        assert!(e.resolved_symbol().is_none());
        engine.call(tid, &e, || {}).unwrap();
        let first = e.resolved_symbol().unwrap();
        engine.call(tid, &e, || {}).unwrap();
        assert_eq!(e.resolved_symbol().unwrap(), first);
        assert_eq!(e.call_count(), 2);
        // The library was loaded exactly once.
        assert_eq!(engine.linker().constructor_runs("libGLESv2_tegra.so"), 1);
    }

    #[test]
    fn unresolvable_symbol_errors() {
        let (_kernel, engine, tid) = setup();
        let e = DiplomatEntry::new(
            "glNope",
            "libGLESv2_tegra.so",
            "glNope",
            DiplomatPattern::Direct,
            HookKind::None,
        );
        assert!(matches!(
            engine.call(tid, &e, || {}),
            Err(DiplomatError::Resolution(_))
        ));
    }

    #[test]
    fn gles_gate_captures_keys_created_during_call() {
        let (kernel, engine, tid) = setup();
        // A key created outside any diplomat is NOT graphics-related.
        let outside = kernel.tls_key_create(Persona::Android);
        assert!(!engine
            .graphics_tls()
            .contains(Persona::Android, outside.slot()));

        // A key created inside a GLES diplomat (gate open) IS recorded.
        let e = entry(HookKind::Gles);
        let k = kernel.clone();
        let inside = engine
            .call(tid, &e, || k.tls_key_create(Persona::Android))
            .unwrap();
        assert!(engine
            .graphics_tls()
            .contains(Persona::Android, inside.slot()));
        assert!(!engine.gate_open(), "gate closed after postlude");
    }

    #[test]
    fn nested_result_returned() {
        let (_kernel, engine, tid) = setup();
        let e = entry(HookKind::None);
        let v = engine.call(tid, &e, || 40 + 2).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn stats_record_whole_call_time() {
        let (_kernel, engine, tid) = setup();
        let e = entry(HookKind::None);
        engine.call(tid, &e, || {}).unwrap();
        let rec = engine.stats().get("glFlush").unwrap();
        assert_eq!(rec.calls, 1);
        assert!(rec.total_ns >= 816);
    }

    #[test]
    fn pattern_display() {
        assert_eq!(DiplomatPattern::DataDependent.to_string(), "data-dependent");
        assert_eq!(DiplomatPattern::Multi.to_string(), "multi");
    }
}
