//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use cycada_sim::intern::FnId;
use cycada_sim::stats::{FunctionStats, LegacyStringStats};
use cycada_sim::{SharedBuffer, SimRng, VirtualClock};

proptest! {
    #[test]
    fn rng_below_always_in_bounds(seed: u64, bound in 1u64..u64::MAX) {
        let mut rng = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_range_inclusive_bounds(seed: u64, lo: u32, span in 0u32..10_000) {
        let lo = u64::from(lo);
        let hi = lo + u64::from(span);
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            let v = rng.range(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    #[test]
    fn rng_is_deterministic(seed: u64) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_f64_in_unit_interval(seed: u64) {
        let mut rng = SimRng::new(seed);
        for _ in 0..64 {
            let v = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn clock_accumulates_any_charge_sequence(charges in prop::collection::vec(0u64..1_000_000, 0..64)) {
        let clock = VirtualClock::new();
        let mut expect = 0u64;
        for c in charges {
            clock.charge_ns(c);
            expect += c;
            prop_assert_eq!(clock.now_ns(), expect);
        }
    }

    #[test]
    fn stats_shares_sum_to_100(records in prop::collection::vec(("[a-z]{1,8}", 1u64..1_000_000), 1..32)) {
        let stats = FunctionStats::new();
        for (name, ns) in &records {
            stats.record(name, *ns);
        }
        let total: f64 = stats.ranked_by_total().iter().map(|s| s.percent_of_total).sum();
        prop_assert!((total - 100.0).abs() < 1e-6, "shares sum to {total}");
    }

    #[test]
    fn stats_ranking_is_descending(records in prop::collection::vec(("[a-z]{1,8}", 0u64..1_000_000), 1..32)) {
        let stats = FunctionStats::new();
        for (name, ns) in &records {
            stats.record(name, *ns);
        }
        let rows = stats.ranked_by_total();
        for pair in rows.windows(2) {
            prop_assert!(pair[0].record.total_ns >= pair[1].record.total_ns);
        }
    }

    #[test]
    fn shared_buffer_writes_visible_through_all_aliases(len in 1usize..256, idx_frac in 0.0f64..1.0, value: u8) {
        let a = SharedBuffer::zeroed(len);
        let b = a.clone();
        let idx = ((len - 1) as f64 * idx_frac) as usize;
        a.write(|bytes| bytes[idx] = value);
        prop_assert_eq!(b.read(|bytes| bytes[idx]), value);
        prop_assert_eq!(a.len(), b.len());
    }

    #[test]
    fn stats_merge_preserves_totals(
        left in prop::collection::vec(("[a-d]", 1u64..1000), 0..16),
        right in prop::collection::vec(("[a-d]", 1u64..1000), 0..16),
    ) {
        let a = FunctionStats::new();
        let b = FunctionStats::new();
        for (n, v) in &left { a.record(n, *v); }
        for (n, v) in &right { b.record(n, *v); }
        let merged = FunctionStats::new();
        merged.merge(&a);
        merged.merge(&b);
        prop_assert_eq!(merged.total_ns(), a.total_ns() + b.total_ns());
        prop_assert_eq!(merged.total_calls(), a.total_calls() + b.total_calls());
    }

    #[test]
    fn interning_is_idempotent_and_order_stable(names in prop::collection::vec("[a-p]{1,6}", 1..24)) {
        let first: Vec<FnId> = names.iter().map(|n| FnId::intern(n)).collect();
        // Re-interning the same names in the same order yields the same ids.
        let second: Vec<FnId> = names.iter().map(|n| FnId::intern(n)).collect();
        prop_assert_eq!(&first, &second);
        // Ids discriminate exactly by name.
        for (i, a) in names.iter().enumerate() {
            for (j, b) in names.iter().enumerate() {
                prop_assert_eq!(first[i] == first[j], a == b);
            }
        }
    }

    #[test]
    fn fn_id_round_trips_to_name(name in "[a-p]{1,12}") {
        let id = FnId::intern(&name);
        prop_assert_eq!(id.name(), name.as_str());
        prop_assert_eq!(FnId::lookup(&name), Some(id));
        prop_assert!(id.index() < FnId::count());
    }

    #[test]
    fn sharded_snapshot_equals_reference_accumulation(
        records in prop::collection::vec(("[a-h]{1,4}", 1u64..1_000_000), 1..48),
        threads in 1usize..5,
    ) {
        // Reference: the pre-refactor single-map, single-threaded model.
        let reference = LegacyStringStats::new();
        for (n, v) in &records {
            reference.record(n, *v);
        }

        // Sharded accumulator fed the same records from several threads.
        let sharded = FunctionStats::new();
        let per_thread = records.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for chunk in records.chunks(per_thread) {
                let s = sharded.clone();
                scope.spawn(move || {
                    for (n, v) in chunk {
                        s.record(n, *v);
                    }
                });
            }
        });

        prop_assert_eq!(sharded.total_ns(), reference.total_ns());
        prop_assert_eq!(sharded.total_calls(), reference.total_calls());
        for (n, _) in &records {
            prop_assert_eq!(sharded.get(n), reference.get(n));
        }
    }
}
