//! Opt-in schedule points for the deterministic model checker.
//!
//! This module is the `cycada_sim`-facing wrapper over
//! [`parking_lot::schedule`] (the vendored shim is the leaf crate of the
//! workspace, so the hook primitive lives there and everything — including
//! this crate — can call it without a dependency cycle). The lock-free
//! structures in this crate mark their racy steps with [`schedule_point`]
//! (or the [`crate::schedule_point!`] macro), which is a single relaxed
//! atomic load when no `cycada_check` exploration is active — the same
//! disabled-cost contract as the trace gate in [`crate::trace`].
//!
//! Instrumented seams in this crate and its dependents:
//!
//! * the trace seqlock ring ([`crate::trace`]): writer publish steps and
//!   snapshot read/verify steps;
//! * [`crate::slots::SlotTable`] chunk publication;
//! * [`crate::intern`] `FnId` interning and `FnTable` slot initialisation;
//! * [`crate::VirtualClock::charge_ns`] — the charge ledger, the hottest
//!   path in the simulator;
//! * `cycada_diplomat`'s `ImpersonationGuard` begin/end persona walks;
//! * every `parking_lot` `Mutex`/`RwLock` acquire and release (modeled
//!   directly by the shim).

pub use parking_lot::schedule::{
    activate, enabled, install, managed, point, Access, ActiveGuard, Event, Hook,
};

/// Marks a schedule point: a named, explorable step in a concurrency
/// protocol. No-op (one relaxed load) unless a `cycada_check` exploration
/// is active and the calling thread is managed by it.
#[inline]
pub fn schedule_point(label: &'static str, obj: usize, access: Access) {
    point(label, obj, access);
}

/// Macro form of [`check::schedule_point`](schedule_point) for call sites
/// outside `cycada_sim` that want the gate inlined without importing the
/// module.
///
/// # Examples
///
/// ```
/// use cycada_sim::check::Access;
///
/// let obj = 0x1000usize;
/// cycada_sim::schedule_point!("example.step", obj, Access::Write);
/// ```
#[macro_export]
macro_rules! schedule_point {
    ($label:expr, $obj:expr, $access:expr) => {
        $crate::check::schedule_point($label, $obj, $access)
    };
}
