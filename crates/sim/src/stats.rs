//! Per-function virtual-time accounting.
//!
//! Figures 7–10 of the paper report, for the top GLES/EAGL-bridge
//! functions, the percentage of total graphics time consumed and the
//! average time per call. [`FunctionStats`] is the instrumentation that
//! collects exactly those two quantities for every named function in the
//! simulated graphics stack.
//!
//! # Sharded accumulator
//!
//! Recording sits on the per-call diplomat dispatch path, so it must not
//! serialize the simulated stack. Storage is a set of cache-line-padded
//! shards (boxed lazily on first record, so an idle collector — and thus
//! `attach_session` — costs a few hundred bytes, not tens of kilobytes),
//! each a dense table of atomic `(calls, ns)` slots keyed by
//! [`FnId`]; every thread is assigned a shard round-robin and records with
//! two relaxed `fetch_add`s plus two running-total bumps on its own shard.
//! No locks, no hashing, no allocation in the steady state.
//!
//! Totals stay exact and deterministic: per-function sums are `u64`
//! additions, which commute, so any interleaving of recording threads
//! yields byte-identical snapshots — the property the figure regenerators
//! rely on. Names are re-attached from the intern table only at snapshot
//! time ([`FunctionStats::ranked_by_total`]).

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::intern::{CachePadded, FnDense, FnId};
use crate::Nanos;

/// Number of shards; a small power of two well above typical simulated
/// thread counts.
const SHARDS: usize = 16;

/// Accumulated measurements for one named function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FunctionRecord {
    /// Number of calls observed.
    pub calls: u64,
    /// Total virtual nanoseconds attributed to the function.
    pub total_ns: Nanos,
}

impl FunctionRecord {
    /// Average virtual nanoseconds per call (0 when never called).
    pub fn avg_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

/// A named function's share of the total recorded time.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionShare {
    /// The function name as recorded.
    pub name: String,
    /// The raw record.
    pub record: FunctionRecord,
    /// Percentage of the total recorded time (0–100).
    pub percent_of_total: f64,
}

/// One per-function counter slot. Zero-initialized; bumped with relaxed
/// atomics from the recording thread's shard.
#[derive(Debug, Default)]
struct Slot {
    calls: AtomicU64,
    ns: AtomicU64,
}

/// One shard: a dense slot table plus running totals so `total_ns()` /
/// `total_calls()` are O(shards) reads instead of a full-table scan.
#[derive(Debug, Default)]
struct Shard {
    slots: FnDense<Slot>,
    total_calls: AtomicU64,
    total_ns: AtomicU64,
}

/// Shards are allocated on a thread's first record, not up front: every
/// session carries its own collector, and `attach_session` must stay a
/// sub-microsecond operation. An eager `[Shard; SHARDS]` is ~65 KiB of
/// `OnceLock` arrays per collector; allocating and freeing that block on
/// every attach fragments the heap badly enough to turn attach from ~10 µs
/// into milliseconds once a device has churned a few thousand sessions.
/// Lazily boxed shards make an idle collector a couple of hundred bytes and
/// a recording session pay only for the shards its threads actually touch.
#[derive(Debug, Default)]
struct Storage {
    shards: [OnceLock<Box<CachePadded<Shard>>>; SHARDS],
}

impl Storage {
    /// The calling thread's home shard index (round-robin at first use).
    fn home_shard() -> usize {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static HOME: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
        }
        HOME.with(|h| *h)
    }

    fn add(&self, id: FnId, calls: u64, ns: Nanos) {
        let shard = self.shards[Self::home_shard()]
            .get_or_init(|| Box::new(CachePadded::new(Shard::default())));
        let slot = shard.slots.slot(id);
        slot.calls.fetch_add(calls, Ordering::Relaxed);
        slot.ns.fetch_add(ns, Ordering::Relaxed);
        shard.total_calls.fetch_add(calls, Ordering::Relaxed);
        shard.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// The shards that have been touched so far.
    fn live_shards(&self) -> impl Iterator<Item = &Shard> {
        self.shards.iter().filter_map(|s| s.get().map(|b| &***b))
    }

    /// Sums one function's record across all shards.
    fn record_for(&self, id: FnId) -> FunctionRecord {
        let mut rec = FunctionRecord::default();
        for shard in self.live_shards() {
            if let Some(slot) = shard.slots.peek(id) {
                rec.calls += slot.calls.load(Ordering::Relaxed);
                rec.total_ns += slot.ns.load(Ordering::Relaxed);
            }
        }
        rec
    }
}

/// Thread-safe registry of per-function call counts and virtual time.
///
/// Cloning is cheap and shares the underlying storage, so one collector can
/// be threaded through the whole simulated graphics stack.
///
/// # Examples
///
/// ```
/// use cycada_sim::stats::FunctionStats;
///
/// let stats = FunctionStats::new();
/// stats.record("glClear", 939_000);
/// stats.record("glFlush", 506_000);
/// stats.record("glFlush", 494_000);
/// let top = stats.ranked_by_total();
/// assert_eq!(top[0].name, "glFlush");
/// assert_eq!(top[0].record.calls, 2);
/// ```
#[derive(Clone, Default)]
pub struct FunctionStats {
    inner: Arc<Storage>,
}

impl FunctionStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one call to `name` costing `ns` virtual nanoseconds.
    ///
    /// Interns `name` on every call; dispatch paths that already hold a
    /// [`FnId`] (or can cache one with [`crate::fn_id!`]) should use
    /// [`FunctionStats::record_id`] instead.
    pub fn record(&self, name: &str, ns: Nanos) {
        self.record_id(FnId::intern(name), ns);
    }

    /// Records one call to the interned function `id` costing `ns` virtual
    /// nanoseconds. Lock-free: two relaxed counter bumps on the calling
    /// thread's shard plus its running totals.
    pub fn record_id(&self, id: FnId, ns: Nanos) {
        self.inner.add(id, 1, ns);
    }

    /// Returns the record for `name`, if it was ever called.
    pub fn get(&self, name: &str) -> Option<FunctionRecord> {
        self.get_id(FnId::lookup(name)?)
    }

    /// Returns the record for the interned function `id`, if it was ever
    /// called on this collector.
    pub fn get_id(&self, id: FnId) -> Option<FunctionRecord> {
        let record = self.inner.record_for(id);
        if record.calls == 0 && record.total_ns == 0 {
            None
        } else {
            Some(record)
        }
    }

    /// Total virtual time across all recorded functions. O(shards): sums
    /// the running per-shard totals, no table scan.
    pub fn total_ns(&self) -> Nanos {
        self.inner
            .live_shards()
            .map(|s| s.total_ns.load(Ordering::Relaxed))
            .sum()
    }

    /// Total number of recorded calls across all functions. O(shards).
    pub fn total_calls(&self) -> u64 {
        self.inner
            .live_shards()
            .map(|s| s.total_calls.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of distinct functions with at least one recorded call or
    /// pre-aggregated record.
    pub fn function_count(&self) -> usize {
        FnId::all()
            .filter(|&id| {
                let r = self.inner.record_for(id);
                r.calls != 0 || r.total_ns != 0
            })
            .count()
    }

    /// All functions ranked by descending total time, each annotated with
    /// its share of the grand total — the layout of Figures 7 and 8.
    pub fn ranked_by_total(&self) -> Vec<FunctionShare> {
        let total = self.total_ns();
        let mut rows: Vec<FunctionShare> = FnId::all()
            .filter_map(|id| {
                let record = self.inner.record_for(id);
                if record.calls == 0 && record.total_ns == 0 {
                    return None;
                }
                Some(FunctionShare {
                    name: id.name().to_owned(),
                    record,
                    percent_of_total: if total == 0 {
                        0.0
                    } else {
                        100.0 * record.total_ns as f64 / total as f64
                    },
                })
            })
            .collect();
        rows.sort_by(|a, b| {
            b.record
                .total_ns
                .cmp(&a.record.total_ns)
                .then_with(|| a.name.cmp(&b.name))
        });
        rows
    }

    /// The top `n` functions by total time.
    pub fn top_n(&self, n: usize) -> Vec<FunctionShare> {
        let mut rows = self.ranked_by_total();
        rows.truncate(n);
        rows
    }

    /// Adds a pre-aggregated record (used when merging collectors).
    pub fn add_record(&self, name: &str, record: FunctionRecord) {
        self.add_record_id(FnId::intern(name), record);
    }

    /// Adds a pre-aggregated record under an already-interned id.
    pub fn add_record_id(&self, id: FnId, record: FunctionRecord) {
        self.inner.add(id, record.calls, record.total_ns);
    }

    /// Merges another collector's records into this one.
    pub fn merge(&self, other: &FunctionStats) {
        for id in FnId::all() {
            let record = other.inner.record_for(id);
            if record.calls != 0 || record.total_ns != 0 {
                self.add_record_id(id, record);
            }
        }
    }

    /// Clears all recorded data.
    pub fn reset(&self) {
        for shard in self.inner.live_shards() {
            for id in FnId::all() {
                if let Some(slot) = shard.slots.peek(id) {
                    slot.calls.store(0, Ordering::Relaxed);
                    slot.ns.store(0, Ordering::Relaxed);
                }
            }
            shard.total_calls.store(0, Ordering::Relaxed);
            shard.total_ns.store(0, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for FunctionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionStats")
            .field("functions", &self.function_count())
            .field("total_ns", &self.total_ns())
            .finish()
    }
}

/// The pre-refactor accumulator: one mutex-guarded `String`-keyed map.
///
/// Kept as (a) the baseline side of the `dispatch` micro-benchmark and
/// (b) the reference model the property tests compare the sharded
/// accumulator against. Not used by any dispatch path.
#[derive(Clone, Default, Debug)]
pub struct LegacyStringStats {
    inner: Arc<parking_lot::Mutex<std::collections::HashMap<String, FunctionRecord>>>,
}

impl LegacyStringStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one call to `name` costing `ns` virtual nanoseconds by
    /// locking the map and hashing the name — the old per-call cost.
    pub fn record(&self, name: &str, ns: Nanos) {
        let mut map = self.inner.lock();
        let entry = map.entry(name.to_owned()).or_default();
        entry.calls += 1;
        entry.total_ns += ns;
    }

    /// Returns the record for `name`, if it was ever called.
    pub fn get(&self, name: &str) -> Option<FunctionRecord> {
        self.inner.lock().get(name).copied()
    }

    /// Total virtual time across all recorded functions (O(n) scan).
    pub fn total_ns(&self) -> Nanos {
        self.inner.lock().values().map(|r| r.total_ns).sum()
    }

    /// Total recorded calls across all functions (O(n) scan).
    pub fn total_calls(&self) -> u64 {
        self.inner.lock().values().map(|r| r.calls).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = FunctionStats::new();
        assert_eq!(s.total_ns(), 0);
        assert_eq!(s.total_calls(), 0);
        assert_eq!(s.function_count(), 0);
        assert!(s.ranked_by_total().is_empty());
        assert!(s.get("stats_test_glClear_never").is_none());
    }

    #[test]
    fn record_accumulates_per_function() {
        let s = FunctionStats::new();
        s.record("stats_test_a", 10);
        s.record("stats_test_a", 30);
        s.record("stats_test_b", 5);
        let a = s.get("stats_test_a").unwrap();
        assert_eq!(a.calls, 2);
        assert_eq!(a.total_ns, 40);
        assert_eq!(a.avg_ns(), 20.0);
        assert_eq!(s.total_ns(), 45);
        assert_eq!(s.total_calls(), 3);
        assert_eq!(s.function_count(), 2);
    }

    #[test]
    fn record_id_matches_record_by_name() {
        let s = FunctionStats::new();
        let id = FnId::intern("stats_test_by_id");
        s.record_id(id, 21);
        s.record("stats_test_by_id", 21);
        assert_eq!(
            s.get("stats_test_by_id"),
            Some(FunctionRecord {
                calls: 2,
                total_ns: 42
            })
        );
    }

    #[test]
    fn ranking_and_shares() {
        let s = FunctionStats::new();
        s.record("stats_test_hot", 75);
        s.record("stats_test_cold", 25);
        let rows = s.ranked_by_total();
        assert_eq!(rows[0].name, "stats_test_hot");
        assert!((rows[0].percent_of_total - 75.0).abs() < 1e-9);
        assert!((rows[1].percent_of_total - 25.0).abs() < 1e-9);
    }

    #[test]
    fn ranking_ties_break_by_name() {
        let s = FunctionStats::new();
        s.record("stats_test_zeta", 10);
        s.record("stats_test_alpha", 10);
        let rows = s.ranked_by_total();
        assert_eq!(rows[0].name, "stats_test_alpha");
    }

    #[test]
    fn top_n_truncates() {
        let s = FunctionStats::new();
        for (i, name) in [
            "stats_test_t_a",
            "stats_test_t_b",
            "stats_test_t_c",
            "stats_test_t_d",
        ]
        .iter()
        .enumerate()
        {
            s.record(name, (i as u64 + 1) * 10);
        }
        let top = s.top_n(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].name, "stats_test_t_d");
    }

    #[test]
    fn clones_share_storage_and_reset_clears() {
        let s = FunctionStats::new();
        let t = s.clone();
        t.record("stats_test_x", 1);
        assert_eq!(s.total_calls(), 1);
        s.reset();
        assert_eq!(t.total_calls(), 0);
    }

    #[test]
    fn merge_combines_collectors() {
        let a = FunctionStats::new();
        let b = FunctionStats::new();
        a.record("stats_test_m", 10);
        b.record("stats_test_m", 5);
        b.record("stats_test_n", 1);
        a.merge(&b);
        assert_eq!(a.get("stats_test_m").unwrap().total_ns, 15);
        assert_eq!(a.get("stats_test_n").unwrap().calls, 1);
        // b is untouched by the merge.
        assert_eq!(b.total_calls(), 2);
    }

    #[test]
    fn multithreaded_totals_are_exact() {
        let s = FunctionStats::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        s.record("stats_test_mt", 3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let rec = s.get("stats_test_mt").unwrap();
        assert_eq!(rec.calls, 8_000);
        assert_eq!(rec.total_ns, 24_000);
        assert_eq!(s.total_calls(), 8_000);
        assert_eq!(s.total_ns(), 24_000);
    }

    #[test]
    fn legacy_stats_match_semantics() {
        let s = LegacyStringStats::new();
        s.record("stats_test_legacy", 10);
        s.record("stats_test_legacy", 20);
        assert_eq!(s.get("stats_test_legacy").unwrap().calls, 2);
        assert_eq!(s.total_ns(), 30);
        assert_eq!(s.total_calls(), 2);
    }

    #[test]
    fn zero_call_record_avg_is_zero() {
        assert_eq!(FunctionRecord::default().avg_ns(), 0.0);
    }
}
