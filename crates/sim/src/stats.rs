//! Per-function virtual-time accounting.
//!
//! Figures 7–10 of the paper report, for the top GLES/EAGL-bridge
//! functions, the percentage of total graphics time consumed and the
//! average time per call. [`FunctionStats`] is the instrumentation that
//! collects exactly those two quantities for every named function in the
//! simulated graphics stack.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::Nanos;

/// Accumulated measurements for one named function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FunctionRecord {
    /// Number of calls observed.
    pub calls: u64,
    /// Total virtual nanoseconds attributed to the function.
    pub total_ns: Nanos,
}

impl FunctionRecord {
    /// Average virtual nanoseconds per call (0 when never called).
    pub fn avg_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

/// A named function's share of the total recorded time.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionShare {
    /// The function name as recorded.
    pub name: String,
    /// The raw record.
    pub record: FunctionRecord,
    /// Percentage of the total recorded time (0–100).
    pub percent_of_total: f64,
}

/// Thread-safe registry of per-function call counts and virtual time.
///
/// Cloning is cheap and shares the underlying storage, so one collector can
/// be threaded through the whole simulated graphics stack.
///
/// # Examples
///
/// ```
/// use cycada_sim::stats::FunctionStats;
///
/// let stats = FunctionStats::new();
/// stats.record("glClear", 939_000);
/// stats.record("glFlush", 506_000);
/// stats.record("glFlush", 494_000);
/// let top = stats.ranked_by_total();
/// assert_eq!(top[0].name, "glFlush");
/// assert_eq!(top[0].record.calls, 2);
/// ```
#[derive(Clone, Default)]
pub struct FunctionStats {
    inner: Arc<Mutex<HashMap<String, FunctionRecord>>>,
}

impl FunctionStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one call to `name` costing `ns` virtual nanoseconds.
    pub fn record(&self, name: &str, ns: Nanos) {
        let mut map = self.inner.lock();
        let entry = map.entry(name.to_owned()).or_default();
        entry.calls += 1;
        entry.total_ns += ns;
    }

    /// Returns the record for `name`, if it was ever called.
    pub fn get(&self, name: &str) -> Option<FunctionRecord> {
        self.inner.lock().get(name).copied()
    }

    /// Total virtual time across all recorded functions.
    pub fn total_ns(&self) -> Nanos {
        self.inner.lock().values().map(|r| r.total_ns).sum()
    }

    /// Total number of recorded calls across all functions.
    pub fn total_calls(&self) -> u64 {
        self.inner.lock().values().map(|r| r.calls).sum()
    }

    /// Number of distinct function names recorded.
    pub fn function_count(&self) -> usize {
        self.inner.lock().len()
    }

    /// All functions ranked by descending total time, each annotated with
    /// its share of the grand total — the layout of Figures 7 and 8.
    pub fn ranked_by_total(&self) -> Vec<FunctionShare> {
        let map = self.inner.lock();
        let total: Nanos = map.values().map(|r| r.total_ns).sum();
        let mut rows: Vec<FunctionShare> = map
            .iter()
            .map(|(name, record)| FunctionShare {
                name: name.clone(),
                record: *record,
                percent_of_total: if total == 0 {
                    0.0
                } else {
                    100.0 * record.total_ns as f64 / total as f64
                },
            })
            .collect();
        rows.sort_by(|a, b| {
            b.record
                .total_ns
                .cmp(&a.record.total_ns)
                .then_with(|| a.name.cmp(&b.name))
        });
        rows
    }

    /// The top `n` functions by total time.
    pub fn top_n(&self, n: usize) -> Vec<FunctionShare> {
        let mut rows = self.ranked_by_total();
        rows.truncate(n);
        rows
    }

    /// Adds a pre-aggregated record (used when merging collectors).
    pub fn add_record(&self, name: &str, record: FunctionRecord) {
        let mut map = self.inner.lock();
        let entry = map.entry(name.to_owned()).or_default();
        entry.calls += record.calls;
        entry.total_ns += record.total_ns;
    }

    /// Merges another collector's records into this one.
    pub fn merge(&self, other: &FunctionStats) {
        for share in other.ranked_by_total() {
            self.add_record(&share.name, share.record);
        }
    }

    /// Clears all recorded data.
    pub fn reset(&self) {
        self.inner.lock().clear();
    }
}

impl fmt::Debug for FunctionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionStats")
            .field("functions", &self.function_count())
            .field("total_ns", &self.total_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = FunctionStats::new();
        assert_eq!(s.total_ns(), 0);
        assert_eq!(s.total_calls(), 0);
        assert_eq!(s.function_count(), 0);
        assert!(s.ranked_by_total().is_empty());
        assert!(s.get("glClear").is_none());
    }

    #[test]
    fn record_accumulates_per_function() {
        let s = FunctionStats::new();
        s.record("a", 10);
        s.record("a", 30);
        s.record("b", 5);
        let a = s.get("a").unwrap();
        assert_eq!(a.calls, 2);
        assert_eq!(a.total_ns, 40);
        assert_eq!(a.avg_ns(), 20.0);
        assert_eq!(s.total_ns(), 45);
        assert_eq!(s.total_calls(), 3);
        assert_eq!(s.function_count(), 2);
    }

    #[test]
    fn ranking_and_shares() {
        let s = FunctionStats::new();
        s.record("hot", 75);
        s.record("cold", 25);
        let rows = s.ranked_by_total();
        assert_eq!(rows[0].name, "hot");
        assert!((rows[0].percent_of_total - 75.0).abs() < 1e-9);
        assert!((rows[1].percent_of_total - 25.0).abs() < 1e-9);
    }

    #[test]
    fn ranking_ties_break_by_name() {
        let s = FunctionStats::new();
        s.record("zeta", 10);
        s.record("alpha", 10);
        let rows = s.ranked_by_total();
        assert_eq!(rows[0].name, "alpha");
    }

    #[test]
    fn top_n_truncates() {
        let s = FunctionStats::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            s.record(name, (i as u64 + 1) * 10);
        }
        let top = s.top_n(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].name, "d");
    }

    #[test]
    fn clones_share_storage_and_reset_clears() {
        let s = FunctionStats::new();
        let t = s.clone();
        t.record("x", 1);
        assert_eq!(s.total_calls(), 1);
        s.reset();
        assert_eq!(t.total_calls(), 0);
    }

    #[test]
    fn zero_call_record_avg_is_zero() {
        assert_eq!(FunctionRecord::default().avg_ns(), 0.0);
    }
}
