//! Per-buffer damage journals: the origination side of the compositor
//! plane (DESIGN.md §5g).
//!
//! Every byte write to a [`SharedBuffer`](crate::SharedBuffer) is
//! accompanied by a *note* describing the region it may have changed —
//! either a precise [`DamageRect`] (a scissored clear, a draw's clipped
//! triangle bounds, a blit's destination) or a conservative "everything
//! changed" full note for paths that cannot prove their write set (raw
//! closure writes, `map_rows`, CPU-locked gralloc access). The journal
//! assigns each note a monotonically increasing *version*; a consumer
//! that remembers the version it last observed can later ask
//! [`DamageJournal::damage_since`] for a bounding region of everything
//! that changed in between. The answer is always an over-approximation:
//! precision is a performance lever, never a correctness requirement.
//!
//! The journal additionally records *provenance* for full-coverage
//! blits ("this region is a copy of buffer S at version v"), which
//! lets the next blit along the same edge convert the source's damage
//! delta into a precise destination note instead of a full one. That
//! is how damage flows through the EAGL drawable → staging → EGL back
//! buffer chain without any explicit plumbing.
//!
//! Tracking is gated by a process-wide kill switch
//! ([`set_tracking`], default **on**). Correctness never depends on
//! the gate: with tracking off every query answers `Full`, which
//! consumers treat as "recompose everything". An epoch counter bumps
//! on every toggle so state captured under one gate regime (stored
//! provenance, compositor tile caches) is invalidated rather than
//! trusted across a toggle.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::BufferId;

/// Process-wide damage-tracking gate. Default on.
static TRACKING: AtomicBool = AtomicBool::new(true);

/// Bumped on every [`set_tracking`] call, in either direction.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// Enables or disables damage tracking process-wide (the kill switch
/// the tentpole contract requires). Toggling in either direction bumps
/// the [`epoch`], invalidating provenance and compositor tile state
/// captured under the previous regime.
pub fn set_tracking(on: bool) {
    TRACKING.store(on, Ordering::Relaxed);
    EPOCH.fetch_add(1, Ordering::Relaxed);
}

/// Whether damage tracking is currently enabled.
pub fn tracking() -> bool {
    TRACKING.load(Ordering::Relaxed)
}

/// The current gate epoch. Captured state (provenance, tile caches) is
/// only trusted while the epoch it was captured under is still current.
pub fn epoch() -> u64 {
    EPOCH.load(Ordering::Relaxed)
}

/// An axis-aligned pixel rectangle in a buffer's own coordinate space.
///
/// Plain-old-data twin of the GPU crate's `raster::Rect` (sim cannot
/// depend on gpu); zero width or height means empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DamageRect {
    /// Left edge, in pixels.
    pub x: u32,
    /// Top edge, in pixels.
    pub y: u32,
    /// Width in pixels (0 = empty).
    pub w: u32,
    /// Height in pixels (0 = empty).
    pub h: u32,
}

impl DamageRect {
    /// An empty rectangle.
    pub const EMPTY: DamageRect = DamageRect { x: 0, y: 0, w: 0, h: 0 };

    /// `true` if the rect covers no pixels.
    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Bounding union of two rects (empty operands are identities).
    pub fn union(&self, other: &DamageRect) -> DamageRect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let x0 = self.x.min(other.x);
        let y0 = self.y.min(other.y);
        let x1 = (self.x.saturating_add(self.w)).max(other.x.saturating_add(other.w));
        let y1 = (self.y.saturating_add(self.h)).max(other.y.saturating_add(other.h));
        DamageRect { x: x0, y: y0, w: x1 - x0, h: y1 - y0 }
    }

    /// `true` if the two rects share at least one pixel.
    pub fn intersects(&self, other: &DamageRect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.x < other.x.saturating_add(other.w)
            && other.x < self.x.saturating_add(self.w)
            && self.y < other.y.saturating_add(other.h)
            && other.y < self.y.saturating_add(self.h)
    }
}

/// Answer to [`DamageJournal::damage_since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Damage {
    /// Nothing changed since the queried version.
    None,
    /// Changes are contained in this bounding rect (may over-approximate).
    Rect(DamageRect),
    /// Anything may have changed — the conservative fallback, returned
    /// when the journal's history no longer reaches back to the queried
    /// version or when tracking is disabled.
    Full,
}

/// Provenance of a buffer region: "this was made a copy of `src` (the
/// `src_rect` region, into `dst_rect`) while `src`'s journal stood at
/// `src_version`, under gate epoch `epoch`".
///
/// Recorded by full-coverage blits and consumed by the *next* blit
/// along the same (src, src_rect, dst_rect) edge to turn the source's
/// damage delta into a precise destination note. Stale provenance is
/// always sound: any divergence of the destination from "copy of src @
/// src_version" was itself journaled by the intervening writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// Source allocation identity.
    pub src: BufferId,
    /// Source journal version sampled before the copy read any bytes.
    pub src_version: u64,
    /// Source region copied, in source pixel coordinates.
    pub src_rect: DamageRect,
    /// Destination region written, in destination pixel coordinates.
    pub dst_rect: DamageRect,
    /// Gate epoch the copy ran under; a mismatch invalidates the record.
    pub epoch: u64,
}

/// Maximum retained journal entries; older history collapses into the
/// bounding union of the two oldest entries (never into `Full` — the
/// floor only rises when a full note lands).
const MAX_ENTRIES: usize = 16;

/// One journal entry: all writes that advanced the version into the
/// half-open range `(prev_entry.upto, upto]` landed inside `rect`.
#[derive(Debug, Clone, Copy)]
struct Entry {
    upto: u64,
    rect: DamageRect,
}

#[derive(Debug, Default)]
struct JournalState {
    /// Contiguous history, oldest first.
    entries: VecDeque<Entry>,
    /// Versions `<= floor` are beyond retained history: queries against
    /// them answer `Full`.
    floor: u64,
    provenance: Option<Provenance>,
}

/// Collapses the journal's two oldest entries into their bounding union,
/// keeping history contiguous when it exceeds [`MAX_ENTRIES`].
///
/// A journal at the overflow threshold always holds at least two entries;
/// if that shape is ever violated (a corrupted or externally mutated
/// history under fleet-scale churn), the merge must not panic — a panic
/// here takes down every session in the process. Instead it falls back to
/// conservative full damage: retained history is discarded and the floor
/// rises to `next`, so every pending query answers [`Damage::Full`]
/// (over-approximate, always sound), and the always-on
/// `damage-merge-fallbacks` counter records the event.
fn merge_oldest(st: &mut JournalState, next: u64) {
    let a = match st.entries.pop_front() {
        Some(a) => a,
        None => return merge_fallback(st, next),
    };
    match st.entries.front_mut() {
        Some(b) => b.rect = a.rect.union(&b.rect),
        None => merge_fallback(st, next),
    }
}

#[cold]
fn merge_fallback(st: &mut JournalState, next: u64) {
    crate::trace::bump(crate::trace::Counter::DamageMergeFallbacks);
    st.entries.clear();
    st.floor = next;
}

/// A versioned, bounded history of write regions for one allocation.
///
/// See the [module docs](self) for the contract. All methods are
/// cheap and internally synchronized; the version counter is read
/// lock-free.
#[derive(Default)]
pub struct DamageJournal {
    /// Content version: bumped by every committed note.
    version: AtomicU64,
    state: Mutex<JournalState>,
}

impl DamageJournal {
    /// Creates an empty journal at version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current content version.
    ///
    /// Consumers must sample the version **before** reading the bytes
    /// it will stand for: writers commit their note (bumping the
    /// version) after the bytes land but before releasing the write
    /// lock, so a version observed before a read can only *under*-state
    /// the content — which makes later `damage_since` answers
    /// over-approximate, never skip real changes.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Commits a write note: `rect` bounds the changed region, `None`
    /// means "anything may have changed" (full damage). Optionally
    /// installs blit provenance in the same critical section so the
    /// provenance order always matches the byte order.
    ///
    /// No-ops entirely while tracking is disabled (queries already
    /// answer `Full` then, so versions need not advance).
    pub fn commit(&self, rect: Option<DamageRect>, provenance: Option<Provenance>) {
        if !tracking() {
            return;
        }
        let mut st = self.state.lock();
        let next = self.version.load(Ordering::Relaxed) + 1;
        match rect {
            None => {
                st.entries.clear();
                st.floor = next;
            }
            Some(r) => {
                // Coalesce no-op and nested writes into the newest entry.
                if let Some(last) = st.entries.back_mut() {
                    if r.is_empty() || last.rect.union(&r) == last.rect {
                        last.upto = next;
                        last.rect = last.rect.union(&r);
                        self.version.store(next, Ordering::Release);
                        if provenance.is_some() {
                            st.provenance = provenance;
                        }
                        return;
                    }
                }
                st.entries.push_back(Entry { upto: next, rect: r });
                if st.entries.len() > MAX_ENTRIES {
                    merge_oldest(&mut st, next);
                }
            }
        }
        self.version.store(next, Ordering::Release);
        if provenance.is_some() {
            st.provenance = provenance;
        }
    }

    /// Bounding damage accumulated strictly after version `since`.
    ///
    /// Answers [`Damage::Full`] when tracking is disabled or when
    /// `since` predates retained history.
    pub fn damage_since(&self, since: u64) -> Damage {
        if !tracking() {
            return Damage::Full;
        }
        if self.version.load(Ordering::Acquire) == since {
            return Damage::None;
        }
        let st = self.state.lock();
        if since < st.floor {
            return Damage::Full;
        }
        let mut acc = DamageRect::EMPTY;
        let mut any = false;
        for e in &st.entries {
            if e.upto > since {
                acc = acc.union(&e.rect);
                any = true;
            }
        }
        if !any {
            // Version moved (relative to the earlier lock-free check)
            // but no retained entry is newer — only possible under a
            // racing writer; be conservative.
            return if self.version.load(Ordering::Acquire) == since {
                Damage::None
            } else {
                Damage::Full
            };
        }
        Damage::Rect(acc)
    }

    /// The most recently installed blit provenance, if any.
    pub fn provenance(&self) -> Option<Provenance> {
        self.state.lock().provenance
    }
}

impl fmt::Debug for DamageJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("DamageJournal")
            .field("version", &self.version.load(Ordering::Relaxed))
            .field("entries", &st.entries.len())
            .field("floor", &st.floor)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: u32, y: u32, w: u32, h: u32) -> DamageRect {
        DamageRect { x, y, w, h }
    }

    #[test]
    fn union_and_intersects() {
        let a = r(0, 0, 2, 2);
        let b = r(4, 4, 2, 2);
        assert_eq!(a.union(&b), r(0, 0, 6, 6));
        assert_eq!(a.union(&DamageRect::EMPTY), a);
        assert_eq!(DamageRect::EMPTY.union(&b), b);
        assert!(!a.intersects(&b));
        assert!(a.intersects(&r(1, 1, 4, 4)));
        assert!(!a.intersects(&DamageRect::EMPTY));
    }

    #[test]
    fn journal_accumulates_and_answers_none_when_clean() {
        let j = DamageJournal::new();
        let v0 = j.version();
        assert_eq!(j.damage_since(v0), Damage::None);
        j.commit(Some(r(1, 1, 2, 2)), None);
        j.commit(Some(r(5, 5, 1, 1)), None);
        assert_eq!(j.damage_since(v0), Damage::Rect(r(1, 1, 5, 5)));
        let v2 = j.version();
        assert_eq!(j.damage_since(v2), Damage::None);
    }

    #[test]
    fn full_note_raises_floor() {
        let j = DamageJournal::new();
        let v0 = j.version();
        j.commit(None, None);
        assert_eq!(j.damage_since(v0), Damage::Full);
        let v1 = j.version();
        j.commit(Some(r(0, 0, 1, 1)), None);
        assert_eq!(j.damage_since(v1), Damage::Rect(r(0, 0, 1, 1)));
    }

    #[test]
    fn overflow_merges_oldest_never_answers_unsound() {
        let j = DamageJournal::new();
        let v0 = j.version();
        for i in 0..(MAX_ENTRIES as u32 + 8) {
            j.commit(Some(r(i * 10, 0, 1, 1)), None);
        }
        // History was truncated but the answer still bounds every write.
        match j.damage_since(v0) {
            Damage::Rect(d) => {
                for i in 0..(MAX_ENTRIES as u32 + 8) {
                    assert!(d.intersects(&r(i * 10, 0, 1, 1)), "write {i} escaped");
                }
            }
            Damage::Full => {}
            Damage::None => panic!("writes lost"),
        }
    }

    #[test]
    fn degenerate_overflow_merge_falls_back_to_full_without_panicking() {
        use crate::trace::{counter, Counter};
        // Construct the offending merge shapes directly: a journal state
        // that reaches the overflow merge with fewer than two retained
        // entries. The old code panicked on the unwrap/expect; the fix
        // answers conservative Full and counts the fallback.
        let before = counter(Counter::DamageMergeFallbacks);

        // Zero entries at merge time.
        let mut st = JournalState::default();
        merge_oldest(&mut st, 7);
        assert!(st.entries.is_empty());
        assert_eq!(st.floor, 7, "floor rises so queries answer Full");

        // One entry at merge time.
        let mut st = JournalState::default();
        st.entries.push_back(Entry { upto: 3, rect: r(1, 1, 2, 2) });
        merge_oldest(&mut st, 9);
        assert!(st.entries.is_empty());
        assert_eq!(st.floor, 9);

        assert_eq!(
            counter(Counter::DamageMergeFallbacks),
            before + 2,
            "each degenerate merge is counted"
        );

        // A journal whose floor rose this way answers Full, never None:
        // the fallback loses precision but not writes.
        let j = DamageJournal::new();
        j.commit(Some(r(0, 0, 4, 4)), None);
        {
            let mut st = j.state.lock();
            let next = j.version.load(Ordering::Relaxed);
            merge_fallback(&mut st, next);
        }
        assert_eq!(j.damage_since(0), Damage::Full);
    }

    #[test]
    fn healthy_overflow_merge_never_hits_the_fallback() {
        use crate::trace::{counter, Counter};
        let before = counter(Counter::DamageMergeFallbacks);
        let j = DamageJournal::new();
        for i in 0..(MAX_ENTRIES as u32 * 4) {
            j.commit(Some(r(i * 10, 0, 1, 1)), None);
        }
        assert_eq!(
            counter(Counter::DamageMergeFallbacks),
            before,
            "the ordinary overflow path merges without falling back"
        );
    }

    #[test]
    fn provenance_round_trips() {
        let j = DamageJournal::new();
        assert!(j.provenance().is_none());
        let p = Provenance {
            src: BufferId::from_u64(7),
            src_version: 3,
            src_rect: r(0, 0, 4, 4),
            dst_rect: r(0, 0, 4, 4),
            epoch: epoch(),
        };
        j.commit(Some(r(0, 0, 4, 4)), Some(p));
        assert_eq!(j.provenance(), Some(p));
    }

    #[test]
    fn empty_rect_notes_advance_version_without_full() {
        let j = DamageJournal::new();
        let v0 = j.version();
        j.commit(Some(DamageRect::EMPTY), None);
        assert!(j.version() > v0);
        assert_eq!(j.damage_since(v0), Damage::Rect(DamageRect::EMPTY));
        // After real damage, an empty note coalesces into the newest
        // entry (over-approximating to its rect, never to Full).
        j.commit(Some(r(2, 2, 3, 3)), None);
        let v = j.version();
        j.commit(Some(DamageRect::EMPTY), None);
        assert!(j.version() > v);
        assert_eq!(j.damage_since(v), Damage::Rect(r(2, 2, 3, 3)));
    }
}
