//! Record side of the replay plane (DESIGN.md §5i).
//!
//! The trace plane observes; this module makes call streams *drive*.
//! While a [`Recording`] is attached to the calling host thread, every
//! instrumented app-facade call site appends one [`Call`] — an interned
//! operation name, packed scalar arguments, a bulk-data payload, and the
//! call's virtual timestamp — to the recording. The finished [`Stream`]
//! serializes to the compact length-prefixed `.cyt` binary format and is
//! replayed by the `cycada-replay` crate, which re-drives a fresh session
//! through the same entry points and asserts byte-identical framebuffer
//! digests and exactly-repeated metered virtual time.
//!
//! # Determinism contract
//!
//! Recording **never interacts with the virtual clock**: a call site reads
//! the calling thread's charge ledger
//! ([`crate::VirtualClock::thread_charged_ns`]) but charges nothing, so a
//! session records the same framebuffer bytes and metered nanoseconds it
//! produces with recording off (the trace plane's contract, §5d, applies
//! verbatim).
//!
//! # Cost contract
//!
//! Mirrors the trace plane: with no recording attached anywhere in the
//! process, every instrumented call site is one relaxed atomic load and a
//! predictable branch (`benches/replay.rs`, `BENCH_replay.json`). The
//! `CYCADA_RECORD` environment variable is a master kill switch —
//! `CYCADA_RECORD=0` makes [`Recording::attach`] a no-op process-wide —
//! consulted once, lazily, like `CYCADA_TRACE`.
//!
//! # Virtual timestamps
//!
//! A call's `vts` is the calling thread's charge-ledger delta since the
//! recording was attached, read *after* the operation executed. Replay
//! re-reads the same ledger at the same points; equality call-by-call is
//! the strongest determinism check the plane offers (and the first thing
//! relaxed when replaying onto shared fleet devices, where device-global
//! warm-up costs legitimately differ — see `cycada-replay`).
//!
//! # Name stability
//!
//! Interned [`crate::intern::FnId`]s are stable *within* a process run but
//! depend on interning order across runs, so `.cyt` never stores raw ids:
//! the header carries the recording's own first-use-ordered string table
//! and calls reference table indices. Decoding never touches the process
//! intern table.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{Nanos, Platform, VirtualClock};

/// `.cyt` file magic.
pub const MAGIC: [u8; 4] = *b"CYT1";
/// Current `.cyt` format version; decoders reject anything else.
pub const FORMAT_VERSION: u16 = 1;

/// Marker call: the metered region (the session scope) opens after this.
pub const MARK_METER_BEGIN: &str = "cyt:meter-begin";
/// Marker call: the metered region closed; `args[0]` is the session's
/// metered virtual nanoseconds at that point.
pub const MARK_METER_END: &str = "cyt:meter-end";
/// Marker call: end of stream; `args[0]` is the final framebuffer digest,
/// `args[1]` the final metered virtual nanoseconds.
pub const MARK_END: &str = "cyt:end";

// ----------------------------------------------------------------------
// Gate
// ----------------------------------------------------------------------

/// Number of currently attached recordings, process-wide. The disabled
/// fast path at every call site is a single relaxed load of this.
static ACTIVE: AtomicU32 = AtomicU32::new(0);

const MASTER_UNINIT: u8 = 0;
const MASTER_OFF: u8 = 1;
const MASTER_ON: u8 = 2;

/// Tri-state master switch so the first attach can consult
/// `CYCADA_RECORD` without adding cost to later attaches.
static MASTER: AtomicU8 = AtomicU8::new(MASTER_UNINIT);

/// Whether any recording is attached anywhere in the process. One relaxed
/// atomic load; instrumented call sites branch on this before doing any
/// argument marshalling.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

#[cold]
fn init_master() -> bool {
    let on = match std::env::var("CYCADA_RECORD") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
        Err(_) => true,
    };
    MASTER.store(if on { MASTER_ON } else { MASTER_OFF }, Ordering::Relaxed);
    on
}

/// Whether the `CYCADA_RECORD` master switch permits attaching
/// recordings (it defaults to on; `CYCADA_RECORD=0` kills the plane).
pub fn master_enabled() -> bool {
    match MASTER.load(Ordering::Relaxed) {
        MASTER_ON => true,
        MASTER_OFF => false,
        _ => init_master(),
    }
}

/// Overrides the master switch (tests). `None` re-arms the lazy
/// `CYCADA_RECORD` lookup.
pub fn set_master(on: Option<bool>) {
    let state = match on {
        Some(true) => MASTER_ON,
        Some(false) => MASTER_OFF,
        None => MASTER_UNINIT,
    };
    MASTER.store(state, Ordering::Relaxed);
}

thread_local! {
    /// Stack of recordings attached to this host thread; call sites
    /// append to the topmost.
    static ATTACHED: RefCell<Vec<Arc<Mutex<Inner>>>> = const { RefCell::new(Vec::new()) };
}

// ----------------------------------------------------------------------
// Stream model
// ----------------------------------------------------------------------

/// Session-identifying header of a recorded stream: what to boot so the
/// replayed session is congruent with the recorded one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamMeta {
    /// Platform configuration the session ran on.
    pub platform: Platform,
    /// GLES version code: 1 or 2.
    pub gles: u8,
    /// Display width the device booted with.
    pub width: u32,
    /// Display height the device booted with.
    pub height: u32,
    /// Workload seed (informational; the calls are already concrete).
    pub seed: u64,
    /// Human-readable workload label.
    pub label: String,
}

/// One recorded call: an index into the stream's string table, the
/// post-call virtual timestamp, packed scalar args, and bulk payload
/// bytes (pixel data, vertex arrays, texture-name lists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Index into [`Stream::names`].
    pub name: u32,
    /// Calling thread's charge-ledger delta since attach, read after the
    /// operation executed.
    pub vts: Nanos,
    /// Packed scalar arguments (`f32` as widened bits, `i32`
    /// sign-extended — see [`f32_arg`] / [`i32_arg`]).
    pub args: Vec<u64>,
    /// Bulk data the operation consumed.
    pub payload: Vec<u8>,
}

/// A complete recorded call stream plus its string table and header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stream {
    /// Session header.
    pub meta: StreamMeta,
    /// Interned operation names in first-use order.
    pub names: Vec<String>,
    /// The calls, in issue order.
    pub calls: Vec<Call>,
}

impl Stream {
    /// The operation name of `call`, or `"<bad-name-index>"` for an index
    /// outside the table (decoded streams are always in range).
    pub fn name_of(&self, call: &Call) -> &str {
        self.names
            .get(call.name as usize)
            .map_or("<bad-name-index>", |s| s.as_str())
    }

    /// Rebuilds the string table to contain only names the remaining
    /// calls reference, preserving first-use order (the shrinker's final
    /// compaction step, so a minimal trace is minimal in the header too).
    pub fn compact(&mut self) {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut names = Vec::new();
        for call in &mut self.calls {
            let next = names.len() as u32;
            let new = *remap.entry(call.name).or_insert_with(|| {
                names.push(
                    self.names
                        .get(call.name as usize)
                        .cloned()
                        .unwrap_or_else(|| "<bad-name-index>".to_owned()),
                );
                next
            });
            call.name = new;
        }
        self.names = names;
    }
}

// ----------------------------------------------------------------------
// Argument packing
// ----------------------------------------------------------------------

/// Packs an `f32` argument as its bit pattern (bit-exact round trip).
#[inline]
pub fn f32_arg(v: f32) -> u64 {
    u64::from(v.to_bits())
}

/// Unpacks an [`f32_arg`]-packed argument.
#[inline]
pub fn arg_f32(a: u64) -> f32 {
    f32::from_bits(a as u32)
}

/// Packs an `i32` argument (sign-extended so negatives survive).
#[inline]
pub fn i32_arg(v: i32) -> u64 {
    v as i64 as u64
}

/// Unpacks an [`i32_arg`]-packed argument.
#[inline]
pub fn arg_i32(a: u64) -> i32 {
    a as i32
}

/// Packs an `f64` argument as its bit pattern.
#[inline]
pub fn f64_arg(v: f64) -> u64 {
    v.to_bits()
}

/// Unpacks an [`f64_arg`]-packed argument.
#[inline]
pub fn arg_f64(a: u64) -> f64 {
    f64::from_bits(a)
}

/// The stable wire code for `platform` (raw enum order is not a format).
pub fn platform_code(platform: Platform) -> u8 {
    match platform {
        Platform::StockAndroid => 0,
        Platform::CycadaAndroid => 1,
        Platform::CycadaIos => 2,
        Platform::NativeIos => 3,
    }
}

/// Inverse of [`platform_code`].
pub fn platform_from_code(code: u8) -> Option<Platform> {
    match code {
        0 => Some(Platform::StockAndroid),
        1 => Some(Platform::CycadaAndroid),
        2 => Some(Platform::CycadaIos),
        3 => Some(Platform::NativeIos),
        _ => None,
    }
}

// ----------------------------------------------------------------------
// Instrumented operation names
// ----------------------------------------------------------------------

/// The operation-name vocabulary the app facade records. Replay matches
/// on these strings (via the stream's own table, never raw ids).
pub mod op {
    /// `AppGl::clear` — args `[r, g, b, a]` as [`super::f32_arg`].
    pub const CLEAR: &str = "app:clear";
    /// `AppGl::set_scissor` — args `[x, y, w, h]` (`x`/`y` as [`super::i32_arg`]).
    pub const SCISSOR: &str = "app:scissor";
    /// `AppGl::set_capability` — args `[capability code, on]`.
    pub const CAPABILITY: &str = "app:capability";
    /// `AppGl::push_transform` — no args.
    pub const PUSH: &str = "app:push";
    /// `AppGl::pop_transform` — no args.
    pub const POP: &str = "app:pop";
    /// `AppGl::rotate` — args `[degrees]`.
    pub const ROTATE: &str = "app:rotate";
    /// `AppGl::translate` — args `[x, y, z]`.
    pub const TRANSLATE: &str = "app:translate";
    /// `AppGl::scale` — args `[x, y, z]`.
    pub const SCALE: &str = "app:scale";
    /// `AppGl::load_identity` — no args.
    pub const IDENTITY: &str = "app:identity";
    /// `AppGl::draw` — args `[primitive code, r, g, b, a]`, payload the
    /// `xyz` vertex array as little-endian `f32` bits.
    pub const DRAW: &str = "app:draw";
    /// `AppGl::create_texture` — args `[w, h, format code, returned
    /// texture name]`, payload the pixel data.
    pub const CREATE_TEXTURE: &str = "app:create-texture";
    /// `AppGl::update_texture` — args `[tex, x, y, w, h, format code]`,
    /// payload the pixel data.
    pub const UPDATE_TEXTURE: &str = "app:update-texture";
    /// `AppGl::draw_textured_quad` — args `[tex, x0, y0, x1, y1]`.
    pub const TEX_QUAD: &str = "app:tex-quad";
    /// `AppGl::draw_textured_quad_indexed` — args `[tex, x0, y0, x1, y1]`.
    pub const TEX_QUAD_INDEXED: &str = "app:tex-quad-indexed";
    /// `AppGl::flush` — no args.
    pub const FLUSH: &str = "app:flush";
    /// `AppGl::delete_textures` — payload the texture names as
    /// little-endian `u32`s.
    pub const DELETE_TEXTURES: &str = "app:delete-textures";
    /// `AppGl::extensions` — no args.
    pub const EXTENSIONS: &str = "app:extensions";
    /// `AppGl::set_display_layer` — args `[x, y, w, h]`.
    pub const DISPLAY_LAYER: &str = "app:display-layer";
    /// `AppGl::present` — args `[post-present framebuffer digest]`.
    pub const PRESENT: &str = "app:present";
    /// `AppGl::charge_cpu` — args `[base_ns]` as [`super::f64_arg`].
    pub const CHARGE_CPU: &str = "app:charge-cpu";
    /// `AppGl::set_draw_class` — args `[draw-class code]`.
    pub const DRAW_CLASS: &str = "app:draw-class";
}

// ----------------------------------------------------------------------
// Recording
// ----------------------------------------------------------------------

#[derive(Debug)]
struct Inner {
    meta: StreamMeta,
    names: Vec<String>,
    index: HashMap<String, u32>,
    calls: Vec<Call>,
    /// Thread charge-ledger value at attach; call timestamps are deltas
    /// from this.
    base: Nanos,
}

/// An in-progress recording. Attach it to the calling host thread with
/// [`Recording::attach`]; instrumented call sites append to the topmost
/// attached recording while the guard lives.
#[derive(Debug, Clone)]
pub struct Recording {
    inner: Arc<Mutex<Inner>>,
}

impl Recording {
    /// Creates an empty recording for the session described by `meta`.
    pub fn new(meta: StreamMeta) -> Recording {
        Recording {
            inner: Arc::new(Mutex::new(Inner {
                meta,
                names: Vec::new(),
                index: HashMap::new(),
                calls: Vec::new(),
                base: 0,
            })),
        }
    }

    /// Attaches this recording to the calling host thread and arms the
    /// process-wide gate. Timestamps are measured from the attach point.
    /// Returns an inert guard (recording nothing) when the
    /// `CYCADA_RECORD` kill switch is off.
    pub fn attach(&self) -> RecordGuard {
        if !master_enabled() {
            return RecordGuard { armed: false };
        }
        self.inner.lock().base = VirtualClock::thread_charged_ns();
        ATTACHED.with(|t| t.borrow_mut().push(self.inner.clone()));
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        RecordGuard { armed: true }
    }

    /// Snapshot of everything recorded so far as an immutable [`Stream`].
    pub fn stream(&self) -> Stream {
        let inner = self.inner.lock();
        Stream {
            meta: inner.meta.clone(),
            names: inner.names.clone(),
            calls: inner.calls.clone(),
        }
    }

    /// Calls recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().calls.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Detaches the recording from the thread (and disarms the gate when the
/// last attached recording anywhere detaches) on drop. Not `Send`: the
/// recording is bound to the attaching thread's ledger.
#[derive(Debug)]
pub struct RecordGuard {
    armed: bool,
}

impl Drop for RecordGuard {
    fn drop(&mut self) {
        if self.armed {
            ATTACHED.with(|t| {
                t.borrow_mut().pop();
            });
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Appends one call to the recording attached to this thread (topmost if
/// several). No-op — and no allocation — when none is attached; call
/// sites should still branch on [`active`] first so the disabled path
/// never marshals arguments.
pub fn record(name: &str, args: &[u64], payload: &[u8]) {
    ATTACHED.with(|t| {
        let stack = t.borrow();
        let Some(inner) = stack.last() else { return };
        let mut inner = inner.lock();
        let vts = VirtualClock::thread_charged_ns().saturating_sub(inner.base);
        let idx = match inner.index.get(name).copied() {
            Some(i) => i,
            None => {
                let i = inner.names.len() as u32;
                inner.names.push(name.to_owned());
                inner.index.insert(name.to_owned(), i);
                i
            }
        };
        inner.calls.push(Call {
            name: idx,
            vts,
            args: args.to_vec(),
            payload: payload.to_vec(),
        });
    });
}

/// Records a marker call (no payload). Used by record/replay harnesses
/// for the metered-region and end-of-stream checkpoints.
pub fn mark(name: &str, args: &[u64]) {
    if active() {
        record(name, args, &[]);
    }
}

// ----------------------------------------------------------------------
// Codec
// ----------------------------------------------------------------------

/// Why a `.cyt` byte stream failed to decode. Decoding malformed input
/// returns one of these — it never panics and never over-allocates
/// (every length is validated against the bytes actually remaining).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a field it promised.
    Truncated {
        /// Byte offset at which more input was needed.
        at: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`].
    Version {
        /// The version the input claimed.
        found: u16,
    },
    /// The platform code is unknown.
    BadPlatform {
        /// The code the input carried.
        code: u8,
    },
    /// The GLES version code is not 1 or 2.
    BadGlesVersion {
        /// The code the input carried.
        code: u8,
    },
    /// A string field is not valid UTF-8.
    BadString {
        /// Byte offset of the string.
        at: usize,
    },
    /// A call references a string-table index past the table.
    BadNameIndex {
        /// Call index.
        call: usize,
        /// The out-of-range table index.
        index: u32,
    },
    /// A call's declared body length disagrees with its contents.
    BadCallLength {
        /// Call index.
        call: usize,
    },
    /// Bytes remain after the last call.
    TrailingBytes {
        /// How many.
        extra: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { at } => write!(f, "truncated .cyt input at byte {at}"),
            CodecError::BadMagic => write!(f, "not a .cyt stream (bad magic)"),
            CodecError::Version { found } => {
                write!(f, ".cyt version {found} (expected {FORMAT_VERSION})")
            }
            CodecError::BadPlatform { code } => write!(f, "unknown platform code {code}"),
            CodecError::BadGlesVersion { code } => write!(f, "unknown GLES version code {code}"),
            CodecError::BadString { at } => write!(f, "invalid UTF-8 string at byte {at}"),
            CodecError::BadNameIndex { call, index } => {
                write!(f, "call {call} references string-table index {index} past the table")
            }
            CodecError::BadCallLength { call } => {
                write!(f, "call {call} body length disagrees with its contents")
            }
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last call")
            }
        }
    }
}

impl std::error::Error for CodecError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.bytes.len() - self.pos < n {
            return Err(CodecError::Truncated { at: self.bytes.len() });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn string(&mut self, len: usize) -> Result<String, CodecError> {
        let at = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadString { at })
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    out.extend_from_slice(&(bytes.len().min(u16::MAX as usize) as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
}

impl Stream {
    /// Serializes to `.cyt` bytes (little-endian, length-prefixed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.calls.len() * 32);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(platform_code(self.meta.platform));
        out.push(self.meta.gles);
        out.extend_from_slice(&self.meta.width.to_le_bytes());
        out.extend_from_slice(&self.meta.height.to_le_bytes());
        out.extend_from_slice(&self.meta.seed.to_le_bytes());
        push_str(&mut out, &self.meta.label);
        out.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        for name in &self.names {
            push_str(&mut out, name);
        }
        out.extend_from_slice(&(self.calls.len() as u32).to_le_bytes());
        for call in &self.calls {
            let body_len = 4 + 8 + 2 + call.args.len() * 8 + 4 + call.payload.len();
            out.extend_from_slice(&(body_len as u32).to_le_bytes());
            out.extend_from_slice(&call.name.to_le_bytes());
            out.extend_from_slice(&call.vts.to_le_bytes());
            out.extend_from_slice(&(call.args.len().min(u16::MAX as usize) as u16).to_le_bytes());
            for a in call.args.iter().take(u16::MAX as usize) {
                out.extend_from_slice(&a.to_le_bytes());
            }
            out.extend_from_slice(&(call.payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&call.payload);
        }
        out
    }

    /// Decodes `.cyt` bytes. Malformed input — truncation, corrupt
    /// header, version mismatch, out-of-range indices, trailing garbage —
    /// returns a [`CodecError`]; this function never panics.
    pub fn decode(bytes: &[u8]) -> Result<Stream, CodecError> {
        let mut c = Cursor { bytes, pos: 0 };
        if c.take(4)? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = c.u16()?;
        if version != FORMAT_VERSION {
            return Err(CodecError::Version { found: version });
        }
        let platform_code = c.u8()?;
        let platform = platform_from_code(platform_code)
            .ok_or(CodecError::BadPlatform { code: platform_code })?;
        let gles = c.u8()?;
        if !matches!(gles, 1 | 2) {
            return Err(CodecError::BadGlesVersion { code: gles });
        }
        let width = c.u32()?;
        let height = c.u32()?;
        let seed = c.u64()?;
        let label_len = c.u16()? as usize;
        let label = c.string(label_len)?;

        let name_count = c.u32()? as usize;
        let mut names = Vec::new();
        for _ in 0..name_count {
            let len = c.u16()? as usize;
            names.push(c.string(len)?);
        }

        let call_count = c.u32()? as usize;
        let mut calls = Vec::new();
        for i in 0..call_count {
            let body_len = c.u32()? as usize;
            let body_end = c
                .pos
                .checked_add(body_len)
                .filter(|&e| e <= bytes.len())
                .ok_or(CodecError::Truncated { at: bytes.len() })?;
            let name = c.u32()?;
            if name as usize >= names.len() {
                return Err(CodecError::BadNameIndex { call: i, index: name });
            }
            let vts = c.u64()?;
            let argc = c.u16()? as usize;
            if body_end.saturating_sub(c.pos) < argc * 8 {
                return Err(CodecError::BadCallLength { call: i });
            }
            let mut args = Vec::with_capacity(argc);
            for _ in 0..argc {
                args.push(c.u64()?);
            }
            let payload_len = c.u32()? as usize;
            if c.pos + payload_len != body_end {
                return Err(CodecError::BadCallLength { call: i });
            }
            let payload = c.take(payload_len)?.to_vec();
            calls.push(Call { name, vts, args, payload });
        }
        if c.pos != bytes.len() {
            return Err(CodecError::TrailingBytes { extra: bytes.len() - c.pos });
        }
        Ok(Stream {
            meta: StreamMeta { platform, gles, width, height, seed, label },
            names,
            calls,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Stream {
        let rec = Recording::new(StreamMeta {
            platform: Platform::CycadaIos,
            gles: 1,
            width: 48,
            height: 32,
            seed: 7,
            label: "unit".to_owned(),
        });
        {
            let _g = rec.attach();
            record(op::CLEAR, &[f32_arg(0.25), 0, 0, f32_arg(1.0)], &[]);
            record(op::DRAW, &[1, 2], &[9, 9, 9]);
            record(op::CLEAR, &[0, 0, 0, 0], &[]);
            mark(MARK_END, &[0xFEED, 123]);
        }
        rec.stream()
    }

    #[test]
    fn record_interns_names_in_first_use_order() {
        let s = sample();
        assert_eq!(s.names, [op::CLEAR, op::DRAW, MARK_END]);
        assert_eq!(s.calls.len(), 4);
        assert_eq!(s.name_of(&s.calls[2]), op::CLEAR);
        assert_eq!(s.calls[1].payload, [9, 9, 9]);
    }

    #[test]
    fn encode_decode_round_trips() {
        let s = sample();
        let bytes = s.encode();
        assert_eq!(Stream::decode(&bytes).expect("decode"), s);
    }

    #[test]
    fn decode_rejects_bad_magic_version_and_truncation() {
        let bytes = sample().encode();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(Stream::decode(&bad), Err(CodecError::BadMagic));

        let mut bad = bytes.clone();
        bad[4] = 0xFF;
        bad[5] = 0xFF;
        assert_eq!(Stream::decode(&bad), Err(CodecError::Version { found: 0xFFFF }));

        for cut in 0..bytes.len() {
            assert!(
                Stream::decode(&bytes[..cut]).is_err(),
                "strict prefix of length {cut} decoded"
            );
        }
    }

    #[test]
    fn detached_thread_records_nothing_and_gate_reads_false() {
        assert!(!active());
        record(op::FLUSH, &[], &[]);
        let rec = Recording::new(sample().meta);
        assert!(rec.is_empty());
        {
            let _g = rec.attach();
            assert!(active());
            record(op::FLUSH, &[], &[]);
        }
        assert!(!active());
        record(op::FLUSH, &[], &[]);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn master_kill_switch_disarms_attach() {
        set_master(Some(false));
        let rec = Recording::new(sample().meta);
        {
            let _g = rec.attach();
            assert!(!active());
            record(op::FLUSH, &[], &[]);
        }
        assert!(rec.is_empty());
        set_master(Some(true));
    }

    #[test]
    fn compact_drops_unreferenced_names() {
        let mut s = sample();
        s.calls.retain(|c| s.names[c.name as usize] == op::DRAW);
        s.compact();
        assert_eq!(s.names, [op::DRAW]);
        assert_eq!(s.calls.len(), 1);
        assert_eq!(s.calls[0].name, 0);
        let bytes = s.encode();
        assert_eq!(Stream::decode(&bytes).expect("decode"), s);
    }
}
