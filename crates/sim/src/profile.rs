//! Calibrated device/platform cost profiles.
//!
//! The paper evaluates four system configurations (§9):
//!
//! * **stock Android** — the unmodified Nexus 7 tablet (Android 4.2.2,
//!   Tegra 3, CPU pinned at 1.3 GHz),
//! * **Cycada Android** — an Android app on the Cycada kernel (same tablet),
//! * **Cycada iOS** — an iOS app on the Cycada kernel (same tablet),
//! * **native iOS** — the same iOS app on an iPad mini (iOS 6.1.2, 1 GHz).
//!
//! A [`DeviceProfile`] captures the calibrated constants that reproduce the
//! paper's micro-benchmarks (Table 3) for each configuration; higher-level
//! costs (diplomats, GPU work) are built from these constants plus simulated
//! work, so the macro results *emerge* rather than being hard-coded.

use crate::Nanos;

/// A thread execution mode: which kernel ABI personality and TLS area a
/// thread currently uses (§1, §3 of the paper).
///
/// In Cycada a thread has **two** personas — a foreign (iOS) one and a
/// domestic (Android) one — and diplomats switch between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Persona {
    /// The foreign persona: XNU/Darwin kernel ABI, iOS TLS layout.
    Ios,
    /// The domestic persona: Linux/Android kernel ABI, Bionic TLS layout.
    Android,
}

impl Persona {
    /// The opposite persona.
    pub fn other(self) -> Persona {
        match self {
            Persona::Ios => Persona::Android,
            Persona::Android => Persona::Ios,
        }
    }

    /// All personas, in a stable order.
    pub const ALL: [Persona; 2] = [Persona::Ios, Persona::Android];

    /// A stable index (0 for iOS, 1 for Android) used for per-persona arrays.
    pub fn index(self) -> usize {
        match self {
            Persona::Ios => 0,
            Persona::Android => 1,
        }
    }
}

impl std::fmt::Display for Persona {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Persona::Ios => write!(f, "iOS"),
            Persona::Android => write!(f, "Android"),
        }
    }
}

/// The four system configurations evaluated in §9 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Unmodified Android on the Nexus 7.
    StockAndroid,
    /// Android app running on the Cycada kernel (Nexus 7).
    CycadaAndroid,
    /// iOS app running on the Cycada kernel (Nexus 7).
    CycadaIos,
    /// iOS app running natively on the iPad mini.
    NativeIos,
}

impl Platform {
    /// All platforms in the order the paper's figures present them.
    pub const ALL: [Platform; 4] = [
        Platform::CycadaIos,
        Platform::CycadaAndroid,
        Platform::NativeIos,
        Platform::StockAndroid,
    ];

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Platform::StockAndroid => "Android",
            Platform::CycadaAndroid => "Cycada Android",
            Platform::CycadaIos => "Cycada iOS",
            Platform::NativeIos => "iOS",
        }
    }

    /// Whether this configuration runs on the Cycada-modified kernel.
    pub fn is_cycada(self) -> bool {
        matches!(self, Platform::CycadaAndroid | Platform::CycadaIos)
    }

    /// Whether the *app* being run is an iOS binary.
    pub fn app_is_ios(self) -> bool {
        matches!(self, Platform::CycadaIos | Platform::NativeIos)
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// CPU class of the evaluation devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuClass {
    /// Nexus 7: quad Cortex-A9, pinned at 1.3 GHz for the experiments.
    Tegra3 ,
    /// iPad mini: dual Swift-class core at 1.0 GHz.
    AppleA5,
}

impl CpuClass {
    /// Relative cost multiplier for CPU-bound work, normalized to the
    /// Nexus 7 (the paper attributes Cycada's 2D wins over native iOS to the
    /// faster Nexus 7 CPU, §9).
    pub fn scale(self) -> f64 {
        match self {
            CpuClass::Tegra3 => 1.0,
            CpuClass::AppleA5 => 1.3,
        }
    }
}

/// Per-primitive GPU cost constants (nanoseconds of virtual time).
///
/// These model the throughput of the simulated GPU; macro-level costs such
/// as "a full-screen blit costs ~2 ms" emerge from pixel counts times these
/// constants, matching the magnitudes of Figures 9 and 10.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuCostModel {
    /// Cost to transform one vertex.
    pub per_vertex_ns: f64,
    /// Cost to shade and write one fragment (3D pipeline).
    pub per_fragment_ns: f64,
    /// Cost to clear one pixel of a render target.
    pub per_clear_pixel_ns: f64,
    /// Cost to upload one texel byte from CPU memory.
    pub per_upload_byte_ns: f64,
    /// Cost to copy one byte GPU-to-GPU (blits, swaps, composition).
    pub per_copy_byte_ns: f64,
    /// Fixed cost to validate and submit one command to the GPU queue.
    pub command_submit_ns: Nanos,
    /// Fixed cost to compile and link a shader program.
    pub link_program_ns: Nanos,
    /// Fixed cost of the display controller latching a new frame. On the
    /// iPad this path is "highly optimized hardware" (§9); on the Nexus 7 it
    /// goes through SurfaceFlinger.
    pub present_fixed_ns: Nanos,
    /// Relative efficiency of the 2D (CPU-assisted vector) path; >1 is
    /// slower. The iPad's 2D path is noticeably slower than the Nexus 7's.
    pub scale_2d: f64,
    /// Relative efficiency of the 3D path. The iOS 3D *test* wins come
    /// from the software stack (batched submission), not raw fill rate —
    /// the paper itself attributes them to "differences in the exact GLES
    /// calls made on either platform" (§9).
    pub scale_3d: f64,
}

impl GpuCostModel {
    /// The Tegra 3 GPU in the Nexus 7.
    pub fn tegra3() -> Self {
        GpuCostModel {
            per_vertex_ns: 25.0,
            per_fragment_ns: 1.0,
            per_clear_pixel_ns: 0.9,
            per_upload_byte_ns: 0.12,
            per_copy_byte_ns: 0.22,
            command_submit_ns: 900,
            link_program_ns: 3_300_000,
            present_fixed_ns: 180_000,
            scale_2d: 1.0,
            scale_3d: 1.0,
        }
    }

    /// The PowerVR SGX543MP2 GPU in the iPad mini.
    pub fn sgx543() -> Self {
        GpuCostModel {
            per_vertex_ns: 22.0,
            per_fragment_ns: 0.8,
            per_clear_pixel_ns: 0.8,
            per_upload_byte_ns: 0.12,
            per_copy_byte_ns: 0.2,
            command_submit_ns: 800,
            link_program_ns: 2_800_000,
            // The iOS present path is hardware-assisted (§9: the
            // aegl_bridge_* work "corresponds to a highly optimized hardware
            // supported path in iOS on the iPad mini").
            present_fixed_ns: 60_000,
            scale_2d: 1.9,
            scale_3d: 1.0,
        }
    }
}

/// The complete calibrated cost profile of one platform configuration.
///
/// # Examples
///
/// ```
/// use cycada_sim::{DeviceProfile, Platform, Persona};
///
/// let p = DeviceProfile::for_platform(Platform::CycadaIos);
/// // Table 3: a Cycada iOS kernel trap costs 305 ns.
/// assert_eq!(p.trap_ns(Persona::Ios), 305);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Which configuration this profile describes.
    pub platform: Platform,
    /// The CPU class of the device.
    pub cpu: CpuClass,
    /// The GPU cost model of the device.
    pub gpu: GpuCostModel,
    /// Kernel trap cost when trapping with the Android (Linux) ABI, if the
    /// platform supports Android binaries.
    pub trap_android_ns: Option<Nanos>,
    /// Kernel trap cost when trapping with the iOS (XNU) ABI, if the
    /// platform supports iOS binaries.
    pub trap_ios_ns: Option<Nanos>,
    /// Cost of an ordinary user-space function call (Table 3: 9 ns).
    pub function_call_ns: Nanos,
    /// Display width in pixels.
    pub display_width: u32,
    /// Display height in pixels.
    pub display_height: u32,
}

impl DeviceProfile {
    /// Builds the calibrated profile for one of the paper's configurations.
    ///
    /// Calibration sources: Table 3 (kernel/ABI micro-benchmarks) and the
    /// device spec sheets (display resolution, CPU frequency).
    pub fn for_platform(platform: Platform) -> Self {
        match platform {
            Platform::StockAndroid => DeviceProfile {
                platform,
                cpu: CpuClass::Tegra3,
                gpu: GpuCostModel::tegra3(),
                trap_android_ns: Some(225),
                trap_ios_ns: None,
                function_call_ns: 9,
                display_width: 1280,
                display_height: 800,
            },
            // Cycada adds ~8% to an Android trap and 35% to an iOS trap due
            // to its unoptimized kernel entry path (Table 3 discussion).
            Platform::CycadaAndroid | Platform::CycadaIos => DeviceProfile {
                platform,
                cpu: CpuClass::Tegra3,
                gpu: GpuCostModel::tegra3(),
                trap_android_ns: Some(244),
                trap_ios_ns: Some(305),
                function_call_ns: 9,
                display_width: 1280,
                display_height: 800,
            },
            // The iPad mini pays extra on kernel entry for protection logic
            // guarding against return-to-user attacks (Table 3 discussion).
            Platform::NativeIos => DeviceProfile {
                platform,
                cpu: CpuClass::AppleA5,
                gpu: GpuCostModel::sgx543(),
                trap_android_ns: None,
                trap_ios_ns: Some(575),
                function_call_ns: 12,
                display_width: 1024,
                display_height: 768,
            },
        }
    }

    /// Kernel trap cost for a thread currently executing in `persona`.
    ///
    /// # Panics
    ///
    /// Panics if the platform cannot host binaries of that persona (e.g. an
    /// iOS trap on stock Android) — simulated code should never reach that
    /// state, so it is a logic error rather than a recoverable condition.
    pub fn trap_ns(&self, persona: Persona) -> Nanos {
        let cost = match persona {
            Persona::Android => self.trap_android_ns,
            Persona::Ios => self.trap_ios_ns,
        };
        cost.unwrap_or_else(|| {
            panic!(
                "platform {:?} cannot trap with the {} ABI",
                self.platform, persona
            )
        })
    }

    /// Whether the platform can host binaries of the given persona at all.
    pub fn supports_persona(&self, persona: Persona) -> bool {
        match persona {
            Persona::Android => self.trap_android_ns.is_some(),
            Persona::Ios => self.trap_ios_ns.is_some(),
        }
    }

    /// Scales a CPU-bound nanosecond cost by the device's CPU speed.
    pub fn cpu_cost(&self, base_ns: f64) -> f64 {
        base_ns * self.cpu.scale()
    }

    /// Total number of display pixels.
    pub fn display_pixels(&self) -> u64 {
        u64::from(self.display_width) * u64::from(self.display_height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persona_other_round_trips() {
        for p in Persona::ALL {
            assert_eq!(p.other().other(), p);
        }
        assert_ne!(Persona::Ios.index(), Persona::Android.index());
    }

    #[test]
    fn table3_null_syscall_calibration() {
        // The exact Table 3 values.
        let stock = DeviceProfile::for_platform(Platform::StockAndroid);
        assert_eq!(stock.trap_ns(Persona::Android), 225);
        let cycada = DeviceProfile::for_platform(Platform::CycadaIos);
        assert_eq!(cycada.trap_ns(Persona::Android), 244);
        assert_eq!(cycada.trap_ns(Persona::Ios), 305);
        let ipad = DeviceProfile::for_platform(Platform::NativeIos);
        assert_eq!(ipad.trap_ns(Persona::Ios), 575);
    }

    #[test]
    fn cycada_overhead_ratios_match_paper() {
        // "Cycada adds about 8% overhead to an Android kernel trap and 35%
        // to an iOS trap."
        let cycada = DeviceProfile::for_platform(Platform::CycadaAndroid);
        let android_overhead = cycada.trap_ns(Persona::Android) as f64 / 225.0;
        assert!((android_overhead - 1.08).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "cannot trap")]
    fn stock_android_cannot_trap_ios() {
        DeviceProfile::for_platform(Platform::StockAndroid).trap_ns(Persona::Ios);
    }

    #[test]
    fn persona_support() {
        let stock = DeviceProfile::for_platform(Platform::StockAndroid);
        assert!(stock.supports_persona(Persona::Android));
        assert!(!stock.supports_persona(Persona::Ios));
        let cycada = DeviceProfile::for_platform(Platform::CycadaIos);
        assert!(cycada.supports_persona(Persona::Android));
        assert!(cycada.supports_persona(Persona::Ios));
        let ipad = DeviceProfile::for_platform(Platform::NativeIos);
        assert!(!ipad.supports_persona(Persona::Android));
    }

    #[test]
    fn ipad_cpu_is_slower() {
        let ipad = DeviceProfile::for_platform(Platform::NativeIos);
        assert!(ipad.cpu_cost(100.0) > 100.0);
        let nexus = DeviceProfile::for_platform(Platform::StockAndroid);
        assert_eq!(nexus.cpu_cost(100.0), 100.0);
    }

    #[test]
    fn display_sizes() {
        assert_eq!(
            DeviceProfile::for_platform(Platform::StockAndroid).display_pixels(),
            1280 * 800
        );
        assert_eq!(
            DeviceProfile::for_platform(Platform::NativeIos).display_pixels(),
            1024 * 768
        );
    }

    #[test]
    fn platform_labels_and_flags() {
        assert_eq!(Platform::CycadaIos.label(), "Cycada iOS");
        assert!(Platform::CycadaIos.is_cycada());
        assert!(Platform::CycadaIos.app_is_ios());
        assert!(!Platform::StockAndroid.is_cycada());
        assert!(Platform::NativeIos.app_is_ios());
        assert!(!Platform::CycadaAndroid.app_is_ios());
    }
}
