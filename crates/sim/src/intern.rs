//! Function-name interning and dense, lock-free function-keyed tables.
//!
//! The paper's diplomat dispatch path (§4.1, Table 3) resolves every bridged
//! iOS function through a per-process symbol cache — "the address is cached
//! in a locally-scoped static variable" — so the steady-state cost of a
//! diplomatic call is a handful of loads, not a string lookup. The
//! reproduction's original dispatch plane strayed from that: every bridged
//! call hashed a `&'static str` into a mutex-guarded `HashMap` twice (once
//! for the diplomat entry, once for stats accounting).
//!
//! This module restores the paper's shape. [`FnId`] interns a function name
//! into a small dense integer (a `u32` index into a global append-only
//! table); [`FnTable`] and [`FnDense`] are chunked, lock-free tables keyed
//! by that integer. Steady-state dispatch becomes: load a cached [`FnId`],
//! index a dense slot table, bump atomic counters. Locks are taken only at
//! registration (first intern of a name) and snapshot time.
//!
//! # Examples
//!
//! ```
//! use cycada_sim::intern::FnId;
//!
//! let a = FnId::intern("glDrawArrays");
//! let b = FnId::intern("glDrawArrays");
//! assert_eq!(a, b);                       // idempotent
//! assert_eq!(a.name(), "glDrawArrays");   // round-trips to the name
//! assert_eq!(FnId::lookup("glDrawArrays"), Some(a));
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

use parking_lot::RwLock;

/// Slots per lazily-allocated chunk of a dense table.
const CHUNK: usize = 256;
/// Maximum number of chunks; `CHUNK * MAX_CHUNKS` bounds the id space.
const MAX_CHUNKS: usize = 256;

/// Maximum number of distinct interned function names (65 536 — two orders
/// of magnitude above the 344 iOS GLES entry points of Table 2).
pub const MAX_FN_IDS: usize = CHUNK * MAX_CHUNKS;

/// A small dense identifier for an interned function name.
///
/// Ids are assigned in interning order starting from 0 and are stable for
/// the life of the process: the same sequence of first-time interns always
/// yields the same ids, and a name, once interned, keeps its id forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnId(u32);

struct InternTable {
    /// Name → id. Locked only on intern/lookup-by-name, never on dispatch.
    by_name: RwLock<HashMap<&'static str, FnId>>,
    /// Id → name. Lock-free reads for snapshot-time name re-attachment.
    names: FnTable<&'static str>,
    /// Number of ids assigned so far (lock-free mirror of `by_name.len()`).
    len: AtomicU32,
}

fn intern_table() -> &'static InternTable {
    static TABLE: OnceLock<InternTable> = OnceLock::new();
    TABLE.get_or_init(|| InternTable {
        by_name: RwLock::new(HashMap::new()),
        names: FnTable::new(),
        len: AtomicU32::new(0),
    })
}

impl FnId {
    /// Interns `name`, returning its id. The first intern of a name appends
    /// it to the global table (taking a lock); later interns of the same
    /// name return the same id.
    pub fn intern(name: &str) -> FnId {
        let table = intern_table();
        // The read-check / write-recheck dance below is a racy protocol;
        // mark its entry so the model checker can interleave competitors.
        crate::check::schedule_point(
            "intern.fn_id",
            std::ptr::from_ref(table) as usize,
            crate::check::Access::Write,
        );
        if let Some(&id) = table.by_name.read().get(name) {
            return id;
        }
        let mut map = table.by_name.write();
        // Re-check: another thread may have interned between the locks.
        if let Some(&id) = map.get(name) {
            return id;
        }
        let id = FnId(map.len() as u32);
        assert!(
            (id.0 as usize) < MAX_FN_IDS,
            "interned function-name table overflow ({MAX_FN_IDS} names)"
        );
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        table.names.get_or_init(id, || leaked);
        map.insert(leaked, id);
        table.len.store(map.len() as u32, Ordering::Release);
        id
    }

    /// Returns the id for `name` if it has already been interned.
    pub fn lookup(name: &str) -> Option<FnId> {
        intern_table().by_name.read().get(name).copied()
    }

    /// The interned name this id stands for.
    pub fn name(self) -> &'static str {
        intern_table()
            .names
            .get(self)
            .copied()
            .expect("FnId not produced by FnId::intern")
    }

    /// Number of names interned so far. Ids `0..count()` are all valid.
    pub fn count() -> usize {
        intern_table().len.load(Ordering::Acquire) as usize
    }

    /// Every id assigned so far, in interning order.
    pub fn all() -> impl Iterator<Item = FnId> {
        (0..Self::count() as u32).map(FnId)
    }

    /// The raw index value.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// The id as a table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A chunked, lock-free table mapping [`FnId`] to a once-initialized `T`.
///
/// Slots are write-once ([`OnceLock`] semantics); chunks of [`CHUNK`] slots
/// are heap-allocated on first touch so an empty table stays small. Reads
/// on the dispatch fast path are two relaxed pointer loads and an index —
/// no locks, no hashing.
pub struct FnTable<T> {
    chunks: [OnceLock<Box<Chunk<T>>>; MAX_CHUNKS],
}

struct Chunk<T> {
    slots: [OnceLock<T>; CHUNK],
}

impl<T> FnTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        FnTable {
            chunks: [const { OnceLock::new() }; MAX_CHUNKS],
        }
    }

    fn slot(&self, id: FnId) -> &OnceLock<T> {
        let i = id.index();
        let chunk = self.chunks[i / CHUNK].get_or_init(|| {
            Box::new(Chunk {
                slots: [const { OnceLock::new() }; CHUNK],
            })
        });
        &chunk.slots[i % CHUNK]
    }

    /// Returns the value for `id` if its slot has been initialized.
    pub fn get(&self, id: FnId) -> Option<&T> {
        let i = id.index();
        self.chunks.get(i / CHUNK)?.get()?.slots[i % CHUNK].get()
    }

    /// Returns the value for `id`, initializing the slot with `init` if it
    /// is empty. Concurrent initializers race benignly; one wins.
    pub fn get_or_init(&self, id: FnId, init: impl FnOnce() -> T) -> &T {
        crate::check::schedule_point(
            "intern.table",
            std::ptr::from_ref(self) as usize + id.index(),
            crate::check::Access::Read,
        );
        self.slot(id).get_or_init(init)
    }
}

impl<T> Default for FnTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for FnTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let populated = self.chunks.iter().filter(|c| c.get().is_some()).count();
        f.debug_struct("FnTable")
            .field("chunks", &populated)
            .finish()
    }
}

/// A chunked table of default-initialized values keyed by [`FnId`].
///
/// Unlike [`FnTable`], every slot in a touched chunk exists immediately with
/// `T::default()`; [`FnDense::slot`] therefore always returns a reference.
/// This is the shape the sharded stats accumulator needs: a slot of atomic
/// counters that any thread can bump without an init handshake per slot.
pub struct FnDense<T: Default> {
    chunks: [OnceLock<Box<DenseChunk<T>>>; MAX_CHUNKS],
}

struct DenseChunk<T> {
    slots: [T; CHUNK],
}

impl<T: Default> FnDense<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        FnDense {
            chunks: [const { OnceLock::new() }; MAX_CHUNKS],
        }
    }

    /// Returns the slot for `id`, allocating its chunk on first touch.
    pub fn slot(&self, id: FnId) -> &T {
        let i = id.index();
        let chunk = self.chunks[i / CHUNK].get_or_init(|| {
            Box::new(DenseChunk {
                slots: std::array::from_fn(|_| T::default()),
            })
        });
        &chunk.slots[i % CHUNK]
    }

    /// Returns the slot for `id` only if its chunk is already allocated —
    /// snapshot reads use this to skip untouched regions without allocating.
    pub fn peek(&self, id: FnId) -> Option<&T> {
        let i = id.index();
        Some(&self.chunks.get(i / CHUNK)?.get()?.slots[i % CHUNK])
    }
}

impl<T: Default> Default for FnDense<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Default> std::fmt::Debug for FnDense<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let populated = self.chunks.iter().filter(|c| c.get().is_some()).count();
        f.debug_struct("FnDense")
            .field("chunks", &populated)
            .finish()
    }
}

/// Pads and aligns `T` to a 64-byte cache line so per-shard counters do not
/// false-share (the role crossbeam's `CachePadded` plays upstream).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Caches a [`FnId`] in a call-site-local static, mirroring the paper's
/// "locally-scoped static variable" symbol cache: the intern lock is taken
/// at most once per call site, after which dispatch reads a plain static.
///
/// # Examples
///
/// ```
/// use cycada_sim::fn_id;
/// let id = fn_id!("glBindTexture");
/// assert_eq!(id.name(), "glBindTexture");
/// ```
#[macro_export]
macro_rules! fn_id {
    ($name:expr) => {{
        static __CYCADA_FN_ID: ::std::sync::OnceLock<$crate::intern::FnId> =
            ::std::sync::OnceLock::new();
        *__CYCADA_FN_ID.get_or_init(|| $crate::intern::FnId::intern($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_round_trips() {
        let a = FnId::intern("intern_test_fn_a");
        let b = FnId::intern("intern_test_fn_a");
        assert_eq!(a, b);
        assert_eq!(a.name(), "intern_test_fn_a");
        assert_eq!(FnId::lookup("intern_test_fn_a"), Some(a));
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let a = FnId::intern("intern_test_fn_b");
        let b = FnId::intern("intern_test_fn_c");
        assert_ne!(a, b);
        assert!(FnId::count() >= 2);
    }

    #[test]
    fn lookup_of_unknown_name_is_none() {
        assert_eq!(FnId::lookup("intern_test_never_interned"), None);
    }

    #[test]
    fn fn_table_get_or_init_races_to_one_value() {
        let table: FnTable<u64> = FnTable::new();
        let id = FnId::intern("intern_test_fn_table");
        assert!(table.get(id).is_none());
        assert_eq!(*table.get_or_init(id, || 7), 7);
        assert_eq!(*table.get_or_init(id, || 9), 7);
        assert_eq!(table.get(id), Some(&7));
    }

    #[test]
    fn fn_dense_slots_default_and_persist() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let table: FnDense<AtomicU64> = FnDense::new();
        let id = FnId::intern("intern_test_fn_dense");
        assert!(table.peek(id).is_none());
        table.slot(id).fetch_add(3, Ordering::Relaxed);
        table.slot(id).fetch_add(4, Ordering::Relaxed);
        assert_eq!(table.peek(id).unwrap().load(Ordering::Relaxed), 7);
    }

    #[test]
    fn fn_id_macro_caches_per_site() {
        fn site() -> FnId {
            crate::fn_id!("intern_test_macro_site")
        }
        assert_eq!(site(), site());
        assert_eq!(site().name(), "intern_test_macro_site");
    }

    #[test]
    fn cache_padded_is_line_aligned() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
    }
}
