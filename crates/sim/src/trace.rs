//! The trace plane: per-host-thread ring-buffer span/event recording plus
//! typed counters, for observing the hot seams of the stack (diplomat
//! calls, impersonations, DLR replica loads, EGL/EAGL lifecycle, IOSurface
//! locking, composition) without perturbing the simulation.
//!
//! # Determinism contract
//!
//! The trace plane **never interacts with the virtual clock**: recording an
//! event reads the calling thread's charge ledger
//! ([`crate::VirtualClock::thread_charged_ns`]) but charges nothing, so all
//! figure/table regenerators produce byte-identical output whether tracing
//! is disabled or force-enabled (`CYCADA_TRACE=1`). Wall-clock timestamps
//! appear only in trace output, never in any figure.
//!
//! # Cost contract
//!
//! * **Disabled** (the default): every instrumented call site performs one
//!   relaxed atomic load and a predictable branch — low single-digit
//!   nanoseconds (`benches/trace.rs`, `BENCH_trace.json`).
//! * **Enabled**: an event is one append into the calling thread's own
//!   ring buffer (a seqlock-protected slot write — no locks, no waiting,
//!   no allocation after the ring exists).
//! * **Counters** on failure and lifecycle paths are *always on* (one
//!   relaxed `fetch_add`), so a swallowed [`ImpersonationGuard`] drop
//!   error or a skipped TLS-teardown eviction is observable even with
//!   tracing off. The two per-call hot counters
//!   ([`Counter::DiplomatCalls`], [`Counter::PersonaSwitches`]) only count
//!   while tracing is enabled, keeping the disabled diplomat path free of
//!   shared-cache-line traffic.
//!
//! # Ring buffer layout
//!
//! Each host thread owns one fixed-capacity ring ([`RING_CAPACITY`] slots)
//! registered in a global list on first use; the ring outlives its thread
//! so events recorded during thread teardown (the interesting ones) are
//! still drained. Appends are single-producer: only the owning thread
//! writes, guarded by a per-slot sequence word (odd = write in progress,
//! even = slot holds the event whose index the word encodes). Snapshots
//! from any thread validate the sequence word around the copy and drop
//! torn slots, so a drain concurrent with tracing loses at most the events
//! being overwritten — it never blocks the traced thread.
//!
//! [`ImpersonationGuard`]: crate::trace#impersonation

use std::cell::{OnceCell, RefCell};
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use crate::{Nanos, VirtualClock};

/// Events kept per host thread before the oldest is overwritten.
pub const RING_CAPACITY: usize = 4096;

// ----------------------------------------------------------------------
// Global gate
// ----------------------------------------------------------------------

const GATE_UNINIT: u8 = 0;
const GATE_OFF: u8 = 1;
const GATE_ON: u8 = 2;

/// Tri-state so the first check can consult `CYCADA_TRACE` without adding
/// cost to every later check (a single relaxed load).
static GATE: AtomicU8 = AtomicU8::new(GATE_UNINIT);

/// Whether event recording is enabled. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        GATE_ON => true,
        GATE_OFF => false,
        _ => init_gate(),
    }
}

#[cold]
fn init_gate() -> bool {
    let on = std::env::var("CYCADA_TRACE")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on"))
        .unwrap_or(false);
    let target = if on { GATE_ON } else { GATE_OFF };
    // Only transition out of UNINIT: an explicit set_enabled racing the
    // first check must win.
    let _ = GATE.compare_exchange(GATE_UNINIT, target, Ordering::Relaxed, Ordering::Relaxed);
    GATE.load(Ordering::Relaxed) == GATE_ON
}

/// Turns event recording on or off process-wide. Overrides `CYCADA_TRACE`.
pub fn set_enabled(on: bool) {
    GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
}

// ----------------------------------------------------------------------
// Typed counters
// ----------------------------------------------------------------------

/// The typed trace counters. Failure/lifecycle counters count always;
/// the starred hot-path counters count only while tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Diplomat calls executed (*hot: counts only while tracing*).
    DiplomatCalls,
    /// Persona switches performed (*hot: counts only while tracing*).
    PersonaSwitches,
    /// Impersonations begun.
    ImpersonationsBegun,
    /// Impersonations ended cleanly (finish or drop, all TLS restored).
    ImpersonationsFinished,
    /// Impersonation restore errors swallowed by `Drop` — every one of
    /// these is a thread that may have run with partially foreign TLS.
    ImpersonationDropSwallowedErrors,
    /// `dlforce` replica namespaces created.
    ReplicaLoads,
    /// Namespace-scoped (`Replica::dlopen`) opens.
    NamespacedDlopens,
    /// Namespace-scoped (`Replica::dlsym`) symbol lookups.
    NamespacedDlsyms,
    /// EGL contexts created.
    EglContextsCreated,
    /// EGL contexts destroyed.
    EglContextsDestroyed,
    /// EGL window surfaces created.
    EglSurfacesCreated,
    /// EGL window surfaces destroyed.
    EglSurfacesDestroyed,
    /// EAGL `presentRenderbuffer:` frames.
    EaglPresents,
    /// IOSurface CPU locks.
    IoSurfaceLocks,
    /// IOSurface CPU unlocks.
    IoSurfaceUnlocks,
    /// SurfaceFlinger compositions (full-screen posts and layer composes).
    Compositions,
    /// Bridge row-bytes eviction skipped because the thread-local was
    /// already torn down (thread exit) — each one is a scan entry that
    /// outlives its bridge until the host thread dies.
    RowBytesTeardownSkips,
    /// GPU device contention: a command-list execution found its target
    /// buffer's guard held and had to wait (DESIGN.md §5f). Zero when
    /// sessions render to disjoint buffers.
    DeviceLockWaits,
    /// Gralloc contention: a CPU lock/unlock of a GraphicBuffer found the
    /// pixel guard held by another thread.
    GrallocLockWaits,
    /// SurfaceFlinger contention: a present found another thread draining
    /// the present queue and had to wait for its own frame to latch.
    FlingerLockWaits,
    /// Compositor tiles skipped because no queued blit's damage
    /// intersected them — their scanout bytes were provably already
    /// correct (DESIGN.md §5g).
    TilesSkippedClean,
    /// Compositor tiles where occlusion culling dropped at least one
    /// lower layer because a later blit fully covered the tile.
    TilesSkippedOccluded,
    /// Damage queries on the present path that fell back to full
    /// damage (journal history exhausted, unprovable write set, or a
    /// scaled blit whose source damage cannot be mapped precisely).
    DamageFullFallbacks,
    /// Journal overflow merges that found a degenerate history shape
    /// (fewer than two entries at the overflow threshold) and fell back
    /// to conservative full damage instead of panicking. Always on:
    /// every bump is a journal whose bounded-history invariant was
    /// violated, answered soundly.
    DamageMergeFallbacks,
    /// Charge-ledger deltas observed to run backwards: a `ThreadSpan`
    /// or `MeterGuard` was read or dropped on a different host thread
    /// than the one that created it, making its ledger delta
    /// meaningless. Always on — each bump is a metered span whose
    /// virtual time was silently lost (credited as zero).
    MeterLedgerInversions,
    /// Present tickets the drain loop gave up waiting on: the enqueuer
    /// claimed a ticket but never published its op within the
    /// publication deadline (it panicked or was killed mid-present).
    /// The frame is dropped and counted instead of wedging every other
    /// session sharing the device.
    PresentTeardownSkips,
    /// Fleet tasks executed by a worker other than the one they were
    /// initially queued on (work-stealing migrations).
    FleetTasksStolen,
    /// Fleet tasks that finished after their per-task wall deadline.
    FleetDeadlineMisses,
}

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; 28] = [
        Counter::DiplomatCalls,
        Counter::PersonaSwitches,
        Counter::ImpersonationsBegun,
        Counter::ImpersonationsFinished,
        Counter::ImpersonationDropSwallowedErrors,
        Counter::ReplicaLoads,
        Counter::NamespacedDlopens,
        Counter::NamespacedDlsyms,
        Counter::EglContextsCreated,
        Counter::EglContextsDestroyed,
        Counter::EglSurfacesCreated,
        Counter::EglSurfacesDestroyed,
        Counter::EaglPresents,
        Counter::IoSurfaceLocks,
        Counter::IoSurfaceUnlocks,
        Counter::Compositions,
        Counter::RowBytesTeardownSkips,
        Counter::DeviceLockWaits,
        Counter::GrallocLockWaits,
        Counter::FlingerLockWaits,
        Counter::TilesSkippedClean,
        Counter::TilesSkippedOccluded,
        Counter::DamageFullFallbacks,
        Counter::DamageMergeFallbacks,
        Counter::MeterLedgerInversions,
        Counter::PresentTeardownSkips,
        Counter::FleetTasksStolen,
        Counter::FleetDeadlineMisses,
    ];

    /// Stable kebab-case name (used in summaries and exports).
    pub fn name(self) -> &'static str {
        match self {
            Counter::DiplomatCalls => "diplomat-calls",
            Counter::PersonaSwitches => "persona-switches",
            Counter::ImpersonationsBegun => "impersonations-begun",
            Counter::ImpersonationsFinished => "impersonations-finished",
            Counter::ImpersonationDropSwallowedErrors => "impersonation-drop-swallowed-errors",
            Counter::ReplicaLoads => "replica-loads",
            Counter::NamespacedDlopens => "namespaced-dlopens",
            Counter::NamespacedDlsyms => "namespaced-dlsyms",
            Counter::EglContextsCreated => "egl-contexts-created",
            Counter::EglContextsDestroyed => "egl-contexts-destroyed",
            Counter::EglSurfacesCreated => "egl-surfaces-created",
            Counter::EglSurfacesDestroyed => "egl-surfaces-destroyed",
            Counter::EaglPresents => "eagl-presents",
            Counter::IoSurfaceLocks => "iosurface-locks",
            Counter::IoSurfaceUnlocks => "iosurface-unlocks",
            Counter::Compositions => "compositions",
            Counter::RowBytesTeardownSkips => "row-bytes-teardown-skips",
            Counter::DeviceLockWaits => "device-lock-waits",
            Counter::GrallocLockWaits => "gralloc-lock-waits",
            Counter::FlingerLockWaits => "flinger-lock-waits",
            Counter::TilesSkippedClean => "tiles-skipped-clean",
            Counter::TilesSkippedOccluded => "tiles-skipped-occluded",
            Counter::DamageFullFallbacks => "damage-full-fallbacks",
            Counter::DamageMergeFallbacks => "damage-merge-fallbacks",
            Counter::MeterLedgerInversions => "meter-ledger-inversions",
            Counter::PresentTeardownSkips => "present-teardown-skips",
            Counter::FleetTasksStolen => "fleet-tasks-stolen",
            Counter::FleetDeadlineMisses => "fleet-deadline-misses",
        }
    }
}

const COUNTER_COUNT: usize = Counter::ALL.len();

static COUNTERS: [AtomicU64; COUNTER_COUNT] =
    [const { AtomicU64::new(0) }; COUNTER_COUNT];

/// Increments a counter by one.
#[inline]
pub fn bump(counter: Counter) {
    COUNTERS[counter as usize].fetch_add(1, Ordering::Relaxed);
}

/// Increments a counter by `n`.
#[inline]
pub fn add(counter: Counter, n: u64) {
    COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
}

/// The current value of a counter.
pub fn counter(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Relaxed)
}

/// Every counter with its current value, in declaration order.
pub fn counters() -> Vec<(&'static str, u64)> {
    Counter::ALL.iter().map(|c| (c.name(), counter(*c))).collect()
}

// ----------------------------------------------------------------------
// Events
// ----------------------------------------------------------------------

/// Which subsystem an event belongs to (the Chrome `cat` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Diplomat engine: the 11-step call procedure.
    Diplomat,
    /// Thread impersonation lifecycle.
    Impersonation,
    /// Dynamic linker: loads, `dlforce`, namespace-scoped lookups.
    Linker,
    /// Android EGL front: context/surface lifecycle, swaps.
    Egl,
    /// EAGL reimplementation: presents.
    Eagl,
    /// IOSurface service traffic.
    IoSurface,
    /// Gralloc / SurfaceFlinger composition.
    Gralloc,
    /// Bridge-side foreign state management.
    Bridge,
    /// App-level markers.
    App,
}

impl Category {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Diplomat => "diplomat",
            Category::Impersonation => "impersonation",
            Category::Linker => "linker",
            Category::Egl => "egl",
            Category::Eagl => "eagl",
            Category::IoSurface => "iosurface",
            Category::Gralloc => "gralloc",
            Category::Bridge => "bridge",
            Category::App => "app",
        }
    }
}

/// Span (Chrome `ph:"X"`) or instant (`ph:"i"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration: wall/virtual start plus wall/virtual duration.
    Span,
    /// A point event.
    Instant,
}

/// One recorded event. Plain `Copy` data so ring slots can be snapshotted
/// under the seqlock protocol.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Static event name (for diplomat spans, the diplomat's name).
    pub name: &'static str,
    /// Subsystem category.
    pub cat: Category,
    /// Span or instant.
    pub kind: EventKind,
    /// Trace-plane id of the recording host thread (assigned on first
    /// event, from 1).
    pub tid: u64,
    /// Wall-clock nanoseconds since the process trace epoch.
    pub wall_start_ns: u64,
    /// Wall-clock duration (0 for instants).
    pub wall_dur_ns: u64,
    /// The recording thread's charge-ledger position at span start
    /// ([`VirtualClock::thread_charged_ns`]): deterministic virtual time.
    pub virt_start_ns: Nanos,
    /// Virtual nanoseconds the recording thread charged during the span
    /// (0 for instants).
    pub virt_dur_ns: Nanos,
    /// Trace id of the innermost live [`crate::SessionMeter`] scope on the
    /// recording thread (0 = none).
    pub meter: u64,
    /// Event-specific payload (ids, pattern indices, ...).
    pub arg: u64,
}

// ----------------------------------------------------------------------
// Per-thread rings
// ----------------------------------------------------------------------

struct Slot {
    /// Odd = a write is in progress; even value `2*(idx+1)` = the slot
    /// holds the completed event with ring index `idx`.
    seq: AtomicU64,
    data: std::cell::UnsafeCell<MaybeUninit<TraceEvent>>,
}

struct ThreadRing {
    tid: u64,
    /// Next write index (monotonically increasing; slot = head % capacity).
    head: AtomicU64,
    /// Indices below this were logically cleared by `clear()`.
    cleared: AtomicU64,
    slots: Box<[Slot]>,
}

// SAFETY: `data` is only written by the owning thread (single producer via
// the thread-local handle); concurrent readers validate `seq` around the
// copy and discard torn reads, seqlock-style.
unsafe impl Sync for ThreadRing {}
unsafe impl Send for ThreadRing {}

impl ThreadRing {
    fn new(tid: u64) -> Self {
        Self::with_capacity(tid, RING_CAPACITY)
    }

    /// Capacity-parametric constructor: production rings use
    /// [`RING_CAPACITY`]; model-checker tests use tiny rings (see
    /// [`model::RawRing`]) so wraparound interleavings stay explorable.
    fn with_capacity(tid: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be nonzero");
        ThreadRing {
            tid,
            head: AtomicU64::new(0),
            cleared: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    data: std::cell::UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
        }
    }

    /// Schedule-point identity of this ring.
    fn obj(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Owner-thread-only append.
    ///
    /// The `trace.push.*` schedule points expose each seqlock state a
    /// concurrent snapshot can observe: before the odd (write-in-progress)
    /// seq store, between the seq store and the data write, between the
    /// data write and the completing even store, and before the head
    /// publish.
    fn push(&self, ev: TraceEvent) {
        let obj = self.obj();
        let idx = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(idx as usize) % self.slots.len()];
        crate::check::schedule_point("trace.push", obj, crate::check::Access::Write);
        slot.seq.store(idx * 2 + 1, Ordering::Release);
        crate::check::schedule_point("trace.push.wip", obj, crate::check::Access::Write);
        // SAFETY: single producer — only the owning thread calls push, and
        // the odd seq word warns readers off while the write is in flight.
        unsafe { (*slot.data.get()).write(ev) };
        crate::check::schedule_point("trace.push.seal", obj, crate::check::Access::Write);
        slot.seq.store((idx + 1) * 2, Ordering::Release);
        crate::check::schedule_point("trace.push.publish", obj, crate::check::Access::Write);
        self.head.store(idx + 1, Ordering::Release);
    }

    /// Copies out every valid, uncleared event. Safe from any thread.
    ///
    /// Work is bounded by construction: one pass over at most
    /// `slots.len()` indices, no retry loop — a torn slot is skipped, not
    /// re-read (the `trace.snap.*` points let the model checker interleave
    /// a writer at both racy windows and confirm the reject-don't-retry
    /// discipline).
    fn snapshot_into(&self, out: &mut Vec<TraceEvent>) {
        let obj = self.obj();
        crate::check::schedule_point("trace.snap.begin", obj, crate::check::Access::Read);
        let head = self.head.load(Ordering::Acquire);
        let floor = self.cleared.load(Ordering::Acquire);
        let start = head.saturating_sub(self.slots.len() as u64).max(floor);
        for idx in start..head {
            let slot = &self.slots[(idx as usize) % self.slots.len()];
            crate::check::schedule_point("trace.snap.read", obj, crate::check::Access::Read);
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 != (idx + 1) * 2 {
                continue; // overwritten by a newer event or mid-write
            }
            // SAFETY: seqlock read — copy the bytes, fence, then re-check
            // the sequence word; a torn copy is discarded un-inspected.
            let ev = unsafe { std::ptr::read(slot.data.get()) };
            fence(Ordering::Acquire);
            crate::check::schedule_point("trace.snap.verify", obj, crate::check::Access::Read);
            if slot.seq.load(Ordering::Relaxed) == seq1 {
                // SAFETY: seq unchanged across the copy, so the slot held
                // a fully initialized event the whole time.
                out.push(unsafe { ev.assume_init() });
            }
        }
    }
}

/// Test-only handles over the trace internals for the `cycada_check`
/// model suite. Hidden: not part of the crate's supported API.
#[doc(hidden)]
pub mod model {
    use super::*;

    /// A standalone seqlock ring with a tiny, explicit capacity, NOT
    /// registered in the global ring registry (so model executions do not
    /// leak rings or perturb real trace output). Synthetic events encode a
    /// self-consistency relation (`wall_start_ns == arg * 3 + 1`) so a
    /// torn read that mixes two events is detectable.
    #[derive(Debug)]
    pub struct RawRing(ThreadRing);

    impl std::fmt::Debug for ThreadRing {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ThreadRing")
                .field("tid", &self.tid)
                .field("capacity", &self.slots.len())
                .finish()
        }
    }

    impl RawRing {
        /// A ring with `capacity` slots (tid 0, unregistered).
        pub fn with_capacity(capacity: usize) -> Self {
            RawRing(ThreadRing::with_capacity(0, capacity))
        }

        /// Single-producer append of a synthetic event carrying `arg`.
        /// Callers must uphold the owner-thread-only discipline: exactly
        /// one thread of a model may push.
        pub fn push_synthetic(&self, arg: u64) {
            self.0.push(TraceEvent {
                name: "model",
                cat: Category::App,
                kind: EventKind::Instant,
                tid: 0,
                wall_start_ns: arg * 3 + 1,
                wall_dur_ns: 0,
                virt_start_ns: 0,
                virt_dur_ns: 0,
                meter: 0,
                arg,
            });
        }

        /// Snapshot from any thread; returns `(arg, wall_start_ns)` pairs
        /// so tests can assert the torn-read consistency relation.
        pub fn snapshot_pairs(&self) -> Vec<(u64, u64)> {
            let mut out = Vec::new();
            self.0.snapshot_into(&mut out);
            out.iter().map(|ev| (ev.arg, ev.wall_start_ns)).collect()
        }

        /// Ring capacity (snapshot can never return more events).
        pub fn capacity(&self) -> usize {
            self.0.slots.len()
        }
    }
}

static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
static NEXT_TRACE_TID: AtomicU64 = AtomicU64::new(1);

fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static THREAD_RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
    /// Stack of live SessionMeter trace ids on this thread (see clock.rs).
    static METER_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn with_ring(f: impl FnOnce(&ThreadRing)) {
    // try_with: recording must stay safe from Drop impls that run during
    // thread TLS teardown (exactly when the interesting events fire); if
    // this thread's ring handle is already destroyed the event is lost,
    // never a panic.
    let _ = THREAD_RING.try_with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(ThreadRing::new(
                NEXT_TRACE_TID.fetch_add(1, Ordering::Relaxed),
            ));
            registry().lock().push(ring.clone());
            ring
        });
        f(ring);
    });
}

pub(crate) fn push_meter_scope(id: u64) {
    let _ = METER_STACK.try_with(|s| s.borrow_mut().push(id));
}

pub(crate) fn pop_meter_scope() {
    let _ = METER_STACK.try_with(|s| {
        s.borrow_mut().pop();
    });
}

/// Trace id of the innermost live [`crate::SessionMeter`] scope on the
/// calling thread (0 = none).
pub fn current_meter() -> u64 {
    METER_STACK
        .try_with(|s| s.borrow().last().copied().unwrap_or(0))
        .unwrap_or(0)
}

fn wall_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn wall_now_ns() -> u64 {
    wall_epoch().elapsed().as_nanos() as u64
}

// ----------------------------------------------------------------------
// Recording API
// ----------------------------------------------------------------------

/// Records an instant event (no duration). No-op while disabled.
#[inline]
pub fn instant(cat: Category, name: &'static str, arg: u64) {
    if !enabled() {
        return;
    }
    instant_slow(cat, name, arg);
}

#[cold]
fn instant_slow(cat: Category, name: &'static str, arg: u64) {
    with_ring(|ring| {
        ring.push(TraceEvent {
            name,
            cat,
            kind: EventKind::Instant,
            tid: ring.tid,
            wall_start_ns: wall_now_ns(),
            wall_dur_ns: 0,
            virt_start_ns: VirtualClock::thread_charged_ns(),
            virt_dur_ns: 0,
            meter: current_meter(),
            arg,
        });
    });
}

/// Live span state (present only while tracing is enabled).
struct SpanStart {
    cat: Category,
    name: &'static str,
    wall_start_ns: u64,
    virt_start_ns: Nanos,
    arg: u64,
}

/// RAII span: records one [`EventKind::Span`] event covering its lifetime.
/// When tracing is disabled the guard is empty and drop is a no-op branch.
#[must_use = "a span records on drop; binding to _ drops immediately"]
pub struct SpanGuard {
    active: Option<SpanStart>,
}

impl SpanGuard {
    /// Whether this span is live (tracing was enabled at creation).
    /// Use to gate optional extra work (hot counters, arg computation).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// Sets the span's payload word.
    #[inline]
    pub fn set_arg(&mut self, arg: u64) {
        if let Some(s) = self.active.as_mut() {
            s.arg = arg;
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.active.take() {
            finish_span(start);
        }
    }
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard")
            .field("active", &self.is_active())
            .finish()
    }
}

#[cold]
fn finish_span(start: SpanStart) {
    let wall_end = wall_now_ns();
    let virt_end = VirtualClock::thread_charged_ns();
    with_ring(|ring| {
        ring.push(TraceEvent {
            name: start.name,
            cat: start.cat,
            kind: EventKind::Span,
            tid: ring.tid,
            wall_start_ns: start.wall_start_ns,
            wall_dur_ns: wall_end.saturating_sub(start.wall_start_ns),
            virt_start_ns: start.virt_start_ns,
            virt_dur_ns: virt_end.saturating_sub(start.virt_start_ns),
            meter: current_meter(),
            arg: start.arg,
        });
    });
}

/// Opens a span. One relaxed load when disabled.
#[inline]
pub fn span(cat: Category, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard {
        active: Some(SpanStart {
            cat,
            name,
            wall_start_ns: wall_now_ns(),
            virt_start_ns: VirtualClock::thread_charged_ns(),
            arg: 0,
        }),
    }
}

// ----------------------------------------------------------------------
// Draining, clearing, exporting
// ----------------------------------------------------------------------

/// Copies out every buffered event across all threads, oldest first
/// (sorted by wall start, then thread). Does not clear.
pub fn snapshot() -> Vec<TraceEvent> {
    let rings: Vec<Arc<ThreadRing>> = registry().lock().clone();
    let mut out = Vec::new();
    for ring in rings {
        ring.snapshot_into(&mut out);
    }
    out.sort_by_key(|e| (e.wall_start_ns, e.tid));
    out
}

/// Logically clears every thread's buffered events (threads may keep
/// appending concurrently; their new events survive).
pub fn clear() {
    for ring in registry().lock().iter() {
        let head = ring.head.load(Ordering::Acquire);
        ring.cleared.store(head, Ordering::Release);
    }
}

/// [`snapshot`] then [`clear`]: take the buffered events exactly once.
pub fn drain() -> Vec<TraceEvent> {
    let events = snapshot();
    clear();
    events
}

/// Clears events **and** zeroes every counter (test isolation).
pub fn reset() {
    clear();
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
}

/// Exports events as Chrome `trace_event` JSON (load in `chrome://tracing`
/// or Perfetto). Timestamps are microseconds with nanosecond precision;
/// virtual times ride in `args`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(events.len() * 160 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = e.wall_start_ns as f64 / 1_000.0;
        match e.kind {
            EventKind::Span => {
                let dur = e.wall_dur_ns as f64 / 1_000.0;
                write!(
                    out,
                    "{{\"name\":{:?},\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                     \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"virt_start_ns\":{},\
                     \"virt_dur_ns\":{},\"meter\":{},\"arg\":{}}}}}",
                    e.name,
                    e.cat.as_str(),
                    e.tid,
                    ts,
                    dur,
                    e.virt_start_ns,
                    e.virt_dur_ns,
                    e.meter,
                    e.arg,
                )
                .expect("write to String cannot fail");
            }
            EventKind::Instant => {
                write!(
                    out,
                    "{{\"name\":{:?},\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                     \"tid\":{},\"ts\":{:.3},\"args\":{{\"virt_ns\":{},\"meter\":{},\
                     \"arg\":{}}}}}",
                    e.name,
                    e.cat.as_str(),
                    e.tid,
                    ts,
                    e.virt_start_ns,
                    e.meter,
                    e.arg,
                )
                .expect("write to String cannot fail");
            }
        }
    }
    out.push_str("]}");
    out
}

/// A plain-text per-function summary: one line per distinct event name
/// with call count, total wall time, and total virtual time, sorted by
/// total virtual time (descending), ties by name — deterministic for a
/// deterministic event set.
pub fn summary(events: &[TraceEvent]) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write;

    #[derive(Default)]
    struct Row {
        cat: &'static str,
        count: u64,
        wall_ns: u64,
        virt_ns: u64,
    }
    let mut rows: BTreeMap<&'static str, Row> = BTreeMap::new();
    for e in events {
        let row = rows.entry(e.name).or_default();
        row.cat = e.cat.as_str();
        row.count += 1;
        row.wall_ns += e.wall_dur_ns;
        row.virt_ns += e.virt_dur_ns;
    }
    let mut sorted: Vec<(&'static str, Row)> = rows.into_iter().collect();
    sorted.sort_by(|a, b| b.1.virt_ns.cmp(&a.1.virt_ns).then(a.0.cmp(b.0)));

    let mut out = String::new();
    writeln!(
        out,
        "{:<40} {:>13} {:>8} {:>14} {:>14}",
        "name", "category", "count", "virt total ns", "wall total ns"
    )
    .expect("write to String cannot fail");
    for (name, row) in &sorted {
        writeln!(
            out,
            "{:<40} {:>13} {:>8} {:>14} {:>14}",
            name, row.cat, row.count, row.virt_ns, row.wall_ns
        )
        .expect("write to String cannot fail");
    }

    // Typed counters ride along under the per-function rows so one
    // export carries both planes (zero counters are elided; the order
    // is declaration order, hence deterministic).
    let nonzero: Vec<(&'static str, u64)> =
        counters().into_iter().filter(|(_, v)| *v != 0).collect();
    if !nonzero.is_empty() {
        writeln!(out, "\n{:<40} {:>13}", "counter", "value")
            .expect("write to String cannot fail");
        for (name, value) in nonzero {
            writeln!(out, "{:<40} {:>13}", name, value).expect("write to String cannot fail");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// The trace plane is process-global, so tests that toggle the gate
    /// serialize on this lock to stay independent of test threading.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_is_default_and_span_is_inert() {
        let _l = TEST_LOCK.lock();
        set_enabled(false);
        let before = snapshot().len();
        {
            let mut s = span(Category::App, "noop");
            assert!(!s.is_active());
            s.set_arg(7);
        }
        instant(Category::App, "noop-instant", 1);
        assert_eq!(snapshot().len(), before, "disabled recording buffers nothing");
    }

    #[test]
    fn span_records_wall_and_virtual_durations() {
        let _l = TEST_LOCK.lock();
        set_enabled(true);
        clear();
        let clock = VirtualClock::new();
        {
            let mut s = span(Category::Diplomat, "trace_test_span");
            s.set_arg(42);
            clock.charge_ns(123);
        }
        set_enabled(false);
        let events = drain();
        let ev = events
            .iter()
            .find(|e| e.name == "trace_test_span")
            .expect("span recorded");
        assert_eq!(ev.kind, EventKind::Span);
        assert_eq!(ev.virt_dur_ns, 123);
        assert_eq!(ev.arg, 42);
        assert_eq!(ev.cat, Category::Diplomat);
    }

    #[test]
    fn instants_capture_meter_scope() {
        let _l = TEST_LOCK.lock();
        set_enabled(true);
        clear();
        let meter = crate::SessionMeter::new();
        {
            let _scope = meter.enter();
            instant(Category::App, "trace_test_metered", 0);
        }
        instant(Category::App, "trace_test_unmetered", 0);
        set_enabled(false);
        let events = drain();
        let metered = events.iter().find(|e| e.name == "trace_test_metered").unwrap();
        let unmetered = events
            .iter()
            .find(|e| e.name == "trace_test_unmetered")
            .unwrap();
        assert_eq!(metered.meter, meter.trace_id());
        assert_eq!(unmetered.meter, 0);
    }

    #[test]
    fn ring_overwrites_oldest_but_keeps_capacity_newest() {
        let _l = TEST_LOCK.lock();
        set_enabled(true);
        clear();
        // Overfill this thread's ring; arg marks the order.
        let total = RING_CAPACITY + 100;
        for i in 0..total {
            instant(Category::App, "trace_test_wrap", i as u64);
        }
        set_enabled(false);
        let events: Vec<_> = drain()
            .into_iter()
            .filter(|e| e.name == "trace_test_wrap")
            .collect();
        assert_eq!(events.len(), RING_CAPACITY);
        assert_eq!(events.last().unwrap().arg, total as u64 - 1);
        // The survivors are exactly the newest RING_CAPACITY.
        assert!(events.iter().all(|e| (e.arg as usize) >= total - RING_CAPACITY));
    }

    #[test]
    fn cross_thread_events_are_collected_with_distinct_tids() {
        let _l = TEST_LOCK.lock();
        set_enabled(true);
        clear();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                thread::spawn(move || {
                    instant(Category::App, "trace_test_mt", i);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        instant(Category::App, "trace_test_mt", 99);
        set_enabled(false);
        let events: Vec<_> = drain()
            .into_iter()
            .filter(|e| e.name == "trace_test_mt")
            .collect();
        assert_eq!(events.len(), 5, "dead threads' rings are still drained");
        let tids: std::collections::HashSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 5, "each thread has its own trace tid");
    }

    #[test]
    fn counters_bump_and_reset() {
        let before = counter(Counter::ReplicaLoads);
        bump(Counter::ReplicaLoads);
        add(Counter::ReplicaLoads, 2);
        assert_eq!(counter(Counter::ReplicaLoads), before + 3);
        let all = counters();
        assert_eq!(all.len(), Counter::ALL.len());
        assert!(all.iter().any(|(n, _)| *n == "replica-loads"));
    }

    #[test]
    fn chrome_json_is_wellformed_enough() {
        let events = [
            TraceEvent {
                name: "glFlush",
                cat: Category::Diplomat,
                kind: EventKind::Span,
                tid: 1,
                wall_start_ns: 1500,
                wall_dur_ns: 2500,
                virt_start_ns: 0,
                virt_dur_ns: 933,
                meter: 3,
                arg: 0,
            },
            TraceEvent {
                name: "impersonation_drop_swallowed",
                cat: Category::Impersonation,
                kind: EventKind::Instant,
                tid: 2,
                wall_start_ns: 9000,
                wall_dur_ns: 0,
                virt_start_ns: 10,
                virt_dur_ns: 0,
                meter: 0,
                arg: 7,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"virt_dur_ns\":933"));
        assert!(json.contains("\"cat\":\"impersonation\""));
        assert_eq!(json.matches("{\"name\"").count(), 2);
    }

    #[test]
    fn summary_aggregates_by_name() {
        let mk = |name, virt| TraceEvent {
            name,
            cat: Category::Egl,
            kind: EventKind::Span,
            tid: 1,
            wall_start_ns: 0,
            wall_dur_ns: 5,
            virt_start_ns: 0,
            virt_dur_ns: virt,
            meter: 0,
            arg: 0,
        };
        let text = summary(&[mk("b", 10), mk("a", 100), mk("b", 20)]);
        let lines: Vec<&str> = text.lines().collect();
        // Header + two rows, then (only if any process-global typed
        // counter is nonzero) a blank line and a counter section.
        assert!(lines.len() >= 3, "header + two rows at minimum");
        assert!(lines.len() == 3 || lines[3].is_empty(), "counters separated by blank line");
        assert!(lines[1].starts_with('a'), "sorted by virtual total desc");
        assert!(lines[2].starts_with('b'));
        assert!(lines[2].contains("30"), "durations aggregate");
    }
}
