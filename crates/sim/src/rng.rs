//! A small deterministic PRNG for workload generation.
//!
//! Workloads (page sets, PassMark scenes) must be reproducible across runs
//! and platforms, so they draw randomness from an explicit-seed SplitMix64
//! generator rather than from ambient entropy.

/// Deterministic SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use cycada_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; bias is negligible for simulation use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Derives an independent child generator; useful for giving each
    /// sub-workload its own stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut rng = SimRng::new(4);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = rng.range(5, 8);
            assert!((5..=8).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 8;
        }
        assert!(saw_lo && saw_hi, "range should cover both endpoints");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SimRng::new(0).below(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fork_is_independent() {
        let mut a = SimRng::new(11);
        let mut child = a.fork();
        assert_ne!(a.next_u64(), child.next_u64());
    }
}
