//! Shared zero-copy byte buffers modelling graphics memory.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::damage::{DamageJournal, DamageRect, Provenance};

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

/// Globally unique identity of a [`SharedBuffer`] allocation.
///
/// IDs are process-wide and never reused, which lets the kernel-side surface
/// registries (LinuxCoreSurface, gralloc) hand out stable handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(u64);

impl BufferId {
    /// The raw numeric value, useful for embedding in simulated IPC messages.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Reconstructs an ID from a raw value previously obtained with
    /// [`BufferId::as_u64`] (e.g. after a round trip through simulated IPC).
    pub fn from_u64(raw: u64) -> Self {
        BufferId(raw)
    }
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf#{}", self.0)
    }
}

/// A reference-counted byte buffer shared between simulated libraries,
/// drivers and the GPU.
///
/// This models the *zero-copy* property the paper leans on: an iOS
/// `IOSurface` and the Android `GraphicBuffer` backing it are views of the
/// same memory, so pixels written through one API are visible through the
/// other without a copy. Cloning a `SharedBuffer` clones the handle, never
/// the bytes.
///
/// # Examples
///
/// ```
/// use cycada_sim::SharedBuffer;
///
/// let surface = SharedBuffer::zeroed(16);
/// let graphic_buffer = surface.clone(); // zero-copy alias
/// graphic_buffer.write(|bytes| bytes[0] = 0xff);
/// assert_eq!(surface.read(|bytes| bytes[0]), 0xff);
/// ```
#[derive(Clone)]
pub struct SharedBuffer {
    id: BufferId,
    data: Arc<RwLock<Vec<u8>>>,
    damage: Arc<DamageJournal>,
}

impl SharedBuffer {
    /// Allocates a buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        Self::from_vec(vec![0; len])
    }

    /// Wraps an existing byte vector.
    pub fn from_vec(data: Vec<u8>) -> Self {
        SharedBuffer {
            id: BufferId(NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed)),
            data: Arc::new(RwLock::new(data)),
            damage: Arc::new(DamageJournal::new()),
        }
    }

    /// This allocation's damage journal (shared by all aliases), the
    /// origination ledger of the compositor plane (DESIGN.md §5g).
    pub fn damage(&self) -> &DamageJournal {
        &self.damage
    }

    /// The unique identity of this allocation. Aliases (clones) share an ID.
    pub fn id(&self) -> BufferId {
        self.id
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// Returns `true` if the buffer has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` with shared read access to the bytes.
    pub fn read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.data.read())
    }

    /// Runs `f` with exclusive write access to the bytes.
    ///
    /// The closure's write set is unknowable, so the damage journal
    /// records a conservative full note (DESIGN.md §5g). Callers that
    /// can bound their writes should prefer
    /// [`SharedBuffer::write_guard_noting`].
    pub fn write<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut g = self.write_guard();
        f(&mut g)
    }

    /// Acquires shared read access for the lifetime of the returned RAII
    /// guard — the whole-slice form of [`SharedBuffer::read`].
    ///
    /// This is the raster fast plane's entry point: a bulk operation (a
    /// clear, a draw, a blit) takes the lock **once** and then works on
    /// plain byte slices, instead of paying a lock round-trip per pixel.
    /// The lock is not reentrant: holding a guard and calling a closure
    /// API ([`SharedBuffer::read`]/[`SharedBuffer::write`]) on the *same*
    /// allocation from the same thread deadlocks, so guard holders must
    /// only touch other allocations (callers check with
    /// [`SharedBuffer::same_allocation`]).
    pub fn read_guard(&self) -> BufferReadGuard<'_> {
        BufferReadGuard(self.data.read())
    }

    /// Acquires exclusive write access for the lifetime of the returned
    /// RAII guard — the whole-slice form of [`SharedBuffer::write`].
    ///
    /// See [`SharedBuffer::read_guard`] for the locking discipline.
    ///
    /// Damage: the guard commits a conservative **full** note to the
    /// journal when dropped (while still holding the lock, so note
    /// order always matches byte order). Callers whose write set is
    /// provable should use [`SharedBuffer::write_guard_noting`] or
    /// [`SharedBuffer::write_guard_with`] instead.
    pub fn write_guard(&self) -> BufferWriteGuard<'_> {
        self.write_guard_with(None, None)
    }

    /// Like [`SharedBuffer::write_guard`], but commits a precise damage
    /// rect instead of a full note. The caller promises every byte it
    /// writes through the guard lies inside `rect` (in the pixel
    /// geometry the consumer of this buffer's journal uses).
    pub fn write_guard_noting(&self, rect: DamageRect) -> BufferWriteGuard<'_> {
        self.write_guard_with(Some(rect), None)
    }

    /// The general noting write guard: `rect` is the damage bound
    /// (`None` = full note) and `provenance`, when present, is
    /// installed in the same journal transaction — used by blits to
    /// record "destination is now a copy of source @ version".
    pub fn write_guard_with(
        &self,
        rect: Option<DamageRect>,
        provenance: Option<Provenance>,
    ) -> BufferWriteGuard<'_> {
        BufferWriteGuard {
            guard: self.data.write(),
            note: Some(Note { journal: &self.damage, rect, provenance }),
        }
    }

    /// Non-blocking [`SharedBuffer::read_guard`]: `None` if a writer holds
    /// the lock right now.
    pub fn try_read_guard(&self) -> Option<BufferReadGuard<'_>> {
        self.data.try_read().map(BufferReadGuard)
    }

    /// Non-blocking [`SharedBuffer::write_guard`]: `None` if any reader or
    /// writer holds the lock right now. The trace plane's contention
    /// counters use a failed attempt as a point-in-time "this buffer is
    /// busy" observation.
    ///
    /// Damage: commits **no** note — this is a probe API; the in-tree
    /// callers acquire and immediately drop the guard without writing.
    pub fn try_write_guard(&self) -> Option<BufferWriteGuard<'_>> {
        self.data
            .try_write()
            .map(|guard| BufferWriteGuard { guard, note: None })
    }

    /// Copies the whole buffer out. Intended for test assertions, not for
    /// the simulated fast path (which would defeat the zero-copy model).
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.read().clone()
    }

    /// Overwrites every byte with `value` (journaled as full damage).
    pub fn fill(&self, value: u8) {
        self.write_guard().fill(value);
    }

    /// Returns `true` if `other` aliases the same allocation.
    pub fn same_allocation(&self, other: &SharedBuffer) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Number of live handles to this allocation (including `self`).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

/// RAII shared-read guard over a [`SharedBuffer`]'s bytes.
///
/// Dereferences to `&[u8]`. Obtained with [`SharedBuffer::read_guard`].
pub struct BufferReadGuard<'a>(RwLockReadGuard<'a, Vec<u8>>);

impl Deref for BufferReadGuard<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for BufferReadGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferReadGuard")
            .field("len", &self.0.len())
            .finish()
    }
}

/// A pending damage note carried by a write guard, committed at drop.
struct Note<'a> {
    journal: &'a DamageJournal,
    rect: Option<DamageRect>,
    provenance: Option<Provenance>,
}

/// RAII exclusive-write guard over a [`SharedBuffer`]'s bytes.
///
/// Dereferences to `&mut [u8]`. Obtained with
/// [`SharedBuffer::write_guard`] and its noting variants. Any attached
/// damage note is committed to the journal on drop, *before* the lock
/// is released, so a journal version observed by a reader always
/// stands for bytes at least as new as that version.
pub struct BufferWriteGuard<'a> {
    guard: RwLockWriteGuard<'a, Vec<u8>>,
    note: Option<Note<'a>>,
}

impl Drop for BufferWriteGuard<'_> {
    fn drop(&mut self) {
        if let Some(note) = self.note.take() {
            // The lock in `guard` is still held here; it releases when
            // the field drops after this impl returns.
            note.journal.commit(note.rect, note.provenance);
        }
    }
}

impl Deref for BufferWriteGuard<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.guard
    }
}

impl DerefMut for BufferWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.guard
    }
}

impl fmt::Debug for BufferWriteGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferWriteGuard")
            .field("len", &self.guard.len())
            .finish()
    }
}

impl fmt::Debug for SharedBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedBuffer")
            .field("id", &self.id)
            .field("len", &self.len())
            .field("handles", &self.handle_count())
            .finish()
    }
}

impl PartialEq for SharedBuffer {
    fn eq(&self, other: &Self) -> bool {
        self.same_allocation(other)
    }
}

impl Eq for SharedBuffer {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = SharedBuffer::zeroed(1);
        let b = SharedBuffer::zeroed(1);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn id_round_trips_through_raw() {
        let a = SharedBuffer::zeroed(1);
        assert_eq!(BufferId::from_u64(a.id().as_u64()), a.id());
    }

    #[test]
    fn clones_alias_storage() {
        let a = SharedBuffer::zeroed(4);
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        assert!(a.same_allocation(&b));
        assert_eq!(a, b);
        b.write(|bytes| bytes[2] = 9);
        assert_eq!(a.to_vec(), vec![0, 0, 9, 0]);
    }

    #[test]
    fn distinct_buffers_do_not_alias() {
        let a = SharedBuffer::zeroed(4);
        let b = SharedBuffer::zeroed(4);
        assert!(!a.same_allocation(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn fill_and_len() {
        let a = SharedBuffer::zeroed(3);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        a.fill(7);
        assert_eq!(a.to_vec(), vec![7, 7, 7]);
        assert!(SharedBuffer::zeroed(0).is_empty());
    }

    #[test]
    fn guards_expose_whole_slices() {
        let a = SharedBuffer::from_vec(vec![1, 2, 3, 4]);
        {
            let mut w = a.write_guard();
            w[2] = 9;
            w.copy_within(0..1, 3);
        }
        let r = a.read_guard();
        assert_eq!(&*r, &[1, 2, 9, 1]);
        // A second reader may coexist with the first.
        let r2 = a.read_guard();
        assert_eq!(r2.len(), 4);
    }

    #[test]
    fn guard_matches_closure_view() {
        let a = SharedBuffer::zeroed(8);
        a.write(|b| b[5] = 42);
        assert_eq!(a.read_guard()[5], a.read(|b| b[5]));
    }

    #[test]
    fn writes_journal_damage() {
        use crate::damage::{Damage, DamageRect};
        let a = SharedBuffer::zeroed(16);
        let v0 = a.damage().version();
        a.write(|b| b[0] = 1);
        assert_eq!(a.damage().damage_since(v0), Damage::Full);
        let v1 = a.damage().version();
        let r = DamageRect { x: 1, y: 0, w: 2, h: 1 };
        drop(a.write_guard_noting(r));
        assert_eq!(a.damage().damage_since(v1), Damage::Rect(r));
        // Probe guards never note.
        let v2 = a.damage().version();
        drop(a.try_write_guard());
        assert_eq!(a.damage().version(), v2);
        // Aliases share the journal; fill is a full note.
        let b = a.clone();
        b.fill(3);
        assert_eq!(a.damage().damage_since(v2), Damage::Full);
    }

    #[test]
    fn handle_count_tracks_clones() {
        let a = SharedBuffer::zeroed(1);
        assert_eq!(a.handle_count(), 1);
        let b = a.clone();
        assert_eq!(a.handle_count(), 2);
        drop(b);
        assert_eq!(a.handle_count(), 1);
    }
}
