//! Simulation substrate for the Cycada graphics reproduction.
//!
//! The original Cycada prototype ran on real hardware (a Nexus 7 tablet and
//! an iPad mini) against proprietary vendor binaries. This reproduction
//! replaces the hardware and the proprietary stack with a deterministic
//! simulation; this crate provides the shared building blocks every other
//! crate relies on:
//!
//! * [`VirtualClock`] — an atomic nanosecond clock that all simulated
//!   components charge costs to. Virtual time, not wall-clock time, is what
//!   the benchmark harness reports, which makes every figure in the paper
//!   reproducible bit-for-bit on any host.
//! * [`SharedBuffer`] — reference-counted, lockable byte buffers used to
//!   model zero-copy graphics memory (IOSurface / GraphicBuffer backing
//!   stores).
//! * [`DeviceProfile`] — the calibrated cost model for the four platform
//!   configurations the paper evaluates (stock Android, Cycada Android,
//!   Cycada iOS, native iOS on the iPad mini).
//! * [`stats::FunctionStats`] — per-function call-count and virtual-time
//!   accounting used to regenerate Figures 7–10, recorded through the
//!   interned function-id dispatch plane in [`intern`].
//!
//! # Examples
//!
//! ```
//! use cycada_sim::VirtualClock;
//!
//! let clock = VirtualClock::new();
//! clock.charge_ns(225); // a simulated stock-Android kernel trap
//! assert_eq!(clock.now_ns(), 225);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
pub mod check;
mod clock;
pub mod damage;
pub mod intern;
mod profile;
pub mod replay;
mod rng;
pub mod slots;
pub mod stats;
pub mod trace;

pub use buffer::{BufferId, BufferReadGuard, BufferWriteGuard, SharedBuffer};
pub use clock::{ClockGuard, MeterGuard, SessionMeter, ThreadSpan, VirtualClock};
pub use profile::{CpuClass, DeviceProfile, GpuCostModel, Persona, Platform};
pub use rng::SimRng;

/// Nanoseconds of virtual time.
pub type Nanos = u64;

/// One microsecond expressed in nanoseconds.
pub const MICROSECOND: Nanos = 1_000;
/// One millisecond expressed in nanoseconds.
pub const MILLISECOND: Nanos = 1_000_000;
/// One second expressed in nanoseconds.
pub const SECOND: Nanos = 1_000_000_000;
