//! The virtual nanosecond clock all simulated costs are charged to.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::Nanos;

thread_local! {
    /// Total virtual nanoseconds charged *by this host thread*, across all
    /// clocks. Because every simulated call runs synchronously on the host
    /// thread that issued it (raster worker threads compute pixels but the
    /// caller charges their cost), this ledger attributes costs exactly,
    /// independent of how concurrent sessions interleave on the shared
    /// device clock.
    static THREAD_CHARGED_NS: Cell<Nanos> = const { Cell::new(0) };
}

/// A monotonically increasing virtual clock measured in nanoseconds.
///
/// The clock is shared (cheaply clonable) between the simulated kernel, GPU,
/// linker and libraries. Components call [`VirtualClock::charge_ns`] to model
/// the cost of an operation; benchmark harnesses read elapsed virtual time
/// with [`VirtualClock::now_ns`] or a [`ClockGuard`].
///
/// The clock is thread-safe: concurrent charges are totalled atomically, so
/// aggregate times remain deterministic even when simulated threads run on
/// real host threads.
///
/// # Examples
///
/// ```
/// use cycada_sim::VirtualClock;
///
/// let clock = VirtualClock::new();
/// let span = clock.span();
/// clock.charge_ns(100);
/// clock.charge_ns(25);
/// assert_eq!(span.elapsed_ns(), 125);
/// ```
#[derive(Clone, Default)]
pub struct VirtualClock {
    ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a new clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current virtual time in nanoseconds.
    pub fn now_ns(&self) -> Nanos {
        self.ns.load(Ordering::Relaxed)
    }

    /// Advances the clock by `ns` nanoseconds, returning the new time.
    pub fn charge_ns(&self, ns: Nanos) -> Nanos {
        // Schedule point for the charge ledger: the thread-local add and
        // the shared fetch_add are one explorable step. This is the
        // hottest path in the simulator, so it carries exactly one gate
        // (a relaxed load) when the checker is not driving.
        crate::check::schedule_point(
            "clock.charge",
            Arc::as_ptr(&self.ns) as usize,
            crate::check::Access::Write,
        );
        THREAD_CHARGED_NS.with(|c| c.set(c.get() + ns));
        self.ns.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Advances the clock by a floating-point nanosecond cost, rounding to
    /// the nearest nanosecond. Costs scaled by a [`crate::DeviceProfile`]
    /// are fractional; rounding per charge keeps totals stable.
    pub fn charge_ns_f64(&self, ns: f64) -> Nanos {
        self.charge_ns(ns.max(0.0).round() as Nanos)
    }

    /// Starts a measurement span anchored at the current time.
    pub fn span(&self) -> ClockGuard {
        ClockGuard {
            clock: self.clone(),
            start: self.now_ns(),
        }
    }

    /// Returns `true` if two handles refer to the same underlying clock.
    pub fn same_clock(&self, other: &VirtualClock) -> bool {
        Arc::ptr_eq(&self.ns, &other.ns)
    }

    /// Total virtual nanoseconds charged by the calling host thread, across
    /// all clocks, since the thread started.
    pub fn thread_charged_ns() -> Nanos {
        THREAD_CHARGED_NS.with(Cell::get)
    }

    /// Starts a span that measures only charges made *by the calling host
    /// thread* — immune to concurrent charges from other threads sharing
    /// this clock. The span must be read on the thread that created it.
    pub fn thread_span(&self) -> ThreadSpan {
        ThreadSpan { start: Self::thread_charged_ns() }
    }
}

impl fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VirtualClock")
            .field("now_ns", &self.now_ns())
            .finish()
    }
}

/// A span of virtual time anchored at the moment [`VirtualClock::span`] was
/// called.
///
/// # Examples
///
/// ```
/// use cycada_sim::VirtualClock;
///
/// let clock = VirtualClock::new();
/// let span = clock.span();
/// clock.charge_ns(42);
/// assert_eq!(span.elapsed_ns(), 42);
/// ```
#[derive(Debug, Clone)]
pub struct ClockGuard {
    clock: VirtualClock,
    start: Nanos,
}

/// Delta between two positions of a host thread's charge ledger.
///
/// The ledger is monotonic on its own thread, so `now < start` proves the
/// span or guard migrated host threads between creation and observation
/// (e.g. a work-stealing pool moved the task mid-scope): the delta is
/// meaningless, and crediting the raw wrapped difference would be
/// catastrophic. Bump the always-on `meter-ledger-inversions` counter so
/// the loss is observable, then credit zero — previously this was a bare
/// `saturating_sub` that zeroed the delta silently.
fn ledger_delta(start: Nanos, now: Nanos) -> Nanos {
    match now.checked_sub(start) {
        Some(delta) => delta,
        None => {
            crate::trace::bump(crate::trace::Counter::MeterLedgerInversions);
            0
        }
    }
}

impl ClockGuard {
    /// Virtual nanoseconds elapsed since the span started.
    pub fn elapsed_ns(&self) -> Nanos {
        // The shared clock is monotonic from every thread (fetch_add
        // only), so unlike the per-thread ledger spans below this
        // difference cannot invert; saturating_sub is only belt and
        // braces against a future non-monotonic clock.
        self.clock.now_ns().saturating_sub(self.start)
    }

    /// The virtual time at which this span started.
    pub fn start_ns(&self) -> Nanos {
        self.start
    }
}

/// A span over the calling thread's charge ledger: measures virtual time
/// charged by this host thread alone, regardless of what other threads
/// charge to a shared clock in the meantime.
///
/// # Examples
///
/// ```
/// use cycada_sim::VirtualClock;
///
/// let clock = VirtualClock::new();
/// let span = clock.thread_span();
/// clock.charge_ns(42);
/// assert_eq!(span.elapsed_ns(), 42);
/// ```
#[derive(Debug, Clone)]
pub struct ThreadSpan {
    start: Nanos,
}

impl ThreadSpan {
    /// Virtual nanoseconds charged by this thread since the span started.
    ///
    /// Reading the span on a different host thread than the one that
    /// created it yields a meaningless delta; such an inversion is
    /// detected and counted (`meter-ledger-inversions`), and reported
    /// as zero.
    pub fn elapsed_ns(&self) -> Nanos {
        ledger_delta(self.start, VirtualClock::thread_charged_ns())
    }
}

/// An accumulator of virtual time attributed to one *session* (or any other
/// scope) across host threads.
///
/// A meter is entered on the thread about to drive simulated work; the guard
/// snapshots the thread's charge ledger and, when dropped, credits the delta
/// to the meter. Because charges are attributed per host thread, the metered
/// total for a session is identical whether it runs solo or interleaved with
/// other sessions on the same shared device clock.
///
/// Guards of *different* meters may nest (both accumulate the inner charges);
/// re-entering the *same* meter while a guard is live on the same thread
/// would double-count and must be avoided by the caller.
///
/// # Examples
///
/// ```
/// use cycada_sim::{SessionMeter, VirtualClock};
///
/// let clock = VirtualClock::new();
/// let meter = SessionMeter::new();
/// {
///     let _scope = meter.enter();
///     clock.charge_ns(30);
/// }
/// clock.charge_ns(99); // outside the scope: not metered
/// assert_eq!(meter.total_ns(), 30);
/// ```
#[derive(Clone)]
pub struct SessionMeter {
    ns: Arc<AtomicU64>,
    /// Process-unique id stamped onto trace events recorded inside this
    /// meter's scopes (see [`crate::trace`]). Clones share it.
    trace_id: u64,
}

impl Default for SessionMeter {
    fn default() -> Self {
        static NEXT_METER_TRACE_ID: AtomicU64 = AtomicU64::new(1);
        SessionMeter {
            ns: Arc::new(AtomicU64::new(0)),
            trace_id: NEXT_METER_TRACE_ID.fetch_add(1, Ordering::Relaxed),
        }
    }
}

impl SessionMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id trace events use to attribute work to this meter's scope.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Total virtual nanoseconds credited to this meter so far.
    pub fn total_ns(&self) -> Nanos {
        self.ns.load(Ordering::Relaxed)
    }

    /// Credits `ns` nanoseconds directly.
    pub fn add_ns(&self, ns: Nanos) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Enters the meter on the calling thread; the returned guard credits
    /// everything this thread charges until it is dropped.
    pub fn enter(&self) -> MeterGuard {
        crate::trace::push_meter_scope(self.trace_id);
        MeterGuard {
            meter: self.clone(),
            start: VirtualClock::thread_charged_ns(),
        }
    }

    /// Returns `true` if two handles refer to the same meter.
    pub fn same_meter(&self, other: &SessionMeter) -> bool {
        Arc::ptr_eq(&self.ns, &other.ns)
    }
}

impl fmt::Debug for SessionMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionMeter")
            .field("total_ns", &self.total_ns())
            .finish()
    }
}

/// Live scope of a [`SessionMeter`] on one host thread. Dropping the guard
/// credits the thread's charges made during the scope to the meter.
#[must_use = "the meter only accumulates while the guard is alive"]
#[derive(Debug)]
pub struct MeterGuard {
    meter: SessionMeter,
    start: Nanos,
}

impl MeterGuard {
    /// Nanoseconds charged by this thread since the scope opened (not yet
    /// credited to the meter — that happens on drop).
    pub fn pending_ns(&self) -> Nanos {
        ledger_delta(self.start, VirtualClock::thread_charged_ns())
    }
}

impl Drop for MeterGuard {
    fn drop(&mut self) {
        // A guard dropped on a different host thread than the one that
        // entered the meter has crossed a work-stealing boundary; its
        // scoped charges are unattributable. ledger_delta counts the
        // inversion and credits zero rather than a wrapped total.
        self.meter.add_ns(ledger_delta(self.start, VirtualClock::thread_charged_ns()));
        crate::trace::pop_meter_scope();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now_ns(), 0);
    }

    #[test]
    fn charge_accumulates() {
        let clock = VirtualClock::new();
        assert_eq!(clock.charge_ns(10), 10);
        assert_eq!(clock.charge_ns(5), 15);
        assert_eq!(clock.now_ns(), 15);
    }

    #[test]
    fn fractional_charge_rounds() {
        let clock = VirtualClock::new();
        clock.charge_ns_f64(1.4);
        assert_eq!(clock.now_ns(), 1);
        clock.charge_ns_f64(1.5);
        assert_eq!(clock.now_ns(), 3);
        clock.charge_ns_f64(-7.0);
        assert_eq!(clock.now_ns(), 3, "negative costs clamp to zero");
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.charge_ns(7);
        assert_eq!(b.now_ns(), 7);
        assert!(a.same_clock(&b));
        assert!(!a.same_clock(&VirtualClock::new()));
    }

    #[test]
    fn span_measures_elapsed() {
        let clock = VirtualClock::new();
        clock.charge_ns(100);
        let span = clock.span();
        assert_eq!(span.start_ns(), 100);
        clock.charge_ns(50);
        assert_eq!(span.elapsed_ns(), 50);
    }

    #[test]
    fn thread_span_ignores_other_threads() {
        let clock = VirtualClock::new();
        let span = clock.thread_span();
        clock.charge_ns(10);
        let c = clock.clone();
        thread::spawn(move || c.charge_ns(1_000_000)).join().unwrap();
        clock.charge_ns(5);
        assert_eq!(span.elapsed_ns(), 15, "only this thread's charges count");
        assert_eq!(clock.now_ns(), 1_000_015, "global clock sees everything");
    }

    #[test]
    fn thread_span_covers_all_clocks_on_thread() {
        let a = VirtualClock::new();
        let b = VirtualClock::new();
        let span = a.thread_span();
        a.charge_ns(3);
        b.charge_ns(4);
        assert_eq!(span.elapsed_ns(), 7);
    }

    #[test]
    fn meter_credits_scoped_charges_only() {
        let clock = VirtualClock::new();
        let meter = SessionMeter::new();
        clock.charge_ns(100);
        {
            let guard = meter.enter();
            clock.charge_ns(30);
            assert_eq!(guard.pending_ns(), 30);
            assert_eq!(meter.total_ns(), 0, "credited only on drop");
        }
        clock.charge_ns(50);
        assert_eq!(meter.total_ns(), 30);
        {
            let _guard = meter.enter();
            clock.charge_ns(12);
        }
        assert_eq!(meter.total_ns(), 42, "scopes accumulate");
    }

    #[test]
    fn meter_totals_independent_of_interleaving() {
        let clock = VirtualClock::new();
        let meters: Vec<SessionMeter> = (0..4).map(|_| SessionMeter::new()).collect();
        let handles: Vec<_> = meters
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let clock = clock.clone();
                let meter = m.clone();
                thread::spawn(move || {
                    let _scope = meter.enter();
                    for _ in 0..1000 {
                        clock.charge_ns(i as Nanos + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (i, m) in meters.iter().enumerate() {
            assert_eq!(m.total_ns(), 1000 * (i as Nanos + 1));
        }
        assert_eq!(clock.now_ns(), 1000 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn nested_distinct_meters_both_accumulate() {
        let clock = VirtualClock::new();
        let outer = SessionMeter::new();
        let inner = SessionMeter::new();
        assert!(!outer.same_meter(&inner));
        {
            let _o = outer.enter();
            clock.charge_ns(5);
            {
                let _i = inner.enter();
                clock.charge_ns(7);
            }
            clock.charge_ns(2);
        }
        assert_eq!(outer.total_ns(), 14);
        assert_eq!(inner.total_ns(), 7);
    }

    #[test]
    fn guard_dropped_on_foreign_thread_counts_inversion_not_wraparound() {
        use crate::trace::{counter, Counter};
        let clock = VirtualClock::new();
        let meter = SessionMeter::new();
        let before = counter(Counter::MeterLedgerInversions);
        // Enter the meter on a thread whose ledger is well ahead, then
        // drop the guard on a fresh thread whose ledger is behind the
        // guard's start position: the exact shape fleet-scale work
        // stealing produces when a task migrates mid-scope.
        let guard = thread::spawn(move || {
            clock.charge_ns(10_000);
            meter.enter()
        })
        .join()
        .unwrap();
        let meter = guard.meter.clone();
        thread::spawn(move || {
            assert_eq!(guard.pending_ns(), 0, "inverted delta reads as zero");
            drop(guard);
        })
        .join()
        .unwrap();
        assert_eq!(meter.total_ns(), 0, "no wrapped credit");
        assert!(
            counter(Counter::MeterLedgerInversions) >= before + 2,
            "pending_ns and drop each detect the inversion"
        );
    }

    #[test]
    fn thread_span_read_on_foreign_thread_counts_inversion() {
        use crate::trace::{counter, Counter};
        let clock = VirtualClock::new();
        let before = counter(Counter::MeterLedgerInversions);
        let span = thread::spawn(move || {
            clock.charge_ns(5_000);
            clock.thread_span()
        })
        .join()
        .unwrap();
        let elapsed = thread::spawn(move || span.elapsed_ns()).join().unwrap();
        assert_eq!(elapsed, 0);
        assert!(counter(Counter::MeterLedgerInversions) > before);
    }

    #[test]
    fn concurrent_charges_total_correctly() {
        let clock = VirtualClock::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = clock.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.charge_ns(3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.now_ns(), 8 * 1000 * 3);
    }
}
