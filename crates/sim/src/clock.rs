//! The virtual nanosecond clock all simulated costs are charged to.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::Nanos;

/// A monotonically increasing virtual clock measured in nanoseconds.
///
/// The clock is shared (cheaply clonable) between the simulated kernel, GPU,
/// linker and libraries. Components call [`VirtualClock::charge_ns`] to model
/// the cost of an operation; benchmark harnesses read elapsed virtual time
/// with [`VirtualClock::now_ns`] or a [`ClockGuard`].
///
/// The clock is thread-safe: concurrent charges are totalled atomically, so
/// aggregate times remain deterministic even when simulated threads run on
/// real host threads.
///
/// # Examples
///
/// ```
/// use cycada_sim::VirtualClock;
///
/// let clock = VirtualClock::new();
/// let span = clock.span();
/// clock.charge_ns(100);
/// clock.charge_ns(25);
/// assert_eq!(span.elapsed_ns(), 125);
/// ```
#[derive(Clone, Default)]
pub struct VirtualClock {
    ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a new clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current virtual time in nanoseconds.
    pub fn now_ns(&self) -> Nanos {
        self.ns.load(Ordering::Relaxed)
    }

    /// Advances the clock by `ns` nanoseconds, returning the new time.
    pub fn charge_ns(&self, ns: Nanos) -> Nanos {
        self.ns.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Advances the clock by a floating-point nanosecond cost, rounding to
    /// the nearest nanosecond. Costs scaled by a [`crate::DeviceProfile`]
    /// are fractional; rounding per charge keeps totals stable.
    pub fn charge_ns_f64(&self, ns: f64) -> Nanos {
        self.charge_ns(ns.max(0.0).round() as Nanos)
    }

    /// Starts a measurement span anchored at the current time.
    pub fn span(&self) -> ClockGuard {
        ClockGuard {
            clock: self.clone(),
            start: self.now_ns(),
        }
    }

    /// Returns `true` if two handles refer to the same underlying clock.
    pub fn same_clock(&self, other: &VirtualClock) -> bool {
        Arc::ptr_eq(&self.ns, &other.ns)
    }
}

impl fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VirtualClock")
            .field("now_ns", &self.now_ns())
            .finish()
    }
}

/// A span of virtual time anchored at the moment [`VirtualClock::span`] was
/// called.
///
/// # Examples
///
/// ```
/// use cycada_sim::VirtualClock;
///
/// let clock = VirtualClock::new();
/// let span = clock.span();
/// clock.charge_ns(42);
/// assert_eq!(span.elapsed_ns(), 42);
/// ```
#[derive(Debug, Clone)]
pub struct ClockGuard {
    clock: VirtualClock,
    start: Nanos,
}

impl ClockGuard {
    /// Virtual nanoseconds elapsed since the span started.
    pub fn elapsed_ns(&self) -> Nanos {
        self.clock.now_ns().saturating_sub(self.start)
    }

    /// The virtual time at which this span started.
    pub fn start_ns(&self) -> Nanos {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now_ns(), 0);
    }

    #[test]
    fn charge_accumulates() {
        let clock = VirtualClock::new();
        assert_eq!(clock.charge_ns(10), 10);
        assert_eq!(clock.charge_ns(5), 15);
        assert_eq!(clock.now_ns(), 15);
    }

    #[test]
    fn fractional_charge_rounds() {
        let clock = VirtualClock::new();
        clock.charge_ns_f64(1.4);
        assert_eq!(clock.now_ns(), 1);
        clock.charge_ns_f64(1.5);
        assert_eq!(clock.now_ns(), 3);
        clock.charge_ns_f64(-7.0);
        assert_eq!(clock.now_ns(), 3, "negative costs clamp to zero");
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.charge_ns(7);
        assert_eq!(b.now_ns(), 7);
        assert!(a.same_clock(&b));
        assert!(!a.same_clock(&VirtualClock::new()));
    }

    #[test]
    fn span_measures_elapsed() {
        let clock = VirtualClock::new();
        clock.charge_ns(100);
        let span = clock.span();
        assert_eq!(span.start_ns(), 100);
        clock.charge_ns(50);
        assert_eq!(span.elapsed_ns(), 50);
    }

    #[test]
    fn concurrent_charges_total_correctly() {
        let clock = VirtualClock::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = clock.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.charge_ns(3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.now_ns(), 8 * 1000 * 3);
    }
}
