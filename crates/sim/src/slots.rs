//! Dense, read-mostly slot tables keyed by small integer ids.
//!
//! Simulated thread ids and context ids are handed out sequentially from 1,
//! so the natural map for per-thread / per-context state is a dense array,
//! not a hash map behind one global mutex. [`SlotTable`] stores each id in
//! its own lock so readers on different ids never contend, and readers on
//! the *same* id only take an uncontended per-slot read lock — the same
//! read-mostly discipline as [`crate::intern::FnDense`], generalised to
//! mutable values.
//!
//! Chunks are allocated on demand (ids cluster near zero but sessions churn
//! them upward); ids beyond the dense range fall back to a shared hash map
//! so the table never rejects a key.

use std::collections::HashMap;
use std::sync::OnceLock;

use parking_lot::RwLock;

/// Slots per lazily-allocated chunk.
const CHUNK: usize = 64;
/// Number of chunks, giving `CHUNK * MAX_CHUNKS` dense ids before the
/// overflow map engages.
const MAX_CHUNKS: usize = 64;

/// One lazily-allocated block of `CHUNK` slots.
type Chunk<T> = Box<[RwLock<Option<T>>]>;

/// A concurrent map from small integer ids to values, optimised for the
/// read-mostly access pattern of per-thread bindings.
///
/// # Examples
///
/// ```
/// use cycada_sim::slots::SlotTable;
///
/// let table: SlotTable<u32> = SlotTable::new();
/// assert_eq!(table.set(3, Some(7)), None);
/// assert_eq!(table.get(3), Some(7));
/// assert_eq!(table.set(3, None), Some(7));
/// assert_eq!(table.get(3), None);
/// ```
pub struct SlotTable<T> {
    chunks: [OnceLock<Chunk<T>>; MAX_CHUNKS],
    overflow: RwLock<HashMap<u64, T>>,
}

impl<T> Default for SlotTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlotTable<T> {
    /// Creates an empty table. No chunk memory is allocated until first use.
    pub fn new() -> Self {
        SlotTable {
            chunks: [const { OnceLock::new() }; MAX_CHUNKS],
            overflow: RwLock::new(HashMap::new()),
        }
    }

    fn slot(&self, id: u64) -> Option<&RwLock<Option<T>>> {
        // Bounds-check in u64 BEFORE narrowing: casting first would let
        // ids above usize::MAX wrap (on 32-bit hosts id 2^32+3 would alias
        // dense slot 3) and route overflow keys onto dense slots.
        if id >= (CHUNK * MAX_CHUNKS) as u64 {
            return None;
        }
        let idx = id as usize;
        let chunk = idx / CHUNK;
        // Chunk publication races with concurrent lookups on the same
        // chunk; mark it so the model checker can interleave here.
        crate::check::schedule_point(
            "slots.chunk",
            std::ptr::from_ref(&self.chunks[chunk]) as usize,
            crate::check::Access::Read,
        );
        let slots = self.chunks[chunk].get_or_init(|| {
            (0..CHUNK).map(|_| RwLock::new(None)).collect()
        });
        Some(&slots[idx % CHUNK])
    }

    /// Returns the number of occupied slots. O(allocated slots) — meant for
    /// diagnostics, not hot paths.
    pub fn len(&self) -> usize {
        let dense: usize = self
            .chunks
            .iter()
            .filter_map(|c| c.get())
            .flat_map(|slots| slots.iter())
            .filter(|slot| slot.read().is_some())
            .count();
        dense + self.overflow.read().len()
    }

    /// Returns `true` if no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Clone> SlotTable<T> {
    /// Reads the value at `id`, cloning it out from under the per-slot lock.
    pub fn get(&self, id: u64) -> Option<T> {
        match self.slot(id) {
            Some(slot) => slot.read().clone(),
            None => self.overflow.read().get(&id).cloned(),
        }
    }

    /// Stores `value` at `id` (`None` clears the slot), returning the
    /// previous value.
    pub fn set(&self, id: u64, value: Option<T>) -> Option<T> {
        match self.slot(id) {
            Some(slot) => std::mem::replace(&mut *slot.write(), value),
            None => {
                let mut overflow = self.overflow.write();
                match value {
                    Some(v) => overflow.insert(id, v),
                    None => overflow.remove(&id),
                }
            }
        }
    }

    /// Clears every slot whose value fails the predicate.
    pub fn retain(&self, mut keep: impl FnMut(&T) -> bool) {
        for chunk in self.chunks.iter().filter_map(|c| c.get()) {
            for slot in chunk.iter() {
                let mut guard = slot.write();
                if matches!(&*guard, Some(v) if !keep(v)) {
                    *guard = None;
                }
            }
        }
        self.overflow.write().retain(|_, v| keep(v));
    }
}

impl<T> std::fmt::Debug for SlotTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotTable").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn set_get_clear_roundtrip() {
        let t: SlotTable<String> = SlotTable::new();
        assert_eq!(t.get(1), None);
        assert_eq!(t.set(1, Some("a".into())), None);
        assert_eq!(t.set(1, Some("b".into())), Some("a".into()));
        assert_eq!(t.get(1), Some("b".into()));
        assert_eq!(t.set(1, None), Some("b".into()));
        assert!(t.is_empty());
    }

    #[test]
    fn ids_beyond_dense_range_use_overflow() {
        let huge = (CHUNK * MAX_CHUNKS) as u64 + 17;
        let t: SlotTable<u32> = SlotTable::new();
        assert_eq!(t.set(huge, Some(9)), None);
        assert_eq!(t.get(huge), Some(9));
        assert_eq!(t.len(), 1);
        t.retain(|v| *v != 9);
        assert_eq!(t.get(huge), None);
    }

    #[test]
    fn retain_filters_dense_slots() {
        let t: SlotTable<u32> = SlotTable::new();
        for i in 0..10 {
            t.set(i, Some(i as u32));
        }
        t.retain(|v| v % 2 == 0);
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(3), None);
        assert_eq!(t.get(4), Some(4));
    }

    #[test]
    fn len_spans_chunk_boundaries() {
        let t: SlotTable<u8> = SlotTable::new();
        t.set(0, Some(1));
        t.set(CHUNK as u64, Some(2));
        t.set((3 * CHUNK) as u64 + 5, Some(3));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn overflow_set_none_removes_instead_of_pinning() {
        let dense_limit = (CHUNK * MAX_CHUNKS) as u64;
        let t: SlotTable<u32> = SlotTable::new();
        let id = dense_limit + 5;
        assert_eq!(t.set(id, Some(1)), None);
        assert_eq!(t.set(id, None), Some(1), "clearing returns the old value");
        assert_eq!(t.get(id), None);
        assert_eq!(
            t.overflow.read().len(),
            0,
            "set(id, None) must remove the overflow entry, not pin a tombstone"
        );
    }

    #[test]
    fn dense_overflow_boundary_ids_do_not_alias() {
        let dense_limit = (CHUNK * MAX_CHUNKS) as u64;
        let t: SlotTable<u64> = SlotTable::new();
        // The last dense id, the first overflow id, and ids that would
        // alias dense slots if the bounds check narrowed before comparing
        // (u32 wraparound: 2^32 + k lands on dense slot k).
        let ids = [
            0,
            dense_limit - 1,
            dense_limit,
            dense_limit + 1,
            (1u64 << 32),
            (1u64 << 32) + 3,
            u64::MAX,
        ];
        for &id in &ids {
            assert_eq!(t.set(id, Some(id)), None, "id {id} collided with another");
        }
        for &id in &ids {
            assert_eq!(t.get(id), Some(id), "id {id} read back its own value");
        }
        // Wraparound ids must not have landed in dense slots.
        assert_eq!(t.get(3), None, "2^32+3 must not alias dense slot 3");
        t.set((1u64 << 32) + 3, None);
        assert_eq!(t.get((1u64 << 32) + 3), None);
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn concurrent_churn_across_dense_and_overflow() {
        let dense_limit = (CHUNK * MAX_CHUNKS) as u64;
        let t: Arc<SlotTable<u64>> = Arc::new(SlotTable::new());
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let t = t.clone();
                thread::spawn(move || {
                    // Each thread churns one dense id and one overflow id,
                    // interleaving inserts and removals.
                    let dense_id = i;
                    let over_id = dense_limit + 100 + i;
                    for round in 0..500u64 {
                        t.set(dense_id, Some(round));
                        t.set(over_id, Some(round));
                        assert_eq!(t.get(dense_id), Some(round));
                        assert_eq!(t.get(over_id), Some(round));
                        if round % 3 == 0 {
                            assert_eq!(t.set(over_id, None), Some(round));
                            assert_eq!(t.get(over_id), None);
                        }
                    }
                    t.set(dense_id, None);
                    t.set(over_id, None);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(t.is_empty(), "churn must leave no residue in either region");
    }

    #[test]
    fn concurrent_disjoint_writers_do_not_interfere() {
        let t: Arc<SlotTable<u64>> = Arc::new(SlotTable::new());
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let t = t.clone();
                thread::spawn(move || {
                    for round in 0..500u64 {
                        t.set(i, Some(round));
                        assert_eq!(t.get(i), Some(round));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..8u64 {
            assert_eq!(t.get(i), Some(499));
        }
    }
}
