//! Property-based tests for the simulated kernel.

use proptest::prelude::*;

use cycada_kernel::{bsd_errno_from_linux, Kernel, Persona, TlsArea};
use cycada_sim::Platform;

proptest! {
    #[test]
    fn tls_snapshot_restore_round_trips(
        writes in prop::collection::vec((0usize..64, any::<u64>()), 0..32),
        slots in prop::collection::vec(0usize..64, 1..32),
    ) {
        let mut area = TlsArea::new();
        for (slot, value) in &writes {
            area.set(*slot, *value);
        }
        let snap = area.snapshot(&slots);
        // Scramble the observed slots.
        for &slot in &slots {
            area.set(slot, 0xDEAD_BEEF);
        }
        area.restore(&slots, &snap);
        for (i, &slot) in slots.iter().enumerate() {
            prop_assert_eq!(area.get(slot), snap[i]);
        }
    }

    #[test]
    fn errno_translation_is_injective_on_common_range(a in 0u64..64, b in 0u64..64) {
        // Distinct Linux errnos must map to distinct BSD errnos, or a
        // foreign binary could confuse two failures.
        if a != b {
            prop_assert_ne!(bsd_errno_from_linux(a), bsd_errno_from_linux(b));
        }
    }

    #[test]
    fn errno_identity_below_eagain(errno in 0u64..11) {
        prop_assert_eq!(bsd_errno_from_linux(errno), errno);
    }

    #[test]
    fn persona_switch_sequences_track_state(switches in prop::collection::vec(any::<bool>(), 0..64)) {
        let kernel = Kernel::for_platform(Platform::CycadaIos);
        let tid = kernel.spawn_process_main(Persona::Ios).unwrap();
        for to_android in switches {
            let target = if to_android { Persona::Android } else { Persona::Ios };
            kernel.set_persona(tid, target).unwrap();
            prop_assert_eq!(kernel.current_persona(tid).unwrap(), target);
        }
    }

    #[test]
    fn tls_values_are_persona_isolated(
        slot in 4usize..64,
        ios_value: u64,
        android_value: u64,
    ) {
        let kernel = Kernel::for_platform(Platform::CycadaIos);
        let tid = kernel.spawn_process_main(Persona::Ios).unwrap();
        kernel.tls_set_raw(tid, Persona::Ios, slot, Some(ios_value)).unwrap();
        kernel.tls_set_raw(tid, Persona::Android, slot, Some(android_value)).unwrap();
        prop_assert_eq!(kernel.tls_get_raw(tid, Persona::Ios, slot).unwrap(), Some(ios_value));
        prop_assert_eq!(kernel.tls_get_raw(tid, Persona::Android, slot).unwrap(), Some(android_value));
    }

    #[test]
    fn locate_propagate_round_trip(
        values in prop::collection::vec(prop::option::of(any::<u64>()), 1..16),
    ) {
        let kernel = Kernel::for_platform(Platform::CycadaIos);
        let a = kernel.spawn_process_main(Persona::Ios).unwrap();
        let b = kernel.spawn_thread(a, Persona::Ios).unwrap();
        let slots: Vec<usize> = (8..8 + values.len()).collect();
        for (slot, value) in slots.iter().zip(&values) {
            kernel.tls_set_raw(a, Persona::Android, *slot, *value).unwrap();
        }
        let located = kernel.locate_tls(b, a, Persona::Android, &slots).unwrap();
        prop_assert_eq!(&located, &values);
        kernel.propagate_tls(b, b, Persona::Android, &slots, &located).unwrap();
        let roundtrip = kernel.locate_tls(b, b, Persona::Android, &slots).unwrap();
        prop_assert_eq!(&roundtrip, &values);
    }

    #[test]
    fn null_syscall_cost_is_stable(reps in 1u64..64) {
        let kernel = Kernel::for_platform(Platform::CycadaAndroid);
        let tid = kernel.spawn_process_main(Persona::Android).unwrap();
        let before = kernel.clock().now_ns();
        for _ in 0..reps {
            kernel.null_syscall(tid).unwrap();
        }
        prop_assert_eq!(kernel.clock().now_ns() - before, reps * 244);
    }
}
