//! Opaque kernel communication channels: Mach IPC and ioctls.
//!
//! Both iOS and Android graphics libraries "discard all abstractions and
//! communicate directly with kernel drivers through opaque, undocumented
//! Mach IPC calls and ioctls" (§3). We model both channels as selector +
//! word-vector messages against named kernel endpoints; the services
//! themselves (LinuxCoreSurface, gralloc, IOMobileFramebuffer) live in their
//! own crates and are registered into the [`crate::Kernel`].

use std::fmt;

use cycada_sim::SharedBuffer;

use crate::error::KernelError;

/// An opaque message sent over simulated Mach IPC or as an ioctl argument
/// block. Selectors and word meanings are private between the user-space
/// library and its kernel service — exactly the opacity the paper describes.
#[derive(Debug, Clone, Default)]
pub struct IpcMessage {
    /// The (obfuscated) operation selector.
    pub selector: u32,
    /// Raw argument words.
    pub words: Vec<u64>,
    /// Optional out-of-line memory attached to the message (models Mach
    /// OOL descriptors / ioctl pointer arguments).
    pub buffer: Option<SharedBuffer>,
}

impl IpcMessage {
    /// Creates a message with a selector and argument words.
    pub fn new(selector: u32, words: impl Into<Vec<u64>>) -> Self {
        IpcMessage {
            selector,
            words: words.into(),
            buffer: None,
        }
    }

    /// Attaches an out-of-line buffer.
    pub fn with_buffer(mut self, buffer: SharedBuffer) -> Self {
        self.buffer = Some(buffer);
        self
    }

    /// Reads argument word `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadMessage`] if the word is missing — the
    /// simulated services validate their inputs like real drivers must.
    pub fn word(&self, idx: usize) -> Result<u64, KernelError> {
        self.words.get(idx).copied().ok_or_else(|| {
            KernelError::BadMessage(format!(
                "selector {:#x}: missing argument word {idx}",
                self.selector
            ))
        })
    }
}

/// A reply from a kernel service.
#[derive(Debug, Clone, Default)]
pub struct IpcReply {
    /// Raw result words.
    pub words: Vec<u64>,
    /// Optional out-of-line memory handed back to user space.
    pub buffer: Option<SharedBuffer>,
}

impl IpcReply {
    /// An empty (success, no data) reply.
    pub fn empty() -> Self {
        IpcReply::default()
    }

    /// A reply carrying result words.
    pub fn with_words(words: impl Into<Vec<u64>>) -> Self {
        IpcReply {
            words: words.into(),
            buffer: None,
        }
    }

    /// Attaches an out-of-line buffer to the reply.
    pub fn and_buffer(mut self, buffer: SharedBuffer) -> Self {
        self.buffer = Some(buffer);
        self
    }

    /// Reads result word `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadMessage`] if the word is missing.
    pub fn word(&self, idx: usize) -> Result<u64, KernelError> {
        self.words.get(idx).copied().ok_or_else(|| {
            KernelError::BadMessage(format!("reply missing result word {idx}"))
        })
    }
}

/// An I/O Kit-style kernel service reachable via simulated Mach IPC (the
/// iOS-side channel). Implemented by e.g. `LinuxCoreSurface` and the
/// `IOMobileFramebuffer` wrapper.
pub trait KernelService: Send + Sync {
    /// The registered service name (e.g. `"IOCoreSurface"`).
    fn service_name(&self) -> &str;

    /// Handles one message, returning a reply.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] if the message is malformed or the
    /// operation fails.
    fn handle(&self, msg: IpcMessage) -> Result<IpcReply, KernelError>;
}

impl fmt::Debug for dyn KernelService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KernelService({})", self.service_name())
    }
}

/// A proprietary driver reachable via simulated opaque ioctls (the
/// Android-side channel). Implemented by e.g. the gralloc driver and the
/// Linux GPU driver.
pub trait IoctlDriver: Send + Sync {
    /// The registered device name (e.g. `"gralloc"`).
    fn driver_name(&self) -> &str;

    /// Handles one ioctl.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] if the command or arguments are invalid.
    fn ioctl(&self, cmd: u32, arg: IpcMessage) -> Result<IpcReply, KernelError>;
}

impl fmt::Debug for dyn IoctlDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IoctlDriver({})", self.driver_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_word_access() {
        let msg = IpcMessage::new(0x10, [1, 2, 3]);
        assert_eq!(msg.word(0).unwrap(), 1);
        assert_eq!(msg.word(2).unwrap(), 3);
        assert!(matches!(msg.word(3), Err(KernelError::BadMessage(_))));
    }

    #[test]
    fn message_buffer_attachment() {
        let buf = SharedBuffer::zeroed(8);
        let msg = IpcMessage::new(1, []).with_buffer(buf.clone());
        assert!(msg.buffer.unwrap().same_allocation(&buf));
    }

    #[test]
    fn reply_helpers() {
        let r = IpcReply::with_words([7]);
        assert_eq!(r.word(0).unwrap(), 7);
        assert!(r.word(1).is_err());
        assert!(IpcReply::empty().words.is_empty());
        let buf = SharedBuffer::zeroed(4);
        let r2 = IpcReply::empty().and_buffer(buf.clone());
        assert!(r2.buffer.unwrap().same_allocation(&buf));
    }
}
