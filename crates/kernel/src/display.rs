//! The simulated display panel.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cycada_sim::SharedBuffer;

/// The device's physical display: a scanout framebuffer plus a frame
/// counter.
///
/// On Android, SurfaceFlinger composites into this buffer via the HW
/// Composer; on iOS, the IOMobileFramebuffer driver flips surfaces onto it.
/// Tests read the scanout pixels back to verify end-to-end rendering.
#[derive(Clone)]
pub struct Display {
    width: u32,
    height: u32,
    scanout: SharedBuffer,
    frames: Arc<AtomicU64>,
}

impl Display {
    /// Bytes per scanout pixel (RGBA8888 panel).
    pub const BYTES_PER_PIXEL: usize = 4;

    /// Creates a display of the given dimensions with a zeroed scanout.
    pub fn new(width: u32, height: u32) -> Self {
        Display {
            width,
            height,
            scanout: SharedBuffer::zeroed(width as usize * height as usize * Self::BYTES_PER_PIXEL),
            frames: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Display width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Display height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The scanout buffer (RGBA8888, row-major, tightly packed).
    pub fn scanout(&self) -> &SharedBuffer {
        &self.scanout
    }

    /// Marks a new frame as presented and returns the new frame count.
    pub fn frame_presented(&self) -> u64 {
        self.frames.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Number of frames presented so far.
    pub fn frames_presented(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Reads one pixel as `[r, g, b, a]`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn pixel(&self, x: u32, y: u32) -> [u8; 4] {
        assert!(x < self.width && y < self.height, "pixel out of range");
        let offset = (y as usize * self.width as usize + x as usize) * Self::BYTES_PER_PIXEL;
        self.scanout
            .read(|bytes| [bytes[offset], bytes[offset + 1], bytes[offset + 2], bytes[offset + 3]])
    }
}

impl fmt::Debug for Display {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Display")
            .field("width", &self.width)
            .field("height", &self.height)
            .field("frames", &self.frames_presented())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_geometry() {
        let d = Display::new(4, 2);
        assert_eq!(d.width(), 4);
        assert_eq!(d.height(), 2);
        assert_eq!(d.scanout().len(), 4 * 2 * 4);
    }

    #[test]
    fn frame_counter() {
        let d = Display::new(1, 1);
        assert_eq!(d.frames_presented(), 0);
        assert_eq!(d.frame_presented(), 1);
        assert_eq!(d.frame_presented(), 2);
        assert_eq!(d.frames_presented(), 2);
    }

    #[test]
    fn pixel_readback() {
        let d = Display::new(2, 2);
        d.scanout().write(|b| {
            // pixel (1, 0)
            b[4] = 10;
            b[5] = 20;
            b[6] = 30;
            b[7] = 40;
        });
        assert_eq!(d.pixel(1, 0), [10, 20, 30, 40]);
        assert_eq!(d.pixel(0, 0), [0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pixel_out_of_range_panics() {
        Display::new(2, 2).pixel(2, 0);
    }

    #[test]
    fn clones_share_scanout_and_counter() {
        let d = Display::new(1, 1);
        let e = d.clone();
        d.frame_presented();
        assert_eq!(e.frames_presented(), 1);
        assert!(d.scanout().same_allocation(e.scanout()));
    }
}
