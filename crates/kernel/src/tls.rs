//! Thread-local storage areas and keys.
//!
//! The paper models TLS as "an array of void pointers unique to each persona
//! of [a] thread. Each array entry is a slot. Some TLS slots are reserved for
//! system use for things such as a thread-local errno value, but apps can
//! reserve other slots using the `pthread_key_create` function, which returns
//! a globally-unique TLS slot ID" (§7.1). Cycada's thread impersonation
//! depends on *selective migration* of these slots, discovered through hooks
//! on key creation/deletion (a 12-line libc patch in the prototype).

use std::fmt;

use cycada_sim::Persona;

/// A TLS slot value — a `void*` in the real system.
pub type TlsValue = u64;

/// The reserved slot holding the thread-local `errno` value.
pub const ERRNO_SLOT: usize = 0;

/// Number of slots reserved for system use (errno, locale, stack guard...).
pub(crate) const RESERVED_SLOTS: usize = 4;

/// A globally-unique TLS slot ID within one persona's key space, as returned
/// by the simulated `pthread_key_create`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TlsKey {
    persona: Persona,
    slot: usize,
}

impl TlsKey {
    pub(crate) fn new(persona: Persona, slot: usize) -> Self {
        TlsKey { persona, slot }
    }

    /// The persona whose key space this key belongs to.
    pub fn persona(&self) -> Persona {
        self.persona
    }

    /// The raw slot index inside the TLS array.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl fmt::Display for TlsKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-tls[{}]", self.persona, self.slot)
    }
}

/// Notification emitted by the simulated libc whenever a TLS key is created
/// or deleted — the hook Cycada's 12-line Bionic patch adds so it can
/// monitor graphics-related slot allocation (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlsKeyEvent {
    /// `pthread_key_create` reserved a new slot.
    Created(TlsKey),
    /// `pthread_key_delete` released a slot.
    Deleted(TlsKey),
}

impl TlsKeyEvent {
    /// The key the event refers to.
    pub fn key(&self) -> TlsKey {
        match self {
            TlsKeyEvent::Created(k) | TlsKeyEvent::Deleted(k) => *k,
        }
    }
}

/// One persona's TLS area: a growable array of optional slot values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TlsArea {
    slots: Vec<Option<TlsValue>>,
}

impl TlsArea {
    /// Creates an area with the reserved system slots present (and unset).
    pub fn new() -> Self {
        TlsArea {
            slots: vec![None; RESERVED_SLOTS],
        }
    }

    /// Reads a slot; `None` if the slot was never written (or out of range).
    pub fn get(&self, slot: usize) -> Option<TlsValue> {
        self.slots.get(slot).copied().flatten()
    }

    /// Writes a slot, growing the area if necessary.
    pub fn set(&mut self, slot: usize, value: TlsValue) {
        if slot >= self.slots.len() {
            self.slots.resize(slot + 1, None);
        }
        self.slots[slot] = Some(value);
    }

    /// Clears a slot (models storing a null pointer).
    pub fn clear(&mut self, slot: usize) {
        if let Some(entry) = self.slots.get_mut(slot) {
            *entry = None;
        }
    }

    /// The thread-local errno value (0 when unset).
    pub fn errno(&self) -> u64 {
        self.get(ERRNO_SLOT).unwrap_or(0)
    }

    /// Sets the thread-local errno value.
    pub fn set_errno(&mut self, errno: u64) {
        self.set(ERRNO_SLOT, errno);
    }

    /// Number of allocated slots (reserved + app-created).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if no slots exist (never the case for [`TlsArea::new`]).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Snapshots the values of the given slots, in order. Missing slots
    /// snapshot as `None` so they can be faithfully restored.
    pub fn snapshot(&self, slots: &[usize]) -> Vec<Option<TlsValue>> {
        slots.iter().map(|&s| self.get(s)).collect()
    }

    /// Restores a snapshot previously taken with [`TlsArea::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if `slots` and `values` have different lengths, which would
    /// indicate a corrupted migration and must not be papered over.
    pub fn restore(&mut self, slots: &[usize], values: &[Option<TlsValue>]) {
        assert_eq!(
            slots.len(),
            values.len(),
            "TLS snapshot shape mismatch during restore"
        );
        for (&slot, &value) in slots.iter().zip(values) {
            match value {
                Some(v) => self.set(slot, v),
                None => self.clear(slot),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_area_has_reserved_slots() {
        let area = TlsArea::new();
        assert_eq!(area.len(), RESERVED_SLOTS);
        assert!(!area.is_empty());
        assert_eq!(area.errno(), 0);
    }

    #[test]
    fn set_get_clear() {
        let mut area = TlsArea::new();
        assert_eq!(area.get(10), None);
        area.set(10, 42);
        assert_eq!(area.get(10), Some(42));
        assert!(area.len() >= 11, "area grows on demand");
        area.clear(10);
        assert_eq!(area.get(10), None);
    }

    #[test]
    fn errno_round_trip() {
        let mut area = TlsArea::new();
        area.set_errno(22);
        assert_eq!(area.errno(), 22);
        assert_eq!(area.get(ERRNO_SLOT), Some(22));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut area = TlsArea::new();
        area.set(5, 1);
        area.set(7, 2);
        let snap = area.snapshot(&[5, 6, 7]);
        assert_eq!(snap, vec![Some(1), None, Some(2)]);

        area.set(5, 99);
        area.set(6, 98);
        area.clear(7);
        area.restore(&[5, 6, 7], &snap);
        assert_eq!(area.get(5), Some(1));
        assert_eq!(area.get(6), None);
        assert_eq!(area.get(7), Some(2));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn restore_shape_mismatch_panics() {
        TlsArea::new().restore(&[1, 2], &[Some(1)]);
    }

    #[test]
    fn key_event_accessors() {
        let k = TlsKey::new(Persona::Android, 9);
        assert_eq!(k.persona(), Persona::Android);
        assert_eq!(k.slot(), 9);
        assert_eq!(TlsKeyEvent::Created(k).key(), k);
        assert_eq!(TlsKeyEvent::Deleted(k).key(), k);
        assert_eq!(k.to_string(), "Android-tls[9]");
    }
}
