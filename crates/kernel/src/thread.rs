//! Simulated threads with per-persona execution state.

use std::fmt;

use cycada_sim::Persona;

use crate::tls::TlsArea;

/// Identifier of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SimTid(pub(crate) u64);

impl SimTid {
    /// Raw numeric value (for embedding in messages/logs).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SimTid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid#{}", self.0)
    }
}

/// A thread group (a process, in Linux terms). The first thread of a group
/// is the group **leader** — the "main" thread whose contexts Android GLES
/// permits other threads to use (§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadGroup {
    /// The tid of the group leader.
    pub leader: SimTid,
}

/// The kernel-side state of one simulated thread.
#[derive(Debug)]
pub(crate) struct ThreadState {
    pub tid: SimTid,
    pub group: ThreadGroup,
    /// Which persona the thread currently executes in.
    pub current: Persona,
    /// Per-persona TLS areas, indexed by [`Persona::index`].
    pub tls: [TlsArea; 2],
    /// Whether the thread ever executed in each persona (diplomats create
    /// the domestic persona lazily on first switch).
    pub visited: [bool; 2],
}

impl ThreadState {
    pub fn new(tid: SimTid, group: ThreadGroup, initial: Persona) -> Self {
        let mut visited = [false; 2];
        visited[initial.index()] = true;
        ThreadState {
            tid,
            group,
            current: initial,
            tls: [TlsArea::new(), TlsArea::new()],
            visited,
        }
    }

    pub fn tls(&self, persona: Persona) -> &TlsArea {
        &self.tls[persona.index()]
    }

    pub fn tls_mut(&mut self, persona: Persona) -> &mut TlsArea {
        &mut self.tls[persona.index()]
    }

    pub fn is_group_leader(&self) -> bool {
        self.group.leader == self.tid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_state_tracks_personas() {
        let tid = SimTid(1);
        let group = ThreadGroup { leader: tid };
        let mut st = ThreadState::new(tid, group, Persona::Ios);
        assert_eq!(st.current, Persona::Ios);
        assert!(st.visited[Persona::Ios.index()]);
        assert!(!st.visited[Persona::Android.index()]);
        assert!(st.is_group_leader());

        st.tls_mut(Persona::Android).set(8, 77);
        assert_eq!(st.tls(Persona::Android).get(8), Some(77));
        assert_eq!(st.tls(Persona::Ios).get(8), None, "TLS areas are separate");
    }

    #[test]
    fn non_leader_detection() {
        let leader = SimTid(1);
        let worker = ThreadState::new(SimTid(2), ThreadGroup { leader }, Persona::Android);
        assert!(!worker.is_group_leader());
    }

    #[test]
    fn tid_display_and_raw() {
        let tid = SimTid(9);
        assert_eq!(tid.to_string(), "tid#9");
        assert_eq!(tid.as_u64(), 9);
    }
}
