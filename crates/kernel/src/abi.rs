//! Kernel ABI personality details: errno translation.
//!
//! A diplomat's step 9 converts domestic TLS values "such as errno" into the
//! foreign TLS area (§3). Linux and XNU/BSD disagree on several errno
//! numbers, so the conversion is a real table, not an identity map.

/// A Linux errno value (the domestic, Android-side encoding).
pub type LinuxErrno = u64;

/// A BSD/XNU errno value (the foreign, iOS-side encoding).
pub type BsdErrno = u64;

/// Translates a Linux errno value into the XNU/BSD value an iOS binary
/// expects to observe.
///
/// The low errno numbers (1–34) are identical between Linux and BSD; the
/// divergence starts at 35 (`EAGAIN`/`EDEADLK` renumbering). This table
/// covers the values the simulated graphics stack can produce and is
/// identity for the shared range.
///
/// # Examples
///
/// ```
/// use cycada_kernel::bsd_errno_from_linux;
///
/// assert_eq!(bsd_errno_from_linux(0), 0);   // success
/// assert_eq!(bsd_errno_from_linux(22), 22); // EINVAL is shared
/// assert_eq!(bsd_errno_from_linux(11), 35); // Linux EAGAIN -> BSD EAGAIN
/// ```
pub fn bsd_errno_from_linux(errno: LinuxErrno) -> BsdErrno {
    match errno {
        // Linux EAGAIN(11) maps to BSD EAGAIN(35); BSD 11 is EDEADLK.
        11 => 35,
        // Linux EDEADLK(35) maps to BSD EDEADLK(11).
        35 => 11,
        // Linux ENOMSG(42) -> BSD ENOMSG(91).
        42 => 91,
        // Linux ELOOP(40) -> BSD ELOOP(62).
        40 => 62,
        // Linux ENAMETOOLONG(36) -> BSD ENAMETOOLONG(63).
        36 => 63,
        // Linux ENOTEMPTY(39) -> BSD ENOTEMPTY(66).
        39 => 66,
        // Linux ENOSYS(38) -> BSD ENOSYS(78).
        38 => 78,
        // Linux ETIME(62) -> Darwin ETIME(101); must not collide with the
        // ELOOP mapping above.
        62 => 101,
        // Linux ENOSR(63) -> Darwin ENOSR(98); must not collide with the
        // ENAMETOOLONG mapping above.
        63 => 98,
        // 0 and the shared 1..=34 range are identical.
        n => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_is_identity() {
        assert_eq!(bsd_errno_from_linux(0), 0);
    }

    #[test]
    fn shared_range_is_identity() {
        for errno in 1..=10 {
            assert_eq!(bsd_errno_from_linux(errno), errno);
        }
        for errno in 12..=34 {
            if errno == 22 {
                assert_eq!(bsd_errno_from_linux(22), 22);
            }
        }
    }

    #[test]
    fn eagain_renumbering() {
        assert_eq!(bsd_errno_from_linux(11), 35);
        assert_eq!(bsd_errno_from_linux(35), 11);
    }

    #[test]
    fn high_numbers_translate() {
        assert_eq!(bsd_errno_from_linux(38), 78);
        assert_eq!(bsd_errno_from_linux(40), 62);
    }
}
