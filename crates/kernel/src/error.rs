//! Kernel error types.

use std::error::Error;
use std::fmt;

use cycada_sim::Persona;

use crate::thread::SimTid;

/// Errors returned by the simulated kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// The referenced thread does not exist (or has exited).
    NoSuchThread(SimTid),
    /// The platform's kernel has no ABI personality for this persona (e.g.
    /// an iOS persona on stock Android).
    UnsupportedPersona(Persona),
    /// A Mach IPC message was sent to a service name nobody registered.
    NoSuchService(String),
    /// An ioctl was issued against a driver name nobody registered.
    NoSuchDriver(String),
    /// A TLS access used a key that was never created or was deleted.
    InvalidTlsKey {
        /// The persona whose key space was used.
        persona: Persona,
        /// The raw slot index.
        slot: usize,
    },
    /// A kernel service rejected a message it could not interpret.
    BadMessage(String),
    /// A kernel service failed while processing a valid request.
    ServiceFailure(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchThread(tid) => write!(f, "no such thread: {tid}"),
            KernelError::UnsupportedPersona(p) => {
                write!(f, "kernel has no ABI personality for the {p} persona")
            }
            KernelError::NoSuchService(name) => {
                write!(f, "no Mach IPC service registered under {name:?}")
            }
            KernelError::NoSuchDriver(name) => {
                write!(f, "no ioctl driver registered under {name:?}")
            }
            KernelError::InvalidTlsKey { persona, slot } => {
                write!(f, "invalid {persona} TLS key (slot {slot})")
            }
            KernelError::BadMessage(msg) => write!(f, "malformed kernel message: {msg}"),
            KernelError::ServiceFailure(msg) => write!(f, "kernel service failure: {msg}"),
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = KernelError::NoSuchService("IOCoreSurface".into());
        let s = e.to_string();
        assert!(s.contains("IOCoreSurface"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_: &(dyn Error + Send + Sync)) {}
        takes_err(&KernelError::UnsupportedPersona(Persona::Ios));
    }
}
