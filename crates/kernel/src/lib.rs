//! The simulated Cycada kernel.
//!
//! Cycada builds binary compatibility *into* an existing kernel: a thread
//! carries two **personas** (an iOS one and an Android one), each selecting
//! a kernel ABI personality and a thread-local-storage (TLS) area, and the
//! kernel exposes three Cycada-specific system calls:
//!
//! * `set_persona` — switch the calling thread's kernel ABI and TLS pointer
//!   (invoked twice per diplomat, §3 steps 4 and 8);
//! * `locate_tls` — extract TLS values from any persona of a thread (§7.1);
//! * `propagate_tls` — push TLS values into any persona of a thread (§7.1).
//!
//! This crate simulates that kernel: a thread table with per-persona TLS
//! areas, the Cycada syscalls, trap-cost accounting calibrated to Table 3,
//! plus the two opaque kernel communication channels mobile graphics stacks
//! use — **Mach IPC** to I/O Kit-style services (iOS side) and **ioctls** to
//! proprietary drivers (Android side). Kernel services such as
//! LinuxCoreSurface and the gralloc driver are implemented in their own
//! crates and registered into the [`Kernel`]'s service registries.
//!
//! # Examples
//!
//! ```
//! use cycada_sim::{Persona, Platform};
//! use cycada_kernel::Kernel;
//!
//! let kernel = Kernel::for_platform(Platform::CycadaIos);
//! let tid = kernel.spawn_process_main(Persona::Ios)?;
//! kernel.set_persona(tid, Persona::Android)?; // diplomat enters Android
//! assert_eq!(kernel.current_persona(tid)?, Persona::Android);
//! kernel.set_persona(tid, Persona::Ios)?; // ...and returns
//! # Ok::<(), cycada_kernel::KernelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod abi;
mod display;
mod error;
mod ipc;
mod kernel;
mod thread;
mod tls;

pub use abi::{bsd_errno_from_linux, BsdErrno, LinuxErrno};
pub use cycada_sim::Persona;
pub use display::Display;
pub use error::KernelError;
pub use ipc::{IoctlDriver, IpcMessage, IpcReply, KernelService};
pub use kernel::{Kernel, SyscallCounts};
pub use thread::{SimTid, ThreadGroup};
pub use tls::{TlsArea, TlsKey, TlsKeyEvent, TlsValue, ERRNO_SLOT};

/// Convenient result alias for kernel operations.
pub type Result<T> = std::result::Result<T, KernelError>;
