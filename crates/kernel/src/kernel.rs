//! The kernel object: thread table, Cycada syscalls, service registries.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use cycada_sim::check::{self, Access};
use cycada_sim::slots::SlotTable;
use cycada_sim::{DeviceProfile, Nanos, Persona, Platform, VirtualClock};

use crate::display::Display;
use crate::error::KernelError;
use crate::ipc::{IoctlDriver, IpcMessage, IpcReply, KernelService};
use crate::thread::{SimTid, ThreadGroup, ThreadState};
use crate::tls::{TlsKey, TlsKeyEvent, TlsValue};
use crate::Result;

/// Fixed extra cost of a Mach IPC round trip beyond the kernel trap
/// (message copy, port lookup, reply).
const MACH_IPC_EXTRA_NS: Nanos = 320;
/// Fixed extra cost of an opaque ioctl beyond the kernel trap.
const IOCTL_EXTRA_NS: Nanos = 180;

/// Snapshot of how many times each kernel entry point has been invoked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyscallCounts {
    /// `null` syscalls (the lmbench micro-benchmark).
    pub null: u64,
    /// `set_persona` syscalls (two per diplomat).
    pub set_persona: u64,
    /// `locate_tls` syscalls (thread impersonation).
    pub locate_tls: u64,
    /// `propagate_tls` syscalls (thread impersonation).
    pub propagate_tls: u64,
    /// Mach IPC round trips (iOS-side kernel services).
    pub mach_ipc: u64,
    /// Opaque ioctls (Android-side drivers).
    pub ioctl: u64,
}

#[derive(Debug, Default)]
struct AtomicCounts {
    null: AtomicU64,
    set_persona: AtomicU64,
    locate_tls: AtomicU64,
    propagate_tls: AtomicU64,
    mach_ipc: AtomicU64,
    ioctl: AtomicU64,
}

#[derive(Debug, Default)]
struct KeySpace {
    next_slot: usize,
    live: HashSet<usize>,
}

type TlsHook = Box<dyn Fn(TlsKeyEvent) + Send + Sync>;

/// The simulated Cycada (or stock) kernel.
///
/// One `Kernel` models one booted device. All mutating entry points take
/// `&self`; the kernel is internally synchronized so simulated threads can
/// run on real host threads.
pub struct Kernel {
    profile: DeviceProfile,
    clock: VirtualClock,
    display: Display,
    /// Thread table, sharded per-tid: lookups touch only the target
    /// thread's slot, so syscalls from different simulated threads never
    /// contend on a table-wide lock (DESIGN.md §5f). Each entry carries its
    /// own `Mutex` because `ThreadState` is mutated in place.
    threads: SlotTable<Arc<Mutex<ThreadState>>>,
    next_tid: AtomicU64,
    services: RwLock<HashMap<String, Arc<dyn KernelService>>>,
    drivers: RwLock<HashMap<String, Arc<dyn IoctlDriver>>>,
    tls_keys: Mutex<[KeySpace; 2]>,
    tls_hooks: Mutex<Vec<(u64, TlsHook)>>,
    next_hook_id: AtomicU64,
    counts: AtomicCounts,
}

impl Kernel {
    /// Boots a kernel configured for one of the paper's platform
    /// configurations, with the device's native display attached.
    pub fn for_platform(platform: Platform) -> Self {
        Self::with_profile(DeviceProfile::for_platform(platform))
    }

    /// Boots a kernel with an explicit profile (used by tests that want a
    /// tiny display).
    pub fn with_profile(profile: DeviceProfile) -> Self {
        let display = Display::new(profile.display_width, profile.display_height);
        Kernel {
            profile,
            clock: VirtualClock::new(),
            display,
            threads: SlotTable::new(),
            next_tid: AtomicU64::new(1),
            services: RwLock::new(HashMap::new()),
            drivers: RwLock::new(HashMap::new()),
            tls_keys: Mutex::new([KeySpace::default(), KeySpace::default()]),
            tls_hooks: Mutex::new(Vec::new()),
            next_hook_id: AtomicU64::new(1),
            counts: AtomicCounts::default(),
        }
    }

    /// The device cost profile this kernel was booted with.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The device display.
    pub fn display(&self) -> &Display {
        &self.display
    }

    // ------------------------------------------------------------------
    // Threads
    // ------------------------------------------------------------------

    /// Creates a new process: a thread-group leader starting in `persona`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnsupportedPersona`] if this kernel has no ABI
    /// personality for `persona` (e.g. iOS on stock Android).
    pub fn spawn_process_main(&self, persona: Persona) -> Result<SimTid> {
        self.check_persona(persona)?;
        let tid = SimTid(self.next_tid.fetch_add(1, Ordering::Relaxed));
        let group = ThreadGroup { leader: tid };
        self.insert_thread(ThreadState::new(tid, group, persona));
        Ok(tid)
    }

    /// Spawns an additional thread into the thread group of `group_member`,
    /// starting in `persona`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] if `group_member` is gone, or
    /// [`KernelError::UnsupportedPersona`] if `persona` is unsupported.
    pub fn spawn_thread(&self, group_member: SimTid, persona: Persona) -> Result<SimTid> {
        self.check_persona(persona)?;
        let group = self.with_thread(group_member, |t| t.group)?;
        let tid = SimTid(self.next_tid.fetch_add(1, Ordering::Relaxed));
        self.insert_thread(ThreadState::new(tid, group, persona));
        Ok(tid)
    }

    /// Terminates a thread, releasing its kernel state.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] if the thread does not exist.
    pub fn exit_thread(&self, tid: SimTid) -> Result<()> {
        check::schedule_point("kernel.thread", tid.0 as usize, Access::Write);
        self.threads
            .set(tid.0, None)
            .map(|_| ())
            .ok_or(KernelError::NoSuchThread(tid))
    }

    /// The persona a thread is currently executing in.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] if the thread does not exist.
    pub fn current_persona(&self, tid: SimTid) -> Result<Persona> {
        self.with_thread(tid, |t| t.current)
    }

    /// The thread group a thread belongs to.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] if the thread does not exist.
    pub fn thread_group(&self, tid: SimTid) -> Result<ThreadGroup> {
        self.with_thread(tid, |t| t.group)
    }

    /// Whether `tid` is its thread group's leader (the "main" thread).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] if the thread does not exist.
    pub fn is_group_leader(&self, tid: SimTid) -> Result<bool> {
        self.with_thread(tid, |t| t.is_group_leader())
    }

    /// Whether the thread has ever executed in `persona`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] if the thread does not exist.
    pub fn has_visited(&self, tid: SimTid, persona: Persona) -> Result<bool> {
        self.with_thread(tid, |t| t.visited[persona.index()])
    }

    // ------------------------------------------------------------------
    // Syscalls
    // ------------------------------------------------------------------

    /// The lmbench null syscall: traps into the kernel and does nothing.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] if the thread does not exist.
    pub fn null_syscall(&self, tid: SimTid) -> Result<()> {
        let persona = self.current_persona(tid)?;
        self.charge_trap(persona);
        self.counts.null.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The Cycada `set_persona` syscall: switches the calling thread's
    /// kernel ABI personality and TLS area pointer (§3 steps 4 and 8).
    ///
    /// The trap is paid at the cost of the persona the thread is *currently*
    /// in (the syscall is "invoked from the foreign persona" on entry and
    /// "from the domestic persona" on return).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] or
    /// [`KernelError::UnsupportedPersona`].
    pub fn set_persona(&self, tid: SimTid, persona: Persona) -> Result<()> {
        self.check_persona(persona)?;
        let from = self.with_thread_mut(tid, |thread| {
            let from = thread.current;
            thread.current = persona;
            thread.visited[persona.index()] = true;
            from
        })?;
        self.charge_trap(from);
        self.counts.set_persona.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The Cycada `locate_tls` syscall: extracts TLS slot values from any
    /// persona of any thread the caller can name (§7.1). Only the kernel
    /// has knowledge of both TLS areas, hence a syscall.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] if `caller` or `target` is gone.
    pub fn locate_tls(
        &self,
        caller: SimTid,
        target: SimTid,
        persona: Persona,
        slots: &[usize],
    ) -> Result<Vec<Option<TlsValue>>> {
        let caller_persona = self.current_persona(caller)?;
        let values = self.with_thread(target, |t| t.tls(persona).snapshot(slots))?;
        self.charge_trap(caller_persona);
        self.counts.locate_tls.fetch_add(1, Ordering::Relaxed);
        Ok(values)
    }

    /// The Cycada `propagate_tls` syscall: pushes TLS slot values into any
    /// persona of any thread (§7.1).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] if `caller` or `target` is gone.
    ///
    /// # Panics
    ///
    /// Panics if `slots` and `values` have different lengths (a corrupted
    /// migration).
    pub fn propagate_tls(
        &self,
        caller: SimTid,
        target: SimTid,
        persona: Persona,
        slots: &[usize],
        values: &[Option<TlsValue>],
    ) -> Result<()> {
        let caller_persona = self.current_persona(caller)?;
        self.with_thread_mut(target, |t| {
            t.tls_mut(persona).restore(slots, values);
        })?;
        self.charge_trap(caller_persona);
        self.counts.propagate_tls.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    // ------------------------------------------------------------------
    // User-space TLS (libc level — no kernel trap)
    // ------------------------------------------------------------------

    /// Simulated `pthread_key_create` in `persona`'s libc: reserves a
    /// globally-unique slot and fires the Cycada creation hook.
    pub fn tls_key_create(&self, persona: Persona) -> TlsKey {
        let mut spaces = self.tls_keys.lock();
        let space = &mut spaces[persona.index()];
        let slot = crate::tls::RESERVED_SLOTS + space.next_slot;
        space.next_slot += 1;
        space.live.insert(slot);
        drop(spaces);
        let key = TlsKey::new(persona, slot);
        self.fire_tls_hooks(TlsKeyEvent::Created(key));
        key
    }

    /// Simulated `pthread_key_delete`: releases a slot and fires the
    /// deletion hook.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidTlsKey`] if the key is not live.
    pub fn tls_key_delete(&self, key: TlsKey) -> Result<()> {
        let mut spaces = self.tls_keys.lock();
        if !spaces[key.persona().index()].live.remove(&key.slot()) {
            return Err(KernelError::InvalidTlsKey {
                persona: key.persona(),
                slot: key.slot(),
            });
        }
        drop(spaces);
        self.fire_tls_hooks(TlsKeyEvent::Deleted(key));
        Ok(())
    }

    /// Simulated `pthread_getspecific` for `tid` in the key's persona.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] or
    /// [`KernelError::InvalidTlsKey`].
    pub fn tls_get(&self, tid: SimTid, key: TlsKey) -> Result<Option<TlsValue>> {
        self.check_key(key)?;
        self.with_thread(tid, |t| t.tls(key.persona()).get(key.slot()))
    }

    /// Simulated `pthread_setspecific`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] or
    /// [`KernelError::InvalidTlsKey`].
    pub fn tls_set(&self, tid: SimTid, key: TlsKey, value: TlsValue) -> Result<()> {
        self.check_key(key)?;
        self.with_thread_mut(tid, |t| t.tls_mut(key.persona()).set(key.slot(), value))
    }

    /// Reads a thread's errno in the given persona's TLS area.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] if the thread does not exist.
    pub fn errno(&self, tid: SimTid, persona: Persona) -> Result<u64> {
        self.with_thread(tid, |t| t.tls(persona).errno())
    }

    /// Writes a thread's errno in the given persona's TLS area.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] if the thread does not exist.
    pub fn set_errno(&self, tid: SimTid, persona: Persona, errno: u64) -> Result<()> {
        self.with_thread_mut(tid, |t| t.tls_mut(persona).set_errno(errno))
    }

    /// Reads an arbitrary raw TLS slot (used by impersonation to migrate
    /// reserved slots alongside app keys).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] if the thread does not exist.
    pub fn tls_get_raw(
        &self,
        tid: SimTid,
        persona: Persona,
        slot: usize,
    ) -> Result<Option<TlsValue>> {
        self.with_thread(tid, |t| t.tls(persona).get(slot))
    }

    /// Writes an arbitrary raw TLS slot.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchThread`] if the thread does not exist.
    pub fn tls_set_raw(
        &self,
        tid: SimTid,
        persona: Persona,
        slot: usize,
        value: Option<TlsValue>,
    ) -> Result<()> {
        self.with_thread_mut(tid, |t| match value {
            Some(v) => t.tls_mut(persona).set(slot, v),
            None => t.tls_mut(persona).clear(slot),
        })
    }

    /// Registers a hook fired on every TLS key creation/deletion (the
    /// Cycada Bionic patch). Returns an ID for [`Kernel::remove_tls_hook`].
    pub fn add_tls_hook(&self, hook: impl Fn(TlsKeyEvent) + Send + Sync + 'static) -> u64 {
        let id = self.next_hook_id.fetch_add(1, Ordering::Relaxed);
        self.tls_hooks.lock().push((id, Box::new(hook)));
        id
    }

    /// Removes a previously registered TLS hook. Unknown IDs are ignored.
    pub fn remove_tls_hook(&self, id: u64) {
        self.tls_hooks.lock().retain(|(hid, _)| *hid != id);
    }

    // ------------------------------------------------------------------
    // Opaque kernel channels
    // ------------------------------------------------------------------

    /// Registers an I/O Kit-style service reachable via Mach IPC.
    pub fn register_service(&self, service: Arc<dyn KernelService>) {
        self.services
            .write()
            .insert(service.service_name().to_owned(), service);
    }

    /// Registers a proprietary driver reachable via opaque ioctls.
    pub fn register_driver(&self, driver: Arc<dyn IoctlDriver>) {
        self.drivers
            .write()
            .insert(driver.driver_name().to_owned(), driver);
    }

    /// Sends an opaque Mach IPC message to a named service, charging the
    /// caller a kernel trap plus the IPC round-trip cost.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchService`] for unknown services,
    /// [`KernelError::NoSuchThread`] for dead callers, or whatever error the
    /// service produces.
    pub fn mach_ipc_call(
        &self,
        tid: SimTid,
        service: &str,
        msg: IpcMessage,
    ) -> Result<IpcReply> {
        let persona = self.current_persona(tid)?;
        let handler = self
            .services
            .read()
            .get(service)
            .cloned()
            .ok_or_else(|| KernelError::NoSuchService(service.to_owned()))?;
        self.charge_trap(persona);
        self.clock.charge_ns(MACH_IPC_EXTRA_NS);
        self.counts.mach_ipc.fetch_add(1, Ordering::Relaxed);
        handler.handle(msg)
    }

    /// Issues an opaque ioctl against a named driver, charging the caller a
    /// kernel trap plus the ioctl dispatch cost.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchDriver`] for unknown drivers,
    /// [`KernelError::NoSuchThread`] for dead callers, or whatever error
    /// the driver produces.
    pub fn ioctl(
        &self,
        tid: SimTid,
        driver: &str,
        cmd: u32,
        arg: IpcMessage,
    ) -> Result<IpcReply> {
        let persona = self.current_persona(tid)?;
        let handler = self
            .drivers
            .read()
            .get(driver)
            .cloned()
            .ok_or_else(|| KernelError::NoSuchDriver(driver.to_owned()))?;
        self.charge_trap(persona);
        self.clock.charge_ns(IOCTL_EXTRA_NS);
        self.counts.ioctl.fetch_add(1, Ordering::Relaxed);
        handler.ioctl(cmd, arg)
    }

    /// Snapshot of the syscall counters.
    pub fn syscall_counts(&self) -> SyscallCounts {
        SyscallCounts {
            null: self.counts.null.load(Ordering::Relaxed),
            set_persona: self.counts.set_persona.load(Ordering::Relaxed),
            locate_tls: self.counts.locate_tls.load(Ordering::Relaxed),
            propagate_tls: self.counts.propagate_tls.load(Ordering::Relaxed),
            mach_ipc: self.counts.mach_ipc.load(Ordering::Relaxed),
            ioctl: self.counts.ioctl.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn check_persona(&self, persona: Persona) -> Result<()> {
        if self.profile.supports_persona(persona) {
            Ok(())
        } else {
            Err(KernelError::UnsupportedPersona(persona))
        }
    }

    fn check_key(&self, key: TlsKey) -> Result<()> {
        if self.tls_keys.lock()[key.persona().index()]
            .live
            .contains(&key.slot())
        {
            Ok(())
        } else {
            Err(KernelError::InvalidTlsKey {
                persona: key.persona(),
                slot: key.slot(),
            })
        }
    }

    fn charge_trap(&self, persona: Persona) {
        self.clock.charge_ns(self.profile.trap_ns(persona));
    }

    fn fire_tls_hooks(&self, event: TlsKeyEvent) {
        for (_, hook) in self.tls_hooks.lock().iter() {
            hook(event);
        }
    }

    fn insert_thread(&self, state: ThreadState) {
        let tid = state.tid;
        check::schedule_point("kernel.thread", tid.0 as usize, Access::Write);
        self.threads
            .set(tid.0, Some(Arc::new(Mutex::new(state))));
    }

    /// Looks up a thread's slot. The returned `Arc` keeps the state alive
    /// even if the thread exits concurrently — mirroring a real kernel,
    /// where an in-flight syscall pins the task struct it already resolved.
    fn thread_slot(&self, tid: SimTid) -> Result<Arc<Mutex<ThreadState>>> {
        check::schedule_point("kernel.thread", tid.0 as usize, Access::Read);
        self.threads
            .get(tid.0)
            .ok_or(KernelError::NoSuchThread(tid))
    }

    fn with_thread<R>(&self, tid: SimTid, f: impl FnOnce(&ThreadState) -> R) -> Result<R> {
        Ok(f(&self.thread_slot(tid)?.lock()))
    }

    fn with_thread_mut<R>(
        &self,
        tid: SimTid,
        f: impl FnOnce(&mut ThreadState) -> R,
    ) -> Result<R> {
        Ok(f(&mut self.thread_slot(tid)?.lock()))
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("platform", &self.profile.platform)
            .field("threads", &self.threads.len())
            .field("now_ns", &self.clock.now_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycada_sim::Platform;

    fn cycada() -> Kernel {
        Kernel::for_platform(Platform::CycadaIos)
    }

    #[test]
    fn spawn_and_groups() {
        let k = cycada();
        let main = k.spawn_process_main(Persona::Ios).unwrap();
        let worker = k.spawn_thread(main, Persona::Ios).unwrap();
        assert!(k.is_group_leader(main).unwrap());
        assert!(!k.is_group_leader(worker).unwrap());
        assert_eq!(k.thread_group(worker).unwrap().leader, main);

        // A thread spawned from a non-leader still joins the same group.
        let w2 = k.spawn_thread(worker, Persona::Android).unwrap();
        assert_eq!(k.thread_group(w2).unwrap().leader, main);
    }

    #[test]
    fn stock_android_rejects_ios_processes() {
        let k = Kernel::for_platform(Platform::StockAndroid);
        assert_eq!(
            k.spawn_process_main(Persona::Ios),
            Err(KernelError::UnsupportedPersona(Persona::Ios))
        );
        assert!(k.spawn_process_main(Persona::Android).is_ok());
    }

    #[test]
    fn set_persona_switches_and_charges_entry_cost() {
        let k = cycada();
        let tid = k.spawn_process_main(Persona::Ios).unwrap();
        let before = k.clock().now_ns();
        k.set_persona(tid, Persona::Android).unwrap();
        // Trap paid at the iOS (calling persona) rate: 305 ns.
        assert_eq!(k.clock().now_ns() - before, 305);
        assert_eq!(k.current_persona(tid).unwrap(), Persona::Android);
        assert!(k.has_visited(tid, Persona::Android).unwrap());

        let before = k.clock().now_ns();
        k.set_persona(tid, Persona::Ios).unwrap();
        // Return trap paid at the Android rate: 244 ns.
        assert_eq!(k.clock().now_ns() - before, 244);
        assert_eq!(k.syscall_counts().set_persona, 2);
    }

    #[test]
    fn null_syscall_costs_match_table3() {
        for (platform, persona, expect) in [
            (Platform::StockAndroid, Persona::Android, 225),
            (Platform::CycadaAndroid, Persona::Android, 244),
            (Platform::CycadaIos, Persona::Ios, 305),
            (Platform::NativeIos, Persona::Ios, 575),
        ] {
            let k = Kernel::for_platform(platform);
            let tid = k.spawn_process_main(persona).unwrap();
            let before = k.clock().now_ns();
            k.null_syscall(tid).unwrap();
            assert_eq!(k.clock().now_ns() - before, expect, "{platform:?}");
        }
    }

    #[test]
    fn tls_keys_are_per_persona_and_hooked() {
        let k = cycada();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let hook = k.add_tls_hook(move |e| seen2.lock().push(e));

        let ka = k.tls_key_create(Persona::Android);
        let ki = k.tls_key_create(Persona::Ios);
        assert_eq!(ka.persona(), Persona::Android);
        assert_eq!(ki.persona(), Persona::Ios);
        k.tls_key_delete(ka).unwrap();
        assert_eq!(
            *seen.lock(),
            vec![
                TlsKeyEvent::Created(ka),
                TlsKeyEvent::Created(ki),
                TlsKeyEvent::Deleted(ka)
            ]
        );

        // Deleted keys are invalid.
        assert!(matches!(
            k.tls_key_delete(ka),
            Err(KernelError::InvalidTlsKey { .. })
        ));
        k.remove_tls_hook(hook);
        let _ = k.tls_key_create(Persona::Android);
        assert_eq!(seen.lock().len(), 3, "removed hooks do not fire");
    }

    #[test]
    fn tls_get_set_respects_persona_areas() {
        let k = cycada();
        let tid = k.spawn_process_main(Persona::Ios).unwrap();
        let key = k.tls_key_create(Persona::Android);
        assert_eq!(k.tls_get(tid, key).unwrap(), None);
        k.tls_set(tid, key, 0xdead).unwrap();
        assert_eq!(k.tls_get(tid, key).unwrap(), Some(0xdead));
        // The iOS area is untouched.
        assert_eq!(
            k.tls_get_raw(tid, Persona::Ios, key.slot()).unwrap(),
            None
        );
    }

    #[test]
    fn locate_and_propagate_tls() {
        let k = cycada();
        let a = k.spawn_process_main(Persona::Ios).unwrap();
        let b = k.spawn_thread(a, Persona::Ios).unwrap();
        let key = k.tls_key_create(Persona::Android);
        k.tls_set(a, key, 7).unwrap();

        let vals = k
            .locate_tls(b, a, Persona::Android, &[key.slot()])
            .unwrap();
        assert_eq!(vals, vec![Some(7)]);
        k.propagate_tls(b, b, Persona::Android, &[key.slot()], &vals)
            .unwrap();
        assert_eq!(k.tls_get(b, key).unwrap(), Some(7));

        let counts = k.syscall_counts();
        assert_eq!(counts.locate_tls, 1);
        assert_eq!(counts.propagate_tls, 1);
    }

    #[test]
    fn errno_per_persona() {
        let k = cycada();
        let tid = k.spawn_process_main(Persona::Ios).unwrap();
        k.set_errno(tid, Persona::Android, 11).unwrap();
        assert_eq!(k.errno(tid, Persona::Android).unwrap(), 11);
        assert_eq!(k.errno(tid, Persona::Ios).unwrap(), 0);
    }

    #[test]
    fn unknown_service_and_driver() {
        let k = cycada();
        let tid = k.spawn_process_main(Persona::Ios).unwrap();
        assert!(matches!(
            k.mach_ipc_call(tid, "IOCoreSurface", IpcMessage::default()),
            Err(KernelError::NoSuchService(_))
        ));
        assert!(matches!(
            k.ioctl(tid, "gralloc", 1, IpcMessage::default()),
            Err(KernelError::NoSuchDriver(_))
        ));
    }

    #[test]
    fn service_round_trip_charges_and_counts() {
        struct Echo;
        impl KernelService for Echo {
            fn service_name(&self) -> &str {
                "echo"
            }
            fn handle(&self, msg: IpcMessage) -> Result<IpcReply> {
                Ok(IpcReply::with_words(msg.words))
            }
        }
        let k = cycada();
        let tid = k.spawn_process_main(Persona::Ios).unwrap();
        k.register_service(Arc::new(Echo));
        let before = k.clock().now_ns();
        let reply = k
            .mach_ipc_call(tid, "echo", IpcMessage::new(1, [42]))
            .unwrap();
        assert_eq!(reply.word(0).unwrap(), 42);
        assert_eq!(k.clock().now_ns() - before, 305 + 320);
        assert_eq!(k.syscall_counts().mach_ipc, 1);
    }

    #[test]
    fn driver_round_trip() {
        struct Null;
        impl IoctlDriver for Null {
            fn driver_name(&self) -> &str {
                "null"
            }
            fn ioctl(&self, cmd: u32, _arg: IpcMessage) -> Result<IpcReply> {
                Ok(IpcReply::with_words([u64::from(cmd)]))
            }
        }
        let k = cycada();
        let tid = k.spawn_process_main(Persona::Android).unwrap();
        k.register_driver(Arc::new(Null));
        let reply = k.ioctl(tid, "null", 9, IpcMessage::default()).unwrap();
        assert_eq!(reply.word(0).unwrap(), 9);
        assert_eq!(k.syscall_counts().ioctl, 1);
    }

    #[test]
    fn concurrent_thread_churn_is_race_free() {
        // N host threads hammer the sharded thread table: spawn, switch
        // personas, touch TLS, and exit. Counts must come out exact and no
        // slot may be corrupted by a neighbor.
        let k = Arc::new(cycada());
        let root = k.spawn_process_main(Persona::Ios).unwrap();
        const WORKERS: usize = 8;
        const ROUNDS: usize = 100;
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let k = k.clone();
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        let tid = k.spawn_thread(root, Persona::Ios).unwrap();
                        k.set_persona(tid, Persona::Android).unwrap();
                        k.set_errno(tid, Persona::Android, 7).unwrap();
                        assert_eq!(k.errno(tid, Persona::Android).unwrap(), 7);
                        k.set_persona(tid, Persona::Ios).unwrap();
                        assert!(k.has_visited(tid, Persona::Android).unwrap());
                        k.exit_thread(tid).unwrap();
                        assert_eq!(
                            k.exit_thread(tid),
                            Err(KernelError::NoSuchThread(tid))
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let spawned = (WORKERS * ROUNDS) as u64;
        assert_eq!(k.syscall_counts().set_persona, 2 * spawned);
        // Every worker thread exited; only the root process remains.
        assert_eq!(k.current_persona(root).unwrap(), Persona::Ios);
        assert!(format!("{k:?}").contains("threads: 1"), "{k:?}");
    }

    #[test]
    fn exit_thread_removes_state() {
        let k = cycada();
        let tid = k.spawn_process_main(Persona::Android).unwrap();
        k.exit_thread(tid).unwrap();
        assert_eq!(
            k.current_persona(tid),
            Err(KernelError::NoSuchThread(tid))
        );
        assert_eq!(k.exit_thread(tid), Err(KernelError::NoSuchThread(tid)));
    }
}
