//! The Cycada iOS GLES support table (Table 2).
//!
//! Every one of the 344 iOS GLES entry points is classified by the
//! diplomat usage pattern that supports it:
//!
//! | Type of support              | Functions |
//! |------------------------------|-----------|
//! | Direct diplomats             | 312       |
//! | Indirect diplomats           | 15        |
//! | Data-dependent diplomats     | 5         |
//! | Multi-diplomats              | 2         |
//! | Unimplemented (never called) | 10        |
//! | **Total**                    | **344**   |

use cycada_diplomat::DiplomatPattern;
use cycada_gles::{EntryApi, EntryPoint, GlesRegistry, StdAvailability};

/// How Cycada supports one iOS GLES entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SupportKind {
    /// Bridged by a diplomat of the given pattern.
    Diplomat(DiplomatPattern),
    /// Not implemented in the prototype because no app ever calls it.
    Unimplemented,
}

/// The 15 entry points supported by indirect diplomats: `APPLE_fence`
/// mapped onto `NV_fence`, plus the multisample/map-range/discard/debug
/// wrappers over equivalent Android extensions.
pub const INDIRECT_FUNCTIONS: &[&str] = &[
    // APPLE_fence -> NV_fence (8).
    "glGenFencesAPPLE",
    "glDeleteFencesAPPLE",
    "glSetFenceAPPLE",
    "glIsFenceAPPLE",
    "glTestFenceAPPLE",
    "glFinishFenceAPPLE",
    "glTestObjectAPPLE",
    "glFinishObjectAPPLE",
    // APPLE_framebuffer_multisample -> EXT_multisampled_render_to_texture.
    "glRenderbufferStorageMultisampleAPPLE",
    "glResolveMultisampleFramebufferAPPLE",
    // EXT_map_buffer_range -> OES_mapbuffer.
    "glMapBufferRangeEXT",
    "glFlushMappedBufferRangeEXT",
    // EXT_discard_framebuffer -> driver hint.
    "glDiscardFramebufferEXT",
    // EXT_debug_label -> NV tooling shims.
    "glLabelObjectEXT",
    "glGetObjectLabelEXT",
];

/// The 2 entry points needing multi diplomats: the IOSurface binding
/// functions, which compose GraphicBuffer allocation, EGLImage creation
/// and texture/renderbuffer binding (§6).
pub const MULTI_FUNCTIONS: &[&str] = &[
    "glTexImageIOSurfaceAPPLE",
    "glRenderbufferStorageIOSurfaceAPPLE",
];

/// The 10 entry points left unimplemented because they are never called.
pub const UNIMPLEMENTED_FUNCTIONS: &[&str] = &[
    "glShaderBinary",
    "glReleaseShaderCompiler",
    "glVertexArrayRangeAPPLE",
    "glFlushVertexArrayRangeAPPLE",
    "glVertexArrayParameteriAPPLE",
    "glGetnUniformfvEXT",
    "glGetnUniformivEXT",
    "glMultiDrawArraysEXT",
    "glMultiDrawElementsEXT",
    "glCopyTextureLevelsAPPLE",
];

/// Classifies one iOS GLES entry point.
///
/// The 5 data-dependent entries are `glGetString` (Apple's proprietary
/// parameter), `glPixelStorei` (the two extra `APPLE_row_bytes`
/// parameters), and the three pixel read/write functions whose packing the
/// extension controls — `glReadPixels` plus the v2 `glTexImage2D` /
/// `glTexSubImage2D` (§4.1).
pub fn classify(entry: &EntryPoint) -> SupportKind {
    let name = entry.name.as_str();
    if UNIMPLEMENTED_FUNCTIONS.contains(&name) {
        return SupportKind::Unimplemented;
    }
    if MULTI_FUNCTIONS.contains(&name) {
        return SupportKind::Diplomat(DiplomatPattern::Multi);
    }
    if INDIRECT_FUNCTIONS.contains(&name) {
        return SupportKind::Diplomat(DiplomatPattern::Indirect);
    }
    let data_dependent = matches!(
        (&entry.api, name),
        (EntryApi::Standard(StdAvailability::Shared), "glGetString")
            | (EntryApi::Standard(StdAvailability::Shared), "glPixelStorei")
            | (EntryApi::Standard(StdAvailability::Shared), "glReadPixels")
            | (EntryApi::Standard(StdAvailability::V2Only), "glTexImage2D")
            | (EntryApi::Standard(StdAvailability::V2Only), "glTexSubImage2D")
    );
    if data_dependent {
        SupportKind::Diplomat(DiplomatPattern::DataDependent)
    } else {
        SupportKind::Diplomat(DiplomatPattern::Direct)
    }
}

/// The Table 2 row values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2 {
    /// Direct diplomats.
    pub direct: usize,
    /// Indirect diplomats.
    pub indirect: usize,
    /// Data-dependent diplomats.
    pub data_dependent: usize,
    /// Multi-diplomats.
    pub multi: usize,
    /// Unimplemented (never called).
    pub unimplemented: usize,
}

impl Table2 {
    /// Computes the table by classifying the whole iOS GLES surface.
    pub fn compute() -> Table2 {
        let mut t = Table2 {
            direct: 0,
            indirect: 0,
            data_dependent: 0,
            multi: 0,
            unimplemented: 0,
        };
        for entry in GlesRegistry::global().ios_entry_points() {
            match classify(&entry) {
                SupportKind::Diplomat(DiplomatPattern::Direct) => t.direct += 1,
                SupportKind::Diplomat(DiplomatPattern::Indirect) => t.indirect += 1,
                SupportKind::Diplomat(DiplomatPattern::DataDependent) => t.data_dependent += 1,
                SupportKind::Diplomat(DiplomatPattern::Multi) => t.multi += 1,
                SupportKind::Unimplemented => t.unimplemented += 1,
            }
        }
        t
    }

    /// Sum of all rows.
    pub fn total(&self) -> usize {
        self.direct + self.indirect + self.data_dependent + self.multi + self.unimplemented
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_exactly() {
        let t = Table2::compute();
        assert_eq!(t.direct, 312, "direct diplomats");
        assert_eq!(t.indirect, 15, "indirect diplomats");
        assert_eq!(t.data_dependent, 5, "data-dependent diplomats");
        assert_eq!(t.multi, 2, "multi diplomats");
        assert_eq!(t.unimplemented, 10, "unimplemented");
        assert_eq!(t.total(), 344);
    }

    #[test]
    fn v1_tex_image_is_direct_but_v2_is_data_dependent() {
        let entries = GlesRegistry::global().ios_entry_points();
        let v1 = entries
            .iter()
            .find(|e| {
                e.name == "glTexImage2D"
                    && e.api == EntryApi::Standard(StdAvailability::V1Only)
            })
            .unwrap();
        let v2 = entries
            .iter()
            .find(|e| {
                e.name == "glTexImage2D"
                    && e.api == EntryApi::Standard(StdAvailability::V2Only)
            })
            .unwrap();
        assert_eq!(classify(v1), SupportKind::Diplomat(DiplomatPattern::Direct));
        assert_eq!(
            classify(v2),
            SupportKind::Diplomat(DiplomatPattern::DataDependent)
        );
    }

    #[test]
    fn apple_fence_functions_are_indirect() {
        let entries = GlesRegistry::global().ios_entry_points();
        let fence_fns: Vec<_> = entries
            .iter()
            .filter(|e| matches!(&e.api, EntryApi::Extension(ext) if ext == "APPLE_fence"))
            .collect();
        assert_eq!(fence_fns.len(), 8);
        for f in fence_fns {
            assert_eq!(
                classify(f),
                SupportKind::Diplomat(DiplomatPattern::Indirect),
                "{}",
                f.name
            );
        }
    }
}
