//! The diplomatic GLES library: the iOS GLES API surface over Android.
//!
//! "Loosely speaking, instead of having iOS apps use their own iOS GLES
//! libraries, Cycada has them use Android GLES libraries through diplomats"
//! (§3). [`GlesBridge`] exposes the iOS GLES surface; every call runs the
//! full diplomat procedure (persona switch, Android GLES invocation,
//! persona switch back) and is classified by usage pattern:
//!
//! * **direct** — straight to the same-named Android function;
//! * **indirect** — foreign wrapper redirects to a differently-named
//!   Android API (`APPLE_fence` → `NV_fence`);
//! * **data-dependent** — foreign logic inspects the inputs first
//!   (`glGetString`'s Apple parameter, `APPLE_row_bytes` repacking, BGRA
//!   conversion) and may skip the Android call entirely;
//! * the two **multi**-diplomat IOSurface binding functions live in
//!   [`crate::IoSurfaceBridge`].

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use cycada_diplomat::{
    DiplomatEngine, DiplomatEntry, DiplomatPattern, DiplomatTable, FnId, HookKind,
};
use cycada_egl::loadout::VENDOR_GLES_LIB;
use cycada_egl::AndroidEgl;
use cycada_gles::{
    Capability, ClientState, FramebufferStatus, GlesRegistry, MatrixMode, PixelStoreParam,
    Primitive, StringName, TexFormat, VendorGles,
};
use cycada_gpu::math::Mat4;
use cycada_kernel::SimTid;
use cycada_sim::{fn_id, trace};


use crate::error::CycadaError;
use crate::Result;

/// Foreign-side cost of repacking one byte of pixel data (the manual
/// read-in/write-out the `APPLE_row_bytes` data-dependent diplomats do).
const REPACK_BYTE_NS: f64 = 0.3;

/// Bridge-side `APPLE_row_bytes` state, kept per thread because the Android
/// context cannot hold it (the enums are unknown there).
#[derive(Debug, Clone, Copy, Default)]
struct RowBytes {
    unpack: usize,
    pack: usize,
}

/// Distinguishes bridge instances in the thread-local row-bytes state so
/// two bridges on one host thread cannot alias each other's entries.
static NEXT_BRIDGE_INSTANCE: AtomicU64 = AtomicU64::new(0);

/// Instances of bridges still alive. Long-lived host threads serve many
/// short-lived sessions/devices, so thread-local row-bytes entries must be
/// evicted once their bridge is gone — membership here is the liveness
/// test ([`GlesBridge`]'s `Drop` retires the instance).
static LIVE_BRIDGES: std::sync::OnceLock<Mutex<std::collections::HashSet<u64>>> =
    std::sync::OnceLock::new();

fn live_bridges() -> &'static Mutex<std::collections::HashSet<u64>> {
    LIVE_BRIDGES.get_or_init(|| Mutex::new(std::collections::HashSet::new()))
}

/// Entry count above which an insert first evicts entries of dropped
/// bridges (and informationless default entries) from the calling thread.
const ROW_BYTES_PRUNE_LEN: usize = 8;

thread_local! {
    /// `(bridge instance, sim tid)` → `APPLE_row_bytes` state. A short
    /// linear-scanned vec: a thread touches a handful of (bridge, tid)
    /// pairs, and the scan replaces the old global mutex + hash per call.
    /// Growth across session churn is bounded by pruning on insert.
    static ROW_BYTES: RefCell<Vec<((u64, u64), RowBytes)>> = const { RefCell::new(Vec::new()) };
}

type DeleteHook = Box<dyn Fn(&[u32]) + Send + Sync>;

/// The diplomatic GLES library.
pub struct GlesBridge {
    engine: Arc<DiplomatEngine>,
    egl: Arc<AndroidEgl>,
    entries: DiplomatTable,
    instance: u64,
    on_delete_textures: Mutex<Option<DeleteHook>>,
}

impl GlesBridge {
    /// Creates the bridge. Forces the GLES registry so the whole bridged
    /// surface holds stable, registration-order [`FnId`]s before the first
    /// dispatch.
    pub fn new(engine: Arc<DiplomatEngine>, egl: Arc<AndroidEgl>) -> Self {
        GlesRegistry::global();
        let instance = NEXT_BRIDGE_INSTANCE.fetch_add(1, Ordering::Relaxed);
        live_bridges().lock().insert(instance);
        GlesBridge {
            engine,
            egl,
            entries: DiplomatTable::new(),
            instance,
            on_delete_textures: Mutex::new(None),
        }
    }

    /// The diplomat engine (for stats and impersonation).
    pub fn engine(&self) -> &Arc<DiplomatEngine> {
        &self.engine
    }

    /// Installs the `glDeleteTextures` interposition hook the IOSurface
    /// bridge uses to drop GraphicBuffer connections (§6.1).
    pub fn set_delete_textures_hook(&self, hook: impl Fn(&[u32]) + Send + Sync + 'static) {
        *self.on_delete_textures.lock() = Some(Box::new(hook));
    }

    fn entry(
        &self,
        id: FnId,
        android_symbol: &'static str,
        pattern: DiplomatPattern,
    ) -> &Arc<DiplomatEntry> {
        self.entries.get_or_register(id, || {
            DiplomatEntry::with_id(id, VENDOR_GLES_LIB, android_symbol, pattern, HookKind::Gles)
        })
    }

    fn gles(&self, tid: SimTid) -> Result<Arc<VendorGles>> {
        self.egl.gles_for_thread(tid).map_err(CycadaError::from)
    }

    /// A direct diplomat: same-named Android function.
    fn direct<R>(&self, tid: SimTid, id: FnId, f: impl FnOnce(&VendorGles) -> R) -> Result<R> {
        let entry = self.entry(id, id.name(), DiplomatPattern::Direct);
        let gles = self.gles(tid)?;
        Ok(self.engine.call(tid, entry, || f(&gles))?)
    }

    /// An indirect diplomat: redirected to a differently-named Android API.
    fn indirect<R>(
        &self,
        tid: SimTid,
        id: FnId,
        android_symbol: &'static str,
        f: impl FnOnce(&VendorGles) -> R,
    ) -> Result<R> {
        let entry = self.entry(id, android_symbol, DiplomatPattern::Indirect);
        let gles = self.gles(tid)?;
        Ok(self.engine.call(tid, entry, || f(&gles))?)
    }

    /// A data-dependent diplomat that does invoke Android.
    fn data_dependent<R>(
        &self,
        tid: SimTid,
        id: FnId,
        f: impl FnOnce(&VendorGles) -> R,
    ) -> Result<R> {
        let entry = self.entry(id, id.name(), DiplomatPattern::DataDependent);
        let gles = self.gles(tid)?;
        Ok(self.engine.call(tid, entry, || f(&gles))?)
    }

    /// A data-dependent diplomat that stays entirely in foreign code
    /// ("some data-dependent diplomats may not invoke an Android function
    /// at all", §4.1). Records the call under `id` with its (small)
    /// foreign-side cost.
    fn foreign_only<R>(&self, tid: SimTid, id: FnId, f: impl FnOnce() -> R) -> R {
        let _ = tid;
        let clock = self.engine.kernel().clock();
        // Thread-scoped like DiplomatEngine::call: concurrent sessions'
        // charges must not leak into this call's recorded time.
        let span = clock.thread_span();
        // Ensure the entry exists for classification introspection.
        let _ = self.entry(id, id.name(), DiplomatPattern::DataDependent);
        clock.charge_ns(40); // parameter inspection in foreign code
        let r = f();
        self.engine.record_call(id, span.elapsed_ns());
        r
    }

    fn row_bytes(&self, tid: SimTid) -> RowBytes {
        let key = (self.instance, tid.as_u64());
        ROW_BYTES.with(|state| {
            state
                .borrow()
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, rb)| *rb)
                .unwrap_or_default()
        })
    }

    fn update_row_bytes(&self, tid: SimTid, f: impl FnOnce(&mut RowBytes)) {
        let key = (self.instance, tid.as_u64());
        ROW_BYTES.with(|state| {
            let mut state = state.borrow_mut();
            if let Some((_, rb)) = state.iter_mut().find(|(k, _)| *k == key) {
                f(rb);
            } else {
                if state.len() >= ROW_BYTES_PRUNE_LEN {
                    // Evict entries whose bridge is gone, plus defaults
                    // (absence already reads as default), so session churn
                    // cannot grow the scan without bound.
                    let live = live_bridges().lock();
                    state.retain(|((inst, _), rb)| {
                        live.contains(inst) && (rb.unpack != 0 || rb.pack != 0)
                    });
                }
                let mut rb = RowBytes::default();
                f(&mut rb);
                state.push((key, rb));
            }
        });
    }

    fn charge_repack(&self, bytes: usize) {
        self.engine
            .kernel()
            .clock()
            .charge_ns_f64(bytes as f64 * REPACK_BYTE_NS);
    }

    // ==================================================================
    // Direct diplomats (the 312 of Table 2; the operational subset)
    // ==================================================================

    /// `glClearColor`.
    pub fn clear_color(&self, tid: SimTid, r: f32, g: f32, b: f32, a: f32) -> Result<()> {
        self.direct(tid, fn_id!("glClearColor"), |gl| {
            gl.with_current(tid, |c| c.clear_color(r, g, b, a))
        })
    }

    /// `glClear`.
    pub fn clear(&self, tid: SimTid, color: bool, depth: bool) -> Result<()> {
        self.direct(tid, fn_id!("glClear"), |gl| {
            gl.with_current(tid, |c| c.clear(color, depth))
        })
    }

    /// `glViewport`.
    pub fn viewport(&self, tid: SimTid, x: i32, y: i32, w: u32, h: u32) -> Result<()> {
        self.direct(tid, fn_id!("glViewport"), |gl| {
            gl.with_current(tid, |c| c.set_viewport(x, y, w, h))
        })
    }

    /// `glScissor`.
    pub fn scissor(&self, tid: SimTid, x: i32, y: i32, w: u32, h: u32) -> Result<()> {
        self.direct(tid, fn_id!("glScissor"), |gl| {
            gl.with_current(tid, |c| c.set_scissor(x, y, w, h))
        })
    }

    /// `glEnable`.
    pub fn enable(&self, tid: SimTid, cap: Capability) -> Result<()> {
        self.direct(tid, fn_id!("glEnable"), |gl| gl.with_current(tid, |c| c.enable(cap)))
    }

    /// `glDisable`.
    pub fn disable(&self, tid: SimTid, cap: Capability) -> Result<()> {
        self.direct(tid, fn_id!("glDisable"), |gl| {
            gl.with_current(tid, |c| c.disable(cap))
        })
    }

    /// `glMatrixMode`.
    pub fn matrix_mode(&self, tid: SimTid, mode: MatrixMode) -> Result<()> {
        self.direct(tid, fn_id!("glMatrixMode"), |gl| {
            gl.with_current(tid, |c| c.matrix_mode(mode))
        })
    }

    /// `glLoadIdentity`.
    pub fn load_identity(&self, tid: SimTid) -> Result<()> {
        self.direct(tid, fn_id!("glLoadIdentity"), |gl| {
            gl.with_current(tid, |c| c.load_identity())
        })
    }

    /// `glPushMatrix`.
    pub fn push_matrix(&self, tid: SimTid) -> Result<()> {
        self.direct(tid, fn_id!("glPushMatrix"), |gl| {
            gl.with_current(tid, |c| c.push_matrix())
        })
    }

    /// `glPopMatrix`.
    pub fn pop_matrix(&self, tid: SimTid) -> Result<()> {
        self.direct(tid, fn_id!("glPopMatrix"), |gl| {
            gl.with_current(tid, |c| c.pop_matrix())
        })
    }

    /// `glRotatef`.
    pub fn rotatef(&self, tid: SimTid, deg: f32, x: f32, y: f32, z: f32) -> Result<()> {
        self.direct(tid, fn_id!("glRotatef"), |gl| {
            gl.with_current(tid, |c| c.rotate(deg, x, y, z))
        })
    }

    /// `glTranslatef`.
    pub fn translatef(&self, tid: SimTid, x: f32, y: f32, z: f32) -> Result<()> {
        self.direct(tid, fn_id!("glTranslatef"), |gl| {
            gl.with_current(tid, |c| c.translate(x, y, z))
        })
    }

    /// `glScalef`.
    pub fn scalef(&self, tid: SimTid, x: f32, y: f32, z: f32) -> Result<()> {
        self.direct(tid, fn_id!("glScalef"), |gl| {
            gl.with_current(tid, |c| c.scale(x, y, z))
        })
    }

    /// `glOrthof`.
    #[allow(clippy::too_many_arguments)]
    pub fn orthof(&self, tid: SimTid, l: f32, r: f32, b: f32, t: f32, n: f32, f: f32) -> Result<()> {
        self.direct(tid, fn_id!("glOrthof"), |gl| {
            gl.with_current(tid, |c| c.ortho(l, r, b, t, n, f))
        })
    }

    /// `glFrustumf`.
    #[allow(clippy::too_many_arguments)]
    pub fn frustumf(
        &self,
        tid: SimTid,
        l: f32,
        r: f32,
        b: f32,
        t: f32,
        n: f32,
        f: f32,
    ) -> Result<()> {
        self.direct(tid, fn_id!("glFrustumf"), |gl| {
            gl.with_current(tid, |c| c.frustum(l, r, b, t, n, f))
        })
    }

    /// `glColor4f`.
    pub fn color4f(&self, tid: SimTid, r: f32, g: f32, b: f32, a: f32) -> Result<()> {
        self.direct(tid, fn_id!("glColor4f"), |gl| {
            gl.with_current(tid, |c| c.color4f(r, g, b, a))
        })
    }

    /// `glEnableClientState`.
    pub fn enable_client_state(&self, tid: SimTid, state: ClientState) -> Result<()> {
        self.direct(tid, fn_id!("glEnableClientState"), |gl| {
            gl.with_current(tid, |c| c.set_client_state(state, true))
        })
    }

    /// `glDisableClientState`.
    pub fn disable_client_state(&self, tid: SimTid, state: ClientState) -> Result<()> {
        self.direct(tid, fn_id!("glDisableClientState"), |gl| {
            gl.with_current(tid, |c| c.set_client_state(state, false))
        })
    }

    /// `glVertexPointer`.
    pub fn vertex_pointer(&self, tid: SimTid, size: usize, data: &[f32]) -> Result<()> {
        self.direct(tid, fn_id!("glVertexPointer"), |gl| {
            gl.with_current(tid, |c| c.client_pointer(ClientState::VertexArray, size, data))
        })
    }

    /// `glColorPointer`.
    pub fn color_pointer(&self, tid: SimTid, size: usize, data: &[f32]) -> Result<()> {
        self.direct(tid, fn_id!("glColorPointer"), |gl| {
            gl.with_current(tid, |c| c.client_pointer(ClientState::ColorArray, size, data))
        })
    }

    /// `glTexCoordPointer`.
    pub fn tex_coord_pointer(&self, tid: SimTid, size: usize, data: &[f32]) -> Result<()> {
        self.direct(tid, fn_id!("glTexCoordPointer"), |gl| {
            gl.with_current(tid, |c| c.client_pointer(ClientState::TexCoordArray, size, data))
        })
    }

    /// `glDrawArrays`. Returns fragments shaded.
    pub fn draw_arrays(&self, tid: SimTid, mode: Primitive, first: usize, count: usize) -> Result<u64> {
        self.direct(tid, fn_id!("glDrawArrays"), |gl| {
            gl.with_current(tid, |c| c.draw_arrays(mode, first, count))
        })
    }

    /// `glDrawElements`. Returns fragments shaded.
    pub fn draw_elements(&self, tid: SimTid, mode: Primitive, indices: &[u32]) -> Result<u64> {
        self.direct(tid, fn_id!("glDrawElements"), |gl| {
            gl.with_current(tid, |c| c.draw_elements(mode, indices))
        })
    }

    /// `glGenTextures`.
    pub fn gen_textures(&self, tid: SimTid, count: usize) -> Result<Vec<u32>> {
        self.direct(tid, fn_id!("glGenTextures"), |gl| {
            gl.with_current(tid, |c| c.gen_textures(count))
        })
    }

    /// `glBindTexture`.
    pub fn bind_texture(&self, tid: SimTid, name: u32) -> Result<()> {
        self.direct(tid, fn_id!("glBindTexture"), |gl| gl.bind_texture(tid, name))
    }

    /// `glDeleteTextures` — interposed so IOSurface associations are
    /// dropped (§6.1).
    pub fn delete_textures(&self, tid: SimTid, names: &[u32]) -> Result<()> {
        if let Some(hook) = self.on_delete_textures.lock().as_ref() {
            hook(names);
        }
        self.direct(tid, fn_id!("glDeleteTextures"), |gl| gl.delete_textures(tid, names))
    }

    /// `glGenFramebuffers`.
    pub fn gen_framebuffers(&self, tid: SimTid, count: usize) -> Result<Vec<u32>> {
        self.direct(tid, fn_id!("glGenFramebuffers"), |gl| {
            gl.with_current(tid, |c| c.gen_framebuffers(count))
        })
    }

    /// `glBindFramebuffer`.
    pub fn bind_framebuffer(&self, tid: SimTid, name: u32) -> Result<()> {
        self.direct(tid, fn_id!("glBindFramebuffer"), |gl| gl.bind_framebuffer(tid, name))
    }

    /// `glFramebufferTexture2D`.
    pub fn framebuffer_texture(&self, tid: SimTid, texture: u32) -> Result<()> {
        self.direct(tid, fn_id!("glFramebufferTexture2D"), |gl| {
            gl.with_current(tid, |c| c.framebuffer_texture(texture))
        })
    }

    /// `glFramebufferRenderbuffer`.
    pub fn framebuffer_renderbuffer(&self, tid: SimTid, rb: u32) -> Result<()> {
        self.direct(tid, fn_id!("glFramebufferRenderbuffer"), |gl| {
            gl.with_current(tid, |c| c.framebuffer_renderbuffer(rb))
        })
    }

    /// `glCheckFramebufferStatus`.
    pub fn check_framebuffer_status(&self, tid: SimTid) -> Result<FramebufferStatus> {
        self.direct(tid, fn_id!("glCheckFramebufferStatus"), |gl| {
            gl.with_current(tid, |c| Some(c.check_framebuffer_status()))
        })
        .map(|s| s.unwrap_or(FramebufferStatus::Unsupported))
    }

    /// `glGenRenderbuffers`.
    pub fn gen_renderbuffers(&self, tid: SimTid, count: usize) -> Result<Vec<u32>> {
        self.direct(tid, fn_id!("glGenRenderbuffers"), |gl| {
            gl.with_current(tid, |c| c.gen_renderbuffers(count))
        })
    }

    /// `glBindRenderbuffer`.
    pub fn bind_renderbuffer(&self, tid: SimTid, name: u32) -> Result<()> {
        self.direct(tid, fn_id!("glBindRenderbuffer"), |gl| {
            gl.with_current(tid, |c| c.bind_renderbuffer(name))
        })
    }

    /// `glRenderbufferStorage`.
    pub fn renderbuffer_storage(&self, tid: SimTid, w: u32, h: u32, format: TexFormat) -> Result<()> {
        self.direct(tid, fn_id!("glRenderbufferStorage"), |gl| {
            gl.with_current(tid, |c| c.renderbuffer_storage(w, h, format))
        })
    }

    /// `glCreateShader`.
    pub fn create_shader(&self, tid: SimTid) -> Result<u32> {
        self.direct(tid, fn_id!("glCreateShader"), |gl| {
            gl.with_current(tid, |c| c.create_shader())
        })
    }

    /// `glShaderSource`.
    pub fn shader_source(&self, tid: SimTid, shader: u32, src: &str) -> Result<()> {
        self.direct(tid, fn_id!("glShaderSource"), |gl| {
            gl.with_current(tid, |c| c.shader_source(shader, src))
        })
    }

    /// `glCompileShader`.
    pub fn compile_shader(&self, tid: SimTid, shader: u32) -> Result<()> {
        self.direct(tid, fn_id!("glCompileShader"), |gl| {
            gl.with_current(tid, |c| c.compile_shader(shader))
        })
    }

    /// `glCreateProgram`.
    pub fn create_program(&self, tid: SimTid) -> Result<u32> {
        self.direct(tid, fn_id!("glCreateProgram"), |gl| {
            gl.with_current(tid, |c| c.create_program())
        })
    }

    /// `glAttachShader`.
    pub fn attach_shader(&self, tid: SimTid, program: u32, shader: u32) -> Result<()> {
        self.direct(tid, fn_id!("glAttachShader"), |gl| {
            gl.with_current(tid, |c| c.attach_shader(program, shader))
        })
    }

    /// `glLinkProgram`.
    pub fn link_program(&self, tid: SimTid, program: u32) -> Result<()> {
        self.direct(tid, fn_id!("glLinkProgram"), |gl| {
            gl.with_current(tid, |c| c.link_program(program))
        })
    }

    /// `glGetProgramiv(GL_LINK_STATUS)`.
    pub fn program_linked(&self, tid: SimTid, program: u32) -> Result<bool> {
        self.direct(tid, fn_id!("glGetProgramiv"), |gl| {
            gl.with_current(tid, |c| c.program_linked(program))
        })
    }

    /// `glUseProgram`.
    pub fn use_program(&self, tid: SimTid, program: u32) -> Result<()> {
        self.direct(tid, fn_id!("glUseProgram"), |gl| {
            gl.with_current(tid, |c| c.use_program(program))
        })
    }

    /// `glGetUniformLocation`.
    pub fn uniform_location(&self, tid: SimTid, program: u32, name: &str) -> Result<i32> {
        self.direct(tid, fn_id!("glGetUniformLocation"), |gl| {
            gl.with_current(tid, |c| c.uniform_location(program, name))
        })
    }

    /// `glUniform4f`.
    pub fn uniform4f(&self, tid: SimTid, loc: i32, x: f32, y: f32, z: f32, w: f32) -> Result<()> {
        self.direct(tid, fn_id!("glUniform4f"), |gl| {
            gl.with_current(tid, |c| c.uniform4f(loc, x, y, z, w))
        })
    }

    /// `glUniformMatrix4fv`.
    pub fn uniform_matrix4(&self, tid: SimTid, loc: i32, m: Mat4) -> Result<()> {
        self.direct(tid, fn_id!("glUniformMatrix4fv"), |gl| {
            gl.with_current(tid, |c| c.uniform_matrix4(loc, m))
        })
    }

    /// `glVertexAttribPointer`.
    pub fn vertex_attrib_pointer(&self, tid: SimTid, index: u32, size: usize, data: &[f32]) -> Result<()> {
        self.direct(tid, fn_id!("glVertexAttribPointer"), |gl| {
            gl.with_current(tid, |c| c.vertex_attrib_pointer(index, size, data))
        })
    }

    /// `glEnableVertexAttribArray`.
    pub fn enable_vertex_attrib_array(&self, tid: SimTid, index: u32) -> Result<()> {
        self.direct(tid, fn_id!("glEnableVertexAttribArray"), |gl| {
            gl.with_current(tid, |c| c.set_vertex_attrib_enabled(index, true))
        })
    }

    /// `glLineWidth`.
    pub fn line_width(&self, tid: SimTid, width: f32) -> Result<()> {
        self.direct(tid, fn_id!("glLineWidth"), |gl| {
            gl.with_current(tid, |c| c.set_line_width(width))
        })
    }

    /// `glPointSize`.
    pub fn point_size(&self, tid: SimTid, size: f32) -> Result<()> {
        self.direct(tid, fn_id!("glPointSize"), |gl| {
            gl.with_current(tid, |c| c.set_point_size(size))
        })
    }

    /// `glIsTexture`.
    pub fn is_texture(&self, tid: SimTid, name: u32) -> Result<bool> {
        self.direct(tid, fn_id!("glIsTexture"), |gl| {
            gl.with_current(tid, |c| c.is_texture(name))
        })
    }

    /// `glGenBuffers`.
    pub fn gen_buffers(&self, tid: SimTid, count: usize) -> Result<Vec<u32>> {
        self.direct(tid, fn_id!("glGenBuffers"), |gl| {
            gl.with_current(tid, |c| c.gen_buffers(count))
        })
    }

    /// `glBufferData`.
    pub fn buffer_data(&self, tid: SimTid, buffer: u32, data: &[u8]) -> Result<()> {
        self.direct(tid, fn_id!("glBufferData"), |gl| {
            gl.with_current(tid, |c| c.buffer_data(buffer, data))
        })
    }

    /// `glDeleteBuffers`.
    pub fn delete_buffers(&self, tid: SimTid, names: &[u32]) -> Result<()> {
        self.direct(tid, fn_id!("glDeleteBuffers"), |gl| {
            gl.with_current(tid, |c| c.delete_buffers(names))
        })
    }

    /// `glIsBuffer`.
    pub fn is_buffer(&self, tid: SimTid, name: u32) -> Result<bool> {
        self.direct(tid, fn_id!("glIsBuffer"), |gl| {
            gl.with_current(tid, |c| c.is_buffer(name))
        })
    }

    /// `glDisableVertexAttribArray`.
    pub fn disable_vertex_attrib_array(&self, tid: SimTid, index: u32) -> Result<()> {
        self.direct(tid, fn_id!("glDisableVertexAttribArray"), |gl| {
            gl.with_current(tid, |c| c.set_vertex_attrib_enabled(index, false))
        })
    }

    /// `glLoadMatrixf`.
    pub fn load_matrix(&self, tid: SimTid, m: Mat4) -> Result<()> {
        self.direct(tid, fn_id!("glLoadMatrixf"), |gl| {
            gl.with_current(tid, |c| c.load_matrix(m))
        })
    }

    /// `glMultMatrixf`.
    pub fn mult_matrix(&self, tid: SimTid, m: Mat4) -> Result<()> {
        self.direct(tid, fn_id!("glMultMatrixf"), |gl| {
            gl.with_current(tid, |c| c.mult_matrix(m))
        })
    }

    /// `glIsFenceAPPLE` (indirect, like the rest of `APPLE_fence`).
    pub fn is_fence_apple(&self, tid: SimTid, fence: u32) -> Result<bool> {
        self.indirect(tid, fn_id!("glIsFenceAPPLE"), "glIsFenceNV", |gl| {
            gl.with_current(tid, |c| c.is_fence(fence))
        })
    }

    /// `glFlush`.
    pub fn flush(&self, tid: SimTid) -> Result<()> {
        self.direct(tid, fn_id!("glFlush"), |gl| gl.flush(tid))
    }

    /// `glFinish`.
    pub fn finish(&self, tid: SimTid) -> Result<()> {
        self.direct(tid, fn_id!("glFinish"), |gl| gl.finish(tid))
    }

    /// `glGetError`.
    pub fn get_error(&self, tid: SimTid) -> Result<cycada_gles::GlError> {
        self.direct(tid, fn_id!("glGetError"), |gl| {
            gl.with_current(tid, |c| c.get_error())
        })
    }

    // ==================================================================
    // Indirect diplomats: APPLE_fence -> NV_fence (§4.1)
    // ==================================================================

    /// `glGenFencesAPPLE` — "the custom iOS code performs minor input
    /// re-arranging within each APPLE_fence API before calling into a
    /// corresponding Android GLES NV_fence API".
    pub fn gen_fences_apple(&self, tid: SimTid, count: usize) -> Result<Vec<u32>> {
        self.indirect(tid, fn_id!("glGenFencesAPPLE"), "glGenFencesNV", |gl| {
            gl.gen_fences_nv(tid, count)
        })
    }

    /// `glSetFenceAPPLE`.
    pub fn set_fence_apple(&self, tid: SimTid, fence: u32) -> Result<()> {
        self.indirect(tid, fn_id!("glSetFenceAPPLE"), "glSetFenceNV", |gl| {
            gl.set_fence_nv(tid, fence)
        })
    }

    /// `glTestFenceAPPLE`.
    pub fn test_fence_apple(&self, tid: SimTid, fence: u32) -> Result<bool> {
        self.indirect(tid, fn_id!("glTestFenceAPPLE"), "glTestFenceNV", |gl| {
            gl.test_fence_nv(tid, fence)
        })
    }

    /// `glFinishFenceAPPLE`.
    pub fn finish_fence_apple(&self, tid: SimTid, fence: u32) -> Result<()> {
        self.indirect(tid, fn_id!("glFinishFenceAPPLE"), "glFinishFenceNV", |gl| {
            gl.finish_fence_nv(tid, fence)
        })
    }

    /// `glDeleteFencesAPPLE`.
    pub fn delete_fences_apple(&self, tid: SimTid, fences: &[u32]) -> Result<()> {
        self.indirect(tid, fn_id!("glDeleteFencesAPPLE"), "glDeleteFencesNV", |gl| {
            gl.delete_fences_nv(tid, fences)
        })
    }

    // ==================================================================
    // Data-dependent diplomats (§4.1)
    // ==================================================================

    /// `glGetString`: Apple's proprietary parameter is answered entirely in
    /// foreign code; standard parameters go to Android.
    pub fn get_string(&self, tid: SimTid, name: StringName) -> Result<Option<String>> {
        if name == StringName::AppleExtensions {
            // "returns a custom string indicating that no Apple-proprietary
            // extensions are available."
            return Ok(self.foreign_only(tid, fn_id!("glGetString"), || Some(String::new())));
        }
        self.data_dependent(tid, fn_id!("glGetString"), |gl| gl.get_string(tid, name))
    }

    /// `glPixelStorei`: the two extra `APPLE_row_bytes` parameters are kept
    /// in bridge-side state (the Android context rejects the enums);
    /// standard parameters go to Android.
    pub fn pixel_storei(&self, tid: SimTid, param: PixelStoreParam, value: usize) -> Result<()> {
        match param {
            PixelStoreParam::UnpackRowBytesApple => {
                self.foreign_only(tid, fn_id!("glPixelStorei"), || {
                    self.update_row_bytes(tid, |rb| rb.unpack = value);
                });
                Ok(())
            }
            PixelStoreParam::PackRowBytesApple => {
                self.foreign_only(tid, fn_id!("glPixelStorei"), || {
                    self.update_row_bytes(tid, |rb| rb.pack = value);
                });
                Ok(())
            }
            _ => self.data_dependent(tid, fn_id!("glPixelStorei"), |gl| {
                gl.with_current(tid, |c| c.pixel_store(param, value))
            }),
        }
    }

    /// `glTexImage2D`: when `APPLE_row_bytes` unpack state is set, "Cycada
    /// reads in ... the packed data manually" — rows are repacked tight in
    /// foreign code; BGRA data (unknown to the Tegra) is swizzled to RGBA.
    pub fn tex_image_2d(
        &self,
        tid: SimTid,
        width: u32,
        height: u32,
        format: TexFormat,
        data: Option<&[u8]>,
    ) -> Result<()> {
        let rb = self.row_bytes(tid);
        let bpp = format.bytes_per_pixel();
        let prepared: Option<Vec<u8>> = data.map(|data| {
            let mut out = repack_tight(data, width as usize, height as usize, bpp, rb.unpack);
            if format == TexFormat::Bgra {
                swizzle_bgra_rgba(&mut out);
            }
            self.charge_repack(out.len());
            out
        });
        let android_format = if format == TexFormat::Bgra {
            TexFormat::Rgba
        } else {
            format
        };
        self.data_dependent(tid, fn_id!("glTexImage2D"), |gl| {
            gl.with_current(tid, |c| {
                c.tex_image_2d(width, height, android_format, prepared.as_deref())
            })
        })
    }

    /// `glTexSubImage2D` with the same repacking logic.
    #[allow(clippy::too_many_arguments)]
    pub fn tex_sub_image_2d(
        &self,
        tid: SimTid,
        x: u32,
        y: u32,
        width: u32,
        height: u32,
        format: TexFormat,
        data: &[u8],
    ) -> Result<()> {
        let rb = self.row_bytes(tid);
        let bpp = format.bytes_per_pixel();
        let mut prepared = repack_tight(data, width as usize, height as usize, bpp, rb.unpack);
        if format == TexFormat::Bgra {
            swizzle_bgra_rgba(&mut prepared);
        }
        self.charge_repack(prepared.len());
        let android_format = if format == TexFormat::Bgra {
            TexFormat::Rgba
        } else {
            format
        };
        self.data_dependent(tid, fn_id!("glTexSubImage2D"), |gl| {
            gl.with_current(tid, |c| {
                c.tex_sub_image_2d(x, y, width, height, android_format, &prepared)
            })
        })
    }

    /// `glReadPixels`: Android reads tight; foreign code writes out at the
    /// `APPLE_row_bytes` pack stride (and swizzles BGRA) as the iOS caller
    /// expects.
    pub fn read_pixels(
        &self,
        tid: SimTid,
        x: u32,
        y: u32,
        width: u32,
        height: u32,
        format: TexFormat,
    ) -> Result<Vec<u8>> {
        let android_format = if format == TexFormat::Bgra {
            TexFormat::Rgba
        } else {
            format
        };
        let mut tight = self.data_dependent(tid, fn_id!("glReadPixels"), |gl| {
            gl.with_current(tid, |c| {
                let mut out = Vec::new();
                c.read_pixels(x, y, width, height, android_format, &mut out);
                out
            })
        })?;
        if format == TexFormat::Bgra {
            swizzle_bgra_rgba(&mut tight); // symmetric swap back to BGRA
        }
        let rb = self.row_bytes(tid);
        let bpp = format.bytes_per_pixel();
        if rb.pack > 0 && rb.pack != width as usize * bpp {
            self.charge_repack(tight.len());
            Ok(spread_rows(&tight, width as usize, height as usize, bpp, rb.pack))
        } else {
            Ok(tight)
        }
    }

    /// Introspection: the usage pattern recorded for a bridged function
    /// that has been called at least once.
    pub fn called_pattern(&self, name: &str) -> Option<DiplomatPattern> {
        self.entries.by_name(name).map(|e| e.pattern())
    }
}

impl Drop for GlesBridge {
    fn drop(&mut self) {
        // Retire the instance and drop this thread's own entries eagerly;
        // other threads' entries for it are evicted lazily on their next
        // insert (they can no longer match a live instance).
        live_bridges().lock().remove(&self.instance);
        if ROW_BYTES
            .try_with(|state| {
                state.borrow_mut().retain(|((inst, _), _)| *inst != self.instance);
            })
            .is_err()
        {
            // The bridge is dropping during this thread's TLS teardown:
            // ROW_BYTES is already destroyed and the eager eviction cannot
            // run. That is safe (other threads evict stale entries lazily)
            // but must not be invisible — count the skip so leaked scan
            // entries are observable.
            trace::bump(trace::Counter::RowBytesTeardownSkips);
            trace::instant(trace::Category::Bridge, "row_bytes_teardown_skip", self.instance);
        }
    }
}

impl fmt::Debug for GlesBridge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlesBridge")
            .field("entries", &self.entries.len())
            .finish()
    }
}

/// Repacks rows with stride `row_bytes` (0 = already tight) into a tight
/// buffer.
fn repack_tight(data: &[u8], width: usize, height: usize, bpp: usize, row_bytes: usize) -> Vec<u8> {
    let tight_row = width * bpp;
    if row_bytes == 0 || row_bytes == tight_row {
        return data.to_vec();
    }
    let mut out = Vec::with_capacity(tight_row * height);
    for row in 0..height {
        let start = row * row_bytes;
        out.extend_from_slice(&data[start..start + tight_row]);
    }
    out
}

/// Spreads tight rows out to `row_bytes` stride (zero padding).
fn spread_rows(tight: &[u8], width: usize, height: usize, bpp: usize, row_bytes: usize) -> Vec<u8> {
    let tight_row = width * bpp;
    let mut out = vec![0u8; row_bytes * height];
    for row in 0..height {
        out[row * row_bytes..row * row_bytes + tight_row]
            .copy_from_slice(&tight[row * tight_row..(row + 1) * tight_row]);
    }
    out
}

/// In-place BGRA <-> RGBA channel swap (symmetric).
fn swizzle_bgra_rgba(data: &mut [u8]) {
    for px in data.chunks_exact_mut(4) {
        px.swap(0, 2);
    }
}

/// Sanity helper: the total number of iOS entry points the registry says
/// the bridge must cover.
pub fn bridged_surface_size() -> usize {
    GlesRegistry::global().ios_entry_points().len()
}

/// Foreign-side repack cost export for ablation benches.
pub const FOREIGN_REPACK_BYTE_NS: f64 = REPACK_BYTE_NS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repack_tight_extracts_rows() {
        // 2x2 RGBA with 12-byte rows.
        let mut data = vec![0u8; 24];
        data[0] = 1;
        data[12] = 2;
        let tight = repack_tight(&data, 2, 2, 4, 12);
        assert_eq!(tight.len(), 16);
        assert_eq!(tight[0], 1);
        assert_eq!(tight[8], 2);
        // Already tight: pass-through.
        assert_eq!(repack_tight(&tight, 2, 2, 4, 0), tight);
    }

    #[test]
    fn spread_rows_pads() {
        let tight = vec![9u8; 8]; // 1x2 RGBA
        let spread = spread_rows(&tight, 1, 2, 4, 6);
        assert_eq!(spread.len(), 12);
        assert_eq!(&spread[0..4], &[9, 9, 9, 9]);
        assert_eq!(&spread[4..6], &[0, 0]);
        assert_eq!(&spread[6..10], &[9, 9, 9, 9]);
    }

    #[test]
    fn swizzle_is_symmetric() {
        let mut px = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        swizzle_bgra_rgba(&mut px);
        assert_eq!(px, vec![3, 2, 1, 4, 7, 6, 5, 8]);
        swizzle_bgra_rgba(&mut px);
        assert_eq!(px, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn surface_size_is_table2_total() {
        assert_eq!(bridged_surface_size(), 344);
    }

    fn thread_row_bytes_len() -> usize {
        ROW_BYTES.with(|state| state.borrow().len())
    }

    #[test]
    fn dropping_a_bridge_clears_this_threads_row_bytes() {
        let device = crate::process::CycadaDevice::boot_with_display(Some((4, 4))).unwrap();
        let tid = device.main_tid();
        device
            .bridge()
            .pixel_storei(tid, PixelStoreParam::UnpackRowBytesApple, 64)
            .unwrap();
        let instance = device.bridge().instance;
        let has_entry = || {
            ROW_BYTES.with(|s| s.borrow().iter().any(|((inst, _), _)| *inst == instance))
        };
        assert!(has_entry());
        drop(device);
        assert!(!has_entry(), "Drop evicts the dropping thread's entries");
    }

    #[test]
    fn bridge_drop_during_thread_exit_counts_row_bytes_skip() {
        thread_local! {
            static HOLDER: RefCell<Option<crate::process::CycadaDevice>> =
                const { RefCell::new(None) };
        }
        let before = trace::counter(trace::Counter::RowBytesTeardownSkips);
        std::thread::spawn(|| {
            // Register HOLDER's TLS destructor BEFORE first touching
            // ROW_BYTES: destructors run in reverse registration order
            // (__cxa_thread_atexit is LIFO), so at thread exit ROW_BYTES
            // is destroyed first and the bridge Drop inside HOLDER's
            // destructor must take the skip path.
            HOLDER.with(|h| assert!(h.borrow().is_none()));
            let device =
                crate::process::CycadaDevice::boot_with_display(Some((4, 4))).unwrap();
            let tid = device.main_tid();
            device
                .bridge()
                .pixel_storei(tid, PixelStoreParam::UnpackRowBytesApple, 64)
                .unwrap();
            HOLDER.with(|h| *h.borrow_mut() = Some(device));
            // The thread exits with the device still held in TLS.
        })
        .join()
        .expect("bridge drop during TLS teardown must not panic");
        assert!(
            trace::counter(trace::Counter::RowBytesTeardownSkips) > before,
            "the skipped ROW_BYTES eviction must be visible via the trace counter"
        );
    }

    #[test]
    fn row_bytes_entries_do_not_grow_across_session_churn() {
        // Entries left behind by bridges dropped on *another* host thread
        // are pruned lazily once the scan grows past the threshold.
        let baseline = thread_row_bytes_len();
        for _ in 0..2 * ROW_BYTES_PRUNE_LEN {
            let device =
                crate::process::CycadaDevice::boot_with_display(Some((4, 4))).unwrap();
            let tid = device.main_tid();
            device
                .bridge()
                .pixel_storei(tid, PixelStoreParam::UnpackRowBytesApple, 64)
                .unwrap();
            // Dropping on another thread leaves this thread's entry in
            // place, relying on the lazy prune path.
            std::thread::spawn(move || drop(device)).join().unwrap();
        }
        assert!(
            thread_row_bytes_len() <= baseline + ROW_BYTES_PRUNE_LEN + 1,
            "entries kept growing: {} (baseline {baseline})",
            thread_row_bytes_len(),
        );
    }
}
