//! Device/process assembly for the four evaluation platforms.
//!
//! Each platform is split into two planes (DESIGN.md §5c):
//!
//! * a **device** layer — kernel, linker, GPU, gralloc/SurfaceFlinger,
//!   CoreSurface, diplomat engine and vendor libraries — booted once and
//!   shared by every app on the device, and
//! * a **session** layer — one app's process (main thread plus any spawned
//!   threads), its EGL/EAGL contexts and surfaces, and its private
//!   virtual-time/stats scope — cheap to attach, many per device.
//!
//! Booting a device also attaches a *primary* session, so the historical
//! one-app-per-device API (`boot()` + `main_tid()`) is unchanged and
//! byte-identical in cost. Additional apps call `attach_session()`.

use std::fmt;
use std::sync::Arc;

use cycada_diplomat::{DiplomatEngine, StatsScopeGuard};
use cycada_egl::loadout::{register_android_graphics, LIBEGL};
use cycada_egl::AndroidEgl;
use cycada_gpu::GpuDevice;
use cycada_gralloc::{GraphicBufferAllocator, GrallocDriver, SurfaceFlinger};
use cycada_iosurface::{CoreSurfaceService, IOSurfaceApi};
use cycada_kernel::{Kernel, Persona, SimTid};
use cycada_linker::DynamicLinker;
use cycada_sim::stats::FunctionStats;
use cycada_sim::{MeterGuard, Nanos, Platform, SessionMeter};

use crate::bridge::GlesBridge;
use crate::eagl::Eagl;
use crate::egl_bridge::{register_bridge_libraries, EglBridge};
use crate::error::CycadaError;
use crate::iosurface_bridge::IoSurfaceBridge;
use crate::native_ios::{register_ios_display, register_ios_graphics, NativeIosStack};
use crate::Result;

/// Well-known iOS TLS slots reserved by Apple graphics libraries, migrated
/// during impersonation (§7.1: "We also migrate well-known iOS TLS slots
/// used by Apple graphics libraries").
pub const APPLE_GRAPHICS_TLS_SLOTS: &[usize] = &[5, 6, 7];

/// Live scope of one session on the calling host thread: virtual time
/// charged and diplomat calls made while the guard is alive are credited to
/// the session's meter and stats.
///
/// Drive each session's frames from its own host thread with a scope open;
/// the per-session totals are then independent of how sessions interleave
/// on the shared device.
#[must_use = "the session only accumulates while the scope is alive"]
#[derive(Debug)]
pub struct SessionScope {
    _stats: Option<StatsScopeGuard>,
    _meter: MeterGuard,
}

/// The shared (booted-once) layer of a Cycada device: everything below the
/// app process in Figure 3.
pub struct CycadaShared {
    kernel: Arc<Kernel>,
    gpu: Arc<GpuDevice>,
    linker: Arc<DynamicLinker>,
    flinger: Arc<SurfaceFlinger>,
    gralloc: Arc<GrallocDriver>,
    coresurface: Arc<CoreSurfaceService>,
    engine: Arc<DiplomatEngine>,
    egl: Arc<AndroidEgl>,
    bridge: Arc<GlesBridge>,
    egl_bridge: Arc<EglBridge>,
    iosurface_bridge: Arc<IoSurfaceBridge>,
    eagl: Arc<Eagl>,
}

impl fmt::Debug for CycadaShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CycadaShared")
            .field("kernel", &self.kernel)
            .finish()
    }
}

/// One iOS app attached to a shared Cycada device: its process and its
/// private accounting scope.
#[derive(Clone, Debug)]
pub struct CycadaSession {
    shared: Arc<CycadaShared>,
    main_tid: SimTid,
    meter: SessionMeter,
    stats: FunctionStats,
}

impl CycadaSession {
    fn attach(shared: &Arc<CycadaShared>) -> Result<Self> {
        let main_tid = shared.kernel.spawn_process_main(Persona::Ios)?;
        Ok(CycadaSession {
            shared: shared.clone(),
            main_tid,
            meter: SessionMeter::new(),
            stats: FunctionStats::new(),
        })
    }

    /// The session's main thread.
    pub fn main_tid(&self) -> SimTid {
        self.main_tid
    }

    /// Spawns another iOS thread in this session's thread group.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if the group leader exited.
    pub fn spawn_ios_thread(&self) -> Result<SimTid> {
        Ok(self.shared.kernel.spawn_thread(self.main_tid, Persona::Ios)?)
    }

    /// Opens the session's accounting scope on the calling host thread.
    pub fn scope(&self) -> SessionScope {
        SessionScope {
            _stats: Some(DiplomatEngine::enter_stats_scope(self.stats.clone())),
            _meter: self.meter.enter(),
        }
    }

    /// Virtual nanoseconds charged inside this session's scopes so far.
    pub fn virtual_ns(&self) -> Nanos {
        self.meter.total_ns()
    }

    /// Per-diplomat stats recorded inside this session's scopes.
    pub fn stats(&self) -> &FunctionStats {
        &self.stats
    }
}

/// A booted Cycada device (the paper's Nexus 7 running the modified
/// Android) hosting iOS processes: the complete graphics compatibility
/// architecture of Figure 3.
///
/// Cloning is cheap (the platform layer is shared); every clone sees the
/// same device and the same primary session.
#[derive(Clone)]
pub struct CycadaDevice {
    shared: Arc<CycadaShared>,
    primary: CycadaSession,
}

impl CycadaDevice {
    /// Boots the device and starts an iOS process on it.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if process creation fails (should
    /// not happen on a Cycada kernel).
    pub fn boot() -> Result<Self> {
        Self::boot_with_display(None)
    }

    /// Boots with an overridden display size (small displays keep tests
    /// fast; benchmarks use the device's native panel).
    ///
    /// # Errors
    ///
    /// As [`CycadaDevice::boot`].
    pub fn boot_with_display(display: Option<(u32, u32)>) -> Result<Self> {
        let mut profile = cycada_sim::DeviceProfile::for_platform(Platform::CycadaIos);
        if let Some((w, h)) = display {
            profile.display_width = w;
            profile.display_height = h;
        }
        let kernel = Arc::new(Kernel::with_profile(profile));
        let gpu = Arc::new(GpuDevice::new(
            kernel.clock().clone(),
            kernel.profile().gpu.clone(),
        ));
        let flinger = Arc::new(SurfaceFlinger::new(kernel.display().clone(), gpu.clone()));
        let gralloc = GrallocDriver::new();
        kernel.register_driver(gralloc.clone());
        // LinuxCoreSurface: the reverse-engineered IOCoreSurface
        // reimplementation inside the Android kernel (§6).
        let coresurface = CoreSurfaceService::new();
        kernel.register_service(coresurface.clone());

        let linker = Arc::new(DynamicLinker::new(kernel.clock().clone()));
        register_android_graphics(&linker, &kernel, &gpu, &flinger, &gralloc);
        register_bridge_libraries(&linker);

        let egl = linker
            .dlopen(LIBEGL)
            .map_err(CycadaError::from)?
            .state::<AndroidEgl>()
            .ok_or_else(|| CycadaError::Egl("libEGL has wrong state type".into()))?;

        let engine = DiplomatEngine::new(kernel.clone(), linker.clone());
        for &slot in APPLE_GRAPHICS_TLS_SLOTS {
            engine.graphics_tls().register_well_known(Persona::Ios, slot);
        }

        let bridge = Arc::new(GlesBridge::new(engine.clone(), egl.clone()));
        let egl_bridge = Arc::new(EglBridge::new(engine.clone(), egl.clone()));
        let iosurface_api = Arc::new(IOSurfaceApi::new(kernel.clone()));
        let iosurface_bridge = Arc::new(IoSurfaceBridge::new(
            engine.clone(),
            egl.clone(),
            iosurface_api,
            GraphicBufferAllocator::new(kernel.clone(), gralloc.clone()),
        ));
        let hook_target = iosurface_bridge.clone();
        bridge.set_delete_textures_hook(move |names| hook_target.drop_texture_associations(names));

        let display = kernel.display();
        let eagl = Arc::new(Eagl::new(
            egl.clone(),
            bridge.clone(),
            egl_bridge.clone(),
            iosurface_bridge.clone(),
            (display.width(), display.height()),
        ));

        let shared = Arc::new(CycadaShared {
            kernel,
            gpu,
            linker,
            flinger,
            gralloc,
            coresurface,
            engine,
            egl,
            bridge,
            egl_bridge,
            iosurface_bridge,
            eagl,
        });
        let primary = CycadaSession::attach(&shared)?;
        Ok(CycadaDevice { shared, primary })
    }

    /// Attaches another app session: a fresh process (its own thread group)
    /// on the already-booted shared stack. Orders of magnitude cheaper than
    /// [`CycadaDevice::boot`].
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if process creation fails.
    pub fn attach_session(&self) -> Result<CycadaSession> {
        CycadaSession::attach(&self.shared)
    }

    /// The primary session attached at boot.
    pub fn primary_session(&self) -> &CycadaSession {
        &self.primary
    }

    /// The simulated kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.shared.kernel
    }

    /// The GPU device.
    pub fn gpu(&self) -> &Arc<GpuDevice> {
        &self.shared.gpu
    }

    /// The DLR-enabled dynamic linker.
    pub fn linker(&self) -> &Arc<DynamicLinker> {
        &self.shared.linker
    }

    /// The diplomat engine (stats, impersonation).
    pub fn engine(&self) -> &Arc<DiplomatEngine> {
        &self.shared.engine
    }

    /// The diplomatic GLES library (iOS GLES API surface).
    pub fn bridge(&self) -> &Arc<GlesBridge> {
        &self.shared.bridge
    }

    /// libEGLbridge.
    pub fn egl_bridge(&self) -> &Arc<EglBridge> {
        &self.shared.egl_bridge
    }

    /// The IOSurface bridge.
    pub fn iosurface_bridge(&self) -> &Arc<IoSurfaceBridge> {
        &self.shared.iosurface_bridge
    }

    /// The EAGL implementation.
    pub fn eagl(&self) -> &Arc<Eagl> {
        &self.shared.eagl
    }

    /// The open-source Android EGL front.
    pub fn egl(&self) -> &Arc<AndroidEgl> {
        &self.shared.egl
    }

    /// The SurfaceFlinger compositor.
    pub fn flinger(&self) -> &Arc<SurfaceFlinger> {
        &self.shared.flinger
    }

    /// The gralloc driver (leak checks).
    pub fn gralloc(&self) -> &Arc<GrallocDriver> {
        &self.shared.gralloc
    }

    /// The LinuxCoreSurface kernel module.
    pub fn coresurface(&self) -> &Arc<CoreSurfaceService> {
        &self.shared.coresurface
    }

    /// The primary session's main thread.
    pub fn main_tid(&self) -> SimTid {
        self.primary.main_tid
    }

    /// Spawns another iOS thread in the primary session's thread group.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if the group leader exited.
    pub fn spawn_ios_thread(&self) -> Result<SimTid> {
        self.primary.spawn_ios_thread()
    }
}

impl fmt::Debug for CycadaDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CycadaDevice")
            .field("kernel", &self.shared.kernel)
            .finish()
    }
}

/// The shared layer of an Android device: the normal EGL/GLES stack.
pub struct AndroidShared {
    kernel: Arc<Kernel>,
    gpu: Arc<GpuDevice>,
    linker: Arc<DynamicLinker>,
    flinger: Arc<SurfaceFlinger>,
    gralloc: Arc<GrallocDriver>,
    egl: Arc<AndroidEgl>,
}

impl fmt::Debug for AndroidShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AndroidShared")
            .field("kernel", &self.kernel)
            .finish()
    }
}

/// One Android app attached to a shared Android device.
#[derive(Clone, Debug)]
pub struct AndroidSession {
    shared: Arc<AndroidShared>,
    main_tid: SimTid,
    meter: SessionMeter,
}

impl AndroidSession {
    fn attach(shared: &Arc<AndroidShared>) -> Result<Self> {
        let main_tid = shared.kernel.spawn_process_main(Persona::Android)?;
        shared.egl.initialize(main_tid)?;
        Ok(AndroidSession {
            shared: shared.clone(),
            main_tid,
            meter: SessionMeter::new(),
        })
    }

    /// The session's main thread.
    pub fn main_tid(&self) -> SimTid {
        self.main_tid
    }

    /// Spawns another Android thread in this session's thread group.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if the group leader exited.
    pub fn spawn_thread(&self) -> Result<SimTid> {
        Ok(self
            .shared
            .kernel
            .spawn_thread(self.main_tid, Persona::Android)?)
    }

    /// Opens the session's accounting scope on the calling host thread.
    pub fn scope(&self) -> SessionScope {
        SessionScope {
            _stats: None,
            _meter: self.meter.enter(),
        }
    }

    /// Virtual nanoseconds charged inside this session's scopes so far.
    pub fn virtual_ns(&self) -> Nanos {
        self.meter.total_ns()
    }
}

/// A booted Android device (stock or Cycada kernel) hosting Android
/// processes using the normal EGL/GLES stack.
#[derive(Clone)]
pub struct AndroidDevice {
    shared: Arc<AndroidShared>,
    primary: AndroidSession,
}

impl AndroidDevice {
    /// Boots an Android device.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] if the stack cannot initialize, or
    /// [`CycadaError::UnsupportedPlatform`] for non-Android platforms.
    pub fn boot(platform: Platform) -> Result<Self> {
        Self::boot_with_display(platform, None)
    }

    /// Boots with an overridden display size.
    ///
    /// # Errors
    ///
    /// As [`AndroidDevice::boot`].
    pub fn boot_with_display(platform: Platform, display: Option<(u32, u32)>) -> Result<Self> {
        if !matches!(platform, Platform::StockAndroid | Platform::CycadaAndroid) {
            return Err(CycadaError::UnsupportedPlatform(format!(
                "AndroidDevice cannot boot {platform:?}"
            )));
        }
        let mut profile = cycada_sim::DeviceProfile::for_platform(platform);
        if let Some((w, h)) = display {
            profile.display_width = w;
            profile.display_height = h;
        }
        let kernel = Arc::new(Kernel::with_profile(profile));
        let gpu = Arc::new(GpuDevice::new(
            kernel.clock().clone(),
            kernel.profile().gpu.clone(),
        ));
        let flinger = Arc::new(SurfaceFlinger::new(kernel.display().clone(), gpu.clone()));
        let gralloc = GrallocDriver::new();
        kernel.register_driver(gralloc.clone());
        let linker = Arc::new(DynamicLinker::new(kernel.clock().clone()));
        register_android_graphics(&linker, &kernel, &gpu, &flinger, &gralloc);
        let egl = linker
            .dlopen(LIBEGL)
            .map_err(CycadaError::from)?
            .state::<AndroidEgl>()
            .ok_or_else(|| CycadaError::Egl("libEGL has wrong state type".into()))?;
        let shared = Arc::new(AndroidShared {
            kernel,
            gpu,
            linker,
            flinger,
            gralloc,
            egl,
        });
        let primary = AndroidSession::attach(&shared)?;
        Ok(AndroidDevice { shared, primary })
    }

    /// Attaches another app session on the already-booted shared stack.
    ///
    /// Android sessions share the default EGL connection (the
    /// single-connection restriction of §8 — only Cycada's
    /// `EGL_multi_context` lifts it), so all sessions on one device must
    /// speak the same locked GLES version.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if process creation fails.
    pub fn attach_session(&self) -> Result<AndroidSession> {
        AndroidSession::attach(&self.shared)
    }

    /// The primary session attached at boot.
    pub fn primary_session(&self) -> &AndroidSession {
        &self.primary
    }

    /// The simulated kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.shared.kernel
    }

    /// The GPU device.
    pub fn gpu(&self) -> &Arc<GpuDevice> {
        &self.shared.gpu
    }

    /// The dynamic linker.
    pub fn linker(&self) -> &Arc<DynamicLinker> {
        &self.shared.linker
    }

    /// The Android EGL front.
    pub fn egl(&self) -> &Arc<AndroidEgl> {
        &self.shared.egl
    }

    /// The SurfaceFlinger compositor.
    pub fn flinger(&self) -> &Arc<SurfaceFlinger> {
        &self.shared.flinger
    }

    /// The gralloc driver.
    pub fn gralloc(&self) -> &Arc<GrallocDriver> {
        &self.shared.gralloc
    }

    /// The primary session's main thread.
    pub fn main_tid(&self) -> SimTid {
        self.primary.main_tid
    }

    /// Spawns another Android thread in the primary session's thread group.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if the group leader exited.
    pub fn spawn_thread(&self) -> Result<SimTid> {
        self.primary.spawn_thread()
    }
}

impl fmt::Debug for AndroidDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AndroidDevice")
            .field("kernel", &self.shared.kernel)
            .finish()
    }
}

/// The shared layer of an iPad mini.
pub struct IosShared {
    kernel: Arc<Kernel>,
    gpu: Arc<GpuDevice>,
    linker: Arc<DynamicLinker>,
    stack: Arc<NativeIosStack>,
}

impl fmt::Debug for IosShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IosShared")
            .field("kernel", &self.kernel)
            .finish()
    }
}

/// One native iOS app attached to a shared iPad.
#[derive(Clone, Debug)]
pub struct IosSession {
    shared: Arc<IosShared>,
    main_tid: SimTid,
    meter: SessionMeter,
}

impl IosSession {
    fn attach(shared: &Arc<IosShared>) -> Result<Self> {
        let main_tid = shared.kernel.spawn_process_main(Persona::Ios)?;
        Ok(IosSession {
            shared: shared.clone(),
            main_tid,
            meter: SessionMeter::new(),
        })
    }

    /// The session's main thread.
    pub fn main_tid(&self) -> SimTid {
        self.main_tid
    }

    /// Spawns another iOS thread in this session's thread group.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if the group leader exited.
    pub fn spawn_thread(&self) -> Result<SimTid> {
        Ok(self.shared.kernel.spawn_thread(self.main_tid, Persona::Ios)?)
    }

    /// Opens the session's accounting scope on the calling host thread.
    pub fn scope(&self) -> SessionScope {
        SessionScope {
            _stats: None,
            _meter: self.meter.enter(),
        }
    }

    /// Virtual nanoseconds charged inside this session's scopes so far.
    pub fn virtual_ns(&self) -> Nanos {
        self.meter.total_ns()
    }
}

/// A booted iPad mini running iOS apps natively.
#[derive(Clone)]
pub struct IosDevice {
    shared: Arc<IosShared>,
    primary: IosSession,
}

impl IosDevice {
    /// Boots the iPad.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if the stack cannot initialize.
    pub fn boot() -> Result<Self> {
        Self::boot_with_display(None)
    }

    /// Boots with an overridden display size.
    ///
    /// # Errors
    ///
    /// As [`IosDevice::boot`].
    pub fn boot_with_display(display: Option<(u32, u32)>) -> Result<Self> {
        let mut profile = cycada_sim::DeviceProfile::for_platform(Platform::NativeIos);
        if let Some((w, h)) = display {
            profile.display_width = w;
            profile.display_height = h;
        }
        let kernel = Arc::new(Kernel::with_profile(profile));
        let gpu = Arc::new(GpuDevice::new(
            kernel.clock().clone(),
            kernel.profile().gpu.clone(),
        ));
        let coresurface = CoreSurfaceService::new();
        kernel.register_service(coresurface.clone());
        register_ios_display(&kernel, &gpu, &coresurface);
        let linker = Arc::new(DynamicLinker::new(kernel.clock().clone()));
        register_ios_graphics(&linker, &gpu);
        let stack = Arc::new(NativeIosStack::new(kernel.clone(), &linker, coresurface)?);
        let shared = Arc::new(IosShared {
            kernel,
            gpu,
            linker,
            stack,
        });
        let primary = IosSession::attach(&shared)?;
        Ok(IosDevice { shared, primary })
    }

    /// Attaches another app session on the already-booted shared stack.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if process creation fails.
    pub fn attach_session(&self) -> Result<IosSession> {
        IosSession::attach(&self.shared)
    }

    /// The primary session attached at boot.
    pub fn primary_session(&self) -> &IosSession {
        &self.primary
    }

    /// The simulated kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.shared.kernel
    }

    /// The GPU device.
    pub fn gpu(&self) -> &Arc<GpuDevice> {
        &self.shared.gpu
    }

    /// The dynamic linker.
    pub fn linker(&self) -> &Arc<DynamicLinker> {
        &self.shared.linker
    }

    /// The native iOS graphics stack.
    pub fn stack(&self) -> &Arc<NativeIosStack> {
        &self.shared.stack
    }

    /// The primary session's main thread.
    pub fn main_tid(&self) -> SimTid {
        self.primary.main_tid
    }

    /// Spawns another iOS thread in the primary session's thread group.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if the group leader exited.
    pub fn spawn_thread(&self) -> Result<SimTid> {
        self.primary.spawn_thread()
    }
}

impl fmt::Debug for IosDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IosDevice")
            .field("kernel", &self.shared.kernel)
            .finish()
    }
}
