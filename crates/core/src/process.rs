//! Device/process assembly for the four evaluation platforms.

use std::fmt;
use std::sync::Arc;

use cycada_diplomat::DiplomatEngine;
use cycada_egl::loadout::{register_android_graphics, LIBEGL};
use cycada_egl::AndroidEgl;
use cycada_gpu::GpuDevice;
use cycada_gralloc::{GraphicBufferAllocator, GrallocDriver, SurfaceFlinger};
use cycada_iosurface::{CoreSurfaceService, IOSurfaceApi};
use cycada_kernel::{Kernel, Persona, SimTid};
use cycada_linker::DynamicLinker;
use cycada_sim::Platform;

use crate::bridge::GlesBridge;
use crate::eagl::Eagl;
use crate::egl_bridge::{register_bridge_libraries, EglBridge};
use crate::error::CycadaError;
use crate::iosurface_bridge::IoSurfaceBridge;
use crate::native_ios::{register_ios_display, register_ios_graphics, NativeIosStack};
use crate::Result;

/// Well-known iOS TLS slots reserved by Apple graphics libraries, migrated
/// during impersonation (§7.1: "We also migrate well-known iOS TLS slots
/// used by Apple graphics libraries").
pub const APPLE_GRAPHICS_TLS_SLOTS: &[usize] = &[5, 6, 7];

/// A booted Cycada device (the paper's Nexus 7 running the modified
/// Android) hosting an iOS process: the complete graphics compatibility
/// architecture of Figure 3.
pub struct CycadaDevice {
    kernel: Arc<Kernel>,
    gpu: Arc<GpuDevice>,
    linker: Arc<DynamicLinker>,
    flinger: Arc<SurfaceFlinger>,
    gralloc: Arc<GrallocDriver>,
    coresurface: Arc<CoreSurfaceService>,
    engine: Arc<DiplomatEngine>,
    egl: Arc<AndroidEgl>,
    bridge: Arc<GlesBridge>,
    egl_bridge: Arc<EglBridge>,
    iosurface_bridge: Arc<IoSurfaceBridge>,
    eagl: Arc<Eagl>,
    main_tid: SimTid,
}

impl CycadaDevice {
    /// Boots the device and starts an iOS process on it.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if process creation fails (should
    /// not happen on a Cycada kernel).
    pub fn boot() -> Result<Self> {
        Self::boot_with_display(None)
    }

    /// Boots with an overridden display size (small displays keep tests
    /// fast; benchmarks use the device's native panel).
    ///
    /// # Errors
    ///
    /// As [`CycadaDevice::boot`].
    pub fn boot_with_display(display: Option<(u32, u32)>) -> Result<Self> {
        let mut profile = cycada_sim::DeviceProfile::for_platform(Platform::CycadaIos);
        if let Some((w, h)) = display {
            profile.display_width = w;
            profile.display_height = h;
        }
        let kernel = Arc::new(Kernel::with_profile(profile));
        let gpu = Arc::new(GpuDevice::new(
            kernel.clock().clone(),
            kernel.profile().gpu.clone(),
        ));
        let flinger = Arc::new(SurfaceFlinger::new(kernel.display().clone(), gpu.clone()));
        let gralloc = GrallocDriver::new();
        kernel.register_driver(gralloc.clone());
        // LinuxCoreSurface: the reverse-engineered IOCoreSurface
        // reimplementation inside the Android kernel (§6).
        let coresurface = CoreSurfaceService::new();
        kernel.register_service(coresurface.clone());

        let linker = Arc::new(DynamicLinker::new(kernel.clock().clone()));
        register_android_graphics(&linker, &kernel, &gpu, &flinger, &gralloc);
        register_bridge_libraries(&linker);

        let egl = linker
            .dlopen(LIBEGL)
            .map_err(CycadaError::from)?
            .state::<AndroidEgl>()
            .ok_or_else(|| CycadaError::Egl("libEGL has wrong state type".into()))?;

        let engine = DiplomatEngine::new(kernel.clone(), linker.clone());
        for &slot in APPLE_GRAPHICS_TLS_SLOTS {
            engine.graphics_tls().register_well_known(Persona::Ios, slot);
        }

        let bridge = Arc::new(GlesBridge::new(engine.clone(), egl.clone()));
        let egl_bridge = Arc::new(EglBridge::new(engine.clone(), egl.clone()));
        let iosurface_api = Arc::new(IOSurfaceApi::new(kernel.clone()));
        let iosurface_bridge = Arc::new(IoSurfaceBridge::new(
            engine.clone(),
            egl.clone(),
            iosurface_api,
            GraphicBufferAllocator::new(kernel.clone(), gralloc.clone()),
        ));
        let hook_target = iosurface_bridge.clone();
        bridge.set_delete_textures_hook(move |names| hook_target.drop_texture_associations(names));

        let display = kernel.display();
        let eagl = Arc::new(Eagl::new(
            egl.clone(),
            bridge.clone(),
            egl_bridge.clone(),
            iosurface_bridge.clone(),
            (display.width(), display.height()),
        ));

        let main_tid = kernel.spawn_process_main(Persona::Ios)?;
        Ok(CycadaDevice {
            kernel,
            gpu,
            linker,
            flinger,
            gralloc,
            coresurface,
            engine,
            egl,
            bridge,
            egl_bridge,
            iosurface_bridge,
            eagl,
            main_tid,
        })
    }

    /// The simulated kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The GPU device.
    pub fn gpu(&self) -> &Arc<GpuDevice> {
        &self.gpu
    }

    /// The DLR-enabled dynamic linker.
    pub fn linker(&self) -> &Arc<DynamicLinker> {
        &self.linker
    }

    /// The diplomat engine (stats, impersonation).
    pub fn engine(&self) -> &Arc<DiplomatEngine> {
        &self.engine
    }

    /// The diplomatic GLES library (iOS GLES API surface).
    pub fn bridge(&self) -> &Arc<GlesBridge> {
        &self.bridge
    }

    /// libEGLbridge.
    pub fn egl_bridge(&self) -> &Arc<EglBridge> {
        &self.egl_bridge
    }

    /// The IOSurface bridge.
    pub fn iosurface_bridge(&self) -> &Arc<IoSurfaceBridge> {
        &self.iosurface_bridge
    }

    /// The EAGL implementation.
    pub fn eagl(&self) -> &Arc<Eagl> {
        &self.eagl
    }

    /// The open-source Android EGL front.
    pub fn egl(&self) -> &Arc<AndroidEgl> {
        &self.egl
    }

    /// The SurfaceFlinger compositor.
    pub fn flinger(&self) -> &Arc<SurfaceFlinger> {
        &self.flinger
    }

    /// The gralloc driver (leak checks).
    pub fn gralloc(&self) -> &Arc<GrallocDriver> {
        &self.gralloc
    }

    /// The LinuxCoreSurface kernel module.
    pub fn coresurface(&self) -> &Arc<CoreSurfaceService> {
        &self.coresurface
    }

    /// The iOS process's main thread.
    pub fn main_tid(&self) -> SimTid {
        self.main_tid
    }

    /// Spawns another iOS thread in the app's thread group.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if the group leader exited.
    pub fn spawn_ios_thread(&self) -> Result<SimTid> {
        Ok(self.kernel.spawn_thread(self.main_tid, Persona::Ios)?)
    }
}

impl fmt::Debug for CycadaDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CycadaDevice")
            .field("kernel", &self.kernel)
            .finish()
    }
}

/// A booted Android device (stock or Cycada kernel) hosting an Android
/// process using the normal EGL/GLES stack.
pub struct AndroidDevice {
    kernel: Arc<Kernel>,
    gpu: Arc<GpuDevice>,
    linker: Arc<DynamicLinker>,
    flinger: Arc<SurfaceFlinger>,
    gralloc: Arc<GrallocDriver>,
    egl: Arc<AndroidEgl>,
    main_tid: SimTid,
}

impl AndroidDevice {
    /// Boots an Android device.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] if the stack cannot initialize, or
    /// [`CycadaError::UnsupportedPlatform`] for non-Android platforms.
    pub fn boot(platform: Platform) -> Result<Self> {
        Self::boot_with_display(platform, None)
    }

    /// Boots with an overridden display size.
    ///
    /// # Errors
    ///
    /// As [`AndroidDevice::boot`].
    pub fn boot_with_display(platform: Platform, display: Option<(u32, u32)>) -> Result<Self> {
        if !matches!(platform, Platform::StockAndroid | Platform::CycadaAndroid) {
            return Err(CycadaError::UnsupportedPlatform(format!(
                "AndroidDevice cannot boot {platform:?}"
            )));
        }
        let mut profile = cycada_sim::DeviceProfile::for_platform(platform);
        if let Some((w, h)) = display {
            profile.display_width = w;
            profile.display_height = h;
        }
        let kernel = Arc::new(Kernel::with_profile(profile));
        let gpu = Arc::new(GpuDevice::new(
            kernel.clock().clone(),
            kernel.profile().gpu.clone(),
        ));
        let flinger = Arc::new(SurfaceFlinger::new(kernel.display().clone(), gpu.clone()));
        let gralloc = GrallocDriver::new();
        kernel.register_driver(gralloc.clone());
        let linker = Arc::new(DynamicLinker::new(kernel.clock().clone()));
        register_android_graphics(&linker, &kernel, &gpu, &flinger, &gralloc);
        let egl = linker
            .dlopen(LIBEGL)
            .map_err(CycadaError::from)?
            .state::<AndroidEgl>()
            .ok_or_else(|| CycadaError::Egl("libEGL has wrong state type".into()))?;
        let main_tid = kernel.spawn_process_main(Persona::Android)?;
        egl.initialize(main_tid)?;
        Ok(AndroidDevice {
            kernel,
            gpu,
            linker,
            flinger,
            gralloc,
            egl,
            main_tid,
        })
    }

    /// The simulated kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The GPU device.
    pub fn gpu(&self) -> &Arc<GpuDevice> {
        &self.gpu
    }

    /// The dynamic linker.
    pub fn linker(&self) -> &Arc<DynamicLinker> {
        &self.linker
    }

    /// The Android EGL front.
    pub fn egl(&self) -> &Arc<AndroidEgl> {
        &self.egl
    }

    /// The SurfaceFlinger compositor.
    pub fn flinger(&self) -> &Arc<SurfaceFlinger> {
        &self.flinger
    }

    /// The gralloc driver.
    pub fn gralloc(&self) -> &Arc<GrallocDriver> {
        &self.gralloc
    }

    /// The app's main thread.
    pub fn main_tid(&self) -> SimTid {
        self.main_tid
    }

    /// Spawns another Android thread in the app's thread group.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if the group leader exited.
    pub fn spawn_thread(&self) -> Result<SimTid> {
        Ok(self.kernel.spawn_thread(self.main_tid, Persona::Android)?)
    }
}

impl fmt::Debug for AndroidDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AndroidDevice")
            .field("kernel", &self.kernel)
            .finish()
    }
}

/// A booted iPad mini running the iOS app natively.
pub struct IosDevice {
    kernel: Arc<Kernel>,
    gpu: Arc<GpuDevice>,
    linker: Arc<DynamicLinker>,
    stack: Arc<NativeIosStack>,
    main_tid: SimTid,
}

impl IosDevice {
    /// Boots the iPad.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if the stack cannot initialize.
    pub fn boot() -> Result<Self> {
        Self::boot_with_display(None)
    }

    /// Boots with an overridden display size.
    ///
    /// # Errors
    ///
    /// As [`IosDevice::boot`].
    pub fn boot_with_display(display: Option<(u32, u32)>) -> Result<Self> {
        let mut profile = cycada_sim::DeviceProfile::for_platform(Platform::NativeIos);
        if let Some((w, h)) = display {
            profile.display_width = w;
            profile.display_height = h;
        }
        let kernel = Arc::new(Kernel::with_profile(profile));
        let gpu = Arc::new(GpuDevice::new(
            kernel.clock().clone(),
            kernel.profile().gpu.clone(),
        ));
        let coresurface = CoreSurfaceService::new();
        kernel.register_service(coresurface.clone());
        register_ios_display(&kernel, &gpu, &coresurface);
        let linker = Arc::new(DynamicLinker::new(kernel.clock().clone()));
        register_ios_graphics(&linker, &gpu);
        let stack = Arc::new(NativeIosStack::new(
            kernel.clone(),
            &linker,
            coresurface,
        )?);
        let main_tid = kernel.spawn_process_main(Persona::Ios)?;
        Ok(IosDevice {
            kernel,
            gpu,
            linker,
            stack,
            main_tid,
        })
    }

    /// The simulated kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The GPU device.
    pub fn gpu(&self) -> &Arc<GpuDevice> {
        &self.gpu
    }

    /// The dynamic linker.
    pub fn linker(&self) -> &Arc<DynamicLinker> {
        &self.linker
    }

    /// The native iOS graphics stack.
    pub fn stack(&self) -> &Arc<NativeIosStack> {
        &self.stack
    }

    /// The app's main thread.
    pub fn main_tid(&self) -> SimTid {
        self.main_tid
    }

    /// Spawns another iOS thread.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Kernel`] if the group leader exited.
    pub fn spawn_thread(&self) -> Result<SimTid> {
        Ok(self.kernel.spawn_thread(self.main_tid, Persona::Ios)?)
    }
}

impl fmt::Debug for IosDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IosDevice")
            .field("kernel", &self.kernel)
            .finish()
    }
}
