//! The top-level Cycada error type.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the Cycada graphics compatibility layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CycadaError {
    /// A diplomat call failed (resolution or persona switch).
    Diplomat(String),
    /// The Android EGL layer failed.
    Egl(String),
    /// The IOSurface layer failed.
    IoSurface(String),
    /// The gralloc layer failed.
    Gralloc(String),
    /// The kernel failed.
    Kernel(String),
    /// EAGL API misuse (bad context, no drawable, ...).
    Eagl(String),
    /// The requested operation is not available on this platform
    /// configuration (e.g. EAGL on stock Android).
    UnsupportedPlatform(String),
}

impl fmt::Display for CycadaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycadaError::Diplomat(m) => write!(f, "diplomat failure: {m}"),
            CycadaError::Egl(m) => write!(f, "EGL failure: {m}"),
            CycadaError::IoSurface(m) => write!(f, "IOSurface failure: {m}"),
            CycadaError::Gralloc(m) => write!(f, "gralloc failure: {m}"),
            CycadaError::Kernel(m) => write!(f, "kernel failure: {m}"),
            CycadaError::Eagl(m) => write!(f, "EAGL failure: {m}"),
            CycadaError::UnsupportedPlatform(m) => write!(f, "unsupported on this platform: {m}"),
        }
    }
}

impl Error for CycadaError {}

impl From<cycada_diplomat::DiplomatError> for CycadaError {
    fn from(e: cycada_diplomat::DiplomatError) -> Self {
        CycadaError::Diplomat(e.to_string())
    }
}

impl From<cycada_egl::EglError> for CycadaError {
    fn from(e: cycada_egl::EglError) -> Self {
        CycadaError::Egl(e.to_string())
    }
}

impl From<cycada_iosurface::IoSurfaceError> for CycadaError {
    fn from(e: cycada_iosurface::IoSurfaceError) -> Self {
        CycadaError::IoSurface(e.to_string())
    }
}

impl From<cycada_gralloc::GrallocError> for CycadaError {
    fn from(e: cycada_gralloc::GrallocError) -> Self {
        CycadaError::Gralloc(e.to_string())
    }
}

impl From<cycada_kernel::KernelError> for CycadaError {
    fn from(e: cycada_kernel::KernelError) -> Self {
        CycadaError::Kernel(e.to_string())
    }
}

impl From<cycada_linker::LinkerError> for CycadaError {
    fn from(e: cycada_linker::LinkerError) -> Self {
        CycadaError::Diplomat(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert!(CycadaError::Eagl("x".into()).to_string().contains("EAGL"));
        assert!(CycadaError::UnsupportedPlatform("EAGL".into())
            .to_string()
            .contains("unsupported"));
    }
}
