//! A Grand Central Dispatch simulation (§7).
//!
//! "Apple's Grand Central Dispatch (GCD) is used heavily and relies on
//! [any-thread context use] to asynchronously dispatch GLES jobs such as
//! texture loading or off-screen rendering. Each thread in the system has
//! its own context, and implicitly takes on the GLES and EAGL context of
//! the thread that submitted the asynchronous job."
//!
//! [`DispatchQueue`] reproduces that contract over the Cycada stack: a job
//! dispatched from a submitting thread runs on a pooled worker thread that
//! *implicitly adopts the submitter's current EAGLContext* — which, on
//! Cycada, triggers thread impersonation and connection-TLS migration
//! under the hood.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use cycada_kernel::{Kernel, Persona, SimTid};

use crate::eagl::Eagl;
use crate::process::CycadaDevice;
use crate::Result;

/// A GCD-style dispatch queue bound to one Cycada iOS process.
pub struct DispatchQueue {
    label: String,
    kernel: Arc<Kernel>,
    eagl: Arc<Eagl>,
    group_member: SimTid,
    workers: Mutex<Vec<SimTid>>,
}

impl DispatchQueue {
    /// Creates a queue for the device's iOS process.
    pub fn new(device: &CycadaDevice, label: impl Into<String>) -> Self {
        DispatchQueue {
            label: label.into(),
            kernel: device.kernel().clone(),
            eagl: device.eagl().clone(),
            group_member: device.main_tid(),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// The queue's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of pooled worker threads currently idle.
    pub fn idle_workers(&self) -> usize {
        self.workers.lock().len()
    }

    fn take_worker(&self) -> Result<SimTid> {
        if let Some(worker) = self.workers.lock().pop() {
            return Ok(worker);
        }
        Ok(self.kernel.spawn_thread(self.group_member, Persona::Ios)?)
    }

    fn return_worker(&self, worker: SimTid) {
        self.workers.lock().push(worker);
    }

    /// Dispatches a job from `submitter` and waits for its result (GCD's
    /// `dispatch_sync`). The worker thread implicitly takes on the
    /// submitter's current EAGLContext for the duration of the job, then
    /// releases it.
    ///
    /// # Errors
    ///
    /// Returns an error if the context adoption fails (dead threads).
    pub fn dispatch_sync<R>(
        &self,
        submitter: SimTid,
        job: impl FnOnce(SimTid) -> R,
    ) -> Result<R> {
        let worker = self.take_worker()?;
        let adopted = self.eagl.current_context(submitter);
        if let Some(ctx) = adopted {
            // The implicit adoption: on Cycada this runs thread
            // impersonation + connection-TLS migration (§7.1, §8.1.1).
            self.eagl.set_current_context(worker, Some(ctx))?;
        }
        let result = job(worker);
        if adopted.is_some() {
            self.eagl.set_current_context(worker, None)?;
        }
        self.return_worker(worker);
        Ok(result)
    }

    /// Dispatches several independent jobs (GCD's `dispatch_apply`),
    /// returning their results in order. Each job sees its own worker
    /// thread with the submitter's context adopted.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered.
    pub fn dispatch_apply<R>(
        &self,
        submitter: SimTid,
        jobs: Vec<Box<dyn FnOnce(SimTid) -> R + Send>>,
    ) -> Result<Vec<R>> {
        jobs.into_iter()
            .map(|job| self.dispatch_sync(submitter, job))
            .collect()
    }
}

impl fmt::Debug for DispatchQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DispatchQueue")
            .field("label", &self.label)
            .field("idle_workers", &self.idle_workers())
            .finish()
    }
}
