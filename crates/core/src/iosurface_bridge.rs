//! Cycada's IOSurface support (§6).
//!
//! "Cycada interposes on `IOSurfaceCreate` using an indirect diplomat to
//! create an Android GraphicBuffer object as the underlying backing
//! graphics memory for an IOSurface" (§6.1), and interposes
//! `IOSurfaceLock`/`IOSurfaceUnlock` with **multi diplomats** that perform
//! the texture-disassociation dance of §6.2: while locked for CPU access,
//! the GLES texture is rebound to a single-pixel buffer so the EGLImage —
//! and with it the GraphicBuffer association — can be destroyed, making the
//! CPU lock legal under Android's rules; unlock re-creates the EGLImage and
//! rebinds, transparently to the iOS app's GLES.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use cycada_diplomat::{
    DiplomatEngine, DiplomatEntry, DiplomatPattern, DiplomatTable, FnId, HookKind,
};
use cycada_egl::{AndroidEgl, EglImageId};
use cycada_gles::TexFormat;
use cycada_gpu::PixelFormat;
use cycada_gralloc::{GraphicBuffer, GraphicBufferAllocator};
use cycada_iosurface::{IOSurface, IOSurfaceApi, SurfaceProps};
use cycada_kernel::SimTid;
use cycada_sim::fn_id;

use crate::egl_bridge::{LIBEGLBRIDGE, LIBUI_WRAPPER};
use crate::error::CycadaError;
use crate::Result;

struct CycadaSurface {
    surface: IOSurface,
    buffer: GraphicBuffer,
    egl_image: Option<EglImageId>,
    texture: Option<u32>,
    renderbuffer: Option<u32>,
}

/// The Cycada IOSurface compatibility layer.
pub struct IoSurfaceBridge {
    engine: Arc<DiplomatEngine>,
    egl: Arc<AndroidEgl>,
    iosurface: Arc<IOSurfaceApi>,
    allocator: GraphicBufferAllocator,
    table: Mutex<HashMap<u64, CycadaSurface>>,
    entries: DiplomatTable,
}

impl IoSurfaceBridge {
    /// Creates the bridge.
    pub fn new(
        engine: Arc<DiplomatEngine>,
        egl: Arc<AndroidEgl>,
        iosurface: Arc<IOSurfaceApi>,
        allocator: GraphicBufferAllocator,
    ) -> Self {
        IoSurfaceBridge {
            engine,
            egl,
            iosurface,
            allocator,
            table: Mutex::new(HashMap::new()),
            entries: DiplomatTable::new(),
        }
    }

    fn entry(
        &self,
        id: FnId,
        library: &'static str,
        symbol: &'static str,
        pattern: DiplomatPattern,
    ) -> &Arc<DiplomatEntry> {
        self.entries.get_or_register(id, || {
            DiplomatEntry::with_id(id, library, symbol, pattern, HookKind::Gles)
        })
    }

    /// `IOSurfaceCreate`, interposed: an **indirect diplomat** allocates an
    /// Android GraphicBuffer as the backing memory, then the LinuxCoreSurface
    /// kernel service registers an IOSurface over that same memory.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Gralloc`]/[`CycadaError::IoSurface`] on
    /// allocation failure.
    pub fn create(&self, tid: SimTid, props: SurfaceProps) -> Result<IOSurface> {
        let entry = self.entry(
            fn_id!("IOSurfaceCreate"),
            LIBUI_WRAPPER,
            "ui_wrap_alloc_buffer",
            DiplomatPattern::Indirect,
        );
        // The GraphicBuffer is allocated wide enough to honour the
        // requested row stride.
        let bpp = props.format.bytes_per_pixel();
        let padded_width = (props.bytes_per_row / bpp) as u32;
        let allocator = &self.allocator;
        let buffer = self
            .engine
            .call(tid, entry, || {
                allocator.allocate(tid, padded_width.max(props.width), props.height, props.format)
            })
            .map_err(CycadaError::from)?
            .map_err(CycadaError::from)?;

        // Foreign side: register the IOSurface over the buffer's memory.
        let surface = self
            .iosurface
            .create(tid, props, Some(buffer.image().buffer().clone()))
            .map_err(CycadaError::from)?;
        self.table.lock().insert(
            surface.id(),
            CycadaSurface {
                surface: surface.clone(),
                buffer,
                egl_image: None,
                texture: None,
                renderbuffer: None,
            },
        );
        Ok(surface)
    }

    /// The GraphicBuffer backing a Cycada IOSurface.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::IoSurface`] for surfaces this bridge did not
    /// create.
    pub fn buffer_for(&self, surface_id: u64) -> Result<GraphicBuffer> {
        self.table
            .lock()
            .get(&surface_id)
            .map(|s| s.buffer.clone())
            .ok_or_else(|| CycadaError::IoSurface(format!("surface {surface_id} not bridged")))
    }

    /// `glTexImageIOSurfaceAPPLE` (multi diplomat): binds the surface's
    /// GraphicBuffer to `texture` through an EGLImage.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::IoSurface`] for unbridged surfaces or
    /// [`CycadaError::Egl`] if the thread has no current context.
    pub fn tex_image_io_surface(&self, tid: SimTid, surface_id: u64, texture: u32) -> Result<()> {
        let entry = self.entry(
            fn_id!("glTexImageIOSurfaceAPPLE"),
            LIBEGLBRIDGE,
            "glTexImageIOSurfaceAPPLE",
            DiplomatPattern::Multi,
        );
        let egl = self.egl.clone();
        let buffer = self.buffer_for(surface_id)?;
        let image_id = self
            .engine
            .call(tid, entry, || -> Result<EglImageId> {
                let image_id = egl.create_image(&buffer);
                let source = egl.image_source(image_id)?;
                let gles = egl.gles_for_thread(tid)?;
                gles.with_current(tid, |c| {
                    c.bind_texture(texture);
                    c.egl_image_target_texture(source);
                });
                Ok(image_id)
            })
            .map_err(CycadaError::from)??;
        let mut table = self.table.lock();
        let record = table
            .get_mut(&surface_id)
            .expect("record exists; buffer_for checked");
        record.egl_image = Some(image_id);
        record.texture = Some(texture);
        Ok(())
    }

    /// `glRenderbufferStorageIOSurfaceAPPLE` (multi diplomat): binds the
    /// surface's GraphicBuffer as the bound renderbuffer's storage — the
    /// EAGL drawable path.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::IoSurface`]/[`CycadaError::Egl`] as above.
    pub fn renderbuffer_storage_io_surface(
        &self,
        tid: SimTid,
        surface_id: u64,
        renderbuffer: u32,
    ) -> Result<()> {
        let entry = self.entry(
            fn_id!("glRenderbufferStorageIOSurfaceAPPLE"),
            LIBEGLBRIDGE,
            "glRenderbufferStorageIOSurfaceAPPLE",
            DiplomatPattern::Multi,
        );
        let egl = self.egl.clone();
        let buffer = self.buffer_for(surface_id)?;
        let image_id = self
            .engine
            .call(tid, entry, || -> Result<EglImageId> {
                let image_id = egl.create_image(&buffer);
                let source = egl.image_source(image_id)?;
                let gles = egl.gles_for_thread(tid)?;
                gles.with_current(tid, |c| {
                    c.bind_renderbuffer(renderbuffer);
                    c.egl_image_target_renderbuffer(source);
                });
                Ok(image_id)
            })
            .map_err(CycadaError::from)??;
        let mut table = self.table.lock();
        let record = table
            .get_mut(&surface_id)
            .expect("record exists; buffer_for checked");
        record.egl_image = Some(image_id);
        record.renderbuffer = Some(renderbuffer);
        Ok(())
    }

    /// `IOSurfaceLock`, interposed with a multi diplomat (§6.2): rebinds
    /// any connected GLES texture to a single-pixel buffer, destroys the
    /// EGLImage (implicitly disassociating the GraphicBuffer), CPU-locks
    /// the buffer, and finally locks the kernel surface.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Gralloc`] if the buffer is still associated
    /// (app violated IOSurface locking rules) or the lower layers fail.
    pub fn lock(&self, tid: SimTid, surface: &IOSurface) -> Result<()> {
        let entry = self.entry(
            fn_id!("IOSurfaceLock"),
            LIBEGLBRIDGE,
            "IOSurfaceLock",
            DiplomatPattern::Multi,
        );
        let egl = self.egl.clone();
        let (buffer, texture, egl_image) = {
            let table = self.table.lock();
            let record = table
                .get(&surface.id())
                .ok_or_else(|| CycadaError::IoSurface(format!("surface {} not bridged", surface.id())))?;
            (record.buffer.clone(), record.texture, record.egl_image)
        };
        self.engine
            .call(tid, entry, || -> Result<()> {
                if let Some(tex) = texture {
                    // "The multi diplomat rebinds the GLES texture to a
                    // single-pixel buffer allocated by glTexImage2D" —
                    // dropping the texture's hold on the EGLImage source.
                    let gles = egl.gles_for_thread(tid)?;
                    gles.with_current(tid, |c| {
                        c.bind_texture(tex);
                        c.tex_image_2d(1, 1, TexFormat::Rgba, Some(&[0, 0, 0, 255]));
                    });
                }
                if let Some(image) = egl_image {
                    // "The multi diplomat can then destroy the EGLImage
                    // object ... which implicitly disassociates the Android
                    // GraphicBuffer."
                    egl.destroy_image(image)?;
                }
                // "At this point, the GraphicBuffer can be locked for CPU
                // access."
                buffer.lock_cpu()?;
                Ok(())
            })
            .map_err(CycadaError::from)??;
        if let Some(record) = self.table.lock().get_mut(&surface.id()) {
            record.egl_image = None;
        }
        self.iosurface.lock(tid, surface).map_err(CycadaError::from)?;
        Ok(())
    }

    /// `IOSurfaceUnlock`, interposed with another multi diplomat: unlocks
    /// the GraphicBuffer, creates a new EGLImage and rebinds it (and the
    /// buffer) to the GLES texture — "the disassociation and re-association
    /// process is transparent to iOS's GLES."
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Gralloc`]/[`CycadaError::Egl`] on failure.
    pub fn unlock(&self, tid: SimTid, surface: &IOSurface) -> Result<()> {
        let entry = self.entry(
            fn_id!("IOSurfaceUnlock"),
            LIBEGLBRIDGE,
            "IOSurfaceUnlock",
            DiplomatPattern::Multi,
        );
        let egl = self.egl.clone();
        let (buffer, texture) = {
            let table = self.table.lock();
            let record = table
                .get(&surface.id())
                .ok_or_else(|| CycadaError::IoSurface(format!("surface {} not bridged", surface.id())))?;
            (record.buffer.clone(), record.texture)
        };
        let new_image = self
            .engine
            .call(tid, entry, || -> Result<Option<EglImageId>> {
                buffer.unlock_cpu()?;
                if let Some(tex) = texture {
                    let image_id = egl.create_image(&buffer);
                    let source = egl.image_source(image_id)?;
                    let gles = egl.gles_for_thread(tid)?;
                    gles.with_current(tid, |c| {
                        c.bind_texture(tex);
                        c.egl_image_target_texture(source);
                    });
                    Ok(Some(image_id))
                } else {
                    Ok(None)
                }
            })
            .map_err(CycadaError::from)??;
        if let Some(record) = self.table.lock().get_mut(&surface.id()) {
            record.egl_image = new_image;
        }
        self.iosurface.unlock(tid, surface).map_err(CycadaError::from)?;
        Ok(())
    }

    /// The `glDeleteTextures` interposition (§6.1): removes any connection
    /// between deleted textures and their underlying GraphicBuffers.
    pub fn drop_texture_associations(&self, names: &[u32]) {
        let mut table = self.table.lock();
        for record in table.values_mut() {
            if let Some(tex) = record.texture {
                if names.contains(&tex) {
                    if let Some(image) = record.egl_image.take() {
                        let _ = self.egl.destroy_image(image);
                    }
                    record.texture = None;
                }
            }
        }
    }

    /// Releases a bridged surface entirely (app-level release).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::IoSurface`] for unbridged surfaces.
    pub fn release(&self, tid: SimTid, surface: &IOSurface) -> Result<()> {
        let record = self
            .table
            .lock()
            .remove(&surface.id())
            .ok_or_else(|| CycadaError::IoSurface(format!("surface {} not bridged", surface.id())))?;
        if let Some(image) = record.egl_image {
            let _ = self.egl.destroy_image(image);
        }
        let _ = self.allocator.free(tid, record.buffer.handle());
        self.iosurface
            .release(tid, &record.surface)
            .map_err(CycadaError::from)?;
        Ok(())
    }

    /// Number of live bridged surfaces.
    pub fn live_surfaces(&self) -> usize {
        self.table.lock().len()
    }

    /// Allocates a plain (non-IOSurface) GraphicBuffer through the
    /// indirect-diplomat path — used by EAGL for window back buffers.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Gralloc`] on allocation failure.
    pub fn allocate_plain_buffer(
        &self,
        tid: SimTid,
        width: u32,
        height: u32,
        format: PixelFormat,
    ) -> Result<GraphicBuffer> {
        let entry = self.entry(
            fn_id!("IOSurfaceCreate"),
            LIBUI_WRAPPER,
            "ui_wrap_alloc_buffer",
            DiplomatPattern::Indirect,
        );
        let allocator = &self.allocator;
        self.engine
            .call(tid, entry, || allocator.allocate(tid, width, height, format))
            .map_err(CycadaError::from)?
            .map_err(CycadaError::from)
    }
}

impl fmt::Debug for IoSurfaceBridge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IoSurfaceBridge")
            .field("live_surfaces", &self.live_surfaces())
            .finish()
    }
}
