//! `libEGLbridge` and `libui_wrapper` (§5, §8.2).
//!
//! "For efficiency, we coalesced our multi diplomats into an Android
//! library called libEGLbridge. This allows us to pay the overhead of one
//! diplomat which calls into a custom Android API that uses standard
//! Android functions and libraries to perform the required function" (§5).
//!
//! To avoid the library-dependency morass of §8.2, the functionality is
//! split: **libEGLbridge** contains the diplomats and links against no
//! vendor library; **libui_wrapper** "contains all of the logic that links
//! against Android graphics libraries" and is what gets replicated (with
//! the vendor EGL/GLES tree) for each new EAGLContext.

use std::fmt;
use std::sync::Arc;

use cycada_diplomat::{
    DiplomatEngine, DiplomatEntry, DiplomatPattern, DiplomatTable, FnId, HookKind,
};
use cycada_egl::{AndroidEgl, EglContextId, EglSurfaceId, McConnectionId};
use cycada_gpu::Image;
use cycada_kernel::SimTid;
use cycada_linker::{DynamicLinker, LibraryImage};
use cycada_sim::fn_id;

use crate::error::CycadaError;
use crate::Result;

/// The diplomat-side bridge library.
pub const LIBEGLBRIDGE: &str = "libEGLbridge.so";
/// The vendor-linked wrapper library that DLR replicates per EAGLContext.
pub const LIBUI_WRAPPER: &str = "libui_wrapper.so";

/// Registers the two Cycada bridge libraries with the linker. Call after
/// [`cycada_egl::loadout::register_android_graphics`].
pub fn register_bridge_libraries(linker: &Arc<DynamicLinker>) {
    linker.register_image(
        LibraryImage::builder(LIBEGLBRIDGE)
            .deps([cycada_egl::loadout::LIBC])
            .symbols([
                "aegl_bridge_reinitialize",
                "aegl_bridge_make_current",
                "aegl_bridge_draw_fbo_tex",
                "aegl_bridge_copy_tex_buf",
                "aegl_bridge_set_tls",
                "eglSwapBuffers",
                "IOSurfaceCreate",
                "IOSurfaceLock",
                "IOSurfaceUnlock",
                "glTexImageIOSurfaceAPPLE",
                "glRenderbufferStorageIOSurfaceAPPLE",
            ])
            .non_replicable()
            .build(),
    );
    linker.register_image(
        LibraryImage::builder(LIBUI_WRAPPER)
            .deps([
                cycada_egl::loadout::VENDOR_EGL_LIB,
                cycada_egl::loadout::VENDOR_GLES_LIB,
            ])
            .symbols(["ui_wrap_alloc_buffer", "ui_wrap_bind_image"])
            .build(),
    );
}

/// The libEGLbridge API: every method is one multi diplomat whose domestic
/// side drives the Android EGL/GLES/gralloc stack.
pub struct EglBridge {
    engine: Arc<DiplomatEngine>,
    egl: Arc<AndroidEgl>,
    entries: DiplomatTable,
}

impl EglBridge {
    /// Creates the bridge over a diplomat engine and the Android EGL front.
    pub fn new(engine: Arc<DiplomatEngine>, egl: Arc<AndroidEgl>) -> Self {
        EglBridge {
            engine,
            egl,
            entries: DiplomatTable::new(),
        }
    }

    /// The Android EGL front the bridge drives.
    pub fn egl(&self) -> &Arc<AndroidEgl> {
        &self.egl
    }

    fn entry(&self, id: FnId) -> &Arc<DiplomatEntry> {
        self.entries.get_or_register(id, || {
            DiplomatEntry::with_id(
                id,
                LIBEGLBRIDGE,
                id.name(),
                DiplomatPattern::Multi,
                HookKind::Gles,
            )
        })
    }

    fn call<R>(&self, tid: SimTid, id: FnId, f: impl FnOnce() -> Result<R>) -> Result<R> {
        let entry = self.entry(id);
        self.engine.call(tid, entry, f).map_err(CycadaError::from)?
    }

    /// Creates a fresh EGL-to-GLES connection for a new EAGLContext by
    /// replicating `libui_wrapper` (and thus the vendor EGL/GLES tree)
    /// through DLR (§8.2).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] if the replica cannot be built.
    pub fn reinitialize(&self, tid: SimTid) -> Result<McConnectionId> {
        let egl = self.egl.clone();
        self.call(tid, fn_id!("aegl_bridge_reinitialize"), || {
            egl.initialize(tid)?;
            Ok(egl.egl_reinitialize_mc(tid, LIBUI_WRAPPER)?)
        })
    }

    /// One-shot setup for a new EAGLContext: replicates `libui_wrapper`
    /// (fresh connection), creates an EGL context of the requested version
    /// on it, and allocates a window surface — all on the domestic side of
    /// a single multi diplomat.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] if any step fails.
    pub fn setup_context(
        &self,
        tid: SimTid,
        version: cycada_gles::GlesVersion,
        width: u32,
        height: u32,
    ) -> Result<(McConnectionId, EglContextId, EglSurfaceId)> {
        let egl = self.egl.clone();
        self.call(tid, fn_id!("aegl_bridge_reinitialize"), || {
            egl.initialize(tid)?;
            let conn = egl.egl_reinitialize_mc(tid, LIBUI_WRAPPER)?;
            let ctx = egl.create_context(tid, version)?;
            let surface = egl.create_window_surface(tid, width, height)?;
            Ok((conn, ctx, surface))
        })
    }

    /// Makes an EGL context (and optional window surface) current for the
    /// calling thread, switching the thread's connection TLS to the
    /// context's replica.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] for bad handles.
    pub fn make_current(
        &self,
        tid: SimTid,
        ctx: EglContextId,
        surface: Option<EglSurfaceId>,
    ) -> Result<()> {
        let egl = self.egl.clone();
        self.call(tid, fn_id!("aegl_bridge_make_current"), || {
            egl.egl_switch_mc(tid, ctx)?;
            egl.make_current_unchecked(tid, ctx, surface)?;
            Ok(())
        })
    }

    /// Renders an off-screen renderbuffer image into the current default
    /// framebuffer via a full-screen textured quad — the (inefficient)
    /// `presentRenderbuffer` path of §5. Returns fragments shaded.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] if the thread has no current context.
    pub fn draw_fbo_tex(&self, tid: SimTid, src: &Image) -> Result<u64> {
        let egl = self.egl.clone();
        self.call(tid, fn_id!("aegl_bridge_draw_fbo_tex"), || {
            let gles = egl.gles_for_thread(tid)?;
            Ok(gles.with_current(tid, |c| {
                let saved = c.bound_framebuffer();
                c.bind_framebuffer(0);
                let frags = c.draw_fullscreen_image(src);
                c.bind_framebuffer(saved);
                frags
            }))
        })
    }

    /// Record-mode [`EglBridge::draw_fbo_tex`]: the **same** diplomat with
    /// the same virtual-time charges (diplomat overhead, draw accounting),
    /// but the quad's byte work is appended to `rec` instead of rasterized
    /// — the caller replays it with [`cycada_gpu::GpuDevice::execute`]
    /// before the frame is swapped (DESIGN.md §5f).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] if the thread has no current context.
    pub fn draw_fbo_tex_record(
        &self,
        tid: SimTid,
        src: &Image,
        rec: &mut cycada_gpu::CommandRecorder,
    ) -> Result<u64> {
        let egl = self.egl.clone();
        self.call(tid, fn_id!("aegl_bridge_draw_fbo_tex"), || {
            let gles = egl.gles_for_thread(tid)?;
            Ok(gles.with_current(tid, |c| {
                let saved = c.bound_framebuffer();
                c.bind_framebuffer(0);
                let frags = c.record_fullscreen_image(rec, src);
                c.bind_framebuffer(saved);
                frags
            }))
        })
    }

    /// Copies pixels between two GPU images (renderbuffer ↔ texture
    /// staging in the present path).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] if the thread has no current context.
    pub fn copy_tex_buf(&self, tid: SimTid, src: &Image, dst: &Image) -> Result<()> {
        let egl = self.egl.clone();
        self.call(tid, fn_id!("aegl_bridge_copy_tex_buf"), || {
            let gles = egl.gles_for_thread(tid)?;
            gles.device().blit(
                src,
                cycada_gpu::raster::Rect::of_image(src),
                dst,
                cycada_gpu::raster::Rect::of_image(dst),
                cycada_gpu::DrawClass::TwoD,
            );
            Ok(())
        })
    }

    /// Record-mode [`EglBridge::copy_tex_buf`]: same diplomat, same
    /// charges, byte copy deferred into `rec`.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] if the thread has no current context.
    pub fn copy_tex_buf_record(
        &self,
        tid: SimTid,
        src: &Image,
        dst: &Image,
        rec: &mut cycada_gpu::CommandRecorder,
    ) -> Result<()> {
        let egl = self.egl.clone();
        self.call(tid, fn_id!("aegl_bridge_copy_tex_buf"), || {
            let gles = egl.gles_for_thread(tid)?;
            gles.device().record_blit(
                rec,
                src,
                cycada_gpu::raster::Rect::of_image(src),
                dst,
                cycada_gpu::raster::Rect::of_image(dst),
                cycada_gpu::DrawClass::TwoD,
            );
            Ok(())
        })
    }

    /// The GPU device behind the calling thread's current connection
    /// (used by EAGL to consult the recording gate and replay command
    /// lists).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] if the thread has no current context.
    pub fn device_for_thread(&self, tid: SimTid) -> Result<Arc<cycada_gpu::GpuDevice>> {
        Ok(self.egl.gles_for_thread(tid)?.device().clone())
    }

    /// Reads the calling thread's `EGL_multi_context` TLS values (for
    /// migration to another thread).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] on kernel TLS failures.
    pub fn get_tls(&self, tid: SimTid) -> Result<Vec<Option<u64>>> {
        let egl = self.egl.clone();
        self.call(tid, fn_id!("aegl_bridge_set_tls"), || Ok(egl.egl_get_tls_mc(tid)?))
    }

    /// Writes `EGL_multi_context` TLS values into the calling thread.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] on kernel TLS failures.
    pub fn set_tls(&self, tid: SimTid, values: &[Option<u64>]) -> Result<()> {
        let egl = self.egl.clone();
        self.call(tid, fn_id!("aegl_bridge_set_tls"), || {
            Ok(egl.egl_set_tls_mc(tid, values)?)
        })
    }

    /// `eglSwapBuffers` through a diplomat (the path Figures 7–10 chart).
    /// Per-buffer damage journals ride along for free — the bridge call
    /// carries no damage arguments; the compositor reads the posted
    /// buffer's journal directly (DESIGN.md §5g).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] for bad surfaces.
    pub fn swap_buffers(&self, tid: SimTid, surface: EglSurfaceId) -> Result<()> {
        let egl = self.egl.clone();
        self.call(tid, fn_id!("eglSwapBuffers"), || Ok(egl.swap_buffers(tid, surface)?))
    }
}

impl fmt::Debug for EglBridge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EglBridge")
            .field("entries", &self.entries.len())
            .finish()
    }
}
