//! Cycada graphics compatibility — a complete, simulated reproduction of
//! *"Binary Compatible Graphics Support in Android for Running iOS Apps"*
//! (Andrus, AlDuaij, Nieh — Middleware 2017).
//!
//! This crate assembles the paper's Figure 3 architecture over the
//! simulated substrates:
//!
//! * [`GlesBridge`] — the diplomatic GLES library presenting the iOS GLES
//!   API surface (344 entry points, Table 2) over the Android vendor
//!   library, using the four diplomat usage patterns;
//! * [`EglBridge`] — `libEGLbridge` / `libui_wrapper`: the coalesced multi
//!   diplomats (`aegl_bridge_*`) and the per-EAGLContext DLR replication;
//! * [`Eagl`] — the 17-method EAGL reimplementation (6 multi diplomats,
//!   10 from scratch, 1 never called);
//! * [`IoSurfaceBridge`] — IOSurface over GraphicBuffer, including the
//!   lock/unlock texture-disassociation dance (§6.2);
//! * [`CycadaDevice`] / [`AndroidDevice`] / [`IosDevice`] — the three
//!   bootable device types behind the paper's four evaluation
//!   configurations;
//! * [`AppGl`] — the uniform app-side facade the workloads run on.
//!
//! # Examples
//!
//! ```
//! use cycada::AppGl;
//! use cycada_gles::{GlesVersion, Primitive};
//! use cycada_sim::Platform;
//!
//! // Boot an iOS app on a (simulated) Android tablet running Cycada...
//! let app = AppGl::boot(Platform::CycadaIos, GlesVersion::V1)?;
//! app.clear(0.0, 0.0, 0.0, 1.0)?;
//! let xyz = [-1.0, -1.0, 0.0, 3.0, -1.0, 0.0, -1.0, 3.0, 0.0];
//! app.draw(Primitive::Triangles, &xyz, [1.0, 0.0, 0.0, 1.0])?;
//! app.present()?; // EAGL presentRenderbuffer through libEGLbridge
//! assert_eq!(app.display().pixel(10, 10), [255, 0, 0, 255]);
//! # Ok::<(), cycada::CycadaError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod app;
mod bridge;
mod eagl;
mod gcd;
mod egl_bridge;
mod error;
mod iosurface_bridge;
mod native_ios;
mod process;
pub mod support;

pub use app::AppGl;
pub use bridge::{bridged_surface_size, GlesBridge, FOREIGN_REPACK_BYTE_NS};
pub use eagl::{Eagl, EaglContextId, EaglMethodKind, EAGL_METHODS};
pub use egl_bridge::{register_bridge_libraries, EglBridge, LIBEGLBRIDGE, LIBUI_WRAPPER};
pub use error::CycadaError;
pub use gcd::DispatchQueue;
pub use iosurface_bridge::IoSurfaceBridge;
pub use native_ios::{register_ios_graphics, NativeIosStack, IOS_GLES_LIB};
pub use process::{
    AndroidDevice, AndroidSession, CycadaDevice, CycadaSession, IosDevice, IosSession,
    SessionScope, APPLE_GRAPHICS_TLS_SLOTS,
};
pub use support::{classify, SupportKind, Table2};

/// Convenient result alias for Cycada operations.
pub type Result<T> = std::result::Result<T, CycadaError>;
