//! A platform-independent app-side graphics facade.
//!
//! The paper's evaluation runs the *same* workloads (PassMark, SunSpider's
//! WebKit rendering, micro-benchmarks) on four configurations. [`AppGl`]
//! is the thin facade those workloads program against: on **Cycada iOS**
//! every call goes through the diplomatic GLES bridge and EAGL; on
//! **Android** (stock or Cycada kernel) calls go straight into the vendor
//! GLES through EGL; on **native iOS** they go straight into Apple's GLES
//! through native EAGL. Costs therefore differ exactly the way the real
//! platforms' do.

use std::fmt;
use std::sync::Arc;

use cycada_egl::{EglContextId, EglSurfaceId};
use cycada_gles::{
    Capability, ClientState, GlesVersion, Primitive, StringName, TexFormat, VendorGles,
};
use cycada_gpu::math::Mat4;
use cycada_gpu::Image;
use cycada_kernel::{Display, SimTid};
use cycada_sim::replay::{self, f32_arg, f64_arg, i32_arg, op};
use cycada_sim::{stats::FunctionStats, trace, Nanos, Platform, VirtualClock};

use crate::eagl::EaglContextId;
use crate::error::CycadaError;
use crate::process::{
    AndroidDevice, AndroidSession, CycadaDevice, CycadaSession, IosDevice, IosSession,
    SessionScope,
};
use crate::Result;

enum Backend {
    CycadaIos {
        device: CycadaDevice,
        session: CycadaSession,
        eagl_ctx: EaglContextId,
        fbo: u32,
    },
    Android {
        device: AndroidDevice,
        session: AndroidSession,
        ctx: EglContextId,
        surface: EglSurfaceId,
    },
    NativeIos {
        device: IosDevice,
        session: IosSession,
        eagl_ctx: u32,
        fbo: u32,
    },
}

/// One running app with a ready-to-draw full-screen GLES context.
pub struct AppGl {
    platform: Platform,
    version: GlesVersion,
    backend: Backend,
    tid: SimTid,
    width: u32,
    height: u32,
    // v2 emulation of the matrix stack (v1 forwards to GL).
    mvp_stack: Vec<Mat4>,
    program: u32,
    mvp_loc: i32,
    color_loc: i32,
}

impl AppGl {
    /// Boots a device for `platform` and sets up a full-screen rendering
    /// context of the requested GLES version.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] if the platform stack fails to initialize.
    pub fn boot(platform: Platform, version: GlesVersion) -> Result<AppGl> {
        Self::boot_with_display(platform, version, None)
    }

    /// Boots with an overridden display size. Tests use small panels so
    /// the software rasterizer stays fast; benchmarks use `None` (the
    /// device's native panel).
    ///
    /// # Errors
    ///
    /// As [`AppGl::boot`].
    pub fn boot_with_display(
        platform: Platform,
        version: GlesVersion,
        display: Option<(u32, u32)>,
    ) -> Result<AppGl> {
        match platform {
            Platform::CycadaIos => Self::boot_cycada(version, display),
            Platform::StockAndroid | Platform::CycadaAndroid => {
                Self::boot_android(platform, version, display)
            }
            Platform::NativeIos => Self::boot_native_ios(version, display),
        }
    }

    fn boot_cycada(version: GlesVersion, display: Option<(u32, u32)>) -> Result<AppGl> {
        let device = CycadaDevice::boot_with_display(display)?;
        let session = device.primary_session().clone();
        Self::with_cycada_session(device, session, version)
    }

    /// Attaches a new app session to an already-booted Cycada device and
    /// sets up a full-screen context for it. Many apps can attach to one
    /// device and render concurrently, each from its own host thread.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] if session or context setup fails.
    pub fn attach_cycada(device: &CycadaDevice, version: GlesVersion) -> Result<AppGl> {
        let session = device.attach_session()?;
        Self::with_cycada_session(device.clone(), session, version)
    }

    fn with_cycada_session(
        device: CycadaDevice,
        session: CycadaSession,
        version: GlesVersion,
    ) -> Result<AppGl> {
        let tid = session.main_tid();
        let display = device.kernel().display();
        let (w, h) = (display.width(), display.height());
        let eagl = device.eagl().clone();
        let bridge = device.bridge().clone();

        let eagl_ctx = eagl.init_with_api(tid, version)?;
        eagl.set_current_context(tid, Some(eagl_ctx))?;
        let rb = eagl.renderbuffer_storage_from_drawable(tid, eagl_ctx, w, h)?;
        let fbo = bridge.gen_framebuffers(tid, 1)?[0];
        bridge.bind_framebuffer(tid, fbo)?;
        bridge.framebuffer_renderbuffer(tid, rb)?;
        bridge.viewport(tid, 0, 0, w, h)?;

        let mut app = AppGl {
            platform: Platform::CycadaIos,
            version,
            backend: Backend::CycadaIos {
                device,
                session,
                eagl_ctx,
                fbo,
            },
            tid,
            width: w,
            height: h,
            mvp_stack: vec![Mat4::identity()],
            program: 0,
            mvp_loc: -1,
            color_loc: -1,
        };
        app.setup_version_state()?;
        Ok(app)
    }

    fn boot_android(
        platform: Platform,
        version: GlesVersion,
        display: Option<(u32, u32)>,
    ) -> Result<AppGl> {
        let device = AndroidDevice::boot_with_display(platform, display)?;
        let session = device.primary_session().clone();
        Self::with_android_session(device, session, platform, version)
    }

    /// Attaches a new app session to an already-booted Android device.
    ///
    /// All sessions share the default EGL connection (the single-connection
    /// restriction), so they must request the device's locked GLES version.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] if session or context setup fails.
    pub fn attach_android(device: &AndroidDevice, version: GlesVersion) -> Result<AppGl> {
        let platform = device.kernel().profile().platform;
        let session = device.attach_session()?;
        Self::with_android_session(device.clone(), session, platform, version)
    }

    fn with_android_session(
        device: AndroidDevice,
        session: AndroidSession,
        platform: Platform,
        version: GlesVersion,
    ) -> Result<AppGl> {
        let tid = session.main_tid();
        let display = device.kernel().display();
        let (w, h) = (display.width(), display.height());
        let egl = device.egl().clone();
        let ctx = egl.create_context(tid, version)?;
        let surface = egl.create_window_surface(tid, w, h)?;
        egl.make_current(tid, Some(ctx), Some(surface))?;
        let mut app = AppGl {
            platform,
            version,
            backend: Backend::Android {
                device,
                session,
                ctx,
                surface,
            },
            tid,
            width: w,
            height: h,
            mvp_stack: vec![Mat4::identity()],
            program: 0,
            mvp_loc: -1,
            color_loc: -1,
        };
        app.setup_version_state()?;
        Ok(app)
    }

    fn boot_native_ios(version: GlesVersion, display: Option<(u32, u32)>) -> Result<AppGl> {
        let device = IosDevice::boot_with_display(display)?;
        let session = device.primary_session().clone();
        Self::with_native_ios_session(device, session, version)
    }

    /// Attaches a new app session to an already-booted native iOS device.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] if session or context setup fails.
    pub fn attach_native_ios(device: &IosDevice, version: GlesVersion) -> Result<AppGl> {
        let session = device.attach_session()?;
        Self::with_native_ios_session(device.clone(), session, version)
    }

    fn with_native_ios_session(
        device: IosDevice,
        session: IosSession,
        version: GlesVersion,
    ) -> Result<AppGl> {
        let tid = session.main_tid();
        let display = device.kernel().display();
        let (w, h) = (display.width(), display.height());
        let stack = device.stack().clone();
        let eagl_ctx = stack.init_with_api(version);
        stack.set_current_context(tid, Some(eagl_ctx))?;
        let rb = stack.renderbuffer_storage_from_drawable(tid, eagl_ctx, w, h)?;
        let fbo = stack.gles().with_current(tid, |c| {
            let fbo = c.gen_framebuffers(1)[0];
            c.bind_framebuffer(fbo);
            c.framebuffer_renderbuffer(rb);
            c.set_viewport(0, 0, w, h);
            fbo
        });
        let mut app = AppGl {
            platform: Platform::NativeIos,
            version,
            backend: Backend::NativeIos {
                device,
                session,
                eagl_ctx,
                fbo,
            },
            tid,
            width: w,
            height: h,
            mvp_stack: vec![Mat4::identity()],
            program: 0,
            mvp_loc: -1,
            color_loc: -1,
        };
        app.setup_version_state()?;
        Ok(app)
    }

    fn setup_version_state(&mut self) -> Result<()> {
        match self.version {
            GlesVersion::V1 => {
                self.with_bridge_or_vendor(
                    |bridge, tid| {
                        bridge.enable_client_state(tid, ClientState::VertexArray)?;
                        Ok(())
                    },
                    |gles, tid| {
                        gles.with_current(tid, |c| {
                            c.set_client_state(ClientState::VertexArray, true)
                        });
                        Ok(())
                    },
                )?;
            }
            GlesVersion::V2 => {
                // Standard two-shader program with u_mvp / u_color.
                let (program, mvp_loc, color_loc) = self.with_bridge_or_vendor(
                    |bridge, tid| {
                        let vs = bridge.create_shader(tid)?;
                        bridge.shader_source(tid, vs, "attribute vec3 a_pos; uniform mat4 u_mvp;")?;
                        bridge.compile_shader(tid, vs)?;
                        let fs = bridge.create_shader(tid)?;
                        bridge.shader_source(tid, fs, "uniform vec4 u_color;")?;
                        bridge.compile_shader(tid, fs)?;
                        let program = bridge.create_program(tid)?;
                        bridge.attach_shader(tid, program, vs)?;
                        bridge.attach_shader(tid, program, fs)?;
                        bridge.link_program(tid, program)?;
                        bridge.use_program(tid, program)?;
                        let mvp = bridge.uniform_location(tid, program, "u_mvp")?;
                        let color = bridge.uniform_location(tid, program, "u_color")?;
                        bridge.enable_vertex_attrib_array(tid, 0)?;
                        Ok((program, mvp, color))
                    },
                    |gles, tid| {
                        Ok(gles.with_current(tid, |c| {
                            let vs = c.create_shader();
                            c.shader_source(vs, "attribute vec3 a_pos; uniform mat4 u_mvp;");
                            c.compile_shader(vs);
                            let fs = c.create_shader();
                            c.shader_source(fs, "uniform vec4 u_color;");
                            c.compile_shader(fs);
                            let program = c.create_program();
                            c.attach_shader(program, vs);
                            c.attach_shader(program, fs);
                            c.link_program(program);
                            c.use_program(program);
                            let mvp = c.uniform_location(program, "u_mvp");
                            let color = c.uniform_location(program, "u_color");
                            c.set_vertex_attrib_enabled(0, true);
                            (program, mvp, color)
                        }))
                    },
                )?;
                self.program = program;
                self.mvp_loc = mvp_loc;
                self.color_loc = color_loc;
            }
        }
        Ok(())
    }

    /// Runs `f` through the Cycada bridge or `g` against the platform's
    /// vendor GLES, whichever this backend uses.
    fn with_bridge_or_vendor<R>(
        &self,
        f: impl FnOnce(&crate::bridge::GlesBridge, SimTid) -> Result<R>,
        g: impl FnOnce(&Arc<VendorGles>, SimTid) -> Result<R>,
    ) -> Result<R> {
        match &self.backend {
            Backend::CycadaIos { device, .. } => f(device.bridge(), self.tid),
            Backend::Android { device, .. } => {
                let gles = device
                    .egl()
                    .gles_for_thread(self.tid)
                    .map_err(CycadaError::from)?;
                g(&gles, self.tid)
            }
            Backend::NativeIos { device, .. } => g(device.stack().gles(), self.tid),
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The platform configuration this app runs on.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The GLES version in use.
    pub fn version(&self) -> GlesVersion {
        self.version
    }

    /// The app's main thread.
    pub fn tid(&self) -> SimTid {
        self.tid
    }

    /// Render target width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Render target height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The simulated kernel behind this app.
    pub fn kernel(&self) -> Arc<cycada_kernel::Kernel> {
        match &self.backend {
            Backend::CycadaIos { device, .. } => device.kernel().clone(),
            Backend::Android { device, .. } => device.kernel().clone(),
            Backend::NativeIos { device, .. } => device.kernel().clone(),
        }
    }

    /// Charges CPU-bound app work (layout, painting, JS) scaled by the
    /// device's CPU speed.
    pub fn charge_cpu(&self, base_ns: f64) {
        let kernel = self.kernel();
        let cost = kernel.profile().cpu_cost(base_ns);
        kernel.clock().charge_ns_f64(cost);
        if replay::active() {
            replay::record(op::CHARGE_CPU, &[f64_arg(base_ns)], &[]);
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> VirtualClock {
        match &self.backend {
            Backend::CycadaIos { device, .. } => device.kernel().clock().clone(),
            Backend::Android { device, .. } => device.kernel().clock().clone(),
            Backend::NativeIos { device, .. } => device.kernel().clock().clone(),
        }
    }

    /// Current virtual time.
    pub fn now_ns(&self) -> Nanos {
        self.clock().now_ns()
    }

    /// The device display.
    pub fn display(&self) -> Display {
        match &self.backend {
            Backend::CycadaIos { device, .. } => device.kernel().display().clone(),
            Backend::Android { device, .. } => device.kernel().display().clone(),
            Backend::NativeIos { device, .. } => device.kernel().display().clone(),
        }
    }

    /// Per-GLES-function diplomat statistics — only meaningful on
    /// Cycada iOS (Figures 7–10).
    pub fn gl_stats(&self) -> Option<FunctionStats> {
        match &self.backend {
            Backend::CycadaIos { device, .. } => Some(device.engine().stats().clone()),
            _ => None,
        }
    }

    /// The Cycada device, when running on Cycada iOS (for tests poking at
    /// the compatibility layer).
    pub fn cycada_device(&self) -> Option<&CycadaDevice> {
        match &self.backend {
            Backend::CycadaIos { device, .. } => Some(device),
            _ => None,
        }
    }

    /// The Cycada session this app runs in, when on Cycada iOS.
    pub fn cycada_session(&self) -> Option<&CycadaSession> {
        match &self.backend {
            Backend::CycadaIos { session, .. } => Some(session),
            _ => None,
        }
    }

    /// Opens this app's session accounting scope on the calling host
    /// thread: virtual time charged (and, on Cycada, diplomat calls made)
    /// while the guard lives are credited to the session, independent of
    /// other sessions interleaving on the shared device.
    pub fn session_scope(&self) -> SessionScope {
        match &self.backend {
            Backend::CycadaIos { session, .. } => session.scope(),
            Backend::Android { session, .. } => session.scope(),
            Backend::NativeIos { session, .. } => session.scope(),
        }
    }

    /// Virtual nanoseconds this app's session has accumulated inside its
    /// scopes ([`AppGl::session_scope`]).
    pub fn session_virtual_ns(&self) -> Nanos {
        match &self.backend {
            Backend::CycadaIos { session, .. } => session.virtual_ns(),
            Backend::Android { session, .. } => session.virtual_ns(),
            Backend::NativeIos { session, .. } => session.virtual_ns(),
        }
    }

    /// Per-diplomat stats recorded inside this session's scopes — only
    /// meaningful on Cycada iOS.
    pub fn session_stats(&self) -> Option<FunctionStats> {
        self.cycada_session().map(|s| s.stats().clone())
    }

    // ------------------------------------------------------------------
    // Trace plane (cycada_sim::trace)
    // ------------------------------------------------------------------

    /// Starts a fresh trace capture: clears previously buffered events and
    /// enables recording process-wide. Tracing never touches the virtual
    /// clock, so figures and session accounting are unaffected.
    pub fn trace_begin(&self) {
        trace::clear();
        trace::set_enabled(true);
    }

    /// Whether trace recording is currently enabled.
    pub fn trace_enabled(&self) -> bool {
        trace::enabled()
    }

    /// Stops recording and drains the capture as Chrome `trace_event`
    /// JSON (load in `chrome://tracing` or Perfetto).
    pub fn trace_end_json(&self) -> String {
        trace::set_enabled(false);
        trace::chrome_trace_json(&trace::drain())
    }

    /// Stops recording and drains the capture as a plain-text per-function
    /// summary (call counts, total virtual and wall time per event name).
    pub fn trace_end_summary(&self) -> String {
        trace::set_enabled(false);
        trace::summary(&trace::drain())
    }

    /// Marks a point in the capture from app code (recorded only while
    /// tracing is enabled).
    pub fn trace_mark(&self, name: &'static str, arg: u64) {
        trace::instant(trace::Category::App, name, arg);
    }

    /// Current values of every trace counter, in declaration order. The
    /// failure/lifecycle counters (swallowed impersonation-drop errors,
    /// row-bytes teardown skips, replica loads, EGL lifecycle, presents)
    /// count even while tracing is disabled.
    pub fn trace_counters(&self) -> Vec<(&'static str, u64)> {
        trace::counters()
    }

    /// The app's framebuffer object on the iOS paths (EAGL renders
    /// off-screen; Android renders to the window's default framebuffer).
    pub fn framebuffer(&self) -> Option<u32> {
        match &self.backend {
            Backend::CycadaIos { fbo, .. } | Backend::NativeIos { fbo, .. } => Some(*fbo),
            Backend::Android { .. } => None,
        }
    }

    /// The EGL context handle on the Android paths.
    pub fn egl_context(&self) -> Option<EglContextId> {
        match &self.backend {
            Backend::Android { ctx, .. } => Some(*ctx),
            _ => None,
        }
    }

    /// The render target (off-screen drawable on iOS paths, back buffer on
    /// Android).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] if the target cannot be resolved.
    pub fn render_target(&self) -> Result<Image> {
        match &self.backend {
            Backend::CycadaIos { device, eagl_ctx, .. } => device.eagl().drawable_image(*eagl_ctx),
            Backend::Android { device, surface, .. } => Ok(device
                .egl()
                .surface_back_buffer(*surface)
                .map_err(CycadaError::from)?
                .image()
                .clone()),
            Backend::NativeIos { device, eagl_ctx, .. } => {
                device.stack().drawable_image(*eagl_ctx)
            }
        }
    }

    /// FNV hash of the render target's canonical RGBA pixels.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] if the target cannot be resolved.
    pub fn render_hash(&self) -> Result<u64> {
        Ok(self.render_target()?.pixel_hash())
    }

    // ------------------------------------------------------------------
    // Drawing
    // ------------------------------------------------------------------

    /// Clears the render target.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn clear(&self, r: f32, g: f32, b: f32, a: f32) -> Result<()> {
        self.with_bridge_or_vendor(
            |bridge, tid| {
                bridge.clear_color(tid, r, g, b, a)?;
                bridge.clear(tid, true, true)
            },
            |gles, tid| {
                gles.with_current(tid, |c| {
                    c.clear_color(r, g, b, a);
                    c.clear(true, true);
                });
                Ok(())
            },
        )?;
        if replay::active() {
            replay::record(
                op::CLEAR,
                &[f32_arg(r), f32_arg(g), f32_arg(b), f32_arg(a)],
                &[],
            );
        }
        Ok(())
    }

    /// `glScissor` — sets the scissor box. Combined with enabling
    /// [`Capability::ScissorTest`], this is the partial-redraw idiom
    /// whose damage the compositor plane tracks (DESIGN.md §5g).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn set_scissor(&self, x: i32, y: i32, w: u32, h: u32) -> Result<()> {
        self.with_bridge_or_vendor(
            |bridge, tid| bridge.scissor(tid, x, y, w, h),
            |gles, tid| {
                gles.with_current(tid, |c| c.set_scissor(x, y, w, h));
                Ok(())
            },
        )?;
        if replay::active() {
            replay::record(
                op::SCISSOR,
                &[i32_arg(x), i32_arg(y), u64::from(w), u64::from(h)],
                &[],
            );
        }
        Ok(())
    }

    /// Enables or disables a GL capability.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn set_capability(&self, cap: Capability, on: bool) -> Result<()> {
        self.with_bridge_or_vendor(
            |bridge, tid| {
                if on {
                    bridge.enable(tid, cap)
                } else {
                    bridge.disable(tid, cap)
                }
            },
            |gles, tid| {
                gles.with_current(tid, |c| if on { c.enable(cap) } else { c.disable(cap) });
                Ok(())
            },
        )?;
        if replay::active() {
            replay::record(op::CAPABILITY, &[u64::from(cap.code()), u64::from(on)], &[]);
        }
        Ok(())
    }

    fn current_mvp(&self) -> Mat4 {
        *self.mvp_stack.last().expect("stack never empty")
    }

    /// Pushes the transform stack (maps to `glPushMatrix` on v1).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn push_transform(&mut self) -> Result<()> {
        self.mvp_stack.push(self.current_mvp());
        if self.version == GlesVersion::V1 {
            self.with_bridge_or_vendor(
                |bridge, tid| bridge.push_matrix(tid),
                |gles, tid| {
                    gles.with_current(tid, |c| c.push_matrix());
                    Ok(())
                },
            )?;
        }
        if replay::active() {
            replay::record(op::PUSH, &[], &[]);
        }
        Ok(())
    }

    /// Pops the transform stack (maps to `glPopMatrix` on v1).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn pop_transform(&mut self) -> Result<()> {
        if self.mvp_stack.len() > 1 {
            self.mvp_stack.pop();
        }
        if self.version == GlesVersion::V1 {
            self.with_bridge_or_vendor(
                |bridge, tid| bridge.pop_matrix(tid),
                |gles, tid| {
                    gles.with_current(tid, |c| c.pop_matrix());
                    Ok(())
                },
            )?;
        }
        if replay::active() {
            replay::record(op::POP, &[], &[]);
        }
        Ok(())
    }

    /// Rotates about Z (maps to `glRotatef` on v1, `u_mvp` on v2).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn rotate(&mut self, degrees: f32) -> Result<()> {
        let top = self.mvp_stack.last_mut().expect("stack never empty");
        *top = top.mul(&Mat4::rotate_z(degrees));
        match self.version {
            GlesVersion::V1 => self.with_bridge_or_vendor(
                |bridge, tid| bridge.rotatef(tid, degrees, 0.0, 0.0, 1.0),
                |gles, tid| {
                    gles.with_current(tid, |c| c.rotate(degrees, 0.0, 0.0, 1.0));
                    Ok(())
                },
            ),
            GlesVersion::V2 => self.upload_mvp(),
        }?;
        if replay::active() {
            replay::record(op::ROTATE, &[f32_arg(degrees)], &[]);
        }
        Ok(())
    }

    /// Translates (maps to `glTranslatef` on v1).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn translate(&mut self, x: f32, y: f32, z: f32) -> Result<()> {
        let top = self.mvp_stack.last_mut().expect("stack never empty");
        *top = top.mul(&Mat4::translate(x, y, z));
        match self.version {
            GlesVersion::V1 => self.with_bridge_or_vendor(
                |bridge, tid| bridge.translatef(tid, x, y, z),
                |gles, tid| {
                    gles.with_current(tid, |c| c.translate(x, y, z));
                    Ok(())
                },
            ),
            GlesVersion::V2 => self.upload_mvp(),
        }?;
        if replay::active() {
            replay::record(op::TRANSLATE, &[f32_arg(x), f32_arg(y), f32_arg(z)], &[]);
        }
        Ok(())
    }

    /// Scales (maps to `glScalef` on v1).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn scale(&mut self, x: f32, y: f32, z: f32) -> Result<()> {
        let top = self.mvp_stack.last_mut().expect("stack never empty");
        *top = top.mul(&Mat4::scale(x, y, z));
        match self.version {
            GlesVersion::V1 => self.with_bridge_or_vendor(
                |bridge, tid| bridge.scalef(tid, x, y, z),
                |gles, tid| {
                    gles.with_current(tid, |c| c.scale(x, y, z));
                    Ok(())
                },
            ),
            GlesVersion::V2 => self.upload_mvp(),
        }?;
        if replay::active() {
            replay::record(op::SCALE, &[f32_arg(x), f32_arg(y), f32_arg(z)], &[]);
        }
        Ok(())
    }

    /// Resets the transform to identity.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn load_identity(&mut self) -> Result<()> {
        *self.mvp_stack.last_mut().expect("stack never empty") = Mat4::identity();
        match self.version {
            GlesVersion::V1 => self.with_bridge_or_vendor(
                |bridge, tid| bridge.load_identity(tid),
                |gles, tid| {
                    gles.with_current(tid, |c| c.load_identity());
                    Ok(())
                },
            ),
            GlesVersion::V2 => self.upload_mvp(),
        }?;
        if replay::active() {
            replay::record(op::IDENTITY, &[], &[]);
        }
        Ok(())
    }

    fn upload_mvp(&self) -> Result<()> {
        let m = self.current_mvp();
        let loc = self.mvp_loc;
        self.with_bridge_or_vendor(
            |bridge, tid| bridge.uniform_matrix4(tid, loc, m),
            |gles, tid| {
                gles.with_current(tid, |c| c.uniform_matrix4(loc, m));
                Ok(())
            },
        )
    }

    /// Draws a colored primitive list. `xyz` is a flat `[x, y, z]*` array.
    /// Returns fragments shaded.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn draw(&self, mode: Primitive, xyz: &[f32], color: [f32; 4]) -> Result<u64> {
        let count = xyz.len() / 3;
        let frags = match self.version {
            GlesVersion::V1 => self.with_bridge_or_vendor(
                |bridge, tid| {
                    bridge.color4f(tid, color[0], color[1], color[2], color[3])?;
                    bridge.vertex_pointer(tid, 3, xyz)?;
                    bridge.draw_arrays(tid, mode, 0, count)
                },
                |gles, tid| {
                    Ok(gles.with_current(tid, |c| {
                        c.color4f(color[0], color[1], color[2], color[3]);
                        c.client_pointer(ClientState::VertexArray, 3, xyz);
                        c.draw_arrays(mode, 0, count)
                    }))
                },
            ),
            GlesVersion::V2 => {
                let color_loc = self.color_loc;
                self.with_bridge_or_vendor(
                    |bridge, tid| {
                        bridge.uniform4f(tid, color_loc, color[0], color[1], color[2], color[3])?;
                        bridge.vertex_attrib_pointer(tid, 0, 3, xyz)?;
                        bridge.draw_arrays(tid, mode, 0, count)
                    },
                    |gles, tid| {
                        Ok(gles.with_current(tid, |c| {
                            c.uniform4f(color_loc, color[0], color[1], color[2], color[3]);
                            c.vertex_attrib_pointer(0, 3, xyz);
                            c.draw_arrays(mode, 0, count)
                        }))
                    },
                )
            }
        }?;
        if replay::active() {
            let mut payload = Vec::with_capacity(xyz.len() * 4);
            for v in xyz {
                payload.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            replay::record(
                op::DRAW,
                &[
                    u64::from(mode.code()),
                    f32_arg(color[0]),
                    f32_arg(color[1]),
                    f32_arg(color[2]),
                    f32_arg(color[3]),
                ],
                &payload,
            );
        }
        Ok(frags)
    }

    /// Creates a texture from tightly packed pixel data.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn create_texture(
        &self,
        w: u32,
        h: u32,
        format: TexFormat,
        data: &[u8],
    ) -> Result<u32> {
        let tex = self.with_bridge_or_vendor(
            |bridge, tid| {
                let tex = bridge.gen_textures(tid, 1)?[0];
                bridge.bind_texture(tid, tex)?;
                bridge.tex_image_2d(tid, w, h, format, Some(data))?;
                Ok(tex)
            },
            |gles, tid| {
                Ok(gles.with_current(tid, |c| {
                    let tex = c.gen_textures(1)[0];
                    c.bind_texture(tex);
                    c.tex_image_2d(w, h, format, Some(data));
                    tex
                }))
            },
        )?;
        if replay::active() {
            // The returned name rides along so replay can map recorded
            // names onto whatever this run's allocator hands out.
            replay::record(
                op::CREATE_TEXTURE,
                &[u64::from(w), u64::from(h), u64::from(format.code()), u64::from(tex)],
                data,
            );
        }
        Ok(tex)
    }

    /// Updates a texture sub-region (the WebKit tile-update path).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    #[allow(clippy::too_many_arguments)]
    pub fn update_texture(
        &self,
        tex: u32,
        x: u32,
        y: u32,
        w: u32,
        h: u32,
        format: TexFormat,
        data: &[u8],
    ) -> Result<()> {
        self.with_bridge_or_vendor(
            |bridge, tid| {
                bridge.bind_texture(tid, tex)?;
                bridge.tex_sub_image_2d(tid, x, y, w, h, format, data)
            },
            |gles, tid| {
                gles.with_current(tid, |c| {
                    c.bind_texture(tex);
                    c.tex_sub_image_2d(x, y, w, h, format, data);
                });
                Ok(())
            },
        )?;
        if replay::active() {
            replay::record(
                op::UPDATE_TEXTURE,
                &[
                    u64::from(tex),
                    u64::from(x),
                    u64::from(y),
                    u64::from(w),
                    u64::from(h),
                    u64::from(format.code()),
                ],
                data,
            );
        }
        Ok(())
    }

    /// Draws a textured quad covering `[x0,y0]..[x1,y1]` in NDC.
    /// Returns fragments shaded.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn draw_textured_quad(
        &self,
        tex: u32,
        x0: f32,
        y0: f32,
        x1: f32,
        y1: f32,
    ) -> Result<u64> {
        let xyz = [
            x0, y0, 0.0, x1, y0, 0.0, x1, y1, 0.0, x0, y0, 0.0, x1, y1, 0.0, x0, y1, 0.0,
        ];
        let uv = [0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        let frags = match self.version {
            GlesVersion::V1 => self.with_bridge_or_vendor(
                |bridge, tid| {
                    bridge.bind_texture(tid, tex)?;
                    bridge.enable(tid, Capability::Texture2D)?;
                    bridge.enable_client_state(tid, ClientState::TexCoordArray)?;
                    bridge.tex_coord_pointer(tid, 2, &uv)?;
                    bridge.color4f(tid, 1.0, 1.0, 1.0, 1.0)?;
                    bridge.vertex_pointer(tid, 3, &xyz)?;
                    let frags = bridge.draw_arrays(tid, Primitive::Triangles, 0, 6)?;
                    bridge.disable_client_state(tid, ClientState::TexCoordArray)?;
                    bridge.disable(tid, Capability::Texture2D)?;
                    Ok(frags)
                },
                |gles, tid| {
                    Ok(gles.with_current(tid, |c| {
                        c.bind_texture(tex);
                        c.enable(Capability::Texture2D);
                        c.set_client_state(ClientState::TexCoordArray, true);
                        c.client_pointer(ClientState::TexCoordArray, 2, &uv);
                        c.color4f(1.0, 1.0, 1.0, 1.0);
                        c.client_pointer(ClientState::VertexArray, 3, &xyz);
                        let frags = c.draw_arrays(Primitive::Triangles, 0, 6);
                        c.set_client_state(ClientState::TexCoordArray, false);
                        c.disable(Capability::Texture2D);
                        frags
                    }))
                },
            ),
            GlesVersion::V2 => {
                let color_loc = self.color_loc;
                self.with_bridge_or_vendor(
                    |bridge, tid| {
                        bridge.bind_texture(tid, tex)?;
                        bridge.uniform4f(tid, color_loc, 1.0, 1.0, 1.0, 1.0)?;
                        bridge.vertex_attrib_pointer(tid, 0, 3, &xyz)?;
                        bridge.enable_vertex_attrib_array(tid, 2)?;
                        bridge.vertex_attrib_pointer(tid, 2, 2, &uv)?;
                        bridge.draw_arrays(tid, Primitive::Triangles, 0, 6)
                    },
                    |gles, tid| {
                        Ok(gles.with_current(tid, |c| {
                            c.bind_texture(tex);
                            c.uniform4f(color_loc, 1.0, 1.0, 1.0, 1.0);
                            c.vertex_attrib_pointer(0, 3, &xyz);
                            c.set_vertex_attrib_enabled(2, true);
                            c.vertex_attrib_pointer(2, 2, &uv);
                            c.draw_arrays(Primitive::Triangles, 0, 6)
                        }))
                    },
                )
            }
        }?;
        if replay::active() {
            replay::record(
                op::TEX_QUAD,
                &[u64::from(tex), f32_arg(x0), f32_arg(y0), f32_arg(x1), f32_arg(y1)],
                &[],
            );
        }
        Ok(frags)
    }

    /// Draws a textured quad via `glDrawElements` (the WebKit tile
    /// composition path). Returns fragments shaded.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn draw_textured_quad_indexed(
        &self,
        tex: u32,
        x0: f32,
        y0: f32,
        x1: f32,
        y1: f32,
    ) -> Result<u64> {
        let xyz = [x0, y0, 0.0, x1, y0, 0.0, x1, y1, 0.0, x0, y1, 0.0];
        let uv = [0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        let indices = [0u32, 1, 2, 0, 2, 3];
        let frags = match self.version {
            GlesVersion::V1 => self.with_bridge_or_vendor(
                |bridge, tid| {
                    bridge.bind_texture(tid, tex)?;
                    bridge.enable(tid, Capability::Texture2D)?;
                    bridge.enable_client_state(tid, ClientState::TexCoordArray)?;
                    bridge.tex_coord_pointer(tid, 2, &uv)?;
                    bridge.color4f(tid, 1.0, 1.0, 1.0, 1.0)?;
                    bridge.vertex_pointer(tid, 3, &xyz)?;
                    let frags = bridge.draw_elements(tid, Primitive::Triangles, &indices)?;
                    bridge.disable_client_state(tid, ClientState::TexCoordArray)?;
                    bridge.disable(tid, Capability::Texture2D)?;
                    Ok(frags)
                },
                |gles, tid| {
                    Ok(gles.with_current(tid, |c| {
                        c.bind_texture(tex);
                        c.enable(Capability::Texture2D);
                        c.set_client_state(ClientState::TexCoordArray, true);
                        c.client_pointer(ClientState::TexCoordArray, 2, &uv);
                        c.color4f(1.0, 1.0, 1.0, 1.0);
                        c.client_pointer(ClientState::VertexArray, 3, &xyz);
                        let frags = c.draw_elements(Primitive::Triangles, &indices);
                        c.set_client_state(ClientState::TexCoordArray, false);
                        c.disable(Capability::Texture2D);
                        frags
                    }))
                },
            ),
            GlesVersion::V2 => {
                let color_loc = self.color_loc;
                self.with_bridge_or_vendor(
                    |bridge, tid| {
                        bridge.bind_texture(tid, tex)?;
                        bridge.uniform4f(tid, color_loc, 1.0, 1.0, 1.0, 1.0)?;
                        bridge.vertex_attrib_pointer(tid, 0, 3, &xyz)?;
                        bridge.enable_vertex_attrib_array(tid, 2)?;
                        bridge.vertex_attrib_pointer(tid, 2, 2, &uv)?;
                        bridge.draw_elements(tid, Primitive::Triangles, &indices)
                    },
                    |gles, tid| {
                        Ok(gles.with_current(tid, |c| {
                            c.bind_texture(tex);
                            c.uniform4f(color_loc, 1.0, 1.0, 1.0, 1.0);
                            c.vertex_attrib_pointer(0, 3, &xyz);
                            c.set_vertex_attrib_enabled(2, true);
                            c.vertex_attrib_pointer(2, 2, &uv);
                            c.draw_elements(Primitive::Triangles, &indices)
                        }))
                    },
                )
            }
        }?;
        if replay::active() {
            replay::record(
                op::TEX_QUAD_INDEXED,
                &[u64::from(tex), f32_arg(x0), f32_arg(y0), f32_arg(x1), f32_arg(y1)],
                &[],
            );
        }
        Ok(frags)
    }

    /// Sets the simulated GPU cost class (2D vector work vs 3D geometry)
    /// for subsequent draws. This is a simulation knob, not a GL call, so
    /// it bypasses the diplomat path.
    pub fn set_draw_class(&self, class: cycada_gpu::DrawClass) {
        let gles = match &self.backend {
            Backend::CycadaIos { device, .. } => device.egl().gles_for_thread(self.tid).ok(),
            Backend::Android { device, .. } => device.egl().gles_for_thread(self.tid).ok(),
            Backend::NativeIos { device, .. } => Some(device.stack().gles().clone()),
        };
        if let Some(gles) = gles {
            gles.set_draw_class(self.tid, class);
        }
        if replay::active() {
            replay::record(op::DRAW_CLASS, &[u64::from(class.code())], &[]);
        }
    }

    /// `glFlush`.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn flush(&self) -> Result<()> {
        self.with_bridge_or_vendor(
            |bridge, tid| bridge.flush(tid),
            |gles, tid| {
                gles.flush(tid);
                Ok(())
            },
        )?;
        if replay::active() {
            replay::record(op::FLUSH, &[], &[]);
        }
        Ok(())
    }

    /// Deletes textures (interposed on the Cycada path, §6.1).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn delete_textures(&self, names: &[u32]) -> Result<()> {
        self.with_bridge_or_vendor(
            |bridge, tid| bridge.delete_textures(tid, names),
            |gles, tid| {
                gles.delete_textures(tid, names);
                Ok(())
            },
        )?;
        if replay::active() {
            let mut payload = Vec::with_capacity(names.len() * 4);
            for n in names {
                payload.extend_from_slice(&n.to_le_bytes());
            }
            replay::record(op::DELETE_TEXTURES, &[], &payload);
        }
        Ok(())
    }

    /// `glGetString(GL_EXTENSIONS)` as the app sees it.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on bridge failures.
    pub fn extensions(&self) -> Result<Option<String>> {
        let s = self.with_bridge_or_vendor(
            |bridge, tid| bridge.get_string(tid, StringName::Extensions),
            |gles, tid| Ok(gles.get_string(tid, StringName::Extensions)),
        )?;
        if replay::active() {
            replay::record(op::EXTENSIONS, &[], &[]);
        }
        Ok(s)
    }

    /// Assigns this app's window a SurfaceFlinger layer rectangle:
    /// presented frames compose into the rectangle instead of covering the
    /// panel, so several apps sharing a device can own disjoint screen
    /// regions. Apps that never call this keep full-screen presentation.
    ///
    /// Native iOS has no compositor between the app and the panel; the
    /// call is a no-op there.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] for unknown surfaces.
    pub fn set_display_layer(&self, rect: cycada_gpu::raster::Rect) -> Result<()> {
        match &self.backend {
            Backend::CycadaIos {
                device, eagl_ctx, ..
            } => device.eagl().set_drawable_layer(*eagl_ctx, rect),
            Backend::Android {
                device, surface, ..
            } => Ok(device
                .egl()
                .set_surface_layer(*surface, rect)
                .map_err(CycadaError::from)?),
            Backend::NativeIos { .. } => Ok(()),
        }?;
        if replay::active() {
            replay::record(
                op::DISPLAY_LAYER,
                &[
                    u64::from(rect.x),
                    u64::from(rect.y),
                    u64::from(rect.w),
                    u64::from(rect.h),
                ],
                &[],
            );
        }
        Ok(())
    }

    /// Presents the frame to the display.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError`] on present failures.
    pub fn present(&self) -> Result<()> {
        match &self.backend {
            Backend::CycadaIos {
                device, eagl_ctx, ..
            } => device.eagl().present_renderbuffer(self.tid, *eagl_ctx),
            Backend::Android {
                device, surface, ..
            } => Ok(device
                .egl()
                .swap_buffers(self.tid, *surface)
                .map_err(CycadaError::from)?),
            Backend::NativeIos {
                device, eagl_ctx, ..
            } => device.stack().present_renderbuffer(self.tid, *eagl_ctx),
        }?;
        if replay::active() {
            // The post-present digest rides along as the expected value
            // replay checks each frame against. Hashing is a pure byte
            // read — it never touches the clock, so recording stays
            // invisible to session accounting.
            replay::record(op::PRESENT, &[self.render_hash().unwrap_or(0)], &[]);
        }
        Ok(())
    }
}

impl fmt::Debug for AppGl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppGl")
            .field("platform", &self.platform)
            .field("version", &self.version)
            .field("size", &(self.width, self.height))
            .finish()
    }
}
