//! The native iOS graphics stack (the iPad mini baseline).
//!
//! The paper's evaluation compares Cycada against the same iOS app running
//! natively on an iPad mini. This module assembles that baseline from the
//! simulated pieces: Apple's vendor GLES library (loaded through the
//! linker like any other proprietary library), Apple's EAGL semantics
//! (multiple contexts with different GLES versions per process, any-thread
//! context use — the freedoms Android lacks, §7–8), IOSurface memory, and
//! the hardware-assisted IOMobileFramebuffer present path.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use cycada_gles::{ApiFlavor, ContextId, EglImageSource, GlesVersion, VendorGles};
use cycada_gpu::GpuDevice;
use cycada_iosurface::{
    CoreSurfaceService, IOSurface, IOSurfaceApi, IoMobileFramebuffer, SurfaceProps,
    IOMOBILE_FRAMEBUFFER_SERVICE,
};
use cycada_kernel::{IpcMessage, Kernel, SimTid};
use cycada_linker::{DynamicLinker, LibraryImage};

use crate::error::CycadaError;
use crate::Result;

/// Apple's GLES framework binary.
pub const IOS_GLES_LIB: &str = "OpenGLES.framework";
/// Apple's GPU support dylib (the vendor driver shim).
pub const IOS_GPU_SUPPORT: &str = "libGPUSupportMercury.dylib";
/// Darwin's libSystem (never replicated).
pub const IOS_LIBSYSTEM: &str = "libSystem.dylib";

/// Registers the iOS graphics library images with a linker.
pub fn register_ios_graphics(linker: &Arc<DynamicLinker>, gpu: &Arc<GpuDevice>) {
    linker.register_image(
        LibraryImage::builder(IOS_LIBSYSTEM)
            .symbols(["malloc", "free"])
            .non_replicable()
            .build(),
    );
    linker.register_image(
        LibraryImage::builder(IOS_GPU_SUPPORT)
            .deps([IOS_LIBSYSTEM])
            .symbols(["gpus_ReturnObjectFence", "gpus_SubmitPacket"])
            .build(),
    );
    let gpu = gpu.clone();
    linker.register_image(
        LibraryImage::builder(IOS_GLES_LIB)
            .deps([IOS_GPU_SUPPORT])
            .symbols(["glDrawArrays", "glClear", "glSetFenceAPPLE"])
            .constructor(move || Arc::new(VendorGles::new(ApiFlavor::Ios, gpu.clone())))
            .build(),
    );
}

struct NativeDrawable {
    iosurface: IOSurface,
    renderbuffer: u32,
}

struct NativeRecord {
    api: GlesVersion,
    ctx: ContextId,
    drawable: Option<NativeDrawable>,
}

/// The assembled native iOS graphics stack.
pub struct NativeIosStack {
    kernel: Arc<Kernel>,
    gles: Arc<VendorGles>,
    iosurface: Arc<IOSurfaceApi>,
    coresurface: Arc<CoreSurfaceService>,
    contexts: Mutex<HashMap<u32, NativeRecord>>,
    next_id: AtomicU32,
    current: Mutex<HashMap<u64, u32>>,
}

impl NativeIosStack {
    /// Boots the iOS user-space graphics stack over a kernel that has the
    /// `IOCoreSurface` and `IOMobileFramebuffer` services registered.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Diplomat`]-style resolution errors if the
    /// iOS libraries are not registered with the linker.
    pub fn new(
        kernel: Arc<Kernel>,
        linker: &Arc<DynamicLinker>,
        coresurface: Arc<CoreSurfaceService>,
    ) -> Result<Self> {
        let gles_lib = linker.dlopen(IOS_GLES_LIB).map_err(CycadaError::from)?;
        let gles = gles_lib
            .state::<VendorGles>()
            .ok_or_else(|| CycadaError::Diplomat("OpenGLES has wrong state type".into()))?;
        let iosurface = Arc::new(IOSurfaceApi::new(kernel.clone()));
        Ok(NativeIosStack {
            kernel,
            gles,
            iosurface,
            coresurface,
            contexts: Mutex::new(HashMap::new()),
            next_id: AtomicU32::new(1),
            current: Mutex::new(HashMap::new()),
        })
    }

    /// The Apple vendor GLES library (native apps call it directly — no
    /// diplomats on this platform).
    pub fn gles(&self) -> &Arc<VendorGles> {
        &self.gles
    }

    /// The IOSurface API.
    pub fn iosurface(&self) -> &Arc<IOSurfaceApi> {
        &self.iosurface
    }

    /// Native `initWithAPI:`: multiple contexts of *different* GLES
    /// versions coexist freely in one process — "iOS provides richer
    /// support than Android for multiple GLES API versions" (§1).
    pub fn init_with_api(&self, api: GlesVersion) -> u32 {
        let ctx = self.gles.create_context(api);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.contexts.lock().insert(
            id,
            NativeRecord {
                api,
                ctx,
                drawable: None,
            },
        );
        id
    }

    /// Native `setCurrentContext:` — any thread may bind any context.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn set_current_context(&self, tid: SimTid, ctx: Option<u32>) -> Result<()> {
        match ctx {
            None => {
                self.current.lock().remove(&tid.as_u64());
                self.gles.make_current(tid, None, None);
                Ok(())
            }
            Some(id) => {
                let vendor_ctx = self
                    .contexts
                    .lock()
                    .get(&id)
                    .map(|r| r.ctx)
                    .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {id}")))?;
                self.gles.make_current(tid, Some(vendor_ctx), None);
                self.current.lock().insert(tid.as_u64(), id);
                Ok(())
            }
        }
    }

    /// The context's GLES API version.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn api(&self, ctx: u32) -> Result<GlesVersion> {
        self.contexts
            .lock()
            .get(&ctx)
            .map(|r| r.api)
            .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {ctx}")))
    }

    /// Native `renderbufferStorage:fromDrawable:`: IOSurface-backed
    /// renderbuffer storage.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`]/[`CycadaError::IoSurface`] on failure.
    pub fn renderbuffer_storage_from_drawable(
        &self,
        tid: SimTid,
        ctx: u32,
        width: u32,
        height: u32,
    ) -> Result<u32> {
        let iosurface = self
            .iosurface
            .create(tid, SurfaceProps::bgra(width, height), None)
            .map_err(CycadaError::from)?;
        let image = iosurface.as_image();
        let renderbuffer = self.gles.with_current(tid, |c| {
            let rb = c.gen_renderbuffers(1)[0];
            c.bind_renderbuffer(rb);
            c.egl_image_target_renderbuffer(EglImageSource {
                image: image.clone(),
                guard: Arc::new(()),
            });
            rb
        });
        self.contexts
            .lock()
            .get_mut(&ctx)
            .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {ctx}")))?
            .drawable = Some(NativeDrawable {
            iosurface,
            renderbuffer,
        });
        Ok(renderbuffer)
    }

    /// Native `presentRenderbuffer:` — the hardware-assisted path: one
    /// opaque Mach IPC call to IOMobileFramebuffer flips the drawable's
    /// IOSurface onto the panel.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] if the context has no drawable.
    pub fn present_renderbuffer(&self, tid: SimTid, ctx: u32) -> Result<()> {
        let surface_id = {
            let contexts = self.contexts.lock();
            let record = contexts
                .get(&ctx)
                .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {ctx}")))?;
            record
                .drawable
                .as_ref()
                .map(|d| d.iosurface.id())
                .ok_or_else(|| CycadaError::Eagl("presentRenderbuffer without drawable".into()))?
        };
        self.kernel
            .mach_ipc_call(
                tid,
                IOMOBILE_FRAMEBUFFER_SERVICE,
                IpcMessage::new(cycada_iosurface::SEL_SWAP_SURFACE, [surface_id]),
            )
            .map_err(CycadaError::from)?;
        Ok(())
    }

    /// The drawable's pixel image (verification).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] if the context has no drawable.
    pub fn drawable_image(&self, ctx: u32) -> Result<cycada_gpu::Image> {
        let contexts = self.contexts.lock();
        let record = contexts
            .get(&ctx)
            .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {ctx}")))?;
        record
            .drawable
            .as_ref()
            .map(|d| d.iosurface.as_image())
            .ok_or_else(|| CycadaError::Eagl("context has no drawable".into()))
    }

    /// The drawable's renderbuffer name.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] if the context has no drawable.
    pub fn drawable_renderbuffer(&self, ctx: u32) -> Result<u32> {
        let contexts = self.contexts.lock();
        let record = contexts
            .get(&ctx)
            .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {ctx}")))?;
        record
            .drawable
            .as_ref()
            .map(|d| d.renderbuffer)
            .ok_or_else(|| CycadaError::Eagl("context has no drawable".into()))
    }

    /// The kernel-side surface table (for service registration checks).
    pub fn coresurface(&self) -> &Arc<CoreSurfaceService> {
        &self.coresurface
    }
}

/// Registers the iOS kernel display services and returns the framebuffer
/// driver handle.
pub fn register_ios_display(
    kernel: &Arc<Kernel>,
    gpu: &Arc<GpuDevice>,
    coresurface: &Arc<CoreSurfaceService>,
) -> Arc<IoMobileFramebuffer> {
    let fb = IoMobileFramebuffer::new(kernel.display().clone(), gpu.clone(), coresurface.clone());
    kernel.register_service(fb.clone());
    fb
}

impl fmt::Debug for NativeIosStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeIosStack")
            .field("contexts", &self.contexts.lock().len())
            .finish()
    }
}
