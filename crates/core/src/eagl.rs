//! The EAGL reimplementation (§5).
//!
//! "Graphics resource management, including display and window management,
//! is done in iOS using Apple's own EAGL Objective-C API ... There is no
//! direct mapping from EAGL to EGL, requiring Cycada to implement
//! substantial logic to support EAGL." The API has 17 methods: 6 are
//! supported by multi diplomats (coalesced in libEGLbridge), 10 are
//! implemented from scratch (they are trivial state accessors), and 1 is
//! never called by real apps and left unimplemented — the same 6/10/1
//! split the paper reports.
//!
//! EAGL "only allows rendering to an off-screen (non-default) framebuffer"
//! whose color renderbuffer is backed by an IOSurface; `presentRenderbuffer`
//! moves those pixels to the screen. On Cycada that path is the full-screen
//! textured quad of `aegl_bridge_draw_fbo_tex` followed by
//! `eglSwapBuffers` (§5).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use cycada_egl::{AndroidEgl, EglContextId, EglSurfaceId, McConnectionId};
use cycada_gles::GlesVersion;
use cycada_iosurface::{IOSurface, SurfaceProps};
use cycada_kernel::SimTid;
use cycada_sim::trace;

use crate::bridge::GlesBridge;
use crate::egl_bridge::EglBridge;
use crate::error::CycadaError;
use crate::iosurface_bridge::IoSurfaceBridge;
use crate::Result;

/// Handle to an EAGLContext.
pub type EaglContextId = u32;

/// How each of the 17 EAGL methods is implemented (the Table-of-§5 census).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EaglMethodKind {
    /// Implemented via multi diplomats in libEGLbridge.
    MultiDiplomat,
    /// Implemented from scratch (trivial foreign-side logic).
    Scratch,
    /// Not implemented: never called by any tested app.
    NeverCalled,
}

/// The 17 EAGL methods and their implementation category (§5: 6 multi, 10
/// scratch, 1 never called).
pub const EAGL_METHODS: &[(&str, EaglMethodKind)] = &[
    ("initWithAPI:sharegroup:", EaglMethodKind::MultiDiplomat),
    ("setCurrentContext:", EaglMethodKind::MultiDiplomat),
    ("renderbufferStorage:fromDrawable:", EaglMethodKind::MultiDiplomat),
    ("presentRenderbuffer:", EaglMethodKind::MultiDiplomat),
    ("texImageIOSurface:", EaglMethodKind::MultiDiplomat),
    ("deleteDrawable", EaglMethodKind::MultiDiplomat),
    ("initWithAPI:", EaglMethodKind::Scratch),
    ("currentContext", EaglMethodKind::Scratch),
    ("API", EaglMethodKind::Scratch),
    ("sharegroup", EaglMethodKind::Scratch),
    ("isCurrentContext", EaglMethodKind::Scratch),
    ("isMultiThreaded", EaglMethodKind::Scratch),
    ("setMultiThreaded:", EaglMethodKind::Scratch),
    ("debugLabel", EaglMethodKind::Scratch),
    ("swapInterval", EaglMethodKind::Scratch),
    ("setSwapInterval:", EaglMethodKind::Scratch),
    ("setDebugLabel:", EaglMethodKind::NeverCalled),
];

struct Drawable {
    iosurface: IOSurface,
    renderbuffer: u32,
    /// RGBA staging image for the present path: the IOSurface drawable is
    /// BGRA (the iOS-native layout), which the Android window path cannot
    /// texture from directly, so presents stage through a conversion copy
    /// (`aegl_bridge_copy_tex_buf` — a top GLES-time consumer in
    /// Figures 7–10). The copy is an unscaled GPU blit, so it runs on the
    /// raster fast plane's row-sliced path under one lock pair rather than
    /// per-pixel locking (DESIGN.md §5b); virtual-time cost is unchanged.
    staging: cycada_gpu::Image,
}

struct EaglRecord {
    api: GlesVersion,
    sharegroup: u32,
    egl_ctx: EglContextId,
    connection: McConnectionId,
    creator: SimTid,
    window_surface: EglSurfaceId,
    drawable: Option<Drawable>,
    multi_threaded: bool,
    debug_label: Option<String>,
    swap_interval: u32,
}

/// Cycada's EAGL implementation.
pub struct Eagl {
    egl: Arc<AndroidEgl>,
    bridge: Arc<GlesBridge>,
    egl_bridge: Arc<EglBridge>,
    iosurface_bridge: Arc<IoSurfaceBridge>,
    contexts: Mutex<HashMap<EaglContextId, EaglRecord>>,
    current: Mutex<HashMap<u64, EaglContextId>>,
    next_id: AtomicU32,
    display_size: (u32, u32),
}

impl Eagl {
    /// Creates the EAGL layer over the Cycada bridges.
    pub fn new(
        egl: Arc<AndroidEgl>,
        bridge: Arc<GlesBridge>,
        egl_bridge: Arc<EglBridge>,
        iosurface_bridge: Arc<IoSurfaceBridge>,
        display_size: (u32, u32),
    ) -> Self {
        Eagl {
            egl,
            bridge,
            egl_bridge,
            iosurface_bridge,
            contexts: Mutex::new(HashMap::new()),
            current: Mutex::new(HashMap::new()),
            next_id: AtomicU32::new(1),
            display_size,
        }
    }

    fn record<R>(&self, ctx: EaglContextId, f: impl FnOnce(&EaglRecord) -> R) -> Result<R> {
        self.contexts
            .lock()
            .get(&ctx)
            .map(f)
            .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {ctx}")))
    }

    /// Assigns a SurfaceFlinger layer rectangle to this context's window
    /// surface, so its presented frames compose into `rect` rather than
    /// covering the panel (the multi-app path).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn set_drawable_layer(
        &self,
        ctx: EaglContextId,
        rect: cycada_gpu::raster::Rect,
    ) -> Result<()> {
        let window_surface = self.record(ctx, |r| r.window_surface)?;
        self.egl
            .set_surface_layer(window_surface, rect)
            .map_err(CycadaError::from)
    }

    // ------------------------------------------------------------------
    // Multi-diplomat methods (6)
    // ------------------------------------------------------------------

    /// `-[EAGLContext initWithAPI:sharegroup:]`: creates a context with its
    /// own GLES connection. Each EAGLContext gets a DLR replica of
    /// libui_wrapper + vendor EGL/GLES (§8.2), so multiple contexts may use
    /// different GLES versions simultaneously — impossible with stock
    /// Android EGL.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Egl`] if the replica cannot be built.
    pub fn init_with_api_sharegroup(
        &self,
        tid: SimTid,
        api: GlesVersion,
        sharegroup: u32,
    ) -> Result<EaglContextId> {
        let (w, h) = self.display_size;
        let (connection, egl_ctx, window_surface) =
            self.egl_bridge.setup_context(tid, api, w, h)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.contexts.lock().insert(
            id,
            EaglRecord {
                api,
                sharegroup,
                egl_ctx,
                connection,
                creator: tid,
                window_surface,
                drawable: None,
                multi_threaded: false,
                debug_label: None,
                swap_interval: 1,
            },
        );
        Ok(id)
    }

    /// `+[EAGLContext setCurrentContext:]`. iOS "allows any thread to use a
    /// GLES context; one thread can create a GLES context and another can
    /// use it" (§7) — when the caller is not the creating thread, Cycada
    /// uses thread impersonation to migrate the connection TLS before
    /// binding.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn set_current_context(&self, tid: SimTid, ctx: Option<EaglContextId>) -> Result<()> {
        let Some(ctx) = ctx else {
            self.current.lock().remove(&tid.as_u64());
            return Ok(());
        };
        let (egl_ctx, creator, window_surface) =
            self.record(ctx, |r| (r.egl_ctx, r.creator, r.window_surface))?;
        if creator != tid {
            // Impersonate the creating thread to pick up the replica
            // connection TLS (§7.1, §8.1.1), then adopt it persistently.
            let engine = self.bridge.engine().clone();
            let guard = engine.impersonate(tid, creator)?;
            let values = self.egl_bridge.get_tls(tid)?;
            guard.finish()?;
            self.egl_bridge.set_tls(tid, &values)?;
        }
        self.egl_bridge
            .make_current(tid, egl_ctx, Some(window_surface))?;
        self.current.lock().insert(tid.as_u64(), ctx);
        Ok(())
    }

    /// `-[EAGLContext renderbufferStorage:fromDrawable:]`: allocates
    /// IOSurface-backed storage for the drawable and binds it to a fresh
    /// renderbuffer. Returns the renderbuffer name for FBO attachment.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts or allocation
    /// failures.
    pub fn renderbuffer_storage_from_drawable(
        &self,
        tid: SimTid,
        ctx: EaglContextId,
        width: u32,
        height: u32,
    ) -> Result<u32> {
        self.record(ctx, |_| ())?;
        let iosurface = self
            .iosurface_bridge
            .create(tid, SurfaceProps::bgra(width, height))?;
        let renderbuffer = self.bridge.gen_renderbuffers(tid, 1)?[0];
        self.iosurface_bridge
            .renderbuffer_storage_io_surface(tid, iosurface.id(), renderbuffer)?;
        let staging =
            cycada_gpu::Image::new(width, height, cycada_gpu::PixelFormat::Rgba8888);
        self.contexts
            .lock()
            .get_mut(&ctx)
            .expect("checked above")
            .drawable = Some(Drawable {
            iosurface,
            renderbuffer,
            staging,
        });
        Ok(renderbuffer)
    }

    /// `-[EAGLContext presentRenderbuffer:]` — the §5 path: a multi
    /// diplomat renders the off-screen framebuffer contents into the
    /// default framebuffer with a full-screen textured quad
    /// (`aegl_bridge_draw_fbo_tex`), then `eglSwapBuffers` displays it.
    ///
    /// No damage is marshalled across this chain explicitly: each hop
    /// (drawable → staging → back buffer → scanout) is a blit whose
    /// destination journal records provenance-translated source damage
    /// (DESIGN.md §5g), so partial-redraw information survives to the
    /// compositor's tile memo without any new bridge arguments.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] if the context has no drawable.
    pub fn present_renderbuffer(&self, tid: SimTid, ctx: EaglContextId) -> Result<()> {
        let _tspan = trace::span(trace::Category::Eagl, "presentRenderbuffer:");
        trace::bump(trace::Counter::EaglPresents);
        let (window_surface, drawable_image, staging) = {
            let contexts = self.contexts.lock();
            let record = contexts
                .get(&ctx)
                .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {ctx}")))?;
            let drawable = record
                .drawable
                .as_ref()
                .ok_or_else(|| CycadaError::Eagl("presentRenderbuffer without drawable".into()))?;
            (
                record.window_surface,
                drawable.iosurface.as_image(),
                drawable.staging.clone(),
            )
        };
        // Stage the BGRA drawable into an RGBA texture source, render it
        // into the default framebuffer, then swap — the full unoptimized
        // path of §5. With recording on (the default), the two render
        // diplomats charge identically but defer their byte work into a
        // command list built lock-free on this thread; the list executes
        // under per-buffer guards before `eglSwapBuffers` reads the back
        // buffer, so the swapped pixels are identical either way
        // (DESIGN.md §5f).
        let device = self.egl_bridge.device_for_thread(tid)?;
        if device.recording() {
            let mut rec = cycada_gpu::CommandRecorder::new();
            self.egl_bridge
                .copy_tex_buf_record(tid, &drawable_image, &staging, &mut rec)?;
            self.egl_bridge.draw_fbo_tex_record(tid, &staging, &mut rec)?;
            device.execute(rec.finish());
        } else {
            self.egl_bridge.copy_tex_buf(tid, &drawable_image, &staging)?;
            self.egl_bridge.draw_fbo_tex(tid, &staging)?;
        }
        self.egl_bridge.swap_buffers(tid, window_surface)?;
        Ok(())
    }

    /// `texImageIOSurface:` — binds an IOSurface to a GLES texture (the
    /// CoreGraphics/GLES sharing path).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::IoSurface`] for unbridged surfaces.
    pub fn tex_image_io_surface(&self, tid: SimTid, surface: &IOSurface, texture: u32) -> Result<()> {
        self.iosurface_bridge
            .tex_image_io_surface(tid, surface.id(), texture)
    }

    /// `deleteDrawable` — releases the drawable storage.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn delete_drawable(&self, tid: SimTid, ctx: EaglContextId) -> Result<()> {
        let drawable = {
            let mut contexts = self.contexts.lock();
            let record = contexts
                .get_mut(&ctx)
                .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {ctx}")))?;
            record.drawable.take()
        };
        if let Some(d) = drawable {
            self.iosurface_bridge.release(tid, &d.iosurface)?;
            self.bridge.delete_textures(tid, &[])?; // flush interposition state
            let _ = d.renderbuffer;
        }
        Ok(())
    }

    /// `-[EAGLContext dealloc]` — full context teardown: releases the
    /// drawable, destroys the underlying EGL context and window surface,
    /// unloads the context's DLR replica connection, and forgets the
    /// record. Any thread the context was current on is left with no
    /// current context. Every context-scoped method errors afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn destroy_context(&self, tid: SimTid, ctx: EaglContextId) -> Result<()> {
        self.delete_drawable(tid, ctx)?;
        let record = self
            .contexts
            .lock()
            .remove(&ctx)
            .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {ctx}")))?;
        self.current.lock().retain(|_, c| *c != ctx);
        self.egl.destroy_surface(tid, record.window_surface)?;
        self.egl.destroy_context(record.egl_ctx)?;
        self.egl.release_mc_connection(record.connection)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // From-scratch methods (10)
    // ------------------------------------------------------------------

    /// `-[EAGLContext initWithAPI:]` — a fresh sharegroup.
    ///
    /// # Errors
    ///
    /// As [`Eagl::init_with_api_sharegroup`].
    pub fn init_with_api(&self, tid: SimTid, api: GlesVersion) -> Result<EaglContextId> {
        let sharegroup = self.next_id.fetch_add(1, Ordering::Relaxed) | 0x8000_0000;
        self.init_with_api_sharegroup(tid, api, sharegroup)
    }

    /// `+[EAGLContext currentContext]`.
    pub fn current_context(&self, tid: SimTid) -> Option<EaglContextId> {
        self.current.lock().get(&tid.as_u64()).copied()
    }

    /// `-[EAGLContext API]`.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn api(&self, ctx: EaglContextId) -> Result<GlesVersion> {
        self.record(ctx, |r| r.api)
    }

    /// `-[EAGLContext sharegroup]`.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn sharegroup(&self, ctx: EaglContextId) -> Result<u32> {
        self.record(ctx, |r| r.sharegroup)
    }

    /// Whether `ctx` is current on `tid`.
    pub fn is_current_context(&self, tid: SimTid, ctx: EaglContextId) -> bool {
        self.current_context(tid) == Some(ctx)
    }

    /// `-[EAGLContext isMultiThreaded]`.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn is_multi_threaded(&self, ctx: EaglContextId) -> Result<bool> {
        self.record(ctx, |r| r.multi_threaded)
    }

    /// `-[EAGLContext setMultiThreaded:]`.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn set_multi_threaded(&self, ctx: EaglContextId, value: bool) -> Result<()> {
        self.contexts
            .lock()
            .get_mut(&ctx)
            .map(|r| r.multi_threaded = value)
            .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {ctx}")))
    }

    /// `-[EAGLContext debugLabel]`.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn debug_label(&self, ctx: EaglContextId) -> Result<Option<String>> {
        self.record(ctx, |r| r.debug_label.clone())
    }

    /// The context's swap interval.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn swap_interval(&self, ctx: EaglContextId) -> Result<u32> {
        self.record(ctx, |r| r.swap_interval)
    }

    /// Sets the context's swap interval.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn set_swap_interval(&self, ctx: EaglContextId, interval: u32) -> Result<()> {
        self.contexts
            .lock()
            .get_mut(&ctx)
            .map(|r| r.swap_interval = interval)
            .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {ctx}")))
    }

    // ------------------------------------------------------------------
    // Never called (1)
    // ------------------------------------------------------------------

    /// `setDebugLabel:` — the one EAGL method the prototype leaves
    /// unimplemented "as it was never called" (§5).
    ///
    /// # Errors
    ///
    /// Always returns [`CycadaError::Eagl`].
    pub fn set_debug_label(&self, _ctx: EaglContextId, _label: &str) -> Result<()> {
        Err(CycadaError::Eagl(
            "setDebugLabel: is unimplemented (never called by tested apps)".into(),
        ))
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The drawable's pixel image, for verification.
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] if the context has no drawable.
    pub fn drawable_image(&self, ctx: EaglContextId) -> Result<cycada_gpu::Image> {
        let contexts = self.contexts.lock();
        let record = contexts
            .get(&ctx)
            .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {ctx}")))?;
        record
            .drawable
            .as_ref()
            .map(|d| d.iosurface.as_image())
            .ok_or_else(|| CycadaError::Eagl("context has no drawable".into()))
    }

    /// The drawable's renderbuffer name (for FBO attachment).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] if the context has no drawable.
    pub fn drawable_renderbuffer(&self, ctx: EaglContextId) -> Result<u32> {
        let contexts = self.contexts.lock();
        let record = contexts
            .get(&ctx)
            .ok_or_else(|| CycadaError::Eagl(format!("unknown EAGLContext {ctx}")))?;
        record
            .drawable
            .as_ref()
            .map(|d| d.renderbuffer)
            .ok_or_else(|| CycadaError::Eagl("context has no drawable".into()))
    }

    /// The EGL-level connection of a context (each EAGLContext has its own
    /// DLR replica connection).
    ///
    /// # Errors
    ///
    /// Returns [`CycadaError::Eagl`] for unknown contexts.
    pub fn connection(&self, ctx: EaglContextId) -> Result<McConnectionId> {
        self.record(ctx, |r| r.connection)
    }

    /// The underlying Android EGL front (diagnostics).
    pub fn android_egl(&self) -> &Arc<AndroidEgl> {
        &self.egl
    }

    /// Counts the 17 EAGL methods by implementation kind:
    /// (multi-diplomat, scratch, never-called) = (6, 10, 1).
    pub fn method_census() -> (usize, usize, usize) {
        let multi = EAGL_METHODS
            .iter()
            .filter(|(_, k)| *k == EaglMethodKind::MultiDiplomat)
            .count();
        let scratch = EAGL_METHODS
            .iter()
            .filter(|(_, k)| *k == EaglMethodKind::Scratch)
            .count();
        let never = EAGL_METHODS
            .iter()
            .filter(|(_, k)| *k == EaglMethodKind::NeverCalled)
            .count();
        (multi, scratch, never)
    }
}

impl fmt::Debug for Eagl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Eagl")
            .field("contexts", &self.contexts.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_census_matches_paper() {
        let (multi, scratch, never) = Eagl::method_census();
        assert_eq!(multi, 6);
        assert_eq!(scratch, 10);
        assert_eq!(never, 1);
        assert_eq!(EAGL_METHODS.len(), 17, "EAGL has 17 methods");
    }
}
