//! EGL error types.

use std::error::Error;
use std::fmt;

/// Errors from the simulated EGL stack, named after the EGL error codes
/// where one exists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EglError {
    /// `EGL_NOT_INITIALIZED`: `eglInitialize` has not succeeded.
    NotInitialized,
    /// `EGL_BAD_CONTEXT`: unknown context handle.
    BadContext,
    /// `EGL_BAD_SURFACE`: unknown surface handle.
    BadSurface,
    /// `EGL_BAD_ACCESS`: the Android thread rule — a context may only be
    /// made current by its creating thread or by threads whose group
    /// leader created it (§7).
    BadAccess {
        /// The thread that attempted the bind.
        caller: u64,
        /// The thread that created the context.
        creator: u64,
    },
    /// `EGL_BAD_MATCH`: the per-process connection is locked to a
    /// different GLES version (§8: "Only a single EGL connection to a
    /// single GLES API version can be made per-process").
    BadMatch {
        /// The version the connection is locked to.
        locked: cycada_gles::GlesVersion,
        /// The version requested.
        requested: cycada_gles::GlesVersion,
    },
    /// The vendor library refused a second process-wide connection.
    ConnectionExists,
    /// `EGL_BAD_PARAMETER`-style failure with detail.
    BadParameter(String),
    /// A lower layer failed.
    Lower(String),
}

impl fmt::Display for EglError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EglError::NotInitialized => write!(f, "EGL_NOT_INITIALIZED: eglInitialize not called"),
            EglError::BadContext => write!(f, "EGL_BAD_CONTEXT"),
            EglError::BadSurface => write!(f, "EGL_BAD_SURFACE"),
            EglError::BadAccess { caller, creator } => write!(
                f,
                "EGL_BAD_ACCESS: thread {caller} may not use a context created by thread {creator}"
            ),
            EglError::BadMatch { locked, requested } => write!(
                f,
                "EGL_BAD_MATCH: process connection locked to {locked}, requested {requested}"
            ),
            EglError::ConnectionExists => {
                write!(f, "vendor EGL: a process-wide GLES connection already exists")
            }
            EglError::BadParameter(msg) => write!(f, "EGL_BAD_PARAMETER: {msg}"),
            EglError::Lower(msg) => write!(f, "EGL lower-layer failure: {msg}"),
        }
    }
}

impl Error for EglError {}

impl From<cycada_kernel::KernelError> for EglError {
    fn from(e: cycada_kernel::KernelError) -> Self {
        EglError::Lower(e.to_string())
    }
}

impl From<cycada_linker::LinkerError> for EglError {
    fn from(e: cycada_linker::LinkerError) -> Self {
        EglError::Lower(e.to_string())
    }
}

impl From<cycada_gralloc::GrallocError> for EglError {
    fn from(e: cycada_gralloc::GrallocError) -> Self {
        EglError::Lower(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_egl_code_names() {
        assert!(EglError::NotInitialized.to_string().contains("EGL_NOT_INITIALIZED"));
        let e = EglError::BadAccess { caller: 2, creator: 1 };
        assert!(e.to_string().contains("EGL_BAD_ACCESS"));
    }
}
