//! The open-source EGL front (`libEGL.so`).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use cycada_gles::{EglImageSource, GlesVersion, VendorGles};
use cycada_gpu::{Image, PixelFormat};
use cycada_gralloc::{GraphicBuffer, GraphicBufferAllocator, SurfaceFlinger};
use cycada_kernel::{Kernel, Persona, SimTid, TlsKey};
use cycada_linker::DynamicLinker;
use cycada_sim::trace;

use crate::error::EglError;
use crate::loadout::{VENDOR_EGL_LIB, VENDOR_GLES_LIB};
use crate::vendor_egl::VendorEglState;
use crate::Result;

/// Handle to an EGL context.
pub type EglContextId = u32;
/// Handle to an EGL window surface.
pub type EglSurfaceId = u32;
/// Handle to an EGLImage.
pub type EglImageId = u32;
/// Identifier of an EGL-to-GLES connection. 0 is the classic process-wide
/// connection; nonzero IDs are `EGL_multi_context` replicas.
pub type McConnectionId = u64;

/// One EGL-to-GLES connection: a vendor EGL instance plus the vendor GLES
/// instance it loaded. The default connection (id 0) is made by
/// `eglInitialize`; additional ones are made by `eglReInitializeMC` from
/// DLR replicas.
struct Connection {
    gles: Arc<VendorGles>,
    vendor: Arc<VendorEglState>,
    replica: Option<cycada_linker::ReplicaId>,
}

struct ContextRecord {
    vendor_ctx: cycada_gles::ContextId,
    version: GlesVersion,
    creator: SimTid,
    connection: McConnectionId,
    surface: Option<EglSurfaceId>,
}

struct SurfaceRecord {
    front: GraphicBuffer,
    back: GraphicBuffer,
}

/// The open-source Android EGL library.
///
/// One value of this type is the library-instance state of `libEGL.so` in
/// one process. It owns the handle tables for displays/contexts/surfaces/
/// images and enforces the two Android restrictions the paper documents —
/// then provides the Cycada `EGL_multi_context` extension that legitimately
/// works around them via DLR.
pub struct AndroidEgl {
    kernel: Arc<Kernel>,
    linker: Arc<DynamicLinker>,
    flinger: Arc<SurfaceFlinger>,
    allocator: GraphicBufferAllocator,
    connections: Mutex<HashMap<McConnectionId, Connection>>,
    next_connection: AtomicU64,
    contexts: Mutex<HashMap<EglContextId, ContextRecord>>,
    surfaces: Mutex<HashMap<EglSurfaceId, SurfaceRecord>>,
    images: Mutex<HashMap<EglImageId, EglImageSource>>,
    current: Mutex<HashMap<u64, EglContextId>>,
    next_id: AtomicU32,
    mc_tls_key: OnceLock<TlsKey>,
}

impl AndroidEgl {
    /// Creates the library state (run by `libEGL.so`'s constructor).
    pub fn new(
        kernel: Arc<Kernel>,
        linker: Arc<DynamicLinker>,
        flinger: Arc<SurfaceFlinger>,
        allocator: GraphicBufferAllocator,
    ) -> Self {
        AndroidEgl {
            kernel,
            linker,
            flinger,
            allocator,
            connections: Mutex::new(HashMap::new()),
            next_connection: AtomicU64::new(1),
            contexts: Mutex::new(HashMap::new()),
            surfaces: Mutex::new(HashMap::new()),
            images: Mutex::new(HashMap::new()),
            current: Mutex::new(HashMap::new()),
            next_id: AtomicU32::new(1),
            mc_tls_key: OnceLock::new(),
        }
    }

    /// The SurfaceFlinger this EGL posts frames to.
    pub fn flinger(&self) -> &Arc<SurfaceFlinger> {
        &self.flinger
    }

    fn fresh_id(&self) -> u32 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Initialization / connections
    // ------------------------------------------------------------------

    /// `eglInitialize`: on first call, loads the vendor EGL library (and
    /// transitively the vendor GLES library) through the dynamic linker and
    /// establishes the process-wide connection.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::Lower`] if the vendor libraries are missing.
    pub fn initialize(&self, _tid: SimTid) -> Result<()> {
        let mut conns = self.connections.lock();
        if conns.contains_key(&0) {
            return Ok(()); // idempotent re-initialization
        }
        let vendor_lib = self.linker.dlopen(VENDOR_EGL_LIB)?;
        let vendor = vendor_lib
            .state::<VendorEglState>()
            .ok_or_else(|| EglError::Lower("vendor EGL has wrong state type".into()))?;
        let gles = vendor_lib
            .tree()
            .iter()
            .find(|l| l.name() == VENDOR_GLES_LIB)
            .and_then(|l| l.state::<VendorGles>())
            .ok_or_else(|| EglError::Lower("vendor GLES not in vendor EGL's tree".into()))?;
        vendor.connect();
        conns.insert(
            0,
            Connection {
                gles,
                vendor,
                replica: None,
            },
        );
        Ok(())
    }

    /// Whether `eglInitialize` has succeeded.
    pub fn is_initialized(&self) -> bool {
        self.connections.lock().contains_key(&0)
    }

    /// The connection a thread's EGL calls currently target: the thread's
    /// `EGL_multi_context` TLS slot if set, else the default connection.
    pub fn current_connection_id(&self, tid: SimTid) -> McConnectionId {
        if let Some(key) = self.mc_tls_key.get() {
            if let Ok(Some(id)) = self.kernel.tls_get(tid, *key) {
                return id;
            }
        }
        0
    }

    fn connection_gles(&self, id: McConnectionId) -> Result<Arc<VendorGles>> {
        self.connections
            .lock()
            .get(&id)
            .map(|c| c.gles.clone())
            .ok_or(EglError::NotInitialized)
    }

    /// The vendor GLES library instance a thread's calls dispatch to —
    /// used by the bridge to issue GL work for the right replica.
    pub fn gles_for_thread(&self, tid: SimTid) -> Result<Arc<VendorGles>> {
        self.connection_gles(self.current_connection_id(tid))
    }

    // ------------------------------------------------------------------
    // Contexts
    // ------------------------------------------------------------------

    /// `eglCreateContext`.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::NotInitialized`] before `eglInitialize`, or
    /// [`EglError::BadMatch`] if the connection is locked to a different
    /// GLES version (the single-version-per-process restriction).
    pub fn create_context(&self, tid: SimTid, version: GlesVersion) -> Result<EglContextId> {
        let conn_id = self.current_connection_id(tid);
        let (gles, vendor) = {
            let conns = self.connections.lock();
            let conn = conns.get(&conn_id).ok_or(EglError::NotInitialized)?;
            (conn.gles.clone(), conn.vendor.clone())
        };
        vendor.lock_version(version)?;
        let vendor_ctx = gles.create_context(version);
        let id = self.fresh_id();
        self.contexts.lock().insert(
            id,
            ContextRecord {
                vendor_ctx,
                version,
                creator: tid,
                connection: conn_id,
                surface: None,
            },
        );
        trace::bump(trace::Counter::EglContextsCreated);
        trace::instant(trace::Category::Egl, "eglCreateContext", u64::from(id));
        Ok(id)
    }

    /// `eglDestroyContext`.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadContext`] for unknown handles.
    pub fn destroy_context(&self, ctx: EglContextId) -> Result<()> {
        let record = self
            .contexts
            .lock()
            .remove(&ctx)
            .ok_or(EglError::BadContext)?;
        if let Ok(gles) = self.connection_gles(record.connection) {
            gles.destroy_context(record.vendor_ctx);
        }
        self.current.lock().retain(|_, c| *c != ctx);
        trace::bump(trace::Counter::EglContextsDestroyed);
        trace::instant(trace::Category::Egl, "eglDestroyContext", u64::from(ctx));
        Ok(())
    }

    /// The GLES version a context was created with.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadContext`] for unknown handles.
    pub fn context_version(&self, ctx: EglContextId) -> Result<GlesVersion> {
        self.contexts
            .lock()
            .get(&ctx)
            .map(|r| r.version)
            .ok_or(EglError::BadContext)
    }

    /// The connection a context belongs to.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadContext`] for unknown handles.
    pub fn context_connection(&self, ctx: EglContextId) -> Result<McConnectionId> {
        self.contexts
            .lock()
            .get(&ctx)
            .map(|r| r.connection)
            .ok_or(EglError::BadContext)
    }

    /// The vendor-level context ID behind an EGL context (used by the
    /// bridge to drive GL state directly).
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadContext`] for unknown handles.
    pub fn vendor_context(&self, ctx: EglContextId) -> Result<cycada_gles::ContextId> {
        self.contexts
            .lock()
            .get(&ctx)
            .map(|r| r.vendor_ctx)
            .ok_or(EglError::BadContext)
    }

    // ------------------------------------------------------------------
    // Surfaces
    // ------------------------------------------------------------------

    /// `eglCreateWindowSurface`: allocates a double-buffered (front/back
    /// GraphicBuffer) window surface.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::Lower`] if allocation fails.
    pub fn create_window_surface(
        &self,
        tid: SimTid,
        width: u32,
        height: u32,
    ) -> Result<EglSurfaceId> {
        let front = self
            .allocator
            .allocate(tid, width, height, PixelFormat::Rgba8888)?;
        let back = self
            .allocator
            .allocate(tid, width, height, PixelFormat::Rgba8888)?;
        let id = self.fresh_id();
        self.surfaces
            .lock()
            .insert(id, SurfaceRecord { front, back });
        trace::bump(trace::Counter::EglSurfacesCreated);
        trace::instant(trace::Category::Egl, "eglCreateWindowSurface", u64::from(id));
        Ok(id)
    }

    /// `eglDestroySurface`.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadSurface`] for unknown handles.
    pub fn destroy_surface(&self, tid: SimTid, surface: EglSurfaceId) -> Result<()> {
        let record = self
            .surfaces
            .lock()
            .remove(&surface)
            .ok_or(EglError::BadSurface)?;
        self.flinger.clear_layer(record.front.handle());
        self.flinger.clear_layer(record.back.handle());
        let _ = self.allocator.free(tid, record.front.handle());
        let _ = self.allocator.free(tid, record.back.handle());
        trace::bump(trace::Counter::EglSurfacesDestroyed);
        trace::instant(trace::Category::Egl, "eglDestroySurface", u64::from(surface));
        Ok(())
    }

    /// Assigns a SurfaceFlinger layer rectangle to a window surface: swaps
    /// of this surface compose into `rect` instead of covering the panel
    /// (the multi-app path; surfaces without a layer stay full-screen).
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadSurface`] for unknown handles.
    pub fn set_surface_layer(
        &self,
        surface: EglSurfaceId,
        rect: cycada_gpu::raster::Rect,
    ) -> Result<()> {
        let surfaces = self.surfaces.lock();
        let record = surfaces.get(&surface).ok_or(EglError::BadSurface)?;
        // Front and back trade places every swap; rect both so the layer
        // survives buffer rotation.
        self.flinger.assign_layer(record.front.handle(), rect);
        self.flinger.assign_layer(record.back.handle(), rect);
        Ok(())
    }

    /// The back (render target) buffer of a surface.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadSurface`] for unknown handles.
    pub fn surface_back_buffer(&self, surface: EglSurfaceId) -> Result<GraphicBuffer> {
        self.surfaces
            .lock()
            .get(&surface)
            .map(|s| s.back.clone())
            .ok_or(EglError::BadSurface)
    }

    // ------------------------------------------------------------------
    // MakeCurrent and SwapBuffers
    // ------------------------------------------------------------------

    /// `eglMakeCurrent`. Enforces the Android thread rule: "a GLES context
    /// created by Android thread 1 could not be used by Android thread 2
    /// unless thread 1 also happened to be the 'main' thread" (§7).
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadAccess`] on a thread-rule violation,
    /// [`EglError::BadContext`]/[`EglError::BadSurface`] for bad handles.
    pub fn make_current(
        &self,
        tid: SimTid,
        ctx: Option<EglContextId>,
        surface: Option<EglSurfaceId>,
    ) -> Result<()> {
        let Some(ctx_id) = ctx else {
            // Unbind from whatever connection the thread targets.
            if let Some(prev) = self.current.lock().remove(&tid.as_u64()) {
                if let Some(record) = self.contexts.lock().get(&prev) {
                    if let Ok(gles) = self.connection_gles(record.connection) {
                        gles.make_current(tid, None, None);
                    }
                }
            }
            return Ok(());
        };

        let (vendor_ctx, creator, connection) = {
            let contexts = self.contexts.lock();
            let record = contexts.get(&ctx_id).ok_or(EglError::BadContext)?;
            (record.vendor_ctx, record.creator, record.connection)
        };

        // The Android thread rule.
        let group = self.kernel.thread_group(tid)?;
        if creator != tid && creator != group.leader {
            return Err(EglError::BadAccess {
                caller: tid.as_u64(),
                creator: creator.as_u64(),
            });
        }

        let back_image: Option<Image> = match surface {
            Some(s) => Some(self.surface_back_buffer(s)?.image().clone()),
            None => None,
        };
        let gles = self.connection_gles(connection)?;
        if !gles.make_current(tid, Some(vendor_ctx), back_image) {
            return Err(EglError::BadContext);
        }
        if let Some(record) = self.contexts.lock().get_mut(&ctx_id) {
            record.surface = surface;
        }
        self.current.lock().insert(tid.as_u64(), ctx_id);
        Ok(())
    }

    /// Binds a context (and optional surface) on `tid` **without** the
    /// Android thread rule. This entry is not part of the public Android
    /// API: it is what Cycada's `libEGLbridge` uses after thread
    /// impersonation has established the right TLS, operating below the
    /// app-facing checks.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadContext`]/[`EglError::BadSurface`] for bad
    /// handles.
    pub fn make_current_unchecked(
        &self,
        tid: SimTid,
        ctx: EglContextId,
        surface: Option<EglSurfaceId>,
    ) -> Result<()> {
        let (vendor_ctx, connection) = {
            let contexts = self.contexts.lock();
            let record = contexts.get(&ctx).ok_or(EglError::BadContext)?;
            (record.vendor_ctx, record.connection)
        };
        let back_image: Option<Image> = match surface {
            Some(s) => Some(self.surface_back_buffer(s)?.image().clone()),
            None => None,
        };
        let gles = self.connection_gles(connection)?;
        if !gles.make_current(tid, Some(vendor_ctx), back_image) {
            return Err(EglError::BadContext);
        }
        if let Some(record) = self.contexts.lock().get_mut(&ctx) {
            if surface.is_some() {
                record.surface = surface;
            }
        }
        self.current.lock().insert(tid.as_u64(), ctx);
        Ok(())
    }

    /// The EGL context current on a thread.
    pub fn current_context(&self, tid: SimTid) -> Option<EglContextId> {
        self.current.lock().get(&tid.as_u64()).copied()
    }

    /// `eglSwapBuffers`: posts the surface's back buffer to SurfaceFlinger
    /// and swaps front/back, rebinding the new back buffer as the current
    /// context's default framebuffer.
    ///
    /// Damage travels implicitly: the back buffer's journal already
    /// holds the rectangles GLES draws and blits noted into it, and the
    /// compositor samples that journal at present time (DESIGN.md §5g).
    /// Note front/back alternation means successive posts come from
    /// alternating allocations, so the tile memo keys differ frame to
    /// frame and double-buffered surfaces recompose their layer; the
    /// win for them is occlusion culling, not clean-skipping.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadSurface`] for unknown handles.
    pub fn swap_buffers(&self, tid: SimTid, surface: EglSurfaceId) -> Result<()> {
        let _tspan = trace::span(trace::Category::Egl, "eglSwapBuffers");
        let new_back = {
            let mut surfaces = self.surfaces.lock();
            let record = surfaces.get_mut(&surface).ok_or(EglError::BadSurface)?;
            self.flinger.post_buffer(&record.back);
            std::mem::swap(&mut record.front, &mut record.back);
            record.back.clone()
        };
        // Rebind the fresh back buffer for the thread's current context.
        if let Some(ctx_id) = self.current_context(tid) {
            let contexts = self.contexts.lock();
            if let Some(record) = contexts.get(&ctx_id) {
                if record.surface == Some(surface) {
                    if let Ok(gles) = self.connection_gles(record.connection) {
                        if let Some(handle) = gles.context(record.vendor_ctx) {
                            handle
                                .lock()
                                .set_default_framebuffer(Some(new_back.image().clone()));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // EGLImages
    // ------------------------------------------------------------------

    /// `eglCreateImageKHR` from a GraphicBuffer: creates an image whose
    /// lifetime holds a GLES association on the buffer.
    pub fn create_image(&self, buffer: &GraphicBuffer) -> EglImageId {
        let source = EglImageSource {
            image: buffer.image().clone(),
            guard: Arc::new(buffer.associate_gles()),
        };
        let id = self.fresh_id();
        self.images.lock().insert(id, source);
        id
    }

    /// Resolves an EGLImage for binding via `glEGLImageTargetTexture2DOES`.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadParameter`] for unknown handles.
    pub fn image_source(&self, image: EglImageId) -> Result<EglImageSource> {
        self.images
            .lock()
            .get(&image)
            .cloned()
            .ok_or_else(|| EglError::BadParameter(format!("unknown EGLImage {image}")))
    }

    /// `eglDestroyImageKHR`: drops the image's own association (textures
    /// still holding the source keep theirs until rebound).
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadParameter`] for unknown handles.
    pub fn destroy_image(&self, image: EglImageId) -> Result<()> {
        self.images
            .lock()
            .remove(&image)
            .map(|_| ())
            .ok_or_else(|| EglError::BadParameter(format!("unknown EGLImage {image}")))
    }

    // ------------------------------------------------------------------
    // EGL_multi_context (Figure 4)
    // ------------------------------------------------------------------

    fn mc_key(&self) -> TlsKey {
        *self
            .mc_tls_key
            .get_or_init(|| self.kernel.tls_key_create(Persona::Android))
    }

    /// `eglReInitializeMC`: creates a DLR replica of the vendor EGL/GLES
    /// libraries rooted at `root_lib`, establishes a fresh connection on
    /// it, and selects it for the calling thread (via TLS).
    ///
    /// # Errors
    ///
    /// Returns [`EglError::Lower`] if the replica cannot be built or lacks
    /// the vendor libraries.
    pub fn egl_reinitialize_mc(&self, tid: SimTid, root_lib: &str) -> Result<McConnectionId> {
        let replica = self.linker.dlforce(root_lib)?;
        let vendor = replica
            .dlopen(VENDOR_EGL_LIB)
            .ok()
            .and_then(|l| l.state::<VendorEglState>())
            .ok_or_else(|| {
                EglError::Lower(format!("{root_lib} replica lacks {VENDOR_EGL_LIB}"))
            })?;
        let gles = replica
            .dlopen(VENDOR_GLES_LIB)
            .ok()
            .and_then(|l| l.state::<VendorGles>())
            .ok_or_else(|| {
                EglError::Lower(format!("{root_lib} replica lacks {VENDOR_GLES_LIB}"))
            })?;
        vendor.connect();
        let id = self.next_connection.fetch_add(1, Ordering::Relaxed);
        self.connections.lock().insert(
            id,
            Connection {
                gles,
                vendor,
                replica: Some(replica.id()),
            },
        );
        let key = self.mc_key();
        self.kernel.tls_set(tid, key, id)?;
        Ok(id)
    }

    /// `eglSwitchMC`: selects the replica (connection) containing
    /// `new_ctx` for the calling thread and makes `new_ctx` current.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadContext`] for unknown contexts.
    pub fn egl_switch_mc(&self, tid: SimTid, new_ctx: EglContextId) -> Result<()> {
        let connection = self.context_connection(new_ctx)?;
        let key = self.mc_key();
        self.kernel.tls_set(tid, key, connection)?;
        let (vendor_ctx, surface) = {
            let contexts = self.contexts.lock();
            let record = contexts.get(&new_ctx).ok_or(EglError::BadContext)?;
            (record.vendor_ctx, record.surface)
        };
        let back_image = match surface {
            Some(s) => Some(self.surface_back_buffer(s)?.image().clone()),
            None => None,
        };
        let gles = self.connection_gles(connection)?;
        gles.make_current(tid, Some(vendor_ctx), back_image);
        self.current.lock().insert(tid.as_u64(), new_ctx);
        Ok(())
    }

    /// `eglGetTLSMC`: reads the calling thread's connection TLS values so
    /// they can be migrated to another thread (used with thread
    /// impersonation, §8.1.1).
    pub fn egl_get_tls_mc(&self, tid: SimTid) -> Result<Vec<Option<u64>>> {
        let key = self.mc_key();
        Ok(vec![self.kernel.tls_get(tid, key)?])
    }

    /// `eglSetTLSMC`: writes connection TLS values into the calling thread.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadParameter`] if the value vector is the wrong
    /// shape.
    pub fn egl_set_tls_mc(&self, tid: SimTid, values: &[Option<u64>]) -> Result<()> {
        if values.len() != 1 {
            return Err(EglError::BadParameter("expected 1 TLS value".into()));
        }
        let key = self.mc_key();
        match values[0] {
            Some(v) => self.kernel.tls_set(tid, key, v)?,
            None => self.kernel.tls_set_raw(tid, Persona::Android, key.slot(), None)?,
        }
        Ok(())
    }

    /// The TLS slot the `EGL_multi_context` extension stores connections
    /// in (exposed so thread impersonation can include it in migrations).
    pub fn mc_tls_slot(&self) -> usize {
        self.mc_key().slot()
    }

    /// Number of live connections (1 + replicas).
    pub fn connection_count(&self) -> usize {
        self.connections.lock().len()
    }

    /// Tears down an MC connection and unloads its replica.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::BadParameter`] for id 0 or unknown connections.
    pub fn release_mc_connection(&self, id: McConnectionId) -> Result<()> {
        if id == 0 {
            return Err(EglError::BadParameter(
                "cannot release the default connection".into(),
            ));
        }
        let conn = self
            .connections
            .lock()
            .remove(&id)
            .ok_or_else(|| EglError::BadParameter(format!("unknown connection {id}")))?;
        if let Some(replica) = conn.replica {
            self.linker.unload_replica(replica);
        }
        Ok(())
    }
}

impl fmt::Debug for AndroidEgl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AndroidEgl")
            .field("initialized", &self.is_initialized())
            .field("connections", &self.connection_count())
            .field("contexts", &self.contexts.lock().len())
            .field("surfaces", &self.surfaces.lock().len())
            .finish()
    }
}
