//! Simulated Android EGL.
//!
//! "Android's EGL implementation ... can be broken into two pieces: an open
//! source library exporting all the standardized EGL functions, and a
//! vendor-provided, device-specific EGL implementation" (§8.1). This crate
//! provides both:
//!
//! * [`VendorEglState`] — the proprietary vendor EGL's per-instance state,
//!   enforcing the **single EGL-to-GLES connection per process** rule in a
//!   "library-static global variable";
//! * [`AndroidEgl`] — the open-source front (`libEGL.so`): displays,
//!   contexts, double-buffered window surfaces (over GraphicBuffers and
//!   SurfaceFlinger), EGLImages, the **thread-group `MakeCurrent`
//!   restriction** (§7), the **one GLES version per connection**
//!   restriction (§8), and Cycada's custom
//!   [`EGL_multi_context`](AndroidEgl::egl_reinitialize_mc) extension that
//!   defeats both restrictions using the DLR-enabled linker;
//! * [`loadout`] — `LibraryImage` definitions wiring the vendor library
//!   chain (`libEGL_tegra.so → libGLESv2_tegra.so → libnvrm.so → libnvos.so`)
//!   into the simulated linker.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod egl;
mod error;
pub mod loadout;
mod vendor_egl;

pub use egl::{AndroidEgl, EglContextId, EglImageId, EglSurfaceId, McConnectionId};
pub use error::EglError;
pub use vendor_egl::VendorEglState;

/// Convenient result alias for EGL operations.
pub type Result<T> = std::result::Result<T, EglError>;
