//! Library images for the Android graphics stack.
//!
//! Registers the vendor dependency chain the paper names (§8.1): "the
//! NVIDIA graphics support library, `libGLESv2_tegra.so` requires the
//! `libnvrm.so` library which requires the `libnvos.so` library", plus the
//! vendor EGL, the shared libc, and the open-source `libEGL.so` front.

use std::sync::Arc;

use cycada_gles::{ApiFlavor, VendorGles};
use cycada_gpu::GpuDevice;
use cycada_gralloc::{GraphicBufferAllocator, GrallocDriver, SurfaceFlinger};
use cycada_kernel::Kernel;
use cycada_linker::{DynamicLinker, LibraryImage};

use crate::egl::AndroidEgl;
use crate::vendor_egl::VendorEglState;

/// The shared C library (never replicated).
pub const LIBC: &str = "libc.so";
/// NVIDIA OS-services library (bottom of the vendor chain).
pub const LIBNVOS: &str = "libnvos.so";
/// NVIDIA resource-manager library.
pub const LIBNVRM: &str = "libnvrm.so";
/// The vendor GLES library.
pub const VENDOR_GLES_LIB: &str = "libGLESv2_tegra.so";
/// The vendor EGL library.
pub const VENDOR_EGL_LIB: &str = "libEGL_tegra.so";
/// The open-source EGL front.
pub const LIBEGL: &str = "libEGL.so";

/// Registers the Android graphics library images with `linker`.
///
/// Constructors capture the GPU device (vendor GLES) and the kernel,
/// flinger and allocator (open-source EGL front), so every fresh instance
/// — including DLR replicas — builds real per-instance state.
pub fn register_android_graphics(
    linker: &Arc<DynamicLinker>,
    kernel: &Arc<Kernel>,
    gpu: &Arc<GpuDevice>,
    flinger: &Arc<SurfaceFlinger>,
    gralloc: &Arc<GrallocDriver>,
) {
    linker.register_image(
        LibraryImage::builder(LIBC)
            .symbols(["malloc", "free", "pthread_key_create", "pthread_key_delete"])
            .non_replicable()
            .build(),
    );
    linker.register_image(
        LibraryImage::builder(LIBNVOS)
            .deps([LIBC])
            .symbols(["NvOsAlloc", "NvOsFree"])
            .build(),
    );
    linker.register_image(
        LibraryImage::builder(LIBNVRM)
            .deps([LIBNVOS])
            .symbols(["NvRmOpen", "NvRmClose"])
            .build(),
    );
    let gpu_for_gles = gpu.clone();
    // The vendor GLES library exports the full Android GLES surface:
    // every standard v1/v2 function plus the Tegra extension functions.
    let registry = cycada_gles::GlesRegistry::global();
    let mut gles_symbols: Vec<String> = cycada_gles::registry::V1_STANDARD
        .iter()
        .chain(cycada_gles::registry::V2_STANDARD.iter())
        .map(|&s| s.to_owned())
        .collect();
    gles_symbols.sort_unstable();
    gles_symbols.dedup();
    for ext in registry.platform_extensions(ApiFlavor::Android) {
        gles_symbols.extend(ext.functions.iter().cloned());
    }
    linker.register_image(
        LibraryImage::builder(VENDOR_GLES_LIB)
            .deps([LIBNVRM])
            .symbols(gles_symbols)
            .constructor(move || {
                Arc::new(VendorGles::new(ApiFlavor::Android, gpu_for_gles.clone()))
            })
            .build(),
    );
    linker.register_image(
        LibraryImage::builder(VENDOR_EGL_LIB)
            .deps([VENDOR_GLES_LIB])
            .symbols(["eglInitialize", "eglCreateContext"])
            .constructor(|| Arc::new(VendorEglState::new()))
            .build(),
    );
    let (k, l, f) = (kernel.clone(), Arc::downgrade(linker), flinger.clone());
    let g = gralloc.clone();
    linker.register_image(
        LibraryImage::builder(LIBEGL)
            .deps([LIBC])
            .symbols([
                "eglInitialize",
                "eglCreateContext",
                "eglMakeCurrent",
                "eglSwapBuffers",
                "eglReInitializeMC",
                "eglSwitchMC",
                "eglGetTLSMC",
                "eglSetTLSMC",
            ])
            .non_replicable() // the front is shared; only vendor libs replicate
            .constructor(move || {
                let linker = l.upgrade().expect("linker alive during library load");
                Arc::new(AndroidEgl::new(
                    k.clone(),
                    linker,
                    f.clone(),
                    GraphicBufferAllocator::new(k.clone(), g.clone()),
                ))
            })
            .build(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycada_gles::GlesVersion;
    use cycada_kernel::Persona;
    use cycada_sim::{Platform, VirtualClock};

    /// Builds a full simulated Android graphics stack and returns the
    /// pieces tests need.
    pub(crate) fn android_stack() -> (Arc<Kernel>, Arc<DynamicLinker>, Arc<AndroidEgl>) {
        let kernel = Arc::new(Kernel::for_platform(Platform::CycadaAndroid));
        let clock: VirtualClock = kernel.clock().clone();
        let gpu = Arc::new(GpuDevice::new(clock.clone(), kernel.profile().gpu.clone()));
        let flinger = Arc::new(SurfaceFlinger::new(kernel.display().clone(), gpu.clone()));
        let gralloc = GrallocDriver::new();
        kernel.register_driver(gralloc.clone());
        let linker = Arc::new(DynamicLinker::new(clock));
        register_android_graphics(&linker, &kernel, &gpu, &flinger, &gralloc);
        let egl = linker
            .dlopen(LIBEGL)
            .unwrap()
            .state::<AndroidEgl>()
            .unwrap();
        (kernel, linker, egl)
    }

    #[test]
    fn initialize_loads_vendor_chain() {
        let (kernel, linker, egl) = android_stack();
        let tid = kernel.spawn_process_main(Persona::Android).unwrap();
        assert!(!egl.is_initialized());
        egl.initialize(tid).unwrap();
        assert!(egl.is_initialized());
        // The whole NVIDIA chain is now loaded, once each.
        for lib in [VENDOR_EGL_LIB, VENDOR_GLES_LIB, LIBNVRM, LIBNVOS] {
            assert!(linker.is_loaded(lib), "{lib} should be loaded");
            assert_eq!(linker.constructor_runs(lib), 1);
        }
        // Idempotent.
        egl.initialize(tid).unwrap();
        assert_eq!(linker.constructor_runs(VENDOR_GLES_LIB), 1);
    }

    #[test]
    fn context_and_surface_render_to_display() {
        let (kernel, _linker, egl) = android_stack();
        let tid = kernel.spawn_process_main(Persona::Android).unwrap();
        egl.initialize(tid).unwrap();
        let ctx = egl.create_context(tid, GlesVersion::V1).unwrap();
        let surface = egl.create_window_surface(tid, 64, 64).unwrap();
        egl.make_current(tid, Some(ctx), Some(surface)).unwrap();

        let gles = egl.gles_for_thread(tid).unwrap();
        gles.with_current(tid, |c| {
            c.clear_color(1.0, 0.0, 0.0, 1.0);
            c.clear(true, false);
        });
        let before = kernel.display().frames_presented();
        egl.swap_buffers(tid, surface).unwrap();
        assert_eq!(kernel.display().frames_presented(), before + 1);
        assert_eq!(kernel.display().pixel(10, 10), [255, 0, 0, 255]);
    }

    #[test]
    fn swap_buffers_alternates_buffers() {
        let (kernel, _linker, egl) = android_stack();
        let tid = kernel.spawn_process_main(Persona::Android).unwrap();
        egl.initialize(tid).unwrap();
        let ctx = egl.create_context(tid, GlesVersion::V1).unwrap();
        let surface = egl.create_window_surface(tid, 8, 8).unwrap();
        egl.make_current(tid, Some(ctx), Some(surface)).unwrap();
        let first_back = egl.surface_back_buffer(surface).unwrap();
        egl.swap_buffers(tid, surface).unwrap();
        let second_back = egl.surface_back_buffer(surface).unwrap();
        assert!(!first_back.same_buffer(&second_back));
        egl.swap_buffers(tid, surface).unwrap();
        let third_back = egl.surface_back_buffer(surface).unwrap();
        assert!(first_back.same_buffer(&third_back), "double buffering");
    }

    #[test]
    fn version_lock_blocks_second_version() {
        let (kernel, _linker, egl) = android_stack();
        let tid = kernel.spawn_process_main(Persona::Android).unwrap();
        egl.initialize(tid).unwrap();
        egl.create_context(tid, GlesVersion::V2).unwrap();
        // The paper's §8 failure: same process wants a v1 context too.
        assert!(matches!(
            egl.create_context(tid, GlesVersion::V1),
            Err(crate::EglError::BadMatch { .. })
        ));
    }

    #[test]
    fn thread_rule_enforced_and_leader_exempt() {
        let (kernel, _linker, egl) = android_stack();
        let main = kernel.spawn_process_main(Persona::Android).unwrap();
        let worker = kernel.spawn_thread(main, Persona::Android).unwrap();
        let worker2 = kernel.spawn_thread(main, Persona::Android).unwrap();
        egl.initialize(main).unwrap();

        // Context created by the main (group leader) thread: usable by all.
        let main_ctx = egl.create_context(main, GlesVersion::V2).unwrap();
        egl.make_current(worker, Some(main_ctx), None).unwrap();

        // Context created by a worker: only that worker may use it.
        let worker_ctx = egl.create_context(worker, GlesVersion::V2).unwrap();
        egl.make_current(worker, Some(worker_ctx), None).unwrap();
        assert!(matches!(
            egl.make_current(worker2, Some(worker_ctx), None),
            Err(crate::EglError::BadAccess { .. })
        ));
        assert!(matches!(
            egl.make_current(main, Some(worker_ctx), None),
            Err(crate::EglError::BadAccess { .. })
        ));
    }

    #[test]
    fn multi_context_extension_defeats_version_lock() {
        let (kernel, linker, egl) = android_stack();
        let tid = kernel.spawn_process_main(Persona::Android).unwrap();
        egl.initialize(tid).unwrap();
        let v2 = egl.create_context(tid, GlesVersion::V2).unwrap();

        // eglReInitializeMC forges a fresh replica connection...
        let conn = egl.egl_reinitialize_mc(tid, VENDOR_EGL_LIB).unwrap();
        assert_eq!(egl.current_connection_id(tid), conn);
        assert_eq!(egl.connection_count(), 2);
        assert_eq!(linker.constructor_runs(VENDOR_GLES_LIB), 2);
        // ...whose fresh version lock admits a v1 context in the same
        // process — the §8 scenario (game v1 + WebKit v2).
        let v1 = egl.create_context(tid, GlesVersion::V1).unwrap();
        assert_eq!(egl.context_version(v1).unwrap(), GlesVersion::V1);
        assert_eq!(egl.context_connection(v1).unwrap(), conn);
        assert_eq!(egl.context_connection(v2).unwrap(), 0);

        // eglSwitchMC flips the thread between connections.
        egl.egl_switch_mc(tid, v2).unwrap();
        assert_eq!(egl.current_connection_id(tid), 0);
        egl.egl_switch_mc(tid, v1).unwrap();
        assert_eq!(egl.current_connection_id(tid), conn);
    }

    #[test]
    fn mc_tls_values_migrate_between_threads() {
        let (kernel, _linker, egl) = android_stack();
        let main = kernel.spawn_process_main(Persona::Android).unwrap();
        let worker = kernel.spawn_thread(main, Persona::Android).unwrap();
        egl.initialize(main).unwrap();
        let conn = egl.egl_reinitialize_mc(main, VENDOR_EGL_LIB).unwrap();

        // The worker starts on the default connection.
        assert_eq!(egl.current_connection_id(worker), 0);
        // eglGetTLSMC / eglSetTLSMC copy the connection selection.
        let vals = egl.egl_get_tls_mc(main).unwrap();
        egl.egl_set_tls_mc(worker, &vals).unwrap();
        assert_eq!(egl.current_connection_id(worker), conn);
        // And clearing works.
        egl.egl_set_tls_mc(worker, &[None]).unwrap();
        assert_eq!(egl.current_connection_id(worker), 0);
    }

    #[test]
    fn release_mc_connection_unloads_replica() {
        let (kernel, linker, egl) = android_stack();
        let tid = kernel.spawn_process_main(Persona::Android).unwrap();
        egl.initialize(tid).unwrap();
        let conn = egl.egl_reinitialize_mc(tid, VENDOR_EGL_LIB).unwrap();
        assert_eq!(linker.replica_count(), 1);
        egl.release_mc_connection(conn).unwrap();
        assert_eq!(linker.replica_count(), 0);
        assert!(egl.release_mc_connection(conn).is_err());
        assert!(egl.release_mc_connection(0).is_err());
    }

    #[test]
    fn egl_image_association_lifecycle() {
        let (kernel, _linker, egl) = android_stack();
        let tid = kernel.spawn_process_main(Persona::Android).unwrap();
        egl.initialize(tid).unwrap();
        let ctx = egl.create_context(tid, GlesVersion::V2).unwrap();
        egl.make_current(tid, Some(ctx), None).unwrap();

        let buffer =
            cycada_gralloc::GraphicBuffer::new(77, 8, 8, cycada_gpu::PixelFormat::Rgba8888)
                .unwrap();
        let image = egl.create_image(&buffer);
        assert_eq!(buffer.gles_association_count(), 1);
        assert!(buffer.lock_cpu().is_err());

        // Bind to a texture: the texture holds its own clone of the source.
        let gles = egl.gles_for_thread(tid).unwrap();
        let source = egl.image_source(image).unwrap();
        let tex = gles.with_current(tid, |c| {
            let t = c.gen_textures(1)[0];
            c.bind_texture(t);
            c.egl_image_target_texture(source);
            t
        });
        egl.destroy_image(image).unwrap();
        // The texture still pins the association.
        assert_eq!(buffer.gles_association_count(), 1);
        // Rebinding the texture to a 1x1 buffer releases it (§6.2 dance).
        gles.with_current(tid, |c| {
            c.bind_texture(tex);
            c.tex_image_2d(1, 1, cycada_gles::TexFormat::Rgba, Some(&[0, 0, 0, 255]));
        });
        assert_eq!(buffer.gles_association_count(), 0);
        buffer.lock_cpu().unwrap();
    }

    #[test]
    fn uninitialized_operations_fail() {
        let (kernel, _linker, egl) = android_stack();
        let tid = kernel.spawn_process_main(Persona::Android).unwrap();
        assert!(matches!(
            egl.create_context(tid, GlesVersion::V2),
            Err(crate::EglError::NotInitialized)
        ));
    }

    #[test]
    fn bad_handles_rejected() {
        let (kernel, _linker, egl) = android_stack();
        let tid = kernel.spawn_process_main(Persona::Android).unwrap();
        egl.initialize(tid).unwrap();
        assert!(matches!(
            egl.make_current(tid, Some(999), None),
            Err(crate::EglError::BadContext)
        ));
        assert!(matches!(
            egl.swap_buffers(tid, 999),
            Err(crate::EglError::BadSurface)
        ));
        assert!(egl.destroy_context(999).is_err());
        assert!(egl.destroy_surface(tid, 999).is_err());
        assert!(egl.image_source(999).is_err());
    }
}
