//! The vendor (device-specific, proprietary) EGL library state.
//!
//! The real `libEGL_tegra.so` keeps its EGL-to-GLES connection "in a
//! library-static global variable" and assumes "a single, process-wide EGL
//! connection" (§8.1.1). One [`VendorEglState`] value is one loaded
//! instance's statics — DLR replicas get a fresh one, which is exactly how
//! Cycada bypasses the singleton restriction.

use std::fmt;

use parking_lot::Mutex;

use cycada_gles::GlesVersion;

use crate::error::EglError;
use crate::Result;

#[derive(Debug, Default)]
struct ConnectionStatics {
    /// Whether the process-wide connection has been made.
    connected: bool,
    /// The GLES version the connection is locked to (set by the first
    /// context creation).
    locked_version: Option<GlesVersion>,
}

/// Per-instance state of the vendor EGL library.
pub struct VendorEglState {
    statics: Mutex<ConnectionStatics>,
}

impl VendorEglState {
    /// Fresh library statics (run by the library constructor).
    pub fn new() -> Self {
        VendorEglState {
            statics: Mutex::new(ConnectionStatics::default()),
        }
    }

    /// Establishes the process-wide EGL-to-GLES connection. Idempotent for
    /// the same instance (re-initialization), but the restriction the
    /// paper calls "seemingly arbitrary, but enforced by both vendor and
    /// open source libraries" lives here: one connection per instance.
    pub fn connect(&self) {
        self.statics.lock().connected = true;
    }

    /// Whether this instance has a live connection.
    pub fn is_connected(&self) -> bool {
        self.statics.lock().connected
    }

    /// Validates a context creation against the instance's version lock:
    /// the first context locks the connection's GLES version; any later
    /// request for a different version is refused.
    ///
    /// # Errors
    ///
    /// Returns [`EglError::NotInitialized`] before [`VendorEglState::connect`],
    /// or [`EglError::BadMatch`] on a version conflict.
    pub fn lock_version(&self, requested: GlesVersion) -> Result<()> {
        let mut s = self.statics.lock();
        if !s.connected {
            return Err(EglError::NotInitialized);
        }
        match s.locked_version {
            None => {
                s.locked_version = Some(requested);
                Ok(())
            }
            Some(locked) if locked == requested => Ok(()),
            Some(locked) => Err(EglError::BadMatch { locked, requested }),
        }
    }

    /// The version the connection is locked to, if any context exists.
    pub fn locked_version(&self) -> Option<GlesVersion> {
        self.statics.lock().locked_version
    }
}

impl Default for VendorEglState {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for VendorEglState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.statics.lock();
        f.debug_struct("VendorEglState")
            .field("connected", &s.connected)
            .field("locked_version", &s.locked_version)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_lock_enforced_per_instance() {
        let v = VendorEglState::new();
        assert!(matches!(
            v.lock_version(GlesVersion::V2),
            Err(EglError::NotInitialized)
        ));
        v.connect();
        assert!(v.is_connected());
        v.lock_version(GlesVersion::V2).unwrap();
        v.lock_version(GlesVersion::V2).unwrap();
        assert_eq!(v.locked_version(), Some(GlesVersion::V2));
        // The paper's §8 scenario: a v1 game context after WebKit's v2.
        assert!(matches!(
            v.lock_version(GlesVersion::V1),
            Err(EglError::BadMatch { .. })
        ));
    }

    #[test]
    fn fresh_instances_are_unlocked() {
        let a = VendorEglState::new();
        a.connect();
        a.lock_version(GlesVersion::V2).unwrap();
        // A DLR replica's fresh statics carry no lock.
        let b = VendorEglState::new();
        b.connect();
        b.lock_version(GlesVersion::V1).unwrap();
    }
}
