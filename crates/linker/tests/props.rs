//! Property-based tests for the DLR-enabled dynamic linker.

use std::sync::Arc;

use proptest::prelude::*;

use cycada_linker::{DynamicLinker, LibraryImage};
use cycada_sim::VirtualClock;

/// Builds a linear dependency chain `lib0 <- lib1 <- ... <- libN`.
fn chain_linker(depth: usize) -> DynamicLinker {
    let linker = DynamicLinker::new(VirtualClock::new());
    for i in 0..depth {
        let mut builder = LibraryImage::builder(format!("lib{i}.so"))
            .symbols([format!("fn{i}")])
            .constructor(move || Arc::new(i));
        if i > 0 {
            builder = builder.deps([format!("lib{}.so", i - 1)]);
        }
        linker.register_image(builder.build());
    }
    linker
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dlopen_runs_each_constructor_once(depth in 1usize..12) {
        let linker = chain_linker(depth);
        let top = format!("lib{}.so", depth - 1);
        linker.dlopen(&top).unwrap();
        linker.dlopen(&top).unwrap();
        for i in 0..depth {
            prop_assert_eq!(linker.constructor_runs(&format!("lib{i}.so")), 1);
        }
    }

    #[test]
    fn dlforce_runs_every_constructor_once_more(depth in 1usize..10, replicas in 1usize..4) {
        let linker = chain_linker(depth);
        let top = format!("lib{}.so", depth - 1);
        linker.dlopen(&top).unwrap();
        for _ in 0..replicas {
            linker.dlforce(&top).unwrap();
        }
        for i in 0..depth {
            prop_assert_eq!(
                linker.constructor_runs(&format!("lib{i}.so")),
                1 + replicas as u64,
                "lib{}",
                i
            );
        }
        prop_assert_eq!(linker.replica_count(), replicas);
    }

    #[test]
    fn replicas_have_globally_unique_instances_and_addresses(depth in 1usize..8) {
        let linker = chain_linker(depth);
        let top = format!("lib{}.so", depth - 1);
        let shared = linker.dlopen(&top).unwrap();
        let r1 = linker.dlforce(&top).unwrap();
        let r2 = linker.dlforce(&top).unwrap();

        let mut instances = std::collections::HashSet::new();
        let mut bases = std::collections::HashSet::new();
        for tree_root in [&shared, r1.root(), r2.root()] {
            for lib in tree_root.tree() {
                prop_assert!(instances.insert(lib.instance_id()), "duplicate instance");
                prop_assert!(bases.insert(lib.base_va()), "duplicate base address");
            }
        }
    }

    #[test]
    fn symbols_resolve_through_the_whole_chain(depth in 1usize..12) {
        let linker = chain_linker(depth);
        let top = linker.dlopen(&format!("lib{}.so", depth - 1)).unwrap();
        for i in 0..depth {
            let sym = top.symbol(&format!("fn{i}"));
            prop_assert!(sym.is_some(), "fn{i} should resolve transitively");
        }
        prop_assert!(top.symbol("missing").is_none());
    }

    #[test]
    fn replica_symbol_addresses_differ_from_shared(depth in 1usize..8) {
        let linker = chain_linker(depth);
        let top_name = format!("lib{}.so", depth - 1);
        let shared = linker.dlopen(&top_name).unwrap();
        let replica = linker.dlforce(&top_name).unwrap();
        for i in 0..depth {
            let name = format!("fn{i}");
            let a = shared.symbol(&name).unwrap();
            let b = replica.dlsym(&name).unwrap();
            prop_assert_ne!(a.va, b.va, "{} must relocate", name);
        }
    }

    #[test]
    fn dlclose_unloads_at_zero_refs(opens in 1usize..8) {
        let linker = chain_linker(1);
        for _ in 0..opens {
            linker.dlopen("lib0.so").unwrap();
        }
        for i in 0..opens {
            let unloaded = linker.dlclose("lib0.so");
            prop_assert_eq!(unloaded, i == opens - 1);
        }
        prop_assert!(!linker.is_loaded("lib0.so"));
    }
}
