//! The linker proper: `dlopen`/`dlsym`/`dlclose` plus DLR's `dlforce`.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use cycada_sim::{trace, Nanos, VirtualClock};

use crate::error::LinkerError;
use crate::image::LibraryImage;
use crate::loaded::{InstanceId, LoadedLibrary, SymbolAddr};
use crate::Result;

/// Cost of mapping + relocating + running constructors for one fresh
/// library instance.
const LOAD_FRESH_NS: Nanos = 120_000;
/// Cost of `dlopen` returning an already loaded instance.
const OPEN_CACHED_NS: Nanos = 300;
/// Cost of a `dlsym` hash lookup.
const DLSYM_NS: Nanos = 200;

/// Identifier of a replica created by [`DynamicLinker::dlforce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaId(u64);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "replica#{}", self.0)
    }
}

/// An isolated library namespace created by `dlforce`: the replica root and
/// every (replicable) dependency, freshly instanced.
///
/// "The linker keeps track of each replica, and the same `dlforce` \[handle\]
/// can be used to modify the behavior of other linker functions such as
/// `dlsym` and `dlopen` to search only those libraries loaded from the given
/// `dlforce` handle" (§8.1).
#[derive(Clone)]
pub struct Replica {
    id: ReplicaId,
    root: Arc<LoadedLibrary>,
    libs: HashMap<String, Arc<LoadedLibrary>>,
}

impl Replica {
    /// The replica's identity.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The root library instance the replica was forced from.
    pub fn root(&self) -> &Arc<LoadedLibrary> {
        &self.root
    }

    /// Namespace-scoped `dlopen`: returns the replica's instance of `name`.
    ///
    /// # Errors
    ///
    /// Returns [`LinkerError::LibraryNotFound`] if `name` is not part of
    /// this replica's tree.
    pub fn dlopen(&self, name: &str) -> Result<Arc<LoadedLibrary>> {
        trace::bump(trace::Counter::NamespacedDlopens);
        trace::instant(trace::Category::Linker, "replica_dlopen", self.id.0);
        self.libs
            .get(name)
            .cloned()
            .ok_or_else(|| LinkerError::LibraryNotFound(name.to_owned()))
    }

    /// Namespace-scoped `dlsym`: searches only this replica's tree.
    ///
    /// # Errors
    ///
    /// Returns [`LinkerError::SymbolNotFound`] if no library in the replica
    /// exports `symbol`.
    pub fn dlsym(&self, symbol: &str) -> Result<SymbolAddr> {
        trace::bump(trace::Counter::NamespacedDlsyms);
        trace::instant(trace::Category::Linker, "replica_dlsym", self.id.0);
        self.root
            .symbol(symbol)
            .ok_or_else(|| LinkerError::SymbolNotFound {
                library: self.root.name().to_owned(),
                symbol: symbol.to_owned(),
            })
    }

    /// Names of all libraries in this replica's namespace.
    pub fn library_names(&self) -> Vec<&str> {
        self.libs.keys().map(String::as_str).collect()
    }
}

impl fmt::Debug for Replica {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("root", &self.root.name())
            .field("libs", &self.libs.len())
            .finish()
    }
}

#[derive(Default)]
struct DefaultNamespace {
    /// name -> (instance, dlopen refcount)
    loaded: HashMap<String, (Arc<LoadedLibrary>, u64)>,
}

/// The namespace a recursive load resolves and caches instances in.
enum LoadCache<'a> {
    /// The process-wide default namespace (ordinary `dlopen`).
    Default(&'a mut DefaultNamespace),
    /// An isolated replica namespace under construction (`dlforce`).
    Replica(&'a mut HashMap<String, Arc<LoadedLibrary>>),
}

impl LoadCache<'_> {
    fn get(&self, name: &str) -> Option<Arc<LoadedLibrary>> {
        match self {
            LoadCache::Default(ns) => ns.loaded.get(name).map(|(l, _)| l.clone()),
            LoadCache::Replica(libs) => libs.get(name).cloned(),
        }
    }

    fn insert(&mut self, name: &str, lib: Arc<LoadedLibrary>) {
        match self {
            LoadCache::Default(ns) => {
                ns.loaded.insert(name.to_owned(), (lib, 1));
            }
            LoadCache::Replica(libs) => {
                libs.insert(name.to_owned(), lib);
            }
        }
    }
}

/// The DLR-enabled dynamic linker for one simulated process.
pub struct DynamicLinker {
    clock: VirtualClock,
    images: Mutex<HashMap<String, LibraryImage>>,
    default_ns: Mutex<DefaultNamespace>,
    replicas: Mutex<HashMap<u64, Replica>>,
    next_instance: AtomicU64,
    next_replica: AtomicU64,
    next_base_va: AtomicU64,
    constructor_runs: Mutex<HashMap<String, u64>>,
}

impl DynamicLinker {
    /// Creates a linker charging load costs to `clock`.
    pub fn new(clock: VirtualClock) -> Self {
        DynamicLinker {
            clock,
            images: Mutex::new(HashMap::new()),
            default_ns: Mutex::new(DefaultNamespace::default()),
            replicas: Mutex::new(HashMap::new()),
            next_instance: AtomicU64::new(1),
            next_replica: AtomicU64::new(1),
            next_base_va: AtomicU64::new(0x7000_0000_0000),
            constructor_runs: Mutex::new(HashMap::new()),
        }
    }

    /// Registers a library image ("installs the `.so` on disk").
    /// Re-registering a name replaces the image for future loads.
    pub fn register_image(&self, image: LibraryImage) {
        self.images.lock().insert(image.name().to_owned(), image);
    }

    /// Returns `true` if an image with this name is registered.
    pub fn has_image(&self, name: &str) -> bool {
        self.images.lock().contains_key(name)
    }

    /// How many times `name`'s constructor has run (each fresh load or
    /// replica instance runs it once) — the observable effect of DLR.
    pub fn constructor_runs(&self, name: &str) -> u64 {
        self.constructor_runs.lock().get(name).copied().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Default namespace: dlopen / dlsym / dlclose
    // ------------------------------------------------------------------

    /// `dlopen`: returns the already loaded instance if present, otherwise
    /// loads `name` and its dependencies, running constructors bottom-up.
    ///
    /// # Errors
    ///
    /// Returns [`LinkerError::LibraryNotFound`] or
    /// [`LinkerError::CircularDependency`].
    pub fn dlopen(&self, name: &str) -> Result<Arc<LoadedLibrary>> {
        let mut ns = self.default_ns.lock();
        if let Some((lib, refs)) = ns.loaded.get_mut(name) {
            *refs += 1;
            self.clock.charge_ns(OPEN_CACHED_NS);
            return Ok(lib.clone());
        }
        let lib = self.load_tree(name, &mut LoadCache::Default(&mut ns), &mut Vec::new())?;
        ns.loaded.insert(name.to_owned(), (lib.clone(), 1));
        Ok(lib)
    }

    /// `dlsym` on a default-namespace handle: searches the instance and its
    /// dependency tree.
    ///
    /// # Errors
    ///
    /// Returns [`LinkerError::SymbolNotFound`].
    pub fn dlsym(&self, lib: &Arc<LoadedLibrary>, symbol: &str) -> Result<SymbolAddr> {
        self.clock.charge_ns(DLSYM_NS);
        lib.symbol(symbol).ok_or_else(|| LinkerError::SymbolNotFound {
            library: lib.name().to_owned(),
            symbol: symbol.to_owned(),
        })
    }

    /// `dlclose`: drops one reference; the instance unloads at zero.
    ///
    /// Returns `true` if the instance was actually unloaded.
    pub fn dlclose(&self, name: &str) -> bool {
        let mut ns = self.default_ns.lock();
        let Some((_, refs)) = ns.loaded.get_mut(name) else {
            return false;
        };
        *refs -= 1;
        if *refs == 0 {
            ns.loaded.remove(name);
            true
        } else {
            false
        }
    }

    /// Whether `name` is currently loaded in the default namespace.
    pub fn is_loaded(&self, name: &str) -> bool {
        self.default_ns.lock().loaded.contains_key(name)
    }

    // ------------------------------------------------------------------
    // DLR: dlforce
    // ------------------------------------------------------------------

    /// `dlforce`: loads `name` and all its replicable dependencies **as if
    /// they were never loaded before**, producing an isolated [`Replica`]
    /// with unique virtual addresses and freshly run constructors.
    ///
    /// Non-replicable dependencies (libc) are shared with the default
    /// namespace (loading them there on demand).
    ///
    /// # Errors
    ///
    /// Returns [`LinkerError::LibraryNotFound`] or
    /// [`LinkerError::CircularDependency`].
    pub fn dlforce(&self, name: &str) -> Result<Replica> {
        let mut tspan = trace::span(trace::Category::Linker, "dlforce");
        let mut replica_libs: HashMap<String, Arc<LoadedLibrary>> = HashMap::new();
        let root = self.load_tree(
            name,
            &mut LoadCache::Replica(&mut replica_libs),
            &mut Vec::new(),
        )?;
        // Register every instance in the replica namespace.
        for lib in root.tree() {
            replica_libs.insert(lib.name().to_owned(), lib);
        }
        let id = ReplicaId(self.next_replica.fetch_add(1, Ordering::Relaxed));
        trace::bump(trace::Counter::ReplicaLoads);
        tspan.set_arg(id.0);
        let replica = Replica {
            id,
            root,
            libs: replica_libs,
        };
        self.replicas.lock().insert(id.0, replica.clone());
        Ok(replica)
    }

    /// Looks up a previously created replica by ID.
    ///
    /// # Errors
    ///
    /// Returns [`LinkerError::NoSuchReplica`] if it was unloaded.
    pub fn replica(&self, id: ReplicaId) -> Result<Replica> {
        self.replicas
            .lock()
            .get(&id.0)
            .cloned()
            .ok_or(LinkerError::NoSuchReplica(id.0))
    }

    /// Unloads a replica namespace. Returns `true` if it existed.
    pub fn unload_replica(&self, id: ReplicaId) -> bool {
        self.replicas.lock().remove(&id.0).is_some()
    }

    /// Number of live replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.lock().len()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Recursively loads `name` and its dependencies, reusing instances
    /// already present in `cache` (the target namespace). Non-replicable
    /// dependencies always resolve through the default namespace, even from
    /// a replica load.
    fn load_tree(
        &self,
        name: &str,
        cache: &mut LoadCache<'_>,
        chain: &mut Vec<String>,
    ) -> Result<Arc<LoadedLibrary>> {
        if chain.iter().any(|c| c == name) {
            chain.push(name.to_owned());
            return Err(LinkerError::CircularDependency(chain.clone()));
        }
        chain.push(name.to_owned());

        let image = self
            .images
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| LinkerError::LibraryNotFound(name.to_owned()))?;

        let mut deps = Vec::new();
        for dep_name in image.deps().to_vec() {
            let dep_image = self
                .images
                .lock()
                .get(&dep_name)
                .cloned()
                .ok_or_else(|| LinkerError::LibraryNotFound(dep_name.clone()))?;

            let dep = if !dep_image.replicable() && matches!(cache, LoadCache::Replica(_)) {
                // libc-style: a replica still links the single shared
                // default-namespace instance.
                self.shared_instance(&dep_name, chain)?
            } else if let Some(existing) = cache.get(&dep_name) {
                existing
            } else {
                let loaded = self.load_tree(&dep_name, cache, chain)?;
                cache.insert(&dep_name, loaded.clone());
                loaded
            };
            deps.push(dep);
        }
        chain.pop();

        Ok(self.instantiate(image, deps))
    }

    /// Gets or creates the single shared (default-namespace) instance of a
    /// non-replicable library. Called from replica loads, which do not hold
    /// the default-namespace lock.
    fn shared_instance(
        &self,
        name: &str,
        chain: &mut Vec<String>,
    ) -> Result<Arc<LoadedLibrary>> {
        let mut ns = self.default_ns.lock();
        if let Some((lib, _)) = ns.loaded.get(name) {
            return Ok(lib.clone());
        }
        let lib = self.load_tree(name, &mut LoadCache::Default(&mut ns), chain)?;
        ns.loaded.insert(name.to_owned(), (lib.clone(), 1));
        Ok(lib)
    }

    fn instantiate(&self, image: LibraryImage, deps: Vec<Arc<LoadedLibrary>>) -> Arc<LoadedLibrary> {
        let instance = InstanceId(self.next_instance.fetch_add(1, Ordering::Relaxed));
        // Each mapping gets a disjoint 1 MiB VA window.
        let base_va = self.next_base_va.fetch_add(0x10_0000, Ordering::Relaxed);
        *self
            .constructor_runs
            .lock()
            .entry(image.name().to_owned())
            .or_insert(0) += 1;
        self.clock.charge_ns(LOAD_FRESH_NS);
        Arc::new(LoadedLibrary::new(image, instance, base_va, deps))
    }
}

impl fmt::Debug for DynamicLinker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynamicLinker")
            .field("images", &self.images.lock().len())
            .field("loaded", &self.default_ns.lock().loaded.len())
            .field("replicas", &self.replicas.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the NVIDIA-style dependency chain from the paper:
    /// libGLESv2_tegra.so -> libnvrm.so -> libnvos.so, all over libc.
    fn nvidia_linker() -> DynamicLinker {
        let linker = DynamicLinker::new(VirtualClock::new());
        linker.register_image(
            LibraryImage::builder("libc.so")
                .symbols(["malloc", "free"])
                .non_replicable()
                .build(),
        );
        linker.register_image(
            LibraryImage::builder("libnvos.so")
                .deps(["libc.so"])
                .symbols(["NvOsAlloc"])
                .constructor(|| Arc::new(Mutex::new(0u64)))
                .build(),
        );
        linker.register_image(
            LibraryImage::builder("libnvrm.so")
                .deps(["libnvos.so"])
                .symbols(["NvRmOpen"])
                .build(),
        );
        linker.register_image(
            LibraryImage::builder("libGLESv2_tegra.so")
                .deps(["libnvrm.so"])
                .symbols(["glDrawArrays", "glClear"])
                .build(),
        );
        linker
    }

    #[test]
    fn dlopen_is_load_once() {
        let linker = nvidia_linker();
        let a = linker.dlopen("libGLESv2_tegra.so").unwrap();
        let b = linker.dlopen("libGLESv2_tegra.so").unwrap();
        assert_eq!(a.instance_id(), b.instance_id());
        assert_eq!(linker.constructor_runs("libGLESv2_tegra.so"), 1);
        assert_eq!(linker.constructor_runs("libnvos.so"), 1);
    }

    #[test]
    fn dlopen_missing_library_errors() {
        let linker = nvidia_linker();
        assert!(matches!(
            linker.dlopen("libmissing.so"),
            Err(LinkerError::LibraryNotFound(name)) if name == "libmissing.so"
        ));
    }

    #[test]
    fn dlsym_searches_tree() {
        let linker = nvidia_linker();
        let gles = linker.dlopen("libGLESv2_tegra.so").unwrap();
        assert!(linker.dlsym(&gles, "glDrawArrays").is_ok());
        // Transitive dependency symbol.
        assert!(linker.dlsym(&gles, "NvOsAlloc").is_ok());
        assert!(matches!(
            linker.dlsym(&gles, "eglInitialize"),
            Err(LinkerError::SymbolNotFound { .. })
        ));
    }

    #[test]
    fn dlclose_refcounts() {
        let linker = nvidia_linker();
        linker.dlopen("libnvos.so").unwrap();
        linker.dlopen("libnvos.so").unwrap();
        assert!(!linker.dlclose("libnvos.so"), "still referenced");
        assert!(linker.dlclose("libnvos.so"), "last reference unloads");
        assert!(!linker.is_loaded("libnvos.so"));
        assert!(!linker.dlclose("libnvos.so"), "double close is a no-op");
    }

    #[test]
    fn dlforce_creates_fresh_instances_with_unique_addresses() {
        let linker = nvidia_linker();
        let shared = linker.dlopen("libGLESv2_tegra.so").unwrap();
        let replica = linker.dlforce("libGLESv2_tegra.so").unwrap();

        // New instance, new base VA.
        assert_ne!(replica.root().instance_id(), shared.instance_id());
        assert_ne!(replica.root().base_va(), shared.base_va());

        // Every symbol resolves to a different address than the shared one.
        let shared_sym = shared.symbol("glDrawArrays").unwrap();
        let replica_sym = replica.dlsym("glDrawArrays").unwrap();
        assert_ne!(shared_sym.va, replica_sym.va);

        // Dependencies were re-instanced too ("isolated trees").
        let shared_nvos = shared.symbol("NvOsAlloc").unwrap();
        let replica_nvos = replica.dlsym("NvOsAlloc").unwrap();
        assert_ne!(shared_nvos.instance, replica_nvos.instance);

        // Constructors ran again for the whole replicable tree.
        assert_eq!(linker.constructor_runs("libGLESv2_tegra.so"), 2);
        assert_eq!(linker.constructor_runs("libnvos.so"), 2);
    }

    #[test]
    fn dlforce_shares_libc() {
        let linker = nvidia_linker();
        linker.dlopen("libGLESv2_tegra.so").unwrap();
        let r1 = linker.dlforce("libGLESv2_tegra.so").unwrap();
        let r2 = linker.dlforce("libGLESv2_tegra.so").unwrap();
        // "We do not reload libc; all instances use a single, shared libc."
        assert_eq!(linker.constructor_runs("libc.so"), 1);
        let c1 = r1.dlopen("libc.so").unwrap();
        let c2 = r2.dlopen("libc.so").unwrap();
        assert_eq!(c1.instance_id(), c2.instance_id());
    }

    #[test]
    fn replica_state_is_isolated() {
        let linker = nvidia_linker();
        let r1 = linker.dlforce("libnvos.so").unwrap();
        let r2 = linker.dlforce("libnvos.so").unwrap();
        let s1 = r1.root().state::<Mutex<u64>>().unwrap();
        let s2 = r2.root().state::<Mutex<u64>>().unwrap();
        *s1.lock() = 7;
        assert_eq!(*s2.lock(), 0, "replica globals are independent");
    }

    #[test]
    fn replica_scoped_lookup_only_sees_own_tree() {
        let linker = nvidia_linker();
        let replica = linker.dlforce("libnvrm.so").unwrap();
        assert!(replica.dlsym("NvRmOpen").is_ok());
        assert!(replica.dlsym("NvOsAlloc").is_ok());
        // glDrawArrays lives outside this replica's tree.
        assert!(replica.dlsym("glDrawArrays").is_err());
        assert!(replica.dlopen("libGLESv2_tegra.so").is_err());
        let mut names = replica.library_names();
        names.sort_unstable();
        assert_eq!(names, ["libc.so", "libnvos.so", "libnvrm.so"]);
    }

    #[test]
    fn replica_registry_and_unload() {
        let linker = nvidia_linker();
        let replica = linker.dlforce("libnvos.so").unwrap();
        assert_eq!(linker.replica_count(), 1);
        let again = linker.replica(replica.id()).unwrap();
        assert_eq!(again.root().instance_id(), replica.root().instance_id());
        assert!(linker.unload_replica(replica.id()));
        assert!(!linker.unload_replica(replica.id()));
        assert!(matches!(
            linker.replica(replica.id()),
            Err(LinkerError::NoSuchReplica(_))
        ));
    }

    #[test]
    fn circular_dependency_detected() {
        let linker = DynamicLinker::new(VirtualClock::new());
        linker.register_image(LibraryImage::builder("a.so").deps(["b.so"]).build());
        linker.register_image(LibraryImage::builder("b.so").deps(["a.so"]).build());
        assert!(matches!(
            linker.dlopen("a.so"),
            Err(LinkerError::CircularDependency(_))
        ));
    }

    #[test]
    fn diamond_dependency_loads_once_per_namespace() {
        let linker = DynamicLinker::new(VirtualClock::new());
        linker.register_image(LibraryImage::builder("base.so").build());
        linker.register_image(LibraryImage::builder("l.so").deps(["base.so"]).build());
        linker.register_image(LibraryImage::builder("r.so").deps(["base.so"]).build());
        linker.register_image(
            LibraryImage::builder("top.so").deps(["l.so", "r.so"]).build(),
        );
        let top = linker.dlopen("top.so").unwrap();
        assert_eq!(linker.constructor_runs("base.so"), 1);
        assert_eq!(top.tree().len(), 4);

        let replica = linker.dlforce("top.so").unwrap();
        assert_eq!(
            linker.constructor_runs("base.so"),
            2,
            "one fresh base per replica, shared within it"
        );
        assert_eq!(replica.root().tree().len(), 4);
    }
}
