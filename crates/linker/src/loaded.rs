//! Loaded library instances.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::image::{LibraryImage, LibraryState};

/// Identity of one loaded instance. Two replicas of the same image have
/// different instance IDs (and different base addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub(crate) u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst#{}", self.0)
    }
}

/// The resolved address of a symbol in a particular loaded instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymbolAddr {
    /// Virtual address of the symbol.
    pub va: u64,
    /// The instance the symbol was resolved in.
    pub instance: InstanceId,
}

/// One loaded instance of a library image.
///
/// Holds the instance's unique virtual address range, its resolved symbol
/// table, the per-instance state produced by the constructor, and strong
/// references to the dependency instances it was linked against — an
/// isolated tree under DLR.
pub struct LoadedLibrary {
    image: LibraryImage,
    instance: InstanceId,
    base_va: u64,
    symbols: HashMap<String, u64>,
    state: LibraryState,
    deps: Vec<Arc<LoadedLibrary>>,
}

impl LoadedLibrary {
    pub(crate) fn new(
        image: LibraryImage,
        instance: InstanceId,
        base_va: u64,
        deps: Vec<Arc<LoadedLibrary>>,
    ) -> Self {
        let symbols = image
            .symbols()
            .iter()
            .enumerate()
            .map(|(i, name)| (name.clone(), base_va + 0x10 * (i as u64 + 1)))
            .collect();
        let state = image.run_constructor();
        LoadedLibrary {
            image,
            instance,
            base_va,
            symbols,
            state,
            deps,
        }
    }

    /// The image name (e.g. `"libEGL.so"`).
    pub fn name(&self) -> &str {
        self.image.name()
    }

    /// This instance's identity.
    pub fn instance_id(&self) -> InstanceId {
        self.instance
    }

    /// The base virtual address of this instance's mapping.
    pub fn base_va(&self) -> u64 {
        self.base_va
    }

    /// The dependency instances this instance was linked against.
    pub fn deps(&self) -> &[Arc<LoadedLibrary>] {
        &self.deps
    }

    /// The per-instance state, downcast to its concrete type.
    ///
    /// Returns `None` if `T` is not the type the constructor produced.
    pub fn state<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        self.state.clone().downcast::<T>().ok()
    }

    /// Looks up a symbol in this instance only (no dependency search).
    pub fn local_symbol(&self, symbol: &str) -> Option<SymbolAddr> {
        self.symbols.get(symbol).map(|&va| SymbolAddr {
            va,
            instance: self.instance,
        })
    }

    /// Looks up a symbol in this instance and then breadth-first through
    /// its dependency tree — `dlsym` semantics on a tree handle.
    pub fn symbol(&self, symbol: &str) -> Option<SymbolAddr> {
        if let Some(addr) = self.local_symbol(symbol) {
            return Some(addr);
        }
        let mut queue: Vec<&Arc<LoadedLibrary>> = self.deps.iter().collect();
        let mut i = 0;
        while i < queue.len() {
            let lib = queue[i];
            if let Some(addr) = lib.local_symbol(symbol) {
                return Some(addr);
            }
            queue.extend(lib.deps.iter());
            i += 1;
        }
        None
    }

    /// All library instances in this tree (self first, then dependencies,
    /// breadth-first, deduplicated).
    pub fn tree(self: &Arc<Self>) -> Vec<Arc<LoadedLibrary>> {
        let mut out: Vec<Arc<LoadedLibrary>> = vec![self.clone()];
        let mut seen = vec![self.instance];
        let mut i = 0;
        while i < out.len() {
            for dep in out[i].deps.clone() {
                if !seen.contains(&dep.instance) {
                    seen.push(dep.instance);
                    out.push(dep);
                }
            }
            i += 1;
        }
        out
    }
}

impl fmt::Debug for LoadedLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoadedLibrary")
            .field("name", &self.name())
            .field("instance", &self.instance)
            .field("base_va", &format_args!("{:#x}", self.base_va))
            .field("deps", &self.deps.iter().map(|d| d.name()).collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::LibraryImage;

    fn leaf(name: &str, symbols: &[&str], base: u64, id: u64) -> Arc<LoadedLibrary> {
        Arc::new(LoadedLibrary::new(
            LibraryImage::builder(name)
                .symbols(symbols.iter().copied())
                .build(),
            InstanceId(id),
            base,
            Vec::new(),
        ))
    }

    #[test]
    fn symbols_get_distinct_vas_from_base() {
        let lib = leaf("liba.so", &["f", "g"], 0x1000, 1);
        let f = lib.local_symbol("f").unwrap();
        let g = lib.local_symbol("g").unwrap();
        assert_ne!(f.va, g.va);
        assert!(f.va >= 0x1000 && g.va >= 0x1000);
        assert!(lib.local_symbol("h").is_none());
    }

    #[test]
    fn symbol_searches_dependency_tree() {
        let nvos = leaf("libnvos.so", &["NvOsAlloc"], 0x1000, 1);
        let nvrm = Arc::new(LoadedLibrary::new(
            LibraryImage::builder("libnvrm.so").symbols(["NvRmOpen"]).build(),
            InstanceId(2),
            0x2000,
            vec![nvos],
        ));
        let gles = Arc::new(LoadedLibrary::new(
            LibraryImage::builder("libGLESv2_tegra.so")
                .symbols(["glDrawArrays"])
                .build(),
            InstanceId(3),
            0x3000,
            vec![nvrm],
        ));
        assert!(gles.symbol("glDrawArrays").is_some());
        let addr = gles.symbol("NvOsAlloc").unwrap();
        assert_eq!(addr.instance, InstanceId(1));
        assert!(gles.symbol("missing").is_none());
        assert!(gles.local_symbol("NvOsAlloc").is_none());
    }

    #[test]
    fn tree_enumerates_all_instances_once() {
        let shared = leaf("libc.so", &[], 0x100, 1);
        let a = Arc::new(LoadedLibrary::new(
            LibraryImage::builder("liba.so").build(),
            InstanceId(2),
            0x200,
            vec![shared.clone()],
        ));
        let b = Arc::new(LoadedLibrary::new(
            LibraryImage::builder("libb.so").build(),
            InstanceId(3),
            0x300,
            vec![shared, a.clone()],
        ));
        let tree = b.tree();
        let names: Vec<&str> = tree.iter().map(|l| l.name()).collect();
        assert_eq!(names, ["libb.so", "libc.so", "liba.so"]);
    }

    #[test]
    fn typed_state_downcast() {
        let lib = Arc::new(LoadedLibrary::new(
            LibraryImage::builder("libx.so")
                .constructor(|| Arc::new(String::from("hello")))
                .build(),
            InstanceId(5),
            0x5000,
            Vec::new(),
        ));
        assert_eq!(*lib.state::<String>().unwrap(), "hello");
        assert!(lib.state::<u32>().is_none());
    }
}
