//! Library images: the on-disk description of a `.so`.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Per-instance library state — the library's global/initialization data,
/// created afresh by the constructor on every load (and on every replica).
pub type LibraryState = Arc<dyn Any + Send + Sync>;

/// The constructor run when an instance of the library is loaded.
pub type Constructor = Arc<dyn Fn() -> LibraryState + Send + Sync>;

/// A registered library image: what the linker knows about a `.so` file
/// before any instance is loaded.
///
/// Use [`LibraryImage::builder`] to construct one.
#[derive(Clone)]
pub struct LibraryImage {
    name: String,
    deps: Vec<String>,
    symbols: Vec<String>,
    constructor: Constructor,
    replicable: bool,
}

impl LibraryImage {
    /// Starts building an image with the given name.
    pub fn builder(name: impl Into<String>) -> LibraryImageBuilder {
        LibraryImageBuilder {
            name: name.into(),
            deps: Vec::new(),
            symbols: Vec::new(),
            constructor: None,
            replicable: true,
        }
    }

    /// The image (file) name, e.g. `"libGLESv2_tegra.so"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Names of libraries this one depends on (DT_NEEDED entries).
    pub fn deps(&self) -> &[String] {
        &self.deps
    }

    /// Exported symbol names.
    pub fn symbols(&self) -> &[String] {
        &self.symbols
    }

    /// Whether `dlforce` may create fresh instances of this library.
    /// libc is marked non-replicable: "We do not reload libc; all
    /// lib\[rary\] instances use a single, shared libc instance."
    pub fn replicable(&self) -> bool {
        self.replicable
    }

    pub(crate) fn run_constructor(&self) -> LibraryState {
        (self.constructor)()
    }
}

impl fmt::Debug for LibraryImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LibraryImage")
            .field("name", &self.name)
            .field("deps", &self.deps)
            .field("symbols", &self.symbols.len())
            .field("replicable", &self.replicable)
            .finish()
    }
}

/// Builder for [`LibraryImage`].
pub struct LibraryImageBuilder {
    name: String,
    deps: Vec<String>,
    symbols: Vec<String>,
    constructor: Option<Constructor>,
    replicable: bool,
}

impl LibraryImageBuilder {
    /// Adds dependencies (by image name).
    pub fn deps<I, S>(mut self, deps: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.deps.extend(deps.into_iter().map(Into::into));
        self
    }

    /// Adds exported symbols.
    pub fn symbols<I, S>(mut self, symbols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.symbols.extend(symbols.into_iter().map(Into::into));
        self
    }

    /// Sets the constructor creating per-instance state. The value returned
    /// becomes the instance's [`LibraryState`], retrievable (typed) via
    /// [`crate::LoadedLibrary::state`].
    pub fn constructor<T, F>(mut self, f: F) -> Self
    where
        T: Any + Send + Sync,
        F: Fn() -> Arc<T> + Send + Sync + 'static,
    {
        self.constructor = Some(Arc::new(move || f() as LibraryState));
        self
    }

    /// Marks the image non-replicable (libc).
    pub fn non_replicable(mut self) -> Self {
        self.replicable = false;
        self
    }

    /// Finishes the image. Images without an explicit constructor get unit
    /// state.
    pub fn build(self) -> LibraryImage {
        LibraryImage {
            name: self.name,
            deps: self.deps,
            symbols: self.symbols,
            constructor: self
                .constructor
                .unwrap_or_else(|| Arc::new(|| Arc::new(()) as LibraryState)),
            replicable: self.replicable,
        }
    }
}

impl fmt::Debug for LibraryImageBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LibraryImageBuilder")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_image() {
        let img = LibraryImage::builder("libnvrm.so")
            .deps(["libnvos.so"])
            .symbols(["NvRmOpen", "NvRmClose"])
            .build();
        assert_eq!(img.name(), "libnvrm.so");
        assert_eq!(img.deps(), ["libnvos.so"]);
        assert_eq!(img.symbols(), ["NvRmOpen", "NvRmClose"]);
        assert!(img.replicable());
    }

    #[test]
    fn non_replicable_flag() {
        let img = LibraryImage::builder("libc.so").non_replicable().build();
        assert!(!img.replicable());
    }

    #[test]
    fn constructor_produces_typed_state() {
        let img = LibraryImage::builder("libx.so")
            .constructor(|| Arc::new(41_u32))
            .build();
        let state = img.run_constructor();
        assert_eq!(*state.downcast::<u32>().unwrap(), 41);
    }

    #[test]
    fn default_constructor_gives_unit() {
        let img = LibraryImage::builder("liby.so").build();
        assert!(img.run_constructor().downcast::<()>().is_ok());
    }
}
