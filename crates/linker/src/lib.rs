//! A simulated dynamic linker with **Dynamic Library Replication** (DLR).
//!
//! Normally, a call to `dlopen` will not re-initialize or reload a library
//! that is already loaded — the linker returns a handle to the previously
//! loaded instance. Cycada's DLR-enabled linker adds a new entry point,
//! **`dlforce`**, "which opens a library (the replica), and all its
//! dependencies, as if they were never loaded before. The replica and its
//! dependencies will have unique virtual addresses, and all of their library
//! constructors will be called" (§8.1). Symbol lookup can then be scoped to
//! one replica's isolated library tree.
//!
//! This crate reproduces those semantics over simulated library images:
//!
//! * a [`LibraryImage`] describes a `.so` on disk — name, dependencies,
//!   exported symbols, and a *constructor* that builds fresh per-instance
//!   state (the library's globals);
//! * [`DynamicLinker::dlopen`] loads into the default namespace with
//!   load-once semantics and reference counting;
//! * [`DynamicLinker::dlforce`] creates a [`Replica`]: a fresh, isolated
//!   instance tree with unique base addresses and re-run constructors.
//!   Libraries marked non-replicable (libc — footnote 1 of the paper) are
//!   shared with the default namespace instead of being re-instanced.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use cycada_linker::{DynamicLinker, LibraryImage};
//! use cycada_sim::VirtualClock;
//!
//! let linker = DynamicLinker::new(VirtualClock::new());
//! linker.register_image(
//!     LibraryImage::builder("libnvos.so")
//!         .symbols(["NvOsAlloc"])
//!         .constructor(|| Arc::new(()))
//!         .build(),
//! );
//! let a = linker.dlopen("libnvos.so")?;
//! let b = linker.dlopen("libnvos.so")?;
//! assert_eq!(a.instance_id(), b.instance_id()); // load-once
//! let replica = linker.dlforce("libnvos.so")?;  // fresh instance
//! assert_ne!(replica.root().instance_id(), a.instance_id());
//! # Ok::<(), cycada_linker::LinkerError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod image;
mod linker;
mod loaded;

pub use error::LinkerError;
pub use image::{Constructor, LibraryImage, LibraryImageBuilder, LibraryState};
pub use linker::{DynamicLinker, Replica, ReplicaId};
pub use loaded::{InstanceId, LoadedLibrary, SymbolAddr};

/// Convenient result alias for linker operations.
pub type Result<T> = std::result::Result<T, LinkerError>;
