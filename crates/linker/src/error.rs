//! Linker error types.

use std::error::Error;
use std::fmt;

/// Errors returned by the simulated dynamic linker.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinkerError {
    /// No registered image has this name (`dlopen` of a missing `.so`).
    LibraryNotFound(String),
    /// A dependency chain contains a cycle.
    CircularDependency(Vec<String>),
    /// The symbol was not found in the library or its dependency tree.
    SymbolNotFound {
        /// The library searched.
        library: String,
        /// The missing symbol.
        symbol: String,
    },
    /// A replica handle refers to a replica that was unloaded.
    NoSuchReplica(u64),
}

impl fmt::Display for LinkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkerError::LibraryNotFound(name) => write!(f, "library not found: {name:?}"),
            LinkerError::CircularDependency(chain) => {
                write!(f, "circular library dependency: {}", chain.join(" -> "))
            }
            LinkerError::SymbolNotFound { library, symbol } => {
                write!(f, "symbol {symbol:?} not found in {library:?} or its dependencies")
            }
            LinkerError::NoSuchReplica(id) => write!(f, "no such replica: {id}"),
        }
    }
}

impl Error for LinkerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(LinkerError::LibraryNotFound("libfoo.so".into())
            .to_string()
            .contains("libfoo.so"));
        assert!(LinkerError::CircularDependency(vec!["a".into(), "b".into(), "a".into()])
            .to_string()
            .contains("a -> b -> a"));
        assert!(LinkerError::SymbolNotFound {
            library: "libEGL.so".into(),
            symbol: "eglFrobnicate".into()
        }
        .to_string()
        .contains("eglFrobnicate"));
    }
}
