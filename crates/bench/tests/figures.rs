//! Figure determinism: every table/figure regenerator must reproduce its
//! committed baseline byte for byte.
//!
//! The baselines under `tests/baselines/` were captured before the raster
//! plane landed (the per-pixel-lock rasterizer), so these tests pin the
//! paper's Tables 1–3 and Figures 5–10 across the span/tiled fast paths:
//! any byte of drift in pixel hashes, frame counts, or virtual-time
//! figures fails the suite. Regenerate a baseline on purpose with
//! `cargo run --release --bin <name> > crates/bench/tests/baselines/<name>.txt`
//! and justify the change in the PR.
//!
//! The figure regenerators simulate thousands of frames and are too slow
//! without optimization, so debug builds check the tables only; `cargo
//! test --release` covers all nine.

use std::process::Command;

fn assert_matches_baseline(name: &str, exe: &str, baseline: &str) {
    let out = Command::new(exe)
        .output()
        .unwrap_or_else(|e| panic!("failed to run {name}: {e}"));
    assert!(
        out.status.success(),
        "{name} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("regenerator output is UTF-8");
    if got != baseline {
        let line = got
            .lines()
            .zip(baseline.lines())
            .position(|(g, b)| g != b)
            .unwrap_or_else(|| got.lines().count().min(baseline.lines().count()));
        panic!(
            "{name} output diverged from its committed baseline at line {}:\n  \
             baseline: {:?}\n  got:      {:?}",
            line + 1,
            baseline.lines().nth(line).unwrap_or("<missing>"),
            got.lines().nth(line).unwrap_or("<missing>"),
        );
    }
}

macro_rules! figure_test {
    ($name:ident) => {
        #[test]
        fn $name() {
            assert_matches_baseline(
                stringify!($name),
                env!(concat!("CARGO_BIN_EXE_", stringify!($name))),
                include_str!(concat!("baselines/", stringify!($name), ".txt")),
            );
        }
    };
}

figure_test!(table1);
figure_test!(table2);
figure_test!(table3);

#[cfg(not(debug_assertions))]
mod figures {
    use super::assert_matches_baseline;

    figure_test!(fig5);
    figure_test!(fig6);
    figure_test!(fig7);
    figure_test!(fig8);
    figure_test!(fig9);
    figure_test!(fig10);
}
