//! Regenerates **Figure 10**: PassMark — average GLES time per call per
//! function (top 14 by total time), measured on Cycada iOS.

use cycada_bench::{fmt_us, print_row, rule};
use cycada_workloads::passmark::run_suite_with_stats;

fn main() {
    let (_scores, stats) = run_suite_with_stats(None, 8).expect("passmark suite");
    println!("Figure 10: PassMark — average time per call (top 14 by total time)");
    rule(64);
    let widths = [36, 12, 8];
    print_row(&["Function".into(), "avg (us)".into(), "calls".into()], &widths);
    rule(64);
    for share in stats.top_n(14) {
        print_row(
            &[
                share.name.clone(),
                fmt_us(share.record.avg_ns()),
                share.record.calls.to_string(),
            ],
            &widths,
        );
    }
    rule(64);
    println!(
        "Paper shape: present-path functions (aegl_bridge_draw_fbo_tex, \
         eglSwapBuffers, aegl_bridge_copy_tex_buf) average ~1-2ms; glClear \
         ~1-2ms; glDrawArrays tens of us; matrix/state calls ~2us."
    );
}
