//! Regenerates **Figure 6**: PassMark graphics benchmarks, normalized
//! performance (higher is better; baseline = Android app on Android).

use cycada_bench::{fmt_ratio, print_row, rule};
use cycada_sim::Platform;
use cycada_workloads::passmark::{run_suite, PassmarkTest};

const FRAMES: u32 = 8;

fn main() {
    let android = run_suite(Platform::StockAndroid, None, FRAMES).expect("android suite");
    let cycada_ios = run_suite(Platform::CycadaIos, None, FRAMES).expect("cycada ios suite");
    let cycada_android =
        run_suite(Platform::CycadaAndroid, None, FRAMES).expect("cycada android suite");
    let ios = run_suite(Platform::NativeIos, None, FRAMES).expect("ios suite");

    let widths = [24, 12, 16, 8];
    println!(
        "Figure 6: PassMark graphics, normalized performance (higher is better; baseline = Android)"
    );
    rule(70);
    print_row(
        &[
            "Test".into(),
            "Cycada iOS".into(),
            "Cycada Android".into(),
            "iOS".into(),
        ],
        &widths,
    );
    rule(70);
    for (i, test) in PassmarkTest::ALL.into_iter().enumerate() {
        let base = android[i].score;
        print_row(
            &[
                test.label().into(),
                fmt_ratio(cycada_ios[i].score / base),
                fmt_ratio(cycada_android[i].score / base),
                fmt_ratio(ios[i].score / base),
            ],
            &widths,
        );
    }
    rule(70);
    println!(
        "Paper shape: iOS (and Cycada iOS) lose on plain 2D, win on complex \
         vectors and 3D; Cycada iOS beats Android by >20% on complex 3D; \
         Cycada iOS tracks iOS's direction everywhere."
    );
}
