//! Regenerates **Figure 9**: SunSpider — average GLES time per call per
//! function (top 14 by total time), measured on Cycada iOS.

use cycada_bench::{fmt_us, print_row, rule};
use cycada_sim::Platform;
use cycada_workloads::browser::Browser;

fn main() {
    let mut browser = Browser::launch(Platform::CycadaIos).expect("browser");
    browser.run_sunspider(None).expect("sunspider run");
    let stats = browser.app().gl_stats().expect("cycada stats");

    println!("Figure 9: SunSpider — average time per call (top 14 by total time)");
    rule(64);
    let widths = [36, 12, 8];
    print_row(&["Function".into(), "avg (us)".into(), "calls".into()], &widths);
    rule(64);
    for share in stats.top_n(14) {
        print_row(
            &[
                share.name.clone(),
                fmt_us(share.record.avg_ns()),
                share.record.calls.to_string(),
            ],
            &widths,
        );
    }
    rule(64);
    println!(
        "Paper shape: bridge/present functions cost hundreds of us to ms \
         (glLinkProgram ~3.3ms, glClear ~0.9ms); state setters cost a few us; \
         the diplomat mechanism itself (<1us) is never the dominant cost."
    );
}
