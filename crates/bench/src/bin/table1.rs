//! Regenerates **Table 1**: OpenGL ES implementation breakdown.

use cycada_bench::{print_row, rule};
use cycada_gles::GlesRegistry;

fn main() {
    let t = GlesRegistry::global().table1();
    let widths = [30, 8, 8, 8];
    println!("Table 1: OpenGL ES Implementation Breakdown");
    rule(60);
    print_row(
        &["OpenGL ES".into(), "iOS".into(), "Android".into(), "Khronos".into()],
        &widths,
    );
    rule(60);
    let rows: Vec<(&str, (usize, usize, usize))> = vec![
        ("1.0 Standard Functions", t.v1_standard),
        ("2.0 Standard Functions", t.v2_standard),
        ("Extension Functions", t.extension_functions),
        (
            "Common Extension Functions",
            (
                t.common_extension_functions,
                t.common_extension_functions,
                0,
            ),
        ),
        ("Extensions", t.extensions),
        ("Extensions not in Android", (t.extensions_not_in_android, 0, 0)),
        ("Extensions not in iOS", (0, t.extensions_not_in_ios, 0)),
    ];
    for (label, (ios, android, khronos)) in rows {
        let k = if khronos == 0 && label.contains("not in") || label.contains("Common") {
            "-".to_owned()
        } else {
            khronos.to_string()
        };
        print_row(
            &[label.into(), ios.to_string(), android.to_string(), k],
            &widths,
        );
    }
    rule(60);
    println!(
        "Paper values: 145/142 standard, 94/42/285 ext fns, 27 common, \
         50/60/174 extensions, 33 not-in-Android, 43 not-in-iOS"
    );
}
