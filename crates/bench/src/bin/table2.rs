//! Regenerates **Table 2**: Cycada iOS OpenGL ES support breakdown.

use cycada::Table2;
use cycada_bench::{print_row, rule};

fn main() {
    let t = Table2::compute();
    let widths = [32, 10];
    println!("Table 2: Cycada iOS OpenGL ES Support Breakdown");
    rule(46);
    print_row(&["Type of Support".into(), "Functions".into()], &widths);
    rule(46);
    for (label, value, paper) in [
        ("Direct Diplomats", t.direct, 312),
        ("Indirect Diplomats", t.indirect, 15),
        ("Data-dependent Diplomats", t.data_dependent, 5),
        ("Multi-Diplomats", t.multi, 2),
        ("Unimplemented (never called)", t.unimplemented, 10),
        ("Total", t.total(), 344),
    ] {
        print_row(&[label.into(), value.to_string()], &widths);
        assert_eq!(value, paper, "{label} diverges from the paper");
    }
    rule(46);
    println!("All rows match the paper exactly.");
}
