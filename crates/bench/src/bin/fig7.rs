//! Regenerates **Figure 7**: SunSpider — percentage of total GLES
//! execution time per function (top 14), measured on Cycada iOS through
//! the instrumented diplomat layer.

use cycada_bench::{print_row, rule};
use cycada_sim::Platform;
use cycada_workloads::browser::Browser;

fn main() {
    let mut browser = Browser::launch(Platform::CycadaIos).expect("browser");
    browser.run_sunspider(None).expect("sunspider run");
    let stats = browser.app().gl_stats().expect("cycada stats");

    println!("Figure 7: SunSpider — % of total GLES time per function (top 14)");
    rule(56);
    let widths = [36, 10];
    print_row(&["Function".into(), "% total".into()], &widths);
    rule(56);
    for share in stats.top_n(14) {
        print_row(
            &[share.name.clone(), format!("{:.2}%", share.percent_of_total)],
            &widths,
        );
    }
    rule(56);
    println!(
        "Paper shape: glFlush, aegl_bridge_draw_fbo_tex and eglSwapBuffers \
         lead; ~40% of time in EAGL-implementation (aegl_*) functions."
    );
}
