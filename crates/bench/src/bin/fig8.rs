//! Regenerates **Figure 8**: PassMark — percentage of total GLES time per
//! function (top 14), measured on Cycada iOS.

use cycada_bench::{print_row, rule};
use cycada_workloads::passmark::run_suite_with_stats;

fn main() {
    let (_scores, stats) = run_suite_with_stats(None, 8).expect("passmark suite");
    println!("Figure 8: PassMark — % of total GLES time per function (top 14)");
    rule(56);
    let widths = [36, 10];
    print_row(&["Function".into(), "% total".into()], &widths);
    rule(56);
    for share in stats.top_n(14) {
        print_row(
            &[share.name.clone(), format!("{:.2}%", share.percent_of_total)],
            &widths,
        );
    }
    rule(56);
    println!(
        "Paper shape: glDrawArrays and glClear lead; aegl_bridge_draw_fbo_tex \
         and eglSwapBuffers (the present path) consume a large share; matrix \
         and client-state setters appear with tiny shares."
    );
}
