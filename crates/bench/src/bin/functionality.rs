//! Regenerates the §9 **functionality** experiments: Safari on Cycada
//! browsing the top-30 US sites (compared against the reference rendering)
//! and the Acid-style conformance test (score + pixel-for-pixel check).

use cycada_bench::rule;
use cycada_sim::Platform;
use cycada_workloads::browser::Browser;
use cycada_workloads::pages::TOP_30_SITES;

fn main() {
    println!("Functionality: Safari (iOS app) on Cycada vs reference rendering");
    rule(66);

    let mut reference = Browser::launch(Platform::StockAndroid).expect("reference browser");
    let mut cycada = Browser::launch(Platform::CycadaIos).expect("cycada browser");

    let mut matched = 0;
    for &site in TOP_30_SITES.iter() {
        let ref_hash = reference.browse(site).expect("reference render");
        let cyc_hash = cycada.browse(site).expect("cycada render");
        let ok = ref_hash == cyc_hash;
        matched += usize::from(ok);
        println!(
            "  {:<22} {}",
            site,
            if ok { "rendered correctly" } else { "MISMATCH" }
        );
    }
    rule(66);
    println!("Top-30 sites rendered correctly: {matched}/30 (paper: 30/30)");

    let (ref_score, ref_hash) = reference.run_acid3().expect("reference acid3");
    let (score, hash) = cycada.run_acid3().expect("cycada acid3");
    println!(
        "Acid3: score {score}/100 (reference {ref_score}/100), pixel-for-pixel: {}",
        if hash == ref_hash { "PASS" } else { "FAIL" }
    );
    println!("Paper: score 100/100, final page pixel-for-pixel identical.");
}
