//! Regenerates **Figure 5**: SunSpider benchmarks, normalized overhead per
//! category (lower is better), for Cycada iOS / Cycada Android / iOS, each
//! normalized to stock Android, plus iOS with JavaScript JIT disabled
//! normalized to iOS.

use cycada_bench::{fmt_ratio, print_row, rule};
use cycada_sim::Platform;
use cycada_workloads::browser::Browser;
use cycada_workloads::js::JsCategory;

fn main() {
    // Native panels; this is the headline run.
    let mut android = Browser::launch(Platform::StockAndroid).expect("android browser");
    let android_run = android.run_sunspider(None).expect("android run");

    let mut cycada_ios = Browser::launch(Platform::CycadaIos).expect("cycada ios browser");
    let cycada_ios_run = cycada_ios.run_sunspider(None).expect("cycada ios run");

    let mut cycada_android =
        Browser::launch(Platform::CycadaAndroid).expect("cycada android browser");
    let cycada_android_run = cycada_android.run_sunspider(None).expect("cycada android run");

    let mut ios = Browser::launch(Platform::NativeIos).expect("ios browser");
    let ios_run = ios.run_sunspider(None).expect("ios run");

    let mut ios_nojit = Browser::launch(Platform::NativeIos).expect("ios browser");
    let ios_nojit_run = ios_nojit.run_sunspider(Some(false)).expect("ios nojit run");

    let widths = [14, 12, 16, 8, 18];
    println!(
        "Figure 5: SunSpider normalized overhead (lower is better; baseline = Android browser on Android)"
    );
    rule(78);
    print_row(
        &[
            "Test".into(),
            "Cycada iOS".into(),
            "Cycada Android".into(),
            "iOS".into(),
            "iOS (JIT off)/iOS".into(),
        ],
        &widths,
    );
    rule(78);

    let lookup = |run: &cycada_workloads::browser::SunspiderRun, c: JsCategory| -> f64 {
        run.rows
            .iter()
            .find(|(cat, _)| *cat == c)
            .map(|(_, ns)| *ns as f64)
            .expect("category present")
    };

    for category in JsCategory::ALL {
        let base = lookup(&android_run, category);
        print_row(
            &[
                category.label().into(),
                fmt_ratio(lookup(&cycada_ios_run, category) / base),
                fmt_ratio(lookup(&cycada_android_run, category) / base),
                fmt_ratio(lookup(&ios_run, category) / base),
                fmt_ratio(lookup(&ios_nojit_run, category) / lookup(&ios_run, category)),
            ],
            &widths,
        );
    }
    let base = android_run.total as f64;
    print_row(
        &[
            "Total".into(),
            fmt_ratio(cycada_ios_run.total as f64 / base),
            fmt_ratio(cycada_android_run.total as f64 / base),
            fmt_ratio(ios_run.total as f64 / base),
            fmt_ratio(ios_nojit_run.total as f64 / ios_run.total as f64),
        ],
        &widths,
    );
    rule(78);
    println!(
        "Paper shape: Cycada Android and iOS near 1x; Cycada iOS >4x overall \
         (no JIT), >10x on access/bitops, regexp worst; iOS JIT-off ~4.2x vs iOS."
    );
}
