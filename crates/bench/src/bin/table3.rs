//! Regenerates **Table 3**: kernel-level / ABI micro-benchmarks.

use cycada_bench::{fmt_ns, print_row, rule};
use cycada_workloads::lmbench::Table3;

fn main() {
    let t = Table3::measure();
    println!("Table 3: Kernel-level / ABI Micro-Benchmarks");
    rule(62);
    println!("Null Syscall");
    let widths = [20, 12, 12];
    print_row(
        &["System".into(), "Measured".into(), "Paper".into()],
        &widths,
    );
    rule(62);
    let paper_null = [225u64, 244, 305, 575];
    for (row, paper) in t.null_syscall.iter().zip(paper_null) {
        print_row(
            &[
                row.platform.label().into(),
                fmt_ns(row.ns),
                fmt_ns(paper),
            ],
            &widths,
        );
    }
    rule(62);
    println!("Diplomatic Calls (Cycada)");
    print_row(
        &["Function".into(), "Measured".into(), "Paper".into()],
        &widths,
    );
    rule(62);
    for (label, measured, paper) in [
        ("Standard Function", t.calls.standard_function_ns, 9),
        ("Diplomat", t.calls.diplomat_ns, 816),
        ("Diplomat + Pre/Post", t.calls.diplomat_pre_post_ns, 828),
        ("Diplomat + GL Pre/Post", t.calls.diplomat_gl_pre_post_ns, 933),
    ] {
        print_row(&[label.into(), fmt_ns(measured), fmt_ns(paper)], &widths);
    }
    rule(62);
}
