//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation removes or varies one Cycada mechanism and reports the
//! virtual-time consequence, quantifying *why* the design is the way it
//! is:
//!
//! 1. prelude/postlude kinds (the Table 3 ladder, per-call);
//! 2. diplomat coalescing — libEGLbridge's "pay the overhead of one
//!    diplomat" vs. issuing each Android call through its own diplomat;
//! 3. the present path — the unoptimized full-screen-quad EAGL present vs.
//!    a hypothetical direct-post path;
//! 4. DLR replica cost — per-EAGLContext replication vs. reusing one
//!    connection (what correctness would forbid);
//! 5. iOS-binary draw batching — the complex-3D win as a function of
//!    batch size.

use cycada::{AppGl, CycadaDevice};
use cycada_bench::{fmt_ratio, rule};
use cycada_diplomat::{DiplomatEntry, DiplomatPattern, HookKind};
use cycada_gles::{GlesVersion, Primitive};
use cycada_sim::Platform;

fn main() {
    ablation_hooks();
    ablation_coalescing();
    ablation_present_path();
    ablation_dlr_cost();
    ablation_batching();
}

/// Prelude/postlude ladder (per call, virtual ns).
fn ablation_hooks() {
    println!("Ablation 1: diplomat prelude/postlude kinds (per call)");
    rule(56);
    let device = CycadaDevice::boot_with_display(Some((64, 48))).expect("boot");
    let tid = device.main_tid();
    for (label, hooks) in [
        ("no hooks", HookKind::None),
        ("empty hooks", HookKind::Empty),
        ("GLES hooks", HookKind::Gles),
    ] {
        let entry = DiplomatEntry::new(
            format!("ablation_{label}"),
            cycada_egl::loadout::VENDOR_GLES_LIB,
            "glFlush",
            DiplomatPattern::Direct,
            hooks,
        );
        device.engine().call(tid, &entry, || {}).expect("warm");
        let before = device.kernel().clock().now_ns();
        for _ in 0..100 {
            device.engine().call(tid, &entry, || {}).expect("call");
        }
        let per_call = (device.kernel().clock().now_ns() - before) / 100;
        println!("  {label:<14} {per_call} ns");
    }
    println!();
}

/// One coalesced diplomat vs. N separate diplomats for an N-step job.
fn ablation_coalescing() {
    println!("Ablation 2: multi-diplomat coalescing (libEGLbridge rationale)");
    rule(56);
    let device = CycadaDevice::boot_with_display(Some((64, 48))).expect("boot");
    let tid = device.main_tid();
    let entry = DiplomatEntry::new(
        "ablation_coalesced",
        cycada_egl::loadout::VENDOR_GLES_LIB,
        "glFlush",
        DiplomatPattern::Multi,
        HookKind::Gles,
    );
    device.engine().call(tid, &entry, || {}).expect("warm");
    for steps in [2u64, 5, 10] {
        // Coalesced: one diplomat wrapping all N domestic steps.
        let before = device.kernel().clock().now_ns();
        device
            .engine()
            .call(tid, &entry, || {
                for _ in 0..steps {
                    device.kernel().clock().charge_ns(9); // domestic call
                }
            })
            .expect("coalesced");
        let coalesced = device.kernel().clock().now_ns() - before;

        // Separate: one diplomat per domestic step.
        let before = device.kernel().clock().now_ns();
        for _ in 0..steps {
            device
                .engine()
                .call(tid, &entry, || {
                    device.kernel().clock().charge_ns(9);
                })
                .expect("separate");
        }
        let separate = device.kernel().clock().now_ns() - before;
        println!(
            "  {steps:>2} Android calls: coalesced {coalesced} ns, separate {separate} ns ({}x)",
            fmt_ratio(separate as f64 / coalesced as f64)
        );
    }
    println!();
}

/// The EAGL present path vs. a direct post of the drawable.
fn ablation_present_path() {
    println!("Ablation 3: EAGL present path (full-screen quad + swap vs direct post)");
    rule(56);
    let app = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V1, None).expect("boot");
    app.clear(0.3, 0.3, 0.3, 1.0).expect("clear");
    // The real (unoptimized, §5) path.
    let before = app.now_ns();
    app.present().expect("present");
    let quad_path = app.now_ns() - before;

    // Hypothetical optimized path: post the drawable straight to the
    // compositor (what "more complicated management of underlying graphics
    // memory" could achieve, §5).
    let device = app.cycada_device().expect("cycada");
    let drawable = app.render_target().expect("drawable");
    let before = app.now_ns();
    device.flinger().post_image(&drawable);
    let direct_path = app.now_ns() - before;
    println!("  quad+swap present: {} us", quad_path / 1000);
    println!("  direct post:       {} us", direct_path / 1000);
    println!(
        "  the unoptimized path costs {}x (the simple-3D overhead of Fig. 6)",
        fmt_ratio(quad_path as f64 / direct_path as f64)
    );
    println!();
}

/// Cost of the per-EAGLContext DLR replica.
fn ablation_dlr_cost() {
    println!("Ablation 4: DLR replica cost per EAGLContext");
    rule(56);
    let device = CycadaDevice::boot_with_display(Some((64, 48))).expect("boot");
    let tid = device.main_tid();
    device.egl().initialize(tid).expect("init");
    let before = device.kernel().clock().now_ns();
    let n = 8;
    for _ in 0..n {
        device.eagl().init_with_api(tid, GlesVersion::V2).expect("ctx");
    }
    let per_ctx = (device.kernel().clock().now_ns() - before) / n;
    println!(
        "  context creation incl. replica: {} us (libui_wrapper + vendor EGL/GLES + deps)",
        per_ctx / 1000
    );
    println!(
        "  replicas alive: {} (one isolated library tree per context)",
        device.linker().replica_count()
    );
    println!("  without DLR: the second GLES version would be refused (EGL_BAD_MATCH).");
    println!();
}

/// The complex-3D batching sweep.
fn ablation_batching() {
    println!("Ablation 5: draw-call batching (the complex-3D crossover)");
    rule(56);
    const TRIS: usize = 2400;
    for batch in [10usize, 40, 100, 400] {
        let app =
            AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V1, Some((320, 200)))
                .expect("boot");
        let start = app.now_ns();
        let mut drawn = 0;
        app.clear(0.1, 0.1, 0.15, 1.0).expect("clear");
        while drawn < TRIS {
            let mut xyz = Vec::with_capacity(batch * 9);
            for i in 0..batch {
                let t = (drawn + i) as f32;
                let a = t * 0.61803;
                let r = 0.1 + (t % 97.0) / 97.0 * 0.8;
                xyz.extend_from_slice(&[
                    a.cos() * r,
                    a.sin() * r,
                    0.0,
                    a.cos() * r + 0.02,
                    a.sin() * r,
                    0.0,
                    a.cos() * r,
                    a.sin() * r + 0.02,
                    0.0,
                ]);
            }
            app.draw(Primitive::Triangles, &xyz, [0.3, 0.9, 0.5, 1.0])
                .expect("draw");
            drawn += batch;
        }
        app.present().expect("present");
        let frame_us = (app.now_ns() - start) / 1000;
        println!(
            "  batch {batch:>3} ({:>3} draws): frame {frame_us} us",
            TRIS / batch
        );
    }
    println!("  larger batches amortize the ~14 us per-draw driver cost — the");
    println!("  iOS frameworks' batching is why Cycada iOS wins complex 3D.");
}
