//! Shared helpers for the table/figure regenerator binaries.
//!
//! Each `src/bin/*.rs` binary regenerates one artifact of the paper's
//! evaluation (`table1`..`table3`, `fig5`..`fig10`, `functionality`); this
//! library holds the formatting helpers they share.

#![warn(missing_docs)]

/// Prints a rule line of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a nanosecond value the way the paper's tables do.
pub fn fmt_ns(ns: u64) -> String {
    format!("{ns} ns")
}

/// Formats a nanosecond value as microseconds (Figures 9 and 10).
pub fn fmt_us(ns: f64) -> String {
    format!("{:.0}", ns / 1_000.0)
}

/// Formats a ratio with two decimals.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}")
}

/// A simple fixed-width row printer.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:<width$}  "));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_ns(225), "225 ns");
        assert_eq!(fmt_us(933_000.0), "933");
        assert_eq!(fmt_ratio(4.4219), "4.42");
    }
}
