//! Micro-benchmarks of the trace plane's cost contract.
//!
//! The disabled-path numbers are the price every instrumented call site
//! pays in production with tracing off — one relaxed atomic load and a
//! branch, which must stay at low single-digit nanoseconds for the plane
//! to be safe to leave compiled into the diplomat hot path. The
//! enabled-path numbers are the per-event recording cost (seqlock slot
//! write into the thread's own ring, no locks, no allocation).
//!
//! Run with `CRITERION_JSON_OUT=BENCH_trace.json cargo bench --bench
//! trace` to emit the committed results file.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use cycada_sim::trace::{self, Category, Counter};

/// The disabled span call site: what `DiplomatEngine::call` pays per call
/// when tracing is off (gate load + branch, no event).
fn bench_disabled_span(c: &mut Criterion) {
    trace::set_enabled(false);
    c.bench_function("trace/disabled_span_call_site", |b| {
        b.iter(|| {
            let s = trace::span(Category::Diplomat, "glDrawElements");
            black_box(&s);
        })
    });
}

/// The disabled instant call site (EGL lifecycle, IOSurface lock sites).
fn bench_disabled_instant(c: &mut Criterion) {
    trace::set_enabled(false);
    c.bench_function("trace/disabled_instant_call_site", |b| {
        b.iter(|| {
            trace::instant(Category::IoSurface, "IOSurfaceLock", black_box(7));
        })
    });
}

/// An always-on counter bump (the failure/lifecycle counters that count
/// even with tracing disabled).
fn bench_counter_bump(c: &mut Criterion) {
    c.bench_function("trace/always_on_counter_bump", |b| {
        b.iter(|| {
            trace::bump(black_box(Counter::EaglPresents));
        })
    });
}

/// The enabled span: open + record one complete event into the calling
/// thread's ring (two wall-clock reads, two ledger reads, one slot write).
fn bench_enabled_span(c: &mut Criterion) {
    trace::set_enabled(true);
    c.bench_function("trace/enabled_span_event", |b| {
        b.iter(|| {
            let s = trace::span(Category::Diplomat, "glDrawElements");
            black_box(&s);
        })
    });
    trace::set_enabled(false);
    trace::clear();
}

/// The enabled instant: one point event into the ring.
fn bench_enabled_instant(c: &mut Criterion) {
    trace::set_enabled(true);
    c.bench_function("trace/enabled_instant_event", |b| {
        b.iter(|| {
            trace::instant(Category::IoSurface, "IOSurfaceLock", black_box(7));
        })
    });
    trace::set_enabled(false);
    trace::clear();
}

/// Draining a full ring into the Chrome JSON exporter (the cost of
/// `AppGl::trace_end_json` per 4096 buffered events).
fn bench_export_full_ring(c: &mut Criterion) {
    trace::set_enabled(true);
    for i in 0..4096u64 {
        trace::instant(Category::App, "fill", i);
    }
    trace::set_enabled(false);
    let events = trace::snapshot();
    c.bench_function("trace/export_chrome_json_4096", |b| {
        b.iter(|| {
            black_box(trace::chrome_trace_json(black_box(&events)));
        })
    });
    trace::clear();
}

criterion_group!(
    benches,
    bench_disabled_span,
    bench_disabled_instant,
    bench_counter_bump,
    bench_enabled_span,
    bench_enabled_instant,
    bench_export_full_ring,
);
criterion_main!(benches);
