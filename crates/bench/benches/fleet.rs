//! Fleet-plane load benchmark: boots fleets of shared Cycada devices,
//! churns sessions through them via the `cycada-fleet` work-stealing
//! orchestrator, and writes the committed `BENCH_fleet.json` — total
//! frame throughput, p50/p95/p99 attach and frame wall latency,
//! per-device virtual-vs-wall efficiency, and trace-plane counter
//! rollups (steals, deadline misses, damage/present/ledger fallbacks)
//! for each fleet shape.
//!
//! Shapes scale from one device up to thousands of devices and sessions;
//! every session still runs the full stack (attach → scenario setup →
//! metered frames → teardown). The orchestrator's determinism contract
//! is asserted by `tests/tests/fleet.rs`, not here — this harness only
//! measures.
//!
//! Usage:
//!   cargo bench --bench fleet               # all shapes, writes BENCH_fleet.json
//!   cargo bench --bench fleet -- --test     # one tiny smoke shape, no file
//!   CYCADA_FLEET_DEVICES=64 CYCADA_FLEET_SESSIONS=4096 \
//!       cargo bench --bench fleet           # override the sweep shape
//!   CYCADA_FLEET_JSON_OUT=/tmp/f.json cargo bench --bench fleet
//!
//! `CYCADA_FLEET_DEVICES`/`CYCADA_FLEET_SESSIONS` apply to the final
//! (sweep) shape only, so nightly full-scale runs can push it without
//! losing the comparable smaller shapes.

use cycada_fleet::{fleet_json, run_fleet, FleetConfig, FleetReport};

/// The committed result file, resolved from the package directory so the
/// bench works from any cwd.
const DEFAULT_OUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");

const DISPLAY: (u32, u32) = (64, 48);
const FRAMES: u32 = 4;

fn shape(name: &str, devices: usize, sessions: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(name, devices, sessions);
    cfg.frames = FRAMES;
    cfg.display = DISPLAY;
    cfg
}

fn run_shape(cfg: &FleetConfig) -> FleetReport {
    let report = run_fleet(cfg).unwrap_or_else(|e| panic!("fleet shape {}: {e}", cfg.name));
    let attach = report.attach_percentiles();
    let frame = report.frame_percentiles();
    println!(
        "fleet/{:<12} {:>5} devices {:>6} sessions {:>2} workers | \
         {:>9.1} frames/s | attach p50/p95/p99 {}/{}/{} us | \
         frame p50/p95/p99 {}/{}/{} us | {} stolen, {} deadline misses",
        report.name,
        report.devices.len(),
        report.outcomes.len(),
        report.workers,
        report.throughput_fps(),
        attach.p50 / 1_000,
        attach.p95 / 1_000,
        attach.p99 / 1_000,
        frame.p50 / 1_000,
        frame.p95 / 1_000,
        frame.p99 / 1_000,
        report.tasks_stolen,
        report.deadline_misses,
    );
    report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    if smoke {
        // Bench-target smoke mode (`cargo bench -- --test`): one tiny
        // fleet proves the harness end to end, no file written.
        let report = run_shape(&shape("smoke_d2_s8", 2, 8));
        assert_eq!(report.outcomes.len(), 8);
        println!("fleet bench smoke ok");
        return;
    }

    let shapes = [
        // Baseline: every session contends for one shared device.
        shape("d1_s32", 1, 32),
        // Mid-size fleet: sessions spread over 8 devices.
        shape("d8_s256", 8, 256),
        // Wide fleet: many devices, few sessions each (attach-heavy).
        shape("d256_s1024", 256, 1024),
        // Full-scale sweep: thousands of devices and sessions. Nightly
        // can push this further via the env knobs.
        shape("sweep_d1024_s4096", 1024, 4096).with_env(),
    ];
    let reports: Vec<_> = shapes.iter().map(run_shape).collect();

    let out = std::env::var("CYCADA_FLEET_JSON_OUT").unwrap_or_else(|_| DEFAULT_OUT.to_owned());
    std::fs::write(&out, fleet_json(&reports))
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}
