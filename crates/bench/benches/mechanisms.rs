//! Criterion micro-benchmarks of the reproduction's *real* (wall-clock)
//! mechanism costs — complementing the virtual-time tables: the paper's
//! claim that diplomats are cheap relative to graphics work should hold
//! for our implementation too.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cycada::CycadaDevice;
use cycada_diplomat::{DiplomatEntry, DiplomatPattern, HookKind};
use cycada_gles::{GlesVersion, Primitive};
use cycada_gpu::{DrawClass, GpuDevice, Image, PixelFormat, Rgba, Vertex};
use cycada_sim::{GpuCostModel, Platform, VirtualClock};

fn bench_diplomat_dispatch(c: &mut Criterion) {
    let device = CycadaDevice::boot_with_display(Some((64, 48))).expect("boot");
    let tid = device.main_tid();
    let entry = DiplomatEntry::new(
        "bench_probe",
        cycada_egl::loadout::VENDOR_GLES_LIB,
        "glFlush",
        DiplomatPattern::Direct,
        HookKind::Gles,
    );
    device.engine().call(tid, &entry, || {}).expect("warm");
    c.bench_function("diplomat_call_gles_hooks", |b| {
        b.iter(|| {
            device
                .engine()
                .call(tid, &entry, || black_box(0u64))
                .expect("call")
        })
    });
}

fn bench_dlforce_replica(c: &mut Criterion) {
    let device = CycadaDevice::boot_with_display(Some((64, 48))).expect("boot");
    let linker = device.linker().clone();
    // Warm the default namespace.
    linker.dlopen(cycada::LIBUI_WRAPPER).expect("dlopen");
    c.bench_function("dlforce_libui_wrapper_tree", |b| {
        b.iter_batched(
            || (),
            |()| {
                let replica = linker.dlforce(cycada::LIBUI_WRAPPER).expect("dlforce");
                let id = replica.id();
                black_box(&replica);
                linker.unload_replica(id);
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_thread_impersonation(c: &mut Criterion) {
    let device = CycadaDevice::boot_with_display(Some((64, 48))).expect("boot");
    let main = device.main_tid();
    let worker = device.spawn_ios_thread().expect("spawn");
    let engine = device.engine().clone();
    for slot in 10..18 {
        engine
            .graphics_tls()
            .register_well_known(cycada_sim::Persona::Android, slot);
    }
    c.bench_function("impersonation_8_slots_round_trip", |b| {
        b.iter(|| {
            let guard = engine.impersonate(worker, main).expect("impersonate");
            guard.finish().expect("finish");
        })
    });
}

fn bench_rasterizer_fullscreen(c: &mut Criterion) {
    let gpu = GpuDevice::new(VirtualClock::new(), GpuCostModel::tegra3());
    let target = Image::new(256, 256, PixelFormat::Rgba8888);
    let verts = vec![
        Vertex::colored([-1.0, -1.0, 0.0], Rgba::RED),
        Vertex::colored([3.0, -1.0, 0.0], Rgba::GREEN),
        Vertex::colored([-1.0, 3.0, 0.0], Rgba::BLUE),
    ];
    c.bench_function("raster_fullscreen_256x256_tri", |b| {
        b.iter(|| {
            gpu.draw(
                &target,
                None,
                black_box(&verts),
                None,
                &cycada_gpu::Pipeline::default(),
                DrawClass::ThreeD,
            )
        })
    });
}

fn bench_bridge_draw_call(c: &mut Criterion) {
    let app =
        cycada::AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V1, Some((64, 48)))
            .expect("boot");
    let xyz = [-0.1f32, -0.1, 0.0, 0.1, -0.1, 0.0, 0.0, 0.1, 0.0];
    c.bench_function("bridge_small_draw_end_to_end", |b| {
        b.iter(|| {
            app.draw(Primitive::Triangles, black_box(&xyz), [1.0, 0.0, 0.0, 1.0])
                .expect("draw")
        })
    });
}

fn bench_native_vendor_draw_call(c: &mut Criterion) {
    let app = cycada::AppGl::boot_with_display(
        Platform::StockAndroid,
        GlesVersion::V1,
        Some((64, 48)),
    )
    .expect("boot");
    let xyz = [-0.1f32, -0.1, 0.0, 0.1, -0.1, 0.0, 0.0, 0.1, 0.0];
    c.bench_function("native_small_draw_end_to_end", |b| {
        b.iter(|| {
            app.draw(Primitive::Triangles, black_box(&xyz), [1.0, 0.0, 0.0, 1.0])
                .expect("draw")
        })
    });
}

criterion_group!(
    benches,
    bench_diplomat_dispatch,
    bench_dlforce_replica,
    bench_thread_impersonation,
    bench_rasterizer_fullscreen,
    bench_bridge_draw_call,
    bench_native_vendor_draw_call,
);
criterion_main!(benches);
