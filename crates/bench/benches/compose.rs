//! Wall-time benchmarks of the damage-tracked tile compositor
//! (DESIGN.md §5g).
//!
//! Each scene from [`cycada_workloads::partial_update`] runs with the
//! damage plane on (tile memo, clean skips, occlusion culling) and off
//! (full recomposition of every blit, every frame). Output bytes and
//! charged virtual time are identical in both modes — asserted by the
//! crate's differential tests and the GLES fuzzer — so the *_damage_on
//! vs *_damage_off ratio here is pure wall-time win on redundant frame
//! content: badge-update frames are ~99% clean, split-screen frames are
//! ~97% clean, and the occluded scene's animating lower layer is never
//! composed at all.
//!
//! Run `CRITERION_JSON_OUT=$(pwd)/BENCH_compose.json cargo bench
//! --bench compose` from the repo root to refresh the committed results
//! file (the shim resolves relative paths against the package
//! directory).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use cycada_workloads::partial_update::{Scene, SceneRun};

/// Frames per iteration: enough that the warm-up present (which always
/// fully composes) is amortized away.
const FRAMES: u64 = 8;

fn bench_scene(c: &mut Criterion, scene: Scene, damage: bool) {
    let name = format!(
        "compose/{}_damage_{}",
        scene.label(),
        if damage { "on" } else { "off" }
    );
    // Scene construction (image allocation, static content painting)
    // stays outside the measurement: each iteration is FRAMES
    // steady-state present cycles against a warm tile memo.
    let mut run = SceneRun::new(scene);
    run.flinger().gpu().set_damage_tracking(damage);
    c.bench_function(&name, |b| {
        b.iter(|| black_box(run.run(FRAMES).frames));
    });
    run.flinger().gpu().set_damage_tracking(true);
}

fn bench_compose(c: &mut Criterion) {
    for scene in Scene::ALL {
        bench_scene(c, scene, true);
        bench_scene(c, scene, false);
    }
}

criterion_group!(benches, bench_compose);
criterion_main!(benches);
