//! Micro-benchmarks of the raster plane: per-pixel-lock reference vs the
//! span-based single-lock paths, serial vs tiled.
//!
//! The pre-refactor rasterizer paid a full `RwLock` round-trip per pixel
//! (`Image::set_pixel` → `SharedBuffer::write`), so a 1280×800 clear was
//! ~1M lock acquisitions; the fast plane locks once per operation and fills
//! spans of row slices. These benchmarks measure exactly that ratio — same
//! scene, same bytes out (asserted by the equivalence tests), different
//! locking and inner loop. `raster/*_reference` cases run the preserved
//! per-pixel implementation as the baseline the ISSUE's ≥5× criterion is
//! judged against. `*_tiled_*` cases go through the pixel-count
//! profitability gate (`tiling_profitable`); `*_forced_bands_*` bypass it
//! to keep the raw banding overhead measurable on any host.
//!
//! Run `CRITERION_JSON_OUT=$(pwd)/BENCH_raster.json cargo bench --bench
//! raster` from the repo root to refresh the committed results file (the
//! shim resolves relative paths against the package directory).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use cycada_gpu::raster::{self, Pipeline, RasterThreads, Rect};
use cycada_gpu::{Image, PixelFormat, Rgba, Vertex};

const W: u32 = 640;
const H: u32 = 400;

fn fullscreen_tri(color: Rgba) -> Vec<Vertex> {
    vec![
        Vertex::colored([-1.0, -1.0, 0.0], color),
        Vertex::colored([3.0, -1.0, 0.0], color),
        Vertex::colored([-1.0, 3.0, 0.0], color),
    ]
}

fn textured_tri() -> Vec<Vertex> {
    [
        ([-1.0f32, -1.0, 0.0], [0.0f32, 0.0]),
        ([3.0, -1.0, 0.0], [2.0, 0.0]),
        ([-1.0, 3.0, 0.0], [0.0, 2.0]),
    ]
    .iter()
    .map(|&(p, uv)| Vertex::textured(p, uv))
    .collect()
}

/// Reference clear: one `set_pixel` (lock round-trip) per pixel — what
/// `Image::fill` cost before the raster plane.
fn clear_per_pixel(img: &Image, color: Rgba) {
    for y in 0..img.height() {
        for x in 0..img.width() {
            img.set_pixel(x, y, color);
        }
    }
}

fn bench_clear(c: &mut Criterion) {
    let img = Image::new(W, H, PixelFormat::Rgba8888);
    c.bench_function("raster/clear_reference", |b| {
        b.iter(|| clear_per_pixel(black_box(&img), Rgba::BLUE))
    });
    c.bench_function("raster/clear_fill_rect", |b| {
        b.iter(|| black_box(&img).fill(Rgba::BLUE))
    });
}

fn bench_fullscreen_tri(c: &mut Criterion) {
    let verts = fullscreen_tri(Rgba::RED);
    let indices = [0u32, 1, 2];
    let pipeline = Pipeline::default();
    let img = Image::new(W, H, PixelFormat::Rgba8888);
    c.bench_function("raster/fullscreen_tri_reference", |b| {
        b.iter(|| {
            black_box(raster::reference::draw_indexed(
                &img, None, &verts, &indices, &pipeline,
            ))
        })
    });
    c.bench_function("raster/fullscreen_tri_spans", |b| {
        b.iter(|| black_box(raster::draw_indexed(&img, None, &verts, &indices, &pipeline)))
    });
    // The gated entry point: `draw_indexed_tiled` bands only when the
    // estimated pixel count clears `TILE_MIN_PIXELS` AND the host has ≥2
    // cores (`tiling_profitable`), so on a single-core runner these now
    // match `_spans` instead of losing to it.
    for threads in [2usize, 4] {
        c.bench_function(&format!("raster/fullscreen_tri_tiled_{threads}"), |b| {
            b.iter(|| {
                black_box(raster::draw_indexed_tiled(
                    &img,
                    None,
                    &verts,
                    &indices,
                    &pipeline,
                    RasterThreads(threads),
                ))
            })
        });
        // The ungated banding machinery, kept measurable on any host: the
        // overhead the profitability gate exists to avoid.
        c.bench_function(&format!("raster/fullscreen_tri_forced_bands_{threads}"), |b| {
            b.iter(|| {
                black_box(raster::draw_indexed_forced_bands(
                    &img, None, &verts, &indices, &pipeline, threads,
                ))
            })
        });
    }
}

/// A draw far below `TILE_MIN_PIXELS`: the profitability gate must route
/// it to the serial span path, so `_tiled_gated` tracks `_spans` instead
/// of paying band setup for a handful of pixels.
fn bench_small_tri(c: &mut Criterion) {
    let verts = vec![
        Vertex::colored([-0.1, -0.1, 0.0], Rgba::RED),
        Vertex::colored([0.1, -0.1, 0.0], Rgba::RED),
        Vertex::colored([0.0, 0.1, 0.0], Rgba::RED),
    ];
    let indices = [0u32, 1, 2];
    let pipeline = Pipeline::default();
    let img = Image::new(W, H, PixelFormat::Rgba8888);
    c.bench_function("raster/small_tri_spans", |b| {
        b.iter(|| black_box(raster::draw_indexed(&img, None, &verts, &indices, &pipeline)))
    });
    c.bench_function("raster/small_tri_tiled_gated", |b| {
        b.iter(|| {
            black_box(raster::draw_indexed_tiled(
                &img,
                None,
                &verts,
                &indices,
                &pipeline,
                RasterThreads(4),
            ))
        })
    });
}

fn bench_textured_tri(c: &mut Criterion) {
    let tex = Image::new(64, 64, PixelFormat::Rgba8888);
    tex.fill(Rgba::GREEN);
    let verts = textured_tri();
    let indices = [0u32, 1, 2];
    let pipeline = Pipeline {
        texture: Some(&tex),
        ..Pipeline::default()
    };
    let img = Image::new(W, H, PixelFormat::Rgba8888);
    c.bench_function("raster/textured_tri_reference", |b| {
        b.iter(|| {
            black_box(raster::reference::draw_indexed(
                &img, None, &verts, &indices, &pipeline,
            ))
        })
    });
    c.bench_function("raster/textured_tri_spans", |b| {
        b.iter(|| black_box(raster::draw_indexed(&img, None, &verts, &indices, &pipeline)))
    });
}

fn bench_blit(c: &mut Criterion) {
    // Same-format unscaled: the memcpy fast path (the SurfaceFlinger
    // full-screen post and the EAGL staging copy shape).
    let src = Image::new(W, H, PixelFormat::Rgba8888);
    src.fill(Rgba::RED);
    let dst = Image::new(W, H, PixelFormat::Rgba8888);
    c.bench_function("raster/blit_same_format_reference", |b| {
        b.iter(|| {
            black_box(raster::reference::blit(
                &src,
                Rect::of_image(&src),
                &dst,
                Rect::of_image(&dst),
            ))
        })
    });
    c.bench_function("raster/blit_same_format_memcpy", |b| {
        b.iter(|| {
            black_box(raster::blit(
                &src,
                Rect::of_image(&src),
                &dst,
                Rect::of_image(&dst),
            ))
        })
    });

    // Converting (BGRA→RGBA, the present-path staging copy before the
    // formats match): row-sliced per-pixel, still one lock pair.
    let bgra = Image::new(W, H, PixelFormat::Bgra8888);
    bgra.fill(Rgba::GREEN);
    c.bench_function("raster/blit_convert_rows", |b| {
        b.iter(|| {
            black_box(raster::blit(
                &bgra,
                Rect::of_image(&bgra),
                &dst,
                Rect::of_image(&dst),
            ))
        })
    });
}

criterion_group!(
    raster_plane,
    bench_clear,
    bench_fullscreen_tri,
    bench_small_tri,
    bench_textured_tri,
    bench_blit,
);
criterion_main!(raster_plane);
