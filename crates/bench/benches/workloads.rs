//! Criterion benchmarks of the workload layers (real wall-clock time):
//! WebKit-sim page rendering, the IOSurface lock/unlock dance, and
//! registry queries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cycada::AppGl;
use cycada_gles::{GlesRegistry, GlesVersion};
use cycada_sim::Platform;
use cycada_workloads::pages::WebPage;
use cycada_workloads::webkit::WebView;

fn bench_webkit_page_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("webkit_page_render_320x200");
    for platform in [Platform::StockAndroid, Platform::CycadaIos] {
        let app = AppGl::boot_with_display(platform, GlesVersion::V2, Some((320, 200)))
            .expect("boot");
        let mut view = WebView::new(&app).expect("view");
        let page = WebPage::for_site("wikipedia.org");
        group.bench_function(platform.label(), |b| {
            b.iter(|| view.render_page(&app, black_box(&page)).expect("render"))
        });
    }
    group.finish();
}

fn bench_iosurface_lock_dance(c: &mut Criterion) {
    let app = AppGl::boot_with_display(Platform::CycadaIos, GlesVersion::V2, Some((64, 48)))
        .expect("boot");
    let device = app.cycada_device().expect("cycada");
    let iosb = device.iosurface_bridge();
    let tid = app.tid();
    let surface = iosb
        .create(tid, cycada_iosurface::SurfaceProps::bgra(32, 32))
        .expect("surface");
    let tex = device.bridge().gen_textures(tid, 1).expect("tex")[0];
    iosb.tex_image_io_surface(tid, surface.id(), tex)
        .expect("bind");
    c.bench_function("iosurface_lock_unlock_dance", |b| {
        b.iter(|| {
            iosb.lock(tid, &surface).expect("lock");
            iosb.unlock(tid, &surface).expect("unlock");
        })
    });
}

fn bench_registry_queries(c: &mut Criterion) {
    c.bench_function("registry_table1", |b| {
        b.iter(|| black_box(GlesRegistry::global().table1()))
    });
    c.bench_function("registry_ios_entry_points", |b| {
        b.iter(|| black_box(GlesRegistry::global().ios_entry_points().len()))
    });
    c.bench_function("table2_classification", |b| {
        b.iter(|| black_box(cycada::Table2::compute()))
    });
}

criterion_group!(
    benches,
    bench_webkit_page_render,
    bench_iosurface_lock_dance,
    bench_registry_queries,
);
criterion_main!(benches);
