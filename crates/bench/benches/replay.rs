//! Micro-benchmarks of the replay plane's cost contract.
//!
//! The disabled-path number is the price every instrumented `AppGl`
//! entry point pays in production with recording off — one relaxed
//! atomic load and a branch, which must stay at low single-digit
//! nanoseconds for the hooks to be safe to leave compiled in. The
//! recording numbers put a price on running with `CYCADA_RECORD` live
//! (full passmark frames, recorded vs not), and the replay numbers
//! compare re-driving a recorded stream against running the scripted
//! scenario it came from — replay should cost about the same wall time
//! as the workload itself, since it executes the same stack.
//!
//! Run with `CRITERION_JSON_OUT=BENCH_replay.json cargo bench --bench
//! replay` to emit the committed results file.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use cycada::AppGl;
use cycada_replay::{record_scenario, replay_stream, ReplayOptions};
use cycada_sim::replay::{self, Recording, StreamMeta};
use cycada_sim::Platform;
use cycada_workloads::scenario::{self, Scenario};

const SEED: u64 = 0xBE7C;
const FRAMES: u32 = 4;
const DISPLAY: (u32, u32) = (48, 32);

/// The disabled call-site gate: what every instrumented facade method
/// pays per call when no recording is attached.
fn bench_disabled_gate(c: &mut Criterion) {
    c.bench_function("replay/disabled_call_site_gate", |b| {
        b.iter(|| black_box(replay::active()))
    });
}

/// Attaching and detaching a recording (scope setup cost per recorded
/// session).
fn bench_attach_detach(c: &mut Criterion) {
    let meta = StreamMeta {
        platform: Platform::CycadaIos,
        gles: 1,
        width: DISPLAY.0,
        height: DISPLAY.1,
        seed: SEED,
        label: "bench".to_owned(),
    };
    c.bench_function("replay/recording_attach_detach", |b| {
        b.iter(|| {
            let rec = Recording::new(meta.clone());
            let guard = rec.attach();
            black_box(&guard);
        })
    });
}

/// One full passmark frame set with recording off — the baseline the
/// recording overhead is measured against.
fn scripted_frames(app: &mut AppGl, state: &mut scenario::ScenarioState) {
    for f in 0..FRAMES {
        scenario::frame(app, state, SEED, f).expect("frame");
    }
}

fn bench_record_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay/record_overhead");
    let mut app = AppGl::boot_with_display(
        Platform::CycadaIos,
        Scenario::Passmark.gles_version(),
        Some(DISPLAY),
    )
    .expect("boot");
    let mut state = scenario::setup(&mut app, Scenario::Passmark, SEED).expect("setup");

    group.bench_function("passmark_frames_unrecorded", |b| {
        b.iter(|| scripted_frames(&mut app, &mut state))
    });
    group.bench_function("passmark_frames_recorded", |b| {
        let meta = StreamMeta {
            platform: Platform::CycadaIos,
            gles: 1,
            width: DISPLAY.0,
            height: DISPLAY.1,
            seed: SEED,
            label: "bench".to_owned(),
        };
        b.iter(|| {
            let rec = Recording::new(meta.clone());
            let _g = rec.attach();
            scripted_frames(&mut app, &mut state);
            black_box(rec.len());
        })
    });
    group.finish();
}

/// Replay wall cost vs the scripted workload it was recorded from, plus
/// the codec's encode/decode throughput on a real trace.
fn bench_replay_vs_scripted(c: &mut Criterion) {
    let stream =
        record_scenario(Scenario::Passmark, SEED, FRAMES, DISPLAY).expect("record passmark");
    let bytes = stream.encode();
    let mut group = c.benchmark_group("replay/replay_vs_scripted");

    group.bench_function("scripted_passmark_session", |b| {
        b.iter(|| {
            let mut app = AppGl::boot_with_display(
                Platform::CycadaIos,
                Scenario::Passmark.gles_version(),
                Some(DISPLAY),
            )
            .expect("boot");
            let mut state = scenario::setup(&mut app, Scenario::Passmark, SEED).expect("setup");
            let _scope = app.session_scope();
            scripted_frames(&mut app, &mut state);
            black_box(app.session_virtual_ns());
        })
    });
    group.bench_function("replayed_passmark_session", |b| {
        b.iter(|| {
            let outcome =
                replay_stream(&stream, &ReplayOptions::default()).expect("replay passmark");
            black_box(outcome.metered_ns);
        })
    });
    group.bench_function("decode_passmark_trace", |b| {
        b.iter(|| black_box(cycada_sim::replay::Stream::decode(black_box(&bytes)).expect("decode")))
    });
    group.bench_function("encode_passmark_trace", |b| {
        b.iter(|| black_box(stream.encode()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_disabled_gate,
    bench_attach_detach,
    bench_record_overhead,
    bench_replay_vs_scripted,
);
criterion_main!(benches);
