//! Micro-benchmarks of the dispatch plane itself: the per-call lookup and
//! accounting cost, legacy string-keyed path vs the interned-FnId path.
//!
//! The pre-refactor bridges paid, on *every* bridged call, a mutex lock and
//! a string hash to fetch the diplomat entry, plus a second lock + hash
//! (and a `String` allocation on first use) to record stats. The interned
//! path replaces both with a call-site-cached [`FnId`], a dense-table
//! index, and relaxed atomic adds. These benchmarks isolate exactly that
//! portion — no kernel, no persona switch — so the speedup is the lookup/
//! accounting ratio the refactor claims.
//!
//! Run with `CRITERION_JSON_OUT=BENCH_dispatch.json cargo bench --bench
//! dispatch` to emit the committed results file.

use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use cycada_diplomat::{DiplomatEntry, DiplomatPattern, DiplomatTable, FnId, HookKind};
use cycada_gles::GlesRegistry;
use cycada_sim::stats::{FunctionStats, LegacyStringStats};

use parking_lot::Mutex;

/// A rotating sample of hot bridged functions (the Figure 7 leaders).
const HOT_NAMES: [&str; 8] = [
    "glDrawElements",
    "eglSwapBuffers",
    "aegl_bridge_draw_fbo_tex",
    "glClear",
    "aegl_bridge_copy_tex_buf",
    "glTexSubImage2D",
    "glFlush",
    "glBindTexture",
];

fn entry_for(id: FnId) -> DiplomatEntry {
    DiplomatEntry::with_id(
        id,
        cycada_egl::loadout::VENDOR_GLES_LIB,
        "glFlush",
        DiplomatPattern::Direct,
        HookKind::Gles,
    )
}

/// The old bridge shape: entry cache and stats both behind mutex + hash.
fn bench_legacy_string_keyed(c: &mut Criterion) {
    GlesRegistry::global();
    let entries: Mutex<HashMap<&'static str, Arc<DiplomatEntry>>> = Mutex::new(HashMap::new());
    for name in HOT_NAMES {
        entries
            .lock()
            .insert(name, Arc::new(entry_for(FnId::intern(name))));
    }
    let stats = LegacyStringStats::new();
    let mut i = 0usize;
    c.bench_function("dispatch/legacy_string_keyed", |b| {
        b.iter(|| {
            let name = HOT_NAMES[i % HOT_NAMES.len()];
            i = i.wrapping_add(1);
            let entry = entries.lock().get(name).cloned().expect("registered");
            black_box(&entry);
            stats.record(name, 933);
        })
    });
}

/// The new shape: call-site-cached FnId, dense table, sharded atomics.
fn bench_interned_fnid(c: &mut Criterion) {
    GlesRegistry::global();
    let table = DiplomatTable::new();
    let ids: Vec<FnId> = HOT_NAMES.iter().map(|n| FnId::intern(n)).collect();
    for &id in &ids {
        table.get_or_register(id, || entry_for(id));
    }
    let stats = FunctionStats::new();
    let mut i = 0usize;
    c.bench_function("dispatch/interned_fnid", |b| {
        b.iter(|| {
            let id = ids[i % ids.len()];
            i = i.wrapping_add(1);
            let entry = table.get(id).expect("registered");
            black_box(entry);
            stats.record_id(id, 933);
        })
    });
}

/// Accounting alone: the stats-recording half of the per-call cost.
fn bench_stats_recording(c: &mut Criterion) {
    let legacy = LegacyStringStats::new();
    let mut i = 0usize;
    c.bench_function("dispatch/stats_record_legacy", |b| {
        b.iter(|| {
            let name = HOT_NAMES[i % HOT_NAMES.len()];
            i = i.wrapping_add(1);
            legacy.record(name, 933);
        })
    });

    let sharded = FunctionStats::new();
    let ids: Vec<FnId> = HOT_NAMES.iter().map(|n| FnId::intern(n)).collect();
    let mut j = 0usize;
    c.bench_function("dispatch/stats_record_interned", |b| {
        b.iter(|| {
            let id = ids[j % ids.len()];
            j = j.wrapping_add(1);
            sharded.record_id(id, 933);
        })
    });
}

/// Totals query: O(n) map scan vs O(shards) running atomics.
fn bench_totals_query(c: &mut Criterion) {
    let names: Vec<FnId> = GlesRegistry::global()
        .ios_entry_points()
        .iter()
        .map(|ep| ep.fn_id)
        .collect();

    let legacy = LegacyStringStats::new();
    for id in &names {
        legacy.record(id.name(), 933);
    }
    c.bench_function("dispatch/totals_legacy_scan", |b| {
        b.iter(|| black_box(legacy.total_ns() + legacy.total_calls()))
    });

    let sharded = FunctionStats::new();
    for &id in &names {
        sharded.record_id(id, 933);
    }
    c.bench_function("dispatch/totals_running_atomics", |b| {
        b.iter(|| black_box(sharded.total_ns() + sharded.total_calls()))
    });
}

criterion_group!(
    dispatch,
    bench_legacy_string_keyed,
    bench_interned_fnid,
    bench_stats_recording,
    bench_totals_query,
);
criterion_main!(dispatch);
