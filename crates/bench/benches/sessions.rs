//! Session-plane benchmarks: throughput of N concurrent app sessions on one
//! shared Cycada device, and the wall cost of attaching a session vs booting
//! a whole device.
//!
//! Naming: `sessions/concurrent_n{N}` and `sessions/serial_n{N}` both render
//! `N × FRAMES_PER_SESSION` frames per iteration — the concurrent variant
//! from N host threads, the serial variant from one — so frames/sec is
//! `(N * FRAMES_PER_SESSION) / mean_ns * 1e9` and the concurrent/serial
//! mean ratio is the parallel speedup. `sessions/device_boot` vs
//! `sessions/session_attach` shows why sharing the device matters: attaching
//! skips the kernel/linker/GPU/flinger boot and must come out ≥10× cheaper.
//!
//! Run with `CRITERION_JSON_OUT=BENCH_sessions.json cargo bench --bench
//! sessions` to emit the committed results file.

use std::sync::Barrier;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use cycada::{AppGl, CycadaDevice};
use cycada_gles::{GlesVersion, Primitive};

const W: u32 = 160;
const H: u32 = 120;
const FRAMES_PER_SESSION: u32 = 6;
const SESSION_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn drive_frames(app: &AppGl, frames: u32) {
    let tri = [-0.8f32, -0.6, 0.0, 0.8, -0.6, 0.0, 0.0, 0.9, 0.0];
    for f in 0..frames {
        let r = (f % 5) as f32 / 5.0;
        app.clear(r, 0.25, 1.0 - r, 1.0).unwrap();
        app.draw(Primitive::Triangles, &tri, [r, 0.8, 0.3, 1.0]).unwrap();
        app.present().unwrap();
    }
}

/// N sessions on one device, each driven from its own host thread.
fn bench_concurrent(c: &mut Criterion) {
    for n in SESSION_COUNTS {
        let device = CycadaDevice::boot_with_display(Some((W, H))).unwrap();
        let mut apps: Vec<AppGl> = (0..n)
            .map(|_| AppGl::attach_cycada(&device, GlesVersion::V1).unwrap())
            .collect();
        // Warm every session (symbol resolution) before measuring.
        for app in &apps {
            drive_frames(app, 1);
        }
        c.bench_function(&format!("sessions/concurrent_n{n}"), |b| {
            b.iter(|| {
                let barrier = Barrier::new(n);
                std::thread::scope(|scope| {
                    for app in &mut apps {
                        let barrier = &barrier;
                        scope.spawn(move || {
                            barrier.wait();
                            drive_frames(app, FRAMES_PER_SESSION);
                        });
                    }
                });
            })
        });
    }
}

/// The same N × FRAMES_PER_SESSION frames, one host thread, back to back.
fn bench_serial(c: &mut Criterion) {
    for n in SESSION_COUNTS {
        let device = CycadaDevice::boot_with_display(Some((W, H))).unwrap();
        let apps: Vec<AppGl> = (0..n)
            .map(|_| AppGl::attach_cycada(&device, GlesVersion::V1).unwrap())
            .collect();
        for app in &apps {
            drive_frames(app, 1);
        }
        c.bench_function(&format!("sessions/serial_n{n}"), |b| {
            b.iter(|| {
                for app in &apps {
                    drive_frames(app, FRAMES_PER_SESSION);
                }
            })
        });
    }
}

/// Full device boot: kernel, linker, vendor libraries, GPU, flinger, EAGL.
fn bench_device_boot(c: &mut Criterion) {
    // Warm up before sampling: the first boots pay one-time global costs
    // (FnId interning, lazy statics, allocator arena growth) that used to
    // land inside the measurement and drag the mean to ~3× the median.
    for _ in 0..16 {
        drop(CycadaDevice::boot_with_display(Some((W, H))).unwrap());
    }
    c.measurement_time(Duration::from_millis(500));
    c.bench_function("sessions/device_boot", |b| {
        b.iter(|| CycadaDevice::boot_with_display(Some((W, H))).unwrap())
    });
    c.measurement_time(Duration::from_millis(250));
}

/// Attaching one more app session to an already-booted device.
fn bench_session_attach(c: &mut Criterion) {
    let device = CycadaDevice::boot_with_display(Some((W, H))).unwrap();
    c.bench_function("sessions/session_attach", |b| {
        b.iter(|| device.attach_session().unwrap())
    });
}

criterion_group!(
    sessions,
    bench_concurrent,
    bench_serial,
    bench_device_boot,
    bench_session_attach,
);
criterion_main!(sessions);
