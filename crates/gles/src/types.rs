//! GLES enums and small value types.

use std::fmt;

/// GLES error codes (the `glGetError` model: first error sticks until read).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GlError {
    /// No error recorded.
    #[default]
    NoError,
    /// An enum argument was not legal for the function.
    InvalidEnum,
    /// A value argument was out of range.
    InvalidValue,
    /// The operation is not allowed in the current state.
    InvalidOperation,
    /// The framebuffer is not complete.
    InvalidFramebufferOperation,
    /// The implementation ran out of memory.
    OutOfMemory,
}

impl fmt::Display for GlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            GlError::NoError => "GL_NO_ERROR",
            GlError::InvalidEnum => "GL_INVALID_ENUM",
            GlError::InvalidValue => "GL_INVALID_VALUE",
            GlError::InvalidOperation => "GL_INVALID_OPERATION",
            GlError::InvalidFramebufferOperation => "GL_INVALID_FRAMEBUFFER_OPERATION",
            GlError::OutOfMemory => "GL_OUT_OF_MEMORY",
        };
        f.write_str(name)
    }
}

/// Primitive assembly modes accepted by the draw calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Independent points (rendered as small quads).
    Points,
    /// Independent line segments (rendered as thin quads).
    Lines,
    /// A connected line strip.
    LineStrip,
    /// A closed line loop.
    LineLoop,
    /// Independent triangles.
    Triangles,
    /// A triangle strip.
    TriangleStrip,
    /// A triangle fan.
    TriangleFan,
}

impl Primitive {
    /// Stable wire code (replay-plane `.cyt` streams; raw enum order is
    /// not a serialization format).
    pub fn code(self) -> u8 {
        match self {
            Primitive::Points => 0,
            Primitive::Lines => 1,
            Primitive::LineStrip => 2,
            Primitive::LineLoop => 3,
            Primitive::Triangles => 4,
            Primitive::TriangleStrip => 5,
            Primitive::TriangleFan => 6,
        }
    }

    /// Inverse of [`Primitive::code`].
    pub fn from_code(code: u8) -> Option<Primitive> {
        match code {
            0 => Some(Primitive::Points),
            1 => Some(Primitive::Lines),
            2 => Some(Primitive::LineStrip),
            3 => Some(Primitive::LineLoop),
            4 => Some(Primitive::Triangles),
            5 => Some(Primitive::TriangleStrip),
            6 => Some(Primitive::TriangleFan),
            _ => None,
        }
    }
}

/// Texture/pixel-transfer formats the simulated stack understands.
///
/// `Bgra` is the Apple-favoured format (`APPLE_texture_format_BGRA8888`);
/// the Tegra library rejects it, which is what forces Cycada's
/// data-dependent conversion diplomats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TexFormat {
    /// 32-bit RGBA.
    Rgba,
    /// 32-bit BGRA (iOS only).
    Bgra,
    /// 16-bit RGB 5-6-5.
    Rgb565,
    /// 8-bit alpha.
    Alpha,
}

impl TexFormat {
    /// Bytes per pixel of client-memory data in this format.
    pub fn bytes_per_pixel(self) -> usize {
        match self {
            TexFormat::Rgba | TexFormat::Bgra => 4,
            TexFormat::Rgb565 => 2,
            TexFormat::Alpha => 1,
        }
    }

    /// Stable wire code (replay-plane `.cyt` streams).
    pub fn code(self) -> u8 {
        match self {
            TexFormat::Rgba => 0,
            TexFormat::Bgra => 1,
            TexFormat::Rgb565 => 2,
            TexFormat::Alpha => 3,
        }
    }

    /// Inverse of [`TexFormat::code`].
    pub fn from_code(code: u8) -> Option<TexFormat> {
        match code {
            0 => Some(TexFormat::Rgba),
            1 => Some(TexFormat::Bgra),
            2 => Some(TexFormat::Rgb565),
            3 => Some(TexFormat::Alpha),
            _ => None,
        }
    }

    /// The GPU pixel format used for storage.
    pub fn pixel_format(self) -> cycada_gpu::PixelFormat {
        match self {
            TexFormat::Rgba => cycada_gpu::PixelFormat::Rgba8888,
            TexFormat::Bgra => cycada_gpu::PixelFormat::Bgra8888,
            TexFormat::Rgb565 => cycada_gpu::PixelFormat::Rgb565,
            TexFormat::Alpha => cycada_gpu::PixelFormat::Alpha8,
        }
    }
}

/// The matrix stack selected by `glMatrixMode` (v1 only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixMode {
    /// The model-view stack.
    #[default]
    ModelView,
    /// The projection stack.
    Projection,
}

/// Server-side capabilities toggled by `glEnable`/`glDisable`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Alpha blending.
    Blend,
    /// Depth testing.
    DepthTest,
    /// Scissor testing.
    ScissorTest,
    /// 2D texturing (v1 fixed function).
    Texture2D,
}

impl Capability {
    /// Stable wire code (replay-plane `.cyt` streams).
    pub fn code(self) -> u8 {
        match self {
            Capability::Blend => 0,
            Capability::DepthTest => 1,
            Capability::ScissorTest => 2,
            Capability::Texture2D => 3,
        }
    }

    /// Inverse of [`Capability::code`].
    pub fn from_code(code: u8) -> Option<Capability> {
        match code {
            0 => Some(Capability::Blend),
            1 => Some(Capability::DepthTest),
            2 => Some(Capability::ScissorTest),
            3 => Some(Capability::Texture2D),
            _ => None,
        }
    }
}

/// Client-side array kinds toggled by `glEnableClientState` (v1 only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientState {
    /// The vertex position array.
    VertexArray,
    /// The vertex color array.
    ColorArray,
    /// The texture coordinate array.
    TexCoordArray,
}

/// Names accepted by `glGetString`. `AppleExtensions` is the non-standard
/// Apple-proprietary parameter the paper's data-dependent `glGetString`
/// diplomat must interpret (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StringName {
    /// `GL_VENDOR`.
    Vendor,
    /// `GL_RENDERER`.
    Renderer,
    /// `GL_VERSION`.
    Version,
    /// `GL_EXTENSIONS`.
    Extensions,
    /// Apple's non-standard "proprietary extensions" parameter, unknown to
    /// Android implementations.
    AppleExtensions,
}

/// Result of `glCheckFramebufferStatus`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramebufferStatus {
    /// The framebuffer is complete and renderable.
    Complete,
    /// An attachment is missing or incomplete.
    IncompleteAttachment,
    /// No image is attached at all.
    MissingAttachment,
    /// The combination of attachments is unsupported.
    Unsupported,
}

/// `glPixelStorei` parameter names, including the two extra parameters the
/// `APPLE_row_bytes` extension adds (§4.1: they "maintain state associated
/// with the current GLES context which controls how three GLES functions
/// read in or write out pixel data").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PixelStoreParam {
    /// `GL_UNPACK_ALIGNMENT`.
    UnpackAlignment,
    /// `GL_PACK_ALIGNMENT`.
    PackAlignment,
    /// `GL_UNPACK_ROW_BYTES_APPLE` (iOS only).
    UnpackRowBytesApple,
    /// `GL_PACK_ROW_BYTES_APPLE` (iOS only).
    PackRowBytesApple,
}

/// Integer state queryable with `glGetIntegerv` (the subset the simulated
/// workloads use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntParam {
    /// `GL_MAX_TEXTURE_SIZE`.
    MaxTextureSize,
    /// `GL_FRAMEBUFFER_BINDING`.
    FramebufferBinding,
    /// `GL_TEXTURE_BINDING_2D`.
    TextureBinding2D,
    /// `GL_VIEWPORT` width (helper; the full query returns 4 values).
    ViewportWidth,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tex_format_sizes() {
        assert_eq!(TexFormat::Rgba.bytes_per_pixel(), 4);
        assert_eq!(TexFormat::Bgra.bytes_per_pixel(), 4);
        assert_eq!(TexFormat::Rgb565.bytes_per_pixel(), 2);
        assert_eq!(TexFormat::Alpha.bytes_per_pixel(), 1);
    }

    #[test]
    fn tex_format_maps_to_gpu_format() {
        assert_eq!(
            TexFormat::Bgra.pixel_format(),
            cycada_gpu::PixelFormat::Bgra8888
        );
    }

    #[test]
    fn gl_error_display() {
        assert_eq!(GlError::InvalidEnum.to_string(), "GL_INVALID_ENUM");
        assert_eq!(GlError::default(), GlError::NoError);
    }
}
