//! The vendor GLES libraries.
//!
//! Each platform ships a proprietary, closed-source GLES implementation:
//! Apple's on iOS and (on the paper's Nexus 7) NVIDIA's
//! `libGLESv2_tegra.so`. A [`VendorGles`] value is the *library-instance
//! state* of one such library: its context table, its per-thread
//! current-context binding, and its flavor-specific behaviours (extension
//! set, BGRA acceptance, `glGetString` parameters, fence API naming).
//!
//! Instances are created by library constructors registered with the
//! simulated linker, so `dlforce` (DLR) naturally produces fresh, isolated
//! `VendorGles` values — which is precisely what `EGL_multi_context`
//! exploits (§8).

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use cycada_gpu::{DrawClass, GpuDevice, Image};
use cycada_kernel::SimTid;
use cycada_sim::slots::SlotTable;
use cycada_sim::Nanos;

use crate::registry::{ApiFlavor, GlesRegistry, GlesVersion};
use crate::state::GlesContext;
use crate::types::StringName;

/// Base CPU cost of any GL entry point (argument validation, dispatch).
const GL_CALL_BASE_NS: Nanos = 500;
/// Driver cost of freeing one texture's GPU memory (Figure 9 shows
/// `glDeleteTextures` averaging hundreds of microseconds on the Tegra).
const DELETE_TEXTURE_NS: Nanos = 280_000;
/// Driver cost of `glFlush` (queue submission).
const FLUSH_NS: Nanos = 500_000;
/// Driver cost of `glFinish` (submission + wait for idle).
const FINISH_NS: Nanos = 800_000;
/// Driver cost of rebinding a framebuffer (render-target validation).
const BIND_FRAMEBUFFER_NS: Nanos = 40_000;
/// Driver cost of binding a texture (residency check).
const BIND_TEXTURE_NS: Nanos = 5_500;
/// Driver cost of making a context current (TLB/command-queue switch).
const MAKE_CURRENT_NS: Nanos = 95_000;

/// Identifier of a GLES context within one vendor library instance.
pub type ContextId = u32;

/// One loaded instance of a vendor GLES library.
///
/// The context registry and the per-thread current binding are dense
/// [`SlotTable`]s (keyed by context id and simulated tid respectively), so
/// concurrent sessions dispatching GL calls never serialize on a shared
/// map lock: each thread's binding lives in its own slot, and the binding
/// carries the context handle so dispatch is a single slot read.
pub struct VendorGles {
    flavor: ApiFlavor,
    device: Arc<GpuDevice>,
    contexts: SlotTable<Arc<Mutex<GlesContext>>>,
    current: SlotTable<(ContextId, Arc<Mutex<GlesContext>>)>,
    next_context: AtomicU32,
    calls_without_context: AtomicU64,
}

impl VendorGles {
    /// Creates a library instance of the given flavor over a GPU device.
    pub fn new(flavor: ApiFlavor, device: Arc<GpuDevice>) -> Self {
        VendorGles {
            flavor,
            device,
            contexts: SlotTable::new(),
            current: SlotTable::new(),
            next_context: AtomicU32::new(1),
            calls_without_context: AtomicU64::new(0),
        }
    }

    /// The library's flavor.
    pub fn flavor(&self) -> ApiFlavor {
        self.flavor
    }

    /// The GPU device this library drives.
    pub fn device(&self) -> &Arc<GpuDevice> {
        &self.device
    }

    /// Number of GL calls made by threads with no current context (a
    /// diagnostic for misuse; real drivers crash or silently no-op).
    pub fn calls_without_context(&self) -> u64 {
        self.calls_without_context.load(Ordering::Relaxed)
    }

    fn charge(&self, ns: Nanos) {
        self.device.clock().charge_ns(ns);
    }

    // ------------------------------------------------------------------
    // Context management (driven by EGL / EAGL)
    // ------------------------------------------------------------------

    /// Creates a context speaking the given GLES version.
    pub fn create_context(&self, version: GlesVersion) -> ContextId {
        let id = self.next_context.fetch_add(1, Ordering::Relaxed);
        let ctx = GlesContext::new(version, self.flavor, self.device.clone());
        self.contexts.set(u64::from(id), Some(Arc::new(Mutex::new(ctx))));
        id
    }

    /// Destroys a context. Returns `true` if it existed.
    pub fn destroy_context(&self, id: ContextId) -> bool {
        self.current.retain(|(bound, _)| *bound != id);
        self.contexts.set(u64::from(id), None).is_some()
    }

    /// Looks up a context object.
    pub fn context(&self, id: ContextId) -> Option<Arc<Mutex<GlesContext>>> {
        self.contexts.get(u64::from(id))
    }

    /// The GLES version of a context.
    pub fn context_version(&self, id: ContextId) -> Option<GlesVersion> {
        self.context(id).map(|c| c.lock().version())
    }

    /// Makes `ctx` current on `tid` (pass `None` to unbind), attaching the
    /// window surface `default_fb` as the default framebuffer.
    ///
    /// Returns `false` if the context does not exist.
    pub fn make_current(
        &self,
        tid: SimTid,
        ctx: Option<ContextId>,
        default_fb: Option<Image>,
    ) -> bool {
        self.charge(MAKE_CURRENT_NS);
        match ctx {
            None => {
                self.current.set(tid.as_u64(), None);
                true
            }
            Some(id) => {
                let Some(handle) = self.context(id) else {
                    return false;
                };
                handle.lock().set_default_framebuffer(default_fb);
                self.current.set(tid.as_u64(), Some((id, handle)));
                true
            }
        }
    }

    /// The context current on `tid`, if any.
    pub fn current_context_id(&self, tid: SimTid) -> Option<ContextId> {
        self.current.get(tid.as_u64()).map(|(id, _)| id)
    }

    /// Runs `f` against the context current on `tid`. This is how every GL
    /// entry point dispatches — the "current context in TLS" model.
    ///
    /// Calls with no current context are silent no-ops (returning the
    /// default), matching undefined-but-not-crashing driver behaviour; the
    /// miss is counted in [`VendorGles::calls_without_context`].
    pub fn with_current<R: Default>(
        &self,
        tid: SimTid,
        f: impl FnOnce(&mut GlesContext) -> R,
    ) -> R {
        self.charge(GL_CALL_BASE_NS);
        // One dense-slot read resolves both the binding and the context
        // handle; no shared map lock on the dispatch path.
        match self.current.get(tid.as_u64()) {
            Some((_, ctx)) => f(&mut ctx.lock()),
            None => {
                self.calls_without_context.fetch_add(1, Ordering::Relaxed);
                R::default()
            }
        }
    }

    // ------------------------------------------------------------------
    // Entry points with flavor- or driver-specific behaviour
    // ------------------------------------------------------------------

    /// `glGetString`. The Apple flavor accepts the non-standard
    /// [`StringName::AppleExtensions`] parameter; on Android it is an
    /// unknown enum (the bridge's data-dependent `glGetString` diplomat
    /// intercepts it, §4.1).
    pub fn get_string(&self, tid: SimTid, name: StringName) -> Option<String> {
        let flavor = self.flavor;
        self.with_current(tid, |ctx| match (name, flavor) {
            (StringName::Vendor, ApiFlavor::Ios) => Some("Apple Inc.".to_owned()),
            (StringName::Vendor, ApiFlavor::Android) => Some("NVIDIA Corporation".to_owned()),
            (StringName::Renderer, ApiFlavor::Ios) => {
                Some("Apple A5X (simulated)".to_owned())
            }
            (StringName::Renderer, ApiFlavor::Android) => {
                Some("NVIDIA Tegra 3 (simulated)".to_owned())
            }
            (StringName::Version, _) => Some(
                match ctx.version() {
                    GlesVersion::V1 => "OpenGL ES-CM 1.1",
                    GlesVersion::V2 => "OpenGL ES 2.0",
                }
                .to_owned(),
            ),
            (StringName::Extensions, _) => {
                Some(GlesRegistry::global().extension_string(match flavor {
                    ApiFlavor::Ios => ApiFlavor::Ios,
                    ApiFlavor::Android => ApiFlavor::Android,
                }))
            }
            (StringName::AppleExtensions, ApiFlavor::Ios) => {
                // Apple's proprietary extension query.
                Some("GL_APPLE_io_surface GL_APPLE_row_bytes".to_owned())
            }
            (StringName::AppleExtensions, ApiFlavor::Android) => {
                ctx.record_error(crate::types::GlError::InvalidEnum);
                None
            }
        })
    }

    /// `glFlush` — expensive driver queue submission.
    pub fn flush(&self, tid: SimTid) {
        self.charge(FLUSH_NS);
        self.with_current(tid, |_| {});
        self.device.flush();
    }

    /// `glFinish` — submission plus wait-for-idle.
    pub fn finish(&self, tid: SimTid) {
        self.charge(FINISH_NS);
        self.with_current(tid, |_| {});
        self.device.flush();
    }

    /// `glBindFramebuffer` — carries a large render-target validation cost
    /// on the Tegra driver (Figure 9).
    pub fn bind_framebuffer(&self, tid: SimTid, name: u32) {
        self.charge(BIND_FRAMEBUFFER_NS);
        self.with_current(tid, |ctx| ctx.bind_framebuffer(name));
    }

    /// `glBindTexture` — residency check cost.
    pub fn bind_texture(&self, tid: SimTid, name: u32) {
        self.charge(BIND_TEXTURE_NS);
        self.with_current(tid, |ctx| ctx.bind_texture(name));
    }

    /// `glDeleteTextures` — cost scales with textures actually freed.
    pub fn delete_textures(&self, tid: SimTid, names: &[u32]) {
        let freed = self.with_current(tid, |ctx| ctx.delete_textures(names));
        self.charge(DELETE_TEXTURE_NS * freed as u64);
    }

    // ------------------------------------------------------------------
    // Fence extensions: APPLE_fence on iOS, NV_fence on Android
    // ------------------------------------------------------------------

    fn assert_symbol(&self, required: ApiFlavor, symbol: &str) {
        assert_eq!(
            self.flavor, required,
            "unresolved symbol {symbol:?}: not exported by this vendor library"
        );
    }

    /// `glGenFencesAPPLE` (iOS library only).
    ///
    /// # Panics
    ///
    /// Panics if called on the Android library (unresolved symbol).
    pub fn gen_fences_apple(&self, tid: SimTid, count: usize) -> Vec<u32> {
        self.assert_symbol(ApiFlavor::Ios, "glGenFencesAPPLE");
        self.with_current(tid, |ctx| ctx.gen_fences(count))
    }

    /// `glSetFenceAPPLE` (iOS library only).
    ///
    /// # Panics
    ///
    /// Panics if called on the Android library.
    pub fn set_fence_apple(&self, tid: SimTid, fence: u32) {
        self.assert_symbol(ApiFlavor::Ios, "glSetFenceAPPLE");
        self.with_current(tid, |ctx| ctx.set_fence(fence));
    }

    /// `glTestFenceAPPLE` (iOS library only).
    ///
    /// # Panics
    ///
    /// Panics if called on the Android library.
    pub fn test_fence_apple(&self, tid: SimTid, fence: u32) -> bool {
        self.assert_symbol(ApiFlavor::Ios, "glTestFenceAPPLE");
        self.with_current(tid, |ctx| ctx.test_fence(fence))
    }

    /// `glFinishFenceAPPLE` (iOS library only).
    ///
    /// # Panics
    ///
    /// Panics if called on the Android library.
    pub fn finish_fence_apple(&self, tid: SimTid, fence: u32) {
        self.assert_symbol(ApiFlavor::Ios, "glFinishFenceAPPLE");
        self.with_current(tid, |ctx| ctx.finish_fence(fence));
    }

    /// `glDeleteFencesAPPLE` (iOS library only).
    ///
    /// # Panics
    ///
    /// Panics if called on the Android library.
    pub fn delete_fences_apple(&self, tid: SimTid, fences: &[u32]) {
        self.assert_symbol(ApiFlavor::Ios, "glDeleteFencesAPPLE");
        self.with_current(tid, |ctx| ctx.delete_fences(fences));
    }

    /// `glGenFencesNV` (Android/Tegra library only).
    ///
    /// # Panics
    ///
    /// Panics if called on the iOS library.
    pub fn gen_fences_nv(&self, tid: SimTid, count: usize) -> Vec<u32> {
        self.assert_symbol(ApiFlavor::Android, "glGenFencesNV");
        self.with_current(tid, |ctx| ctx.gen_fences(count))
    }

    /// `glSetFenceNV` (Android/Tegra library only).
    ///
    /// # Panics
    ///
    /// Panics if called on the iOS library.
    pub fn set_fence_nv(&self, tid: SimTid, fence: u32) {
        self.assert_symbol(ApiFlavor::Android, "glSetFenceNV");
        self.with_current(tid, |ctx| ctx.set_fence(fence));
    }

    /// `glTestFenceNV` (Android/Tegra library only).
    ///
    /// # Panics
    ///
    /// Panics if called on the iOS library.
    pub fn test_fence_nv(&self, tid: SimTid, fence: u32) -> bool {
        self.assert_symbol(ApiFlavor::Android, "glTestFenceNV");
        self.with_current(tid, |ctx| ctx.test_fence(fence))
    }

    /// `glFinishFenceNV` (Android/Tegra library only).
    ///
    /// # Panics
    ///
    /// Panics if called on the iOS library.
    pub fn finish_fence_nv(&self, tid: SimTid, fence: u32) {
        self.assert_symbol(ApiFlavor::Android, "glFinishFenceNV");
        self.with_current(tid, |ctx| ctx.finish_fence(fence));
    }

    /// `glDeleteFencesNV` (Android/Tegra library only).
    ///
    /// # Panics
    ///
    /// Panics if called on the iOS library.
    pub fn delete_fences_nv(&self, tid: SimTid, fences: &[u32]) {
        self.assert_symbol(ApiFlavor::Android, "glDeleteFencesNV");
        self.with_current(tid, |ctx| ctx.delete_fences(fences));
    }

    /// Sets the 2D/3D cost class of the current context's subsequent work.
    pub fn set_draw_class(&self, tid: SimTid, class: DrawClass) {
        self.with_current(tid, |ctx| ctx.set_draw_class(class));
    }
}

impl fmt::Debug for VendorGles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VendorGles")
            .field("flavor", &self.flavor)
            .field("contexts", &self.contexts.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycada_sim::{GpuCostModel, VirtualClock};

    fn tid(n: u64) -> SimTid {
        // Tests fabricate tids through the kernel normally; here we use the
        // kernel-free constructor path via transmute-free helper.
        use cycada_kernel::{Kernel, Persona};
        use cycada_sim::Platform;
        // A throwaway kernel purely to mint valid-looking tids.
        let k = Kernel::for_platform(Platform::CycadaIos);
        let mut last = k.spawn_process_main(Persona::Android).unwrap();
        for _ in 1..n {
            last = k.spawn_thread(last, Persona::Android).unwrap();
        }
        last
    }

    fn lib(flavor: ApiFlavor) -> VendorGles {
        let device = Arc::new(GpuDevice::new(VirtualClock::new(), GpuCostModel::tegra3()));
        VendorGles::new(flavor, device)
    }

    #[test]
    fn context_lifecycle_and_current_binding() {
        let gles = lib(ApiFlavor::Android);
        let t = tid(1);
        let ctx = gles.create_context(GlesVersion::V2);
        assert_eq!(gles.context_version(ctx), Some(GlesVersion::V2));
        assert!(gles.make_current(t, Some(ctx), None));
        assert_eq!(gles.current_context_id(t), Some(ctx));
        assert!(gles.make_current(t, None, None));
        assert_eq!(gles.current_context_id(t), None);
        assert!(gles.destroy_context(ctx));
        assert!(!gles.destroy_context(ctx));
        assert!(!gles.make_current(t, Some(ctx), None));
    }

    #[test]
    fn destroying_context_unbinds_it() {
        let gles = lib(ApiFlavor::Android);
        let t = tid(1);
        let ctx = gles.create_context(GlesVersion::V1);
        gles.make_current(t, Some(ctx), None);
        gles.destroy_context(ctx);
        assert_eq!(gles.current_context_id(t), None);
    }

    #[test]
    fn calls_without_context_are_counted_noops() {
        let gles = lib(ApiFlavor::Android);
        let t = tid(1);
        gles.bind_texture(t, 1);
        assert_eq!(gles.calls_without_context(), 1);
    }

    #[test]
    fn get_string_flavors() {
        let android = lib(ApiFlavor::Android);
        let t = tid(1);
        let ctx = android.create_context(GlesVersion::V2);
        android.make_current(t, Some(ctx), None);
        assert!(android
            .get_string(t, StringName::Vendor)
            .unwrap()
            .contains("NVIDIA"));
        let exts = android.get_string(t, StringName::Extensions).unwrap();
        assert!(exts.contains("GL_NV_fence"));
        // The Apple-proprietary parameter is an unknown enum on Android.
        assert_eq!(android.get_string(t, StringName::AppleExtensions), None);

        let ios = lib(ApiFlavor::Ios);
        let ctx = ios.create_context(GlesVersion::V2);
        ios.make_current(t, Some(ctx), None);
        assert!(ios
            .get_string(t, StringName::AppleExtensions)
            .unwrap()
            .contains("GL_APPLE_io_surface"));
        assert!(ios
            .get_string(t, StringName::Extensions)
            .unwrap()
            .contains("GL_APPLE_fence"));
    }

    #[test]
    fn nv_fence_works_on_android_library() {
        let gles = lib(ApiFlavor::Android);
        let t = tid(1);
        let ctx = gles.create_context(GlesVersion::V1);
        gles.make_current(t, Some(ctx), None);
        let f = gles.gen_fences_nv(t, 1)[0];
        // Submit some GPU work for the fence to guard.
        gles.with_current(t, |c| {
            let tex = c.gen_textures(1)[0];
            c.bind_texture(tex);
            c.tex_image_2d(4, 4, crate::types::TexFormat::Rgba, None);
        });
        gles.set_fence_nv(t, f);
        assert!(!gles.test_fence_nv(t, f));
        gles.finish_fence_nv(t, f);
        assert!(gles.test_fence_nv(t, f));
        gles.delete_fences_nv(t, &[f]);
    }

    #[test]
    #[should_panic(expected = "unresolved symbol")]
    fn apple_fence_missing_on_android_library() {
        let gles = lib(ApiFlavor::Android);
        gles.gen_fences_apple(tid(1), 1);
    }

    #[test]
    #[should_panic(expected = "unresolved symbol")]
    fn nv_fence_missing_on_ios_library() {
        let gles = lib(ApiFlavor::Ios);
        gles.gen_fences_nv(tid(1), 1);
    }

    #[test]
    fn per_thread_current_contexts_are_independent() {
        let gles = lib(ApiFlavor::Android);
        let t1 = tid(1);
        let t2 = tid(2);
        let c1 = gles.create_context(GlesVersion::V1);
        let c2 = gles.create_context(GlesVersion::V2);
        gles.make_current(t1, Some(c1), None);
        gles.make_current(t2, Some(c2), None);
        assert_eq!(gles.current_context_id(t1), Some(c1));
        assert_eq!(gles.current_context_id(t2), Some(c2));
    }

    #[test]
    fn delete_textures_charges_per_freed_texture() {
        let gles = lib(ApiFlavor::Android);
        let t = tid(1);
        let ctx = gles.create_context(GlesVersion::V2);
        gles.make_current(t, Some(ctx), None);
        let names = gles.with_current(t, |c| c.gen_textures(2));
        let before = gles.device().clock().now_ns();
        gles.delete_textures(t, &names);
        let cost = gles.device().clock().now_ns() - before;
        assert!(cost >= 2 * DELETE_TEXTURE_NS, "cost {cost}");
    }
}
