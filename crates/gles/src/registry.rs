//! The OpenGL ES function and extension registry.
//!
//! Table 1 of the paper breaks down the GLES implementations of the two
//! platforms (iOS 6.1.2 on the iPad mini, Android 4.2.2 on the Tegra 3
//! Nexus 7) against the Khronos registry:
//!
//! | OpenGL ES                    | iOS | Android | Khronos |
//! |------------------------------|-----|---------|---------|
//! | 1.0 standard functions       | 145 | 145     | 145     |
//! | 2.0 standard functions       | 142 | 142     | 142     |
//! | Extension functions          | 94  | 42      | 285     |
//! | Common extension functions   | 27  | 27      | —       |
//! | Extensions                   | 50  | 60      | 174     |
//! | Extensions not in Android    | 33  | 0       | —       |
//! | Extensions not in iOS        | 0   | 43      | —       |
//!
//! This module reproduces that population exactly. Standard function names
//! are the real Khronos names; extension names are real where the paper (or
//! the platforms) names them, and drawn from the Khronos registry otherwise
//! (see DESIGN.md §6 for the documented approximations). The counting
//! identity behind Table 2 also holds: 37 standard functions are shared
//! between the v1 and v2 profiles, so the iOS GLES surface Cycada must
//! bridge has `(145 + 142 − 37) + 94 = 344` entry points.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use cycada_sim::intern::FnId;

/// The GLES API version a context speaks (§2: versions "are not compatible
/// with each other").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GlesVersion {
    /// OpenGL ES 1.x (fixed function).
    V1,
    /// OpenGL ES 2.0 (shaders).
    V2,
}

impl std::fmt::Display for GlesVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GlesVersion::V1 => write!(f, "OpenGL ES 1.1"),
            GlesVersion::V2 => write!(f, "OpenGL ES 2.0"),
        }
    }
}

/// Which platform's GLES implementation (vendor library) is being queried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApiFlavor {
    /// Apple's GLES on iOS.
    Ios,
    /// The NVIDIA Tegra GLES on Android.
    Android,
}

/// The availability of a standard entry point across GLES versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StdAvailability {
    /// Exists only in the v1 profile.
    V1Only,
    /// Exists only in the v2 profile.
    V2Only,
    /// One shared implementation serves both profiles (the paper's "some
    /// GLES v1 and v2 standard functions are the same" — exactly 37).
    Shared,
}

/// One standard (non-extension) entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdFunction {
    /// Function name (real Khronos name).
    pub name: &'static str,
    /// Profile availability.
    pub availability: StdAvailability,
}

/// One GLES extension and the entry points it adds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extension {
    /// Extension name (e.g. `GL_APPLE_fence` without the `GL_` prefix).
    pub name: String,
    /// Entry points the extension adds (may be empty — many extensions add
    /// only enums or behaviour).
    pub functions: Vec<String>,
    /// Implemented by the iOS vendor library.
    pub on_ios: bool,
    /// Implemented by the Android (Tegra) vendor library.
    pub on_android: bool,
    /// Listed in the Khronos registry (Apple ships some unregistered
    /// proprietary extensions).
    pub in_khronos: bool,
}

// ---------------------------------------------------------------------
// Standard functions
// ---------------------------------------------------------------------

/// The 37 standard functions whose single implementation is shared by the
/// v1 and v2 profiles.
pub const SHARED_CORE: &[&str] = &[
    "glActiveTexture",
    "glBindBuffer",
    "glBindTexture",
    "glBlendFunc",
    "glBufferData",
    "glBufferSubData",
    "glClear",
    "glClearColor",
    "glClearDepthf",
    "glClearStencil",
    "glColorMask",
    "glCompressedTexImage2D",
    "glCompressedTexSubImage2D",
    "glCopyTexImage2D",
    "glCopyTexSubImage2D",
    "glCullFace",
    "glDeleteBuffers",
    "glDeleteTextures",
    "glDepthFunc",
    "glDepthMask",
    "glDepthRangef",
    "glDrawArrays",
    "glDrawElements",
    "glFinish",
    "glFlush",
    "glFrontFace",
    "glGenBuffers",
    "glGenTextures",
    "glGetError",
    "glGetString",
    "glLineWidth",
    "glPixelStorei",
    "glPolygonOffset",
    "glReadPixels",
    "glSampleCoverage",
    "glScissor",
    "glViewport",
];

/// The full OpenGL ES 1.1 Common profile: 145 functions.
pub const V1_STANDARD: &[&str] = &[
    "glActiveTexture", "glAlphaFunc", "glAlphaFuncx", "glBindBuffer", "glBindTexture",
    "glBlendFunc", "glBufferData", "glBufferSubData", "glClear", "glClearColor",
    "glClearColorx", "glClearDepthf", "glClearDepthx", "glClearStencil",
    "glClientActiveTexture", "glClipPlanef", "glClipPlanex", "glColor4f", "glColor4ub",
    "glColor4x", "glColorMask", "glColorPointer", "glCompressedTexImage2D",
    "glCompressedTexSubImage2D", "glCopyTexImage2D", "glCopyTexSubImage2D", "glCullFace",
    "glDeleteBuffers", "glDeleteTextures", "glDepthFunc", "glDepthMask", "glDepthRangef",
    "glDepthRangex", "glDisable", "glDisableClientState", "glDrawArrays", "glDrawElements",
    "glEnable", "glEnableClientState", "glFinish", "glFlush", "glFogf", "glFogfv", "glFogx",
    "glFogxv", "glFrontFace", "glFrustumf", "glFrustumx", "glGenBuffers", "glGenTextures",
    "glGetBooleanv", "glGetBufferParameteriv", "glGetClipPlanef", "glGetClipPlanex",
    "glGetError", "glGetFixedv", "glGetFloatv", "glGetIntegerv", "glGetLightfv",
    "glGetLightxv", "glGetMaterialfv", "glGetMaterialxv", "glGetPointerv", "glGetString",
    "glGetTexEnvfv", "glGetTexEnviv", "glGetTexEnvxv", "glGetTexParameterfv",
    "glGetTexParameteriv", "glGetTexParameterxv", "glHint", "glIsBuffer", "glIsEnabled",
    "glIsTexture", "glLightf", "glLightfv", "glLightModelf", "glLightModelfv",
    "glLightModelx", "glLightModelxv", "glLightx", "glLightxv", "glLineWidth",
    "glLineWidthx", "glLoadIdentity", "glLoadMatrixf", "glLoadMatrixx", "glLogicOp",
    "glMaterialf", "glMaterialfv", "glMaterialx", "glMaterialxv", "glMatrixMode",
    "glMultMatrixf", "glMultMatrixx", "glMultiTexCoord4f", "glMultiTexCoord4x",
    "glNormal3f", "glNormal3x", "glNormalPointer", "glOrthof", "glOrthox", "glPixelStorei",
    "glPointParameterf", "glPointParameterfv", "glPointParameterx", "glPointParameterxv",
    "glPointSize", "glPointSizePointerOES", "glPointSizex", "glPolygonOffset",
    "glPolygonOffsetx", "glPopMatrix", "glPushMatrix", "glReadPixels", "glRotatef",
    "glRotatex", "glSampleCoverage", "glSampleCoveragex", "glScalef", "glScalex",
    "glScissor", "glShadeModel", "glStencilFunc", "glStencilMask", "glStencilOp",
    "glTexCoordPointer", "glTexEnvf", "glTexEnvfv", "glTexEnvi", "glTexEnviv", "glTexEnvx",
    "glTexEnvxv", "glTexImage2D", "glTexParameterf", "glTexParameterfv", "glTexParameteri",
    "glTexParameteriv", "glTexParameterx", "glTexParameterxv", "glTexSubImage2D",
    "glTranslatef", "glTranslatex", "glVertexPointer", "glViewport",
];

/// The full OpenGL ES 2.0 profile: 142 functions.
pub const V2_STANDARD: &[&str] = &[
    "glActiveTexture", "glAttachShader", "glBindAttribLocation", "glBindBuffer",
    "glBindFramebuffer", "glBindRenderbuffer", "glBindTexture", "glBlendColor",
    "glBlendEquation", "glBlendEquationSeparate", "glBlendFunc", "glBlendFuncSeparate",
    "glBufferData", "glBufferSubData", "glCheckFramebufferStatus", "glClear",
    "glClearColor", "glClearDepthf", "glClearStencil", "glColorMask", "glCompileShader",
    "glCompressedTexImage2D", "glCompressedTexSubImage2D", "glCopyTexImage2D",
    "glCopyTexSubImage2D", "glCreateProgram", "glCreateShader", "glCullFace",
    "glDeleteBuffers", "glDeleteFramebuffers", "glDeleteProgram", "glDeleteRenderbuffers",
    "glDeleteShader", "glDeleteTextures", "glDepthFunc", "glDepthMask", "glDepthRangef",
    "glDetachShader", "glDisable", "glDisableVertexAttribArray", "glDrawArrays",
    "glDrawElements", "glEnable", "glEnableVertexAttribArray", "glFinish", "glFlush",
    "glFramebufferRenderbuffer", "glFramebufferTexture2D", "glFrontFace", "glGenBuffers",
    "glGenerateMipmap", "glGenFramebuffers", "glGenRenderbuffers", "glGenTextures",
    "glGetActiveAttrib", "glGetActiveUniform", "glGetAttachedShaders", "glGetAttribLocation",
    "glGetBooleanv", "glGetBufferParameteriv", "glGetError", "glGetFloatv",
    "glGetFramebufferAttachmentParameteriv", "glGetIntegerv", "glGetProgramiv",
    "glGetProgramInfoLog", "glGetRenderbufferParameteriv", "glGetShaderiv",
    "glGetShaderInfoLog", "glGetShaderPrecisionFormat", "glGetShaderSource", "glGetString",
    "glGetTexParameterfv", "glGetTexParameteriv", "glGetUniformfv", "glGetUniformiv",
    "glGetUniformLocation", "glGetVertexAttribfv", "glGetVertexAttribiv",
    "glGetVertexAttribPointerv", "glHint", "glIsBuffer", "glIsEnabled", "glIsFramebuffer",
    "glIsProgram", "glIsRenderbuffer", "glIsShader", "glIsTexture", "glLineWidth",
    "glLinkProgram", "glPixelStorei", "glPolygonOffset", "glReadPixels",
    "glReleaseShaderCompiler", "glRenderbufferStorage", "glSampleCoverage", "glScissor",
    "glShaderBinary", "glShaderSource", "glStencilFunc", "glStencilFuncSeparate",
    "glStencilMask", "glStencilMaskSeparate", "glStencilOp", "glStencilOpSeparate",
    "glTexImage2D", "glTexParameterf", "glTexParameterfv", "glTexParameteri",
    "glTexParameteriv", "glTexSubImage2D", "glUniform1f", "glUniform1fv", "glUniform1i",
    "glUniform1iv", "glUniform2f", "glUniform2fv", "glUniform2i", "glUniform2iv",
    "glUniform3f", "glUniform3fv", "glUniform3i", "glUniform3iv", "glUniform4f",
    "glUniform4fv", "glUniform4i", "glUniform4iv", "glUniformMatrix2fv",
    "glUniformMatrix3fv", "glUniformMatrix4fv", "glUseProgram", "glValidateProgram",
    "glVertexAttrib1f", "glVertexAttrib1fv", "glVertexAttrib2f", "glVertexAttrib2fv",
    "glVertexAttrib3f", "glVertexAttrib3fv", "glVertexAttrib4f", "glVertexAttrib4fv",
    "glVertexAttribPointer", "glViewport",
];

// ---------------------------------------------------------------------
// Extensions
// ---------------------------------------------------------------------

struct ExtDef {
    name: &'static str,
    functions: &'static [&'static str],
    on_ios: bool,
    on_android: bool,
    in_khronos: bool,
}

const I: bool = true;
const O: bool = false;

/// Extensions implemented by at least one of the two platforms.
/// 17 shared, 33 iOS-only, 43 Android-only (Table 1).
const PLATFORM_EXTENSIONS: &[ExtDef] = &[
    // ----- Shared by both platforms: 17 extensions, 27 functions -----
    ExtDef { name: "OES_framebuffer_object", on_ios: I, on_android: I, in_khronos: I, functions: &[
        "glIsRenderbufferOES", "glBindRenderbufferOES", "glDeleteRenderbuffersOES",
        "glGenRenderbuffersOES", "glRenderbufferStorageOES", "glGetRenderbufferParameterivOES",
        "glIsFramebufferOES", "glBindFramebufferOES", "glDeleteFramebuffersOES",
        "glGenFramebuffersOES", "glCheckFramebufferStatusOES", "glFramebufferRenderbufferOES",
        "glFramebufferTexture2DOES", "glGenerateMipmapOES",
    ]},
    ExtDef { name: "OES_mapbuffer", on_ios: I, on_android: I, in_khronos: I, functions: &[
        "glMapBufferOES", "glUnmapBufferOES", "glGetBufferPointervOES",
    ]},
    ExtDef { name: "OES_EGL_image", on_ios: I, on_android: I, in_khronos: I, functions: &[
        "glEGLImageTargetTexture2DOES", "glEGLImageTargetRenderbufferStorageOES",
    ]},
    ExtDef { name: "OES_blend_subtract", on_ios: I, on_android: I, in_khronos: I, functions: &[
        "glBlendEquationOES",
    ]},
    ExtDef { name: "OES_query_matrix", on_ios: I, on_android: I, in_khronos: I, functions: &[
        "glQueryMatrixxOES",
    ]},
    ExtDef { name: "OES_draw_texture", on_ios: I, on_android: I, in_khronos: I, functions: &[
        "glDrawTexsOES", "glDrawTexiOES", "glDrawTexfOES",
        "glDrawTexsvOES", "glDrawTexivOES", "glDrawTexfvOES",
    ]},
    ExtDef { name: "OES_point_sprite", on_ios: I, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_texture_npot", on_ios: I, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_depth24", on_ios: I, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_rgb8_rgba8", on_ios: I, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_stencil8", on_ios: I, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_packed_depth_stencil", on_ios: I, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_vertex_half_float", on_ios: I, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_texture_mirrored_repeat", on_ios: I, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_standard_derivatives", on_ios: I, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_texture_filter_anisotropic", on_ios: I, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_blend_minmax", on_ios: I, on_android: I, in_khronos: I, functions: &[] },

    // ----- iOS only: 33 extensions, 67 functions -----
    ExtDef { name: "APPLE_fence", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glGenFencesAPPLE", "glDeleteFencesAPPLE", "glSetFenceAPPLE", "glIsFenceAPPLE",
        "glTestFenceAPPLE", "glFinishFenceAPPLE", "glTestObjectAPPLE", "glFinishObjectAPPLE",
    ]},
    ExtDef { name: "APPLE_sync", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glFenceSyncAPPLE", "glIsSyncAPPLE", "glDeleteSyncAPPLE", "glClientWaitSyncAPPLE",
        "glWaitSyncAPPLE", "glGetInteger64vAPPLE", "glGetSyncivAPPLE",
    ]},
    ExtDef { name: "APPLE_framebuffer_multisample", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glRenderbufferStorageMultisampleAPPLE", "glResolveMultisampleFramebufferAPPLE",
    ]},
    ExtDef { name: "APPLE_copy_texture_levels", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glCopyTextureLevelsAPPLE",
    ]},
    // Stand-in names for Apple's private IOSurface<->GLES binding entry
    // points (the two "multi diplomat" GLES functions; DESIGN.md §6).
    ExtDef { name: "APPLE_io_surface", on_ios: I, on_android: O, in_khronos: O, functions: &[
        "glTexImageIOSurfaceAPPLE", "glRenderbufferStorageIOSurfaceAPPLE",
    ]},
    ExtDef { name: "APPLE_vertex_array_range", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glVertexArrayRangeAPPLE", "glFlushVertexArrayRangeAPPLE", "glVertexArrayParameteriAPPLE",
    ]},
    ExtDef { name: "OES_vertex_array_object", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glBindVertexArrayOES", "glDeleteVertexArraysOES", "glGenVertexArraysOES",
        "glIsVertexArrayOES",
    ]},
    ExtDef { name: "EXT_debug_label", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glLabelObjectEXT", "glGetObjectLabelEXT",
    ]},
    ExtDef { name: "EXT_debug_marker", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glInsertEventMarkerEXT", "glPushGroupMarkerEXT", "glPopGroupMarkerEXT",
    ]},
    ExtDef { name: "EXT_discard_framebuffer", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glDiscardFramebufferEXT",
    ]},
    ExtDef { name: "EXT_occlusion_query_boolean", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glGenQueriesEXT", "glDeleteQueriesEXT", "glIsQueryEXT", "glBeginQueryEXT",
        "glEndQueryEXT", "glGetQueryivEXT", "glGetQueryObjectuivEXT",
    ]},
    // The real iOS extension exports 30+ entry points; we carry the 15 most
    // used (DESIGN.md §6).
    ExtDef { name: "EXT_separate_shader_objects", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glUseProgramStagesEXT", "glActiveShaderProgramEXT", "glCreateShaderProgramvEXT",
        "glBindProgramPipelineEXT", "glDeleteProgramPipelinesEXT", "glGenProgramPipelinesEXT",
        "glIsProgramPipelineEXT", "glProgramParameteriEXT", "glGetProgramPipelineivEXT",
        "glProgramUniform1iEXT", "glProgramUniform1fEXT", "glProgramUniform4fEXT",
        "glProgramUniform4fvEXT", "glProgramUniformMatrix4fvEXT", "glValidateProgramPipelineEXT",
    ]},
    ExtDef { name: "EXT_map_buffer_range", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glMapBufferRangeEXT", "glFlushMappedBufferRangeEXT",
    ]},
    ExtDef { name: "EXT_texture_storage", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glTexStorage2DEXT",
    ]},
    ExtDef { name: "EXT_instanced_arrays", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glDrawArraysInstancedEXT", "glDrawElementsInstancedEXT", "glVertexAttribDivisorEXT",
    ]},
    ExtDef { name: "EXT_multi_draw_arrays", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glMultiDrawArraysEXT", "glMultiDrawElementsEXT",
    ]},
    ExtDef { name: "EXT_robustness", on_ios: I, on_android: O, in_khronos: I, functions: &[
        "glGetGraphicsResetStatusEXT", "glReadnPixelsEXT", "glGetnUniformfvEXT",
        "glGetnUniformivEXT",
    ]},
    ExtDef { name: "APPLE_row_bytes", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "APPLE_texture_2D_limited_npot", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "APPLE_texture_format_BGRA8888", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "APPLE_texture_max_level", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "APPLE_rgb_422", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "APPLE_clip_distance", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "APPLE_color_buffer_packed_float", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "APPLE_texture_packed_float", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_read_format_bgra", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_sRGB", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_pvrtc_sRGB", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_shader_framebuffer_fetch", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_shadow_samplers", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_texture_rg", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "IMG_texture_compression_pvrtc", on_ios: I, on_android: O, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_shader_texture_lod", on_ios: I, on_android: O, in_khronos: I, functions: &[] },

    // ----- Android (Tegra) only: 43 extensions, 15 functions -----
    ExtDef { name: "NV_fence", on_ios: O, on_android: I, in_khronos: I, functions: &[
        "glDeleteFencesNV", "glGenFencesNV", "glIsFenceNV", "glTestFenceNV",
        "glGetFenceivNV", "glFinishFenceNV", "glSetFenceNV",
    ]},
    ExtDef { name: "NV_coverage_sample", on_ios: O, on_android: I, in_khronos: I, functions: &[
        "glCoverageMaskNV", "glCoverageOperationNV",
    ]},
    ExtDef { name: "NV_draw_buffers", on_ios: O, on_android: I, in_khronos: I, functions: &[
        "glDrawBuffersNV",
    ]},
    ExtDef { name: "NV_read_buffer", on_ios: O, on_android: I, in_khronos: I, functions: &[
        "glReadBufferNV",
    ]},
    ExtDef { name: "NV_system_time", on_ios: O, on_android: I, in_khronos: O, functions: &[
        "glGetSystemTimeFrequencyNV", "glGetSystemTimeNV",
    ]},
    ExtDef { name: "EXT_multisampled_render_to_texture", on_ios: O, on_android: I, in_khronos: I, functions: &[
        "glRenderbufferStorageMultisampleEXT", "glFramebufferTexture2DMultisampleEXT",
    ]},
    ExtDef { name: "OES_compressed_ETC1_RGB8_texture", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_depth_texture", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_element_index_uint", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_fbo_render_mipmap", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_fragment_precision_high", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_texture_half_float", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_texture_float", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_texture_half_float_linear", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_vertex_type_10_10_10_2", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_EGL_image_external", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "OES_EGL_sync", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_texture_compression_s3tc", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_texture_compression_dxt1", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_bgra", on_ios: O, on_android: I, in_khronos: O, functions: &[] },
    ExtDef { name: "EXT_unpack_subimage", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_texture_format_BGRA8888", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "EXT_texture_array", on_ios: O, on_android: I, in_khronos: O, functions: &[] },
    ExtDef { name: "NV_depth_nonlinear", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "NV_fbo_color_attachments", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "NV_read_buffer_front", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "NV_read_depth", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "NV_read_stencil", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "NV_read_depth_stencil", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "NV_texture_compression_s3tc", on_ios: O, on_android: I, in_khronos: O, functions: &[] },
    ExtDef { name: "NV_texture_compression_latc", on_ios: O, on_android: I, in_khronos: O, functions: &[] },
    ExtDef { name: "NV_pack_subimage", on_ios: O, on_android: I, in_khronos: O, functions: &[] },
    ExtDef { name: "NV_texture_array", on_ios: O, on_android: I, in_khronos: O, functions: &[] },
    ExtDef { name: "NV_pixel_buffer_object", on_ios: O, on_android: I, in_khronos: O, functions: &[] },
    ExtDef { name: "NV_platform_binary", on_ios: O, on_android: I, in_khronos: O, functions: &[] },
    ExtDef { name: "NV_smooth_points_lines", on_ios: O, on_android: I, in_khronos: O, functions: &[] },
    ExtDef { name: "NV_sRGB_formats", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "NV_texture_npot_2D_mipmap", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "NV_3dvision_settings", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "NV_EGL_stream_consumer_external", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "NV_bgr", on_ios: O, on_android: I, in_khronos: I, functions: &[] },
    ExtDef { name: "NV_multiview_draw_buffers", on_ios: O, on_android: I, in_khronos: O, functions: &[] },
    ExtDef { name: "NV_shader_framebuffer_fetch", on_ios: O, on_android: I, in_khronos: O, functions: &[] },
];

/// Khronos-registry extensions implemented by neither evaluation platform:
/// 81 extensions contributing 176 entry points, completing the Khronos
/// column of Table 1 (174 extensions, 285 functions). Function names for
/// these are synthesized (`<ext>_fn<i>`) since no simulated code ever calls
/// them; only the counts are observable.
const KHRONOS_ONLY: &[(&str, usize)] = &[
    // 16 large extensions with 8 entry points each (128 functions).
    ("KHR_debug", 8), ("EXT_disjoint_timer_query", 8), ("QCOM_driver_control", 8),
    ("QCOM_extended_get", 8), ("QCOM_extended_get2", 8), ("VIV_shader_binary", 8),
    ("AMD_performance_monitor", 8), ("ANGLE_framebuffer_blit", 8),
    ("ARM_mali_shader_binary", 8), ("DMP_shader_binary", 8), ("FJ_shader_binary_GCCSO", 8),
    ("IMG_multisampled_render_to_texture", 8), ("QCOM_alpha_test", 8),
    ("QCOM_tiled_rendering", 8), ("ANGLE_instanced_arrays", 8), ("APPLE_flush_buffer_range", 8),
    // 16 medium extensions with 3 entry points each (48 functions).
    ("ANGLE_translated_shader_source", 3), ("ANGLE_framebuffer_multisample", 3),
    ("EXT_blend_func_extended", 3), ("EXT_buffer_storage", 3), ("EXT_clear_texture", 3),
    ("EXT_clip_control", 3), ("EXT_copy_image", 3), ("EXT_draw_buffers", 3),
    ("EXT_draw_elements_base_vertex", 3), ("EXT_geometry_shader", 3),
    ("EXT_multiview_draw_buffers", 3), ("EXT_polygon_offset_clamp", 3),
    ("EXT_primitive_bounding_box", 3), ("EXT_raster_multisample", 3),
    ("EXT_tessellation_shader", 3), ("EXT_texture_view", 3),
    // 49 enum/behaviour-only extensions (0 functions).
    ("ARM_rgba8", 0), ("ARM_mali_program_binary", 0), ("EXT_color_buffer_half_float", 0),
    ("EXT_color_buffer_float", 0), ("EXT_depth_clamp", 0), ("EXT_float_blend", 0),
    ("EXT_gpu_shader5", 0), ("EXT_multisample_compatibility", 0),
    ("EXT_post_depth_coverage", 0), ("EXT_render_snorm", 0), ("EXT_shader_group_vote", 0),
    ("EXT_shader_implicit_conversions", 0), ("EXT_shader_integer_mix", 0),
    ("EXT_shader_io_blocks", 0), ("EXT_shader_non_constant_global_initializers", 0),
    ("EXT_sparse_texture", 0), ("EXT_texture_buffer", 0),
    ("EXT_texture_compression_astc_decode_mode", 0), ("EXT_texture_cube_map_array", 0),
    ("EXT_texture_norm16", 0), ("EXT_texture_sRGB_decode", 0), ("EXT_texture_sRGB_R8", 0),
    ("EXT_texture_type_2_10_10_10_REV", 0), ("EXT_window_rectangles", 0),
    ("IMG_framebuffer_downsample", 0), ("IMG_program_binary", 0), ("IMG_shader_binary", 0),
    ("IMG_texture_compression_pvrtc2", 0), ("IMG_texture_env_enhanced_fixed_function", 0),
    ("KHR_blend_equation_advanced", 0), ("KHR_context_flush_control", 0),
    ("KHR_no_error", 0), ("KHR_robust_buffer_access_behavior", 0),
    ("KHR_texture_compression_astc_hdr", 0), ("KHR_texture_compression_astc_ldr", 0),
    ("MESA_shader_integer_functions", 0), ("OES_copy_image", 0), ("OES_depth32", 0),
    ("OES_draw_buffers_indexed", 0), ("OES_geometry_shader", 0), ("OES_gpu_shader5", 0),
    ("OES_primitive_bounding_box", 0), ("OES_sample_shading", 0),
    ("OES_shader_image_atomic", 0), ("OES_stencil1", 0), ("OES_stencil4", 0),
    ("OES_surfaceless_context", 0), ("OES_texture_stencil8", 0), ("OES_texture_view", 0),
];

// ---------------------------------------------------------------------
// The registry object
// ---------------------------------------------------------------------

/// Which API surface an [`EntryPoint`] belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EntryApi {
    /// A standard profile function with the given availability.
    Standard(StdAvailability),
    /// A function added by the named extension.
    Extension(String),
}

/// One function of the iOS GLES binary surface Cycada must bridge.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EntryPoint {
    /// The exported symbol name.
    pub name: String,
    /// The interned id of `name` (21 names appear under both the v1 and v2
    /// APIs and share one id — dispatch and accounting are by name).
    pub fn_id: FnId,
    /// The API surface it belongs to.
    pub api: EntryApi,
}

/// The Table 1 row values, as produced by [`GlesRegistry::table1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1 {
    /// GLES 1.0/1.1 standard functions: (iOS, Android, Khronos).
    pub v1_standard: (usize, usize, usize),
    /// GLES 2.0 standard functions: (iOS, Android, Khronos).
    pub v2_standard: (usize, usize, usize),
    /// Extension functions: (iOS, Android, Khronos).
    pub extension_functions: (usize, usize, usize),
    /// Extension functions implemented by both platforms.
    pub common_extension_functions: usize,
    /// Extensions: (iOS, Android, Khronos).
    pub extensions: (usize, usize, usize),
    /// iOS extensions absent from Android.
    pub extensions_not_in_android: usize,
    /// Android extensions absent from iOS.
    pub extensions_not_in_ios: usize,
}

/// The complete GLES function/extension registry for both platforms.
#[derive(Debug)]
pub struct GlesRegistry {
    std_functions: Vec<StdFunction>,
    extensions: Vec<Extension>,
}

static REGISTRY: OnceLock<GlesRegistry> = OnceLock::new();

impl GlesRegistry {
    /// The process-wide registry instance.
    pub fn global() -> &'static GlesRegistry {
        REGISTRY.get_or_init(GlesRegistry::build)
    }

    fn build() -> GlesRegistry {
        let shared: BTreeSet<&str> = SHARED_CORE.iter().copied().collect();
        let mut std_functions = Vec::new();
        for &name in SHARED_CORE {
            std_functions.push(StdFunction {
                name,
                availability: StdAvailability::Shared,
            });
        }
        for &name in V1_STANDARD {
            if !shared.contains(name) {
                std_functions.push(StdFunction {
                    name,
                    availability: StdAvailability::V1Only,
                });
            }
        }
        for &name in V2_STANDARD {
            if !shared.contains(name) {
                std_functions.push(StdFunction {
                    name,
                    availability: StdAvailability::V2Only,
                });
            }
        }

        let mut extensions: Vec<Extension> = PLATFORM_EXTENSIONS
            .iter()
            .map(|def| Extension {
                name: def.name.to_owned(),
                functions: def.functions.iter().map(|&f| f.to_owned()).collect(),
                on_ios: def.on_ios,
                on_android: def.on_android,
                in_khronos: def.in_khronos,
            })
            .collect();
        for &(name, fn_count) in KHRONOS_ONLY {
            extensions.push(Extension {
                name: name.to_owned(),
                functions: (0..fn_count).map(|i| format!("{name}_fn{i}")).collect(),
                on_ios: false,
                on_android: false,
                in_khronos: true,
            });
        }

        let registry = GlesRegistry {
            std_functions,
            extensions,
        };
        // Intern the whole bridged surface now, in registration order:
        // every one of the 344 iOS entry points gets a stable FnId the
        // moment the registry is built, before any dispatch happens.
        registry.ios_entry_points();
        registry
    }

    /// All standard entry points (shared ones appear once).
    pub fn std_functions(&self) -> &[StdFunction] {
        &self.std_functions
    }

    /// All known extensions (both platforms + Khronos-only).
    pub fn extensions(&self) -> &[Extension] {
        &self.extensions
    }

    /// Looks up an extension by name.
    pub fn extension(&self, name: &str) -> Option<&Extension> {
        self.extensions.iter().find(|e| e.name == name)
    }

    /// The extensions a platform implements.
    pub fn platform_extensions(&self, flavor: ApiFlavor) -> impl Iterator<Item = &Extension> {
        self.extensions.iter().filter(move |e| match flavor {
            ApiFlavor::Ios => e.on_ios,
            ApiFlavor::Android => e.on_android,
        })
    }

    /// The `GL_EXTENSIONS` string a platform's `glGetString` returns.
    pub fn extension_string(&self, flavor: ApiFlavor) -> String {
        self.platform_extensions(flavor)
            .map(|e| format!("GL_{}", e.name))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Whether a platform implements the named extension function.
    pub fn platform_has_function(&self, flavor: ApiFlavor, function: &str) -> bool {
        self.platform_extensions(flavor)
            .any(|e| e.functions.iter().any(|f| f == function))
    }

    /// Every entry point the iOS GLES surface exposes — the 344 functions
    /// Cycada must bridge (Table 2's denominator).
    ///
    /// Entry points are identified by `(name, api)`: 21 standard names
    /// appear twice because their v1 and v2 implementations differ and each
    /// needs its own diplomat.
    pub fn ios_entry_points(&self) -> Vec<EntryPoint> {
        let mut out: Vec<EntryPoint> = self
            .std_functions
            .iter()
            .map(|f| EntryPoint {
                name: f.name.to_owned(),
                fn_id: FnId::intern(f.name),
                api: EntryApi::Standard(f.availability),
            })
            .collect();
        for ext in self.platform_extensions(ApiFlavor::Ios) {
            out.extend(ext.functions.iter().map(|f| EntryPoint {
                name: f.clone(),
                fn_id: FnId::intern(f),
                api: EntryApi::Extension(ext.name.clone()),
            }));
        }
        out
    }

    /// Computes the Table 1 rows from the registry population.
    pub fn table1(&self) -> Table1 {
        let v1 = V1_STANDARD.len();
        let v2 = V2_STANDARD.len();
        let ios_ext_fns: usize = self
            .platform_extensions(ApiFlavor::Ios)
            .map(|e| e.functions.len())
            .sum();
        let android_ext_fns: usize = self
            .platform_extensions(ApiFlavor::Android)
            .map(|e| e.functions.len())
            .sum();
        let khronos_ext_fns: usize = self
            .extensions
            .iter()
            .filter(|e| e.in_khronos || e.on_ios || e.on_android)
            .map(|e| e.functions.len())
            .sum();
        let common_ext_fns: usize = self
            .extensions
            .iter()
            .filter(|e| e.on_ios && e.on_android)
            .map(|e| e.functions.len())
            .sum();
        let ios_exts = self.platform_extensions(ApiFlavor::Ios).count();
        let android_exts = self.platform_extensions(ApiFlavor::Android).count();
        let khronos_exts = self
            .extensions
            .iter()
            .filter(|e| e.in_khronos || e.on_ios || e.on_android)
            .count();
        let not_in_android = self
            .extensions
            .iter()
            .filter(|e| e.on_ios && !e.on_android)
            .count();
        let not_in_ios = self
            .extensions
            .iter()
            .filter(|e| e.on_android && !e.on_ios)
            .count();
        Table1 {
            v1_standard: (v1, v1, v1),
            v2_standard: (v2, v2, v2),
            extension_functions: (ios_ext_fns, android_ext_fns, khronos_ext_fns),
            common_extension_functions: common_ext_fns,
            extensions: (ios_exts, android_exts, khronos_exts),
            extensions_not_in_android: not_in_android,
            extensions_not_in_ios: not_in_ios,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn core_list_sizes_match_table1() {
        assert_eq!(V1_STANDARD.len(), 145, "GLES 1.x standard functions");
        assert_eq!(V2_STANDARD.len(), 142, "GLES 2.0 standard functions");
        assert_eq!(SHARED_CORE.len(), 37, "shared v1/v2 implementations");
    }

    #[test]
    fn core_lists_have_no_duplicates() {
        for list in [V1_STANDARD, V2_STANDARD, SHARED_CORE] {
            let set: HashSet<_> = list.iter().collect();
            assert_eq!(set.len(), list.len());
        }
    }

    #[test]
    fn shared_core_appears_in_both_profiles() {
        let v1: HashSet<_> = V1_STANDARD.iter().collect();
        let v2: HashSet<_> = V2_STANDARD.iter().collect();
        for name in SHARED_CORE {
            assert!(v1.contains(name), "{name} missing from v1");
            assert!(v2.contains(name), "{name} missing from v2");
        }
    }

    #[test]
    fn table1_matches_paper_exactly() {
        let t = GlesRegistry::global().table1();
        assert_eq!(t.v1_standard, (145, 145, 145));
        assert_eq!(t.v2_standard, (142, 142, 142));
        assert_eq!(t.extension_functions, (94, 42, 285));
        assert_eq!(t.common_extension_functions, 27);
        assert_eq!(t.extensions, (50, 60, 174));
        assert_eq!(t.extensions_not_in_android, 33);
        assert_eq!(t.extensions_not_in_ios, 43);
    }

    #[test]
    fn ios_surface_has_344_entry_points() {
        // Table 2's total: (145 + 142 - 37) + 94 = 344.
        let entries = GlesRegistry::global().ios_entry_points();
        assert_eq!(entries.len(), 344);
        let set: HashSet<_> = entries.iter().collect();
        assert_eq!(set.len(), entries.len(), "entry points are distinct");
        // 21 names legitimately appear under both the v1 and v2 APIs.
        let names: HashSet<_> = entries.iter().map(|e| &e.name).collect();
        assert_eq!(names.len(), 344 - 21);
    }

    #[test]
    fn extension_names_unique() {
        let reg = GlesRegistry::global();
        let names: HashSet<_> = reg.extensions().iter().map(|e| &e.name).collect();
        assert_eq!(names.len(), reg.extensions().len());
    }

    #[test]
    fn apple_fence_and_nv_fence_are_disjoint_platforms() {
        let reg = GlesRegistry::global();
        let apple = reg.extension("APPLE_fence").unwrap();
        assert!(apple.on_ios && !apple.on_android);
        let nv = reg.extension("NV_fence").unwrap();
        assert!(!nv.on_ios && nv.on_android);
        // The indirect-diplomat pairing the paper describes.
        assert_eq!(apple.functions.len(), 8);
        assert_eq!(nv.functions.len(), 7);
    }

    #[test]
    fn extension_string_prefixes_gl() {
        let s = GlesRegistry::global().extension_string(ApiFlavor::Ios);
        assert!(s.contains("GL_APPLE_fence"));
        assert!(!s.contains("GL_NV_fence"));
        let a = GlesRegistry::global().extension_string(ApiFlavor::Android);
        assert!(a.contains("GL_NV_fence"));
        assert!(!a.contains("GL_APPLE_fence"));
    }

    #[test]
    fn platform_function_lookup() {
        let reg = GlesRegistry::global();
        assert!(reg.platform_has_function(ApiFlavor::Ios, "glSetFenceAPPLE"));
        assert!(!reg.platform_has_function(ApiFlavor::Android, "glSetFenceAPPLE"));
        assert!(reg.platform_has_function(ApiFlavor::Android, "glSetFenceNV"));
        assert!(reg.platform_has_function(ApiFlavor::Ios, "glMapBufferOES"));
        assert!(reg.platform_has_function(ApiFlavor::Android, "glMapBufferOES"));
    }

    #[test]
    fn std_entries_count() {
        // 37 shared + 108 v1-only + 105 v2-only = 250 standard entries.
        let reg = GlesRegistry::global();
        assert_eq!(reg.std_functions().len(), 250);
        let shared = reg
            .std_functions()
            .iter()
            .filter(|f| f.availability == StdAvailability::Shared)
            .count();
        assert_eq!(shared, 37);
    }

    #[test]
    fn khronos_only_extensions_are_off_platform() {
        let reg = GlesRegistry::global();
        let khr = reg.extension("KHR_debug").unwrap();
        assert!(!khr.on_ios && !khr.on_android && khr.in_khronos);
        assert_eq!(khr.functions.len(), 8);
    }
}
