//! Simulated OpenGL ES stacks for the Cycada graphics reproduction.
//!
//! This crate provides the two proprietary GLES implementations the paper's
//! evaluation platforms ship — Apple's iOS library and the NVIDIA Tegra
//! library on Android — as simulated vendor libraries over the software GPU
//! in [`cycada_gpu`], plus the complete function/extension [`registry`]
//! that reproduces Table 1 of the paper exactly.
//!
//! The flavor differences the paper's bridge has to overcome are all
//! present and enforced:
//!
//! * disjoint extension sets (`APPLE_fence` vs `NV_fence`, 33 iOS-only and
//!   43 Android-only extensions);
//! * Apple's non-standard `glGetString` parameter;
//! * `APPLE_row_bytes` pixel-store state, unknown to the Android library;
//! * BGRA texture data accepted on iOS, `GL_INVALID_ENUM` on Android;
//! * per-thread current contexts, with the version incompatibility between
//!   GLES v1 and v2 contexts.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use cycada_gles::{ApiFlavor, GlesRegistry, GlesVersion, VendorGles};
//! use cycada_gpu::GpuDevice;
//! use cycada_sim::{GpuCostModel, VirtualClock};
//!
//! // Table 1: iOS implements 94 extension functions, Android only 42.
//! let t1 = GlesRegistry::global().table1();
//! assert_eq!(t1.extension_functions.0, 94);
//! assert_eq!(t1.extension_functions.1, 42);
//!
//! let device = Arc::new(GpuDevice::new(VirtualClock::new(), GpuCostModel::tegra3()));
//! let tegra = VendorGles::new(ApiFlavor::Android, device);
//! let ctx = tegra.create_context(GlesVersion::V2);
//! assert_eq!(tegra.context_version(ctx), Some(GlesVersion::V2));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod registry;
mod state;
mod types;
mod vendor;

pub use registry::{
    ApiFlavor, EntryApi, EntryPoint, Extension, GlesRegistry, GlesVersion, StdAvailability,
    StdFunction, Table1,
};
pub use state::{EglImageSource, GlesContext, PixelStore};
pub use types::{
    Capability, ClientState, FramebufferStatus, GlError, IntParam, MatrixMode, PixelStoreParam,
    Primitive, StringName, TexFormat,
};
pub use vendor::{ContextId, VendorGles};
