//! The GLES context state machine.
//!
//! A GLES context is "a state container for all GLES objects associated
//! with a given instance of GLES" (§2). This module implements that state
//! machine over the simulated GPU: object tables (textures, buffers,
//! framebuffers, renderbuffers, shaders, programs), the v1 fixed-function
//! matrix stacks and client arrays, the v2 attribute/program model, pixel
//! store state (including `APPLE_row_bytes`), and primitive assembly down
//! to the rasterizer.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use cycada_gpu::math::Mat4;
use cycada_gpu::{
    BlendMode, DrawClass, FenceCondition, FenceId, GpuDevice, Image, Pipeline, Rgba, Vertex,
};

use crate::registry::{ApiFlavor, GlesVersion};
use crate::types::{
    Capability, ClientState, FramebufferStatus, GlError, MatrixMode, PixelStoreParam, Primitive,
    TexFormat,
};

/// An EGLImage-style external backing for a texture or renderbuffer: a view
/// of memory owned by another subsystem (a GraphicBuffer or IOSurface).
///
/// The `guard` is an opaque association token; the owning subsystem's guard
/// type decrements its "attached to GLES" count when the last clone drops,
/// which is exactly the association the IOSurfaceLock multi diplomat has to
/// break and re-establish (§6.2).
#[derive(Clone)]
pub struct EglImageSource {
    /// The shared pixel storage.
    pub image: Image,
    /// Opaque association guard owned by the memory subsystem.
    pub guard: Arc<dyn Any + Send + Sync>,
}

impl fmt::Debug for EglImageSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EglImageSource")
            .field("image", &self.image)
            .finish()
    }
}

#[derive(Debug, Default)]
struct Texture {
    image: Option<Image>,
    external: Option<EglImageSource>,
}

impl Texture {
    fn current_image(&self) -> Option<Image> {
        self.external
            .as_ref()
            .map(|e| e.image.clone())
            .or_else(|| self.image.clone())
    }
}

#[derive(Debug, Default)]
struct Renderbuffer {
    image: Option<Image>,
    external: Option<EglImageSource>,
}

impl Renderbuffer {
    fn current_image(&self) -> Option<Image> {
        self.external
            .as_ref()
            .map(|e| e.image.clone())
            .or_else(|| self.image.clone())
    }
}

/// A framebuffer color attachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Attachment {
    #[default]
    None,
    Texture(u32),
    Renderbuffer(u32),
}

#[derive(Debug, Default)]
struct Framebuffer {
    color: Attachment,
    depth: Option<Vec<f32>>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum UniformValue {
    F1(f32),
    F4([f32; 4]),
    I1(i32),
    Matrix(Mat4),
}

#[derive(Debug, Default)]
struct Program {
    linked: bool,
    shaders: Vec<u32>,
    locations: HashMap<String, i32>,
    values: HashMap<i32, UniformValue>,
    next_location: i32,
}

#[derive(Debug)]
struct Shader {
    source: String,
    compiled: bool,
}

#[derive(Debug, Default, Clone)]
struct ClientArray {
    data: Vec<f32>,
    component_size: usize,
    enabled: bool,
}

/// Pixel store state, including the `APPLE_row_bytes` additions.
#[derive(Debug, Clone, Copy)]
pub struct PixelStore {
    /// `GL_UNPACK_ALIGNMENT` (1, 2, 4 or 8).
    pub unpack_alignment: usize,
    /// `GL_PACK_ALIGNMENT`.
    pub pack_alignment: usize,
    /// `GL_UNPACK_ROW_BYTES_APPLE`: explicit source row stride (0 = tight).
    pub unpack_row_bytes: usize,
    /// `GL_PACK_ROW_BYTES_APPLE`: explicit destination row stride.
    pub pack_row_bytes: usize,
}

impl Default for PixelStore {
    fn default() -> Self {
        PixelStore {
            unpack_alignment: 4,
            pack_alignment: 4,
            unpack_row_bytes: 0,
            pack_row_bytes: 0,
        }
    }
}

impl PixelStore {
    fn unpack_stride(&self, width: usize, bpp: usize) -> usize {
        if self.unpack_row_bytes > 0 {
            self.unpack_row_bytes
        } else {
            align_up(width * bpp, self.unpack_alignment)
        }
    }

    fn pack_stride(&self, width: usize, bpp: usize) -> usize {
        if self.pack_row_bytes > 0 {
            self.pack_row_bytes
        } else {
            align_up(width * bpp, self.pack_alignment)
        }
    }
}

fn align_up(v: usize, a: usize) -> usize {
    v.div_ceil(a) * a
}

/// One GLES rendering context.
pub struct GlesContext {
    version: GlesVersion,
    flavor: ApiFlavor,
    device: Arc<GpuDevice>,

    // Object tables.
    textures: HashMap<u32, Texture>,
    renderbuffers: HashMap<u32, Renderbuffer>,
    framebuffers: HashMap<u32, Framebuffer>,
    buffers: HashMap<u32, Vec<u8>>,
    programs: HashMap<u32, Program>,
    shaders: HashMap<u32, Shader>,
    fences: HashMap<u32, FenceId>,
    next_name: u32,

    // Bindings.
    bound_texture: u32,
    bound_framebuffer: u32,
    bound_renderbuffer: u32,
    current_program: u32,

    // v1 fixed function.
    matrix_mode: MatrixMode,
    modelview: Vec<Mat4>,
    projection: Vec<Mat4>,
    current_color: Rgba,
    vertex_array: ClientArray,
    color_array: ClientArray,
    texcoord_array: ClientArray,

    // v2 attributes: index -> array.
    attribs: HashMap<u32, ClientArray>,

    // Fragment/raster state.
    clear_color: Rgba,
    caps: HashMap<Capability, bool>,
    viewport: (i32, i32, u32, u32),
    scissor: (i32, i32, u32, u32),
    line_width: f32,
    point_size: f32,
    /// Pixel store state (public so the bridge's data-dependent diplomats
    /// can inspect the APPLE_row_bytes values).
    pub pixel_store: PixelStore,

    // Window-system plumbing.
    default_fb: Option<Image>,
    default_depth: Option<Vec<f32>>,

    error: GlError,
    draw_class: DrawClass,
}

impl GlesContext {
    /// Creates a context of the given version/flavor on a device.
    pub fn new(version: GlesVersion, flavor: ApiFlavor, device: Arc<GpuDevice>) -> Self {
        GlesContext {
            version,
            flavor,
            device,
            textures: HashMap::new(),
            renderbuffers: HashMap::new(),
            framebuffers: HashMap::new(),
            buffers: HashMap::new(),
            programs: HashMap::new(),
            shaders: HashMap::new(),
            fences: HashMap::new(),
            next_name: 1,
            bound_texture: 0,
            bound_framebuffer: 0,
            bound_renderbuffer: 0,
            current_program: 0,
            matrix_mode: MatrixMode::ModelView,
            modelview: vec![Mat4::identity()],
            projection: vec![Mat4::identity()],
            current_color: Rgba::WHITE,
            vertex_array: ClientArray::default(),
            color_array: ClientArray::default(),
            texcoord_array: ClientArray::default(),
            attribs: HashMap::new(),
            clear_color: Rgba::TRANSPARENT,
            caps: HashMap::new(),
            viewport: (0, 0, 0, 0),
            scissor: (0, 0, 0, 0),
            line_width: 1.0,
            point_size: 1.0,
            pixel_store: PixelStore::default(),
            default_fb: None,
            default_depth: None,
            error: GlError::NoError,
            draw_class: DrawClass::ThreeD,
        }
    }

    /// The context's GLES version.
    pub fn version(&self) -> GlesVersion {
        self.version
    }

    /// The vendor flavor the context belongs to.
    pub fn flavor(&self) -> ApiFlavor {
        self.flavor
    }

    /// Sets the draw class (2D canvas work vs 3D geometry) used for GPU
    /// cost accounting.
    pub fn set_draw_class(&mut self, class: DrawClass) {
        self.draw_class = class;
    }

    /// Attaches the window-system-provided default framebuffer (done by
    /// EGL/EAGL `MakeCurrent`).
    pub fn set_default_framebuffer(&mut self, image: Option<Image>) {
        self.default_fb = image;
        self.default_depth = None;
        if self.viewport == (0, 0, 0, 0) {
            if let Some(fb) = &self.default_fb {
                self.viewport = (0, 0, fb.width(), fb.height());
            }
        }
    }

    /// The default framebuffer, if a surface is attached.
    pub fn default_framebuffer(&self) -> Option<Image> {
        self.default_fb.clone()
    }

    /// Records a GL error (first one sticks).
    pub fn record_error(&mut self, error: GlError) {
        if self.error == GlError::NoError {
            self.error = error;
        }
    }

    /// `glGetError`: returns and clears the sticky error.
    pub fn get_error(&mut self) -> GlError {
        std::mem::take(&mut self.error)
    }

    fn fresh_name(&mut self) -> u32 {
        let n = self.next_name;
        self.next_name += 1;
        n
    }

    fn cap(&self, cap: Capability) -> bool {
        self.caps.get(&cap).copied().unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // State setters
    // ------------------------------------------------------------------

    /// `glEnable`.
    pub fn enable(&mut self, cap: Capability) {
        self.caps.insert(cap, true);
    }

    /// `glDisable`.
    pub fn disable(&mut self, cap: Capability) {
        self.caps.insert(cap, false);
    }

    /// `glIsEnabled`.
    pub fn is_enabled(&self, cap: Capability) -> bool {
        self.cap(cap)
    }

    /// `glClearColor`.
    pub fn clear_color(&mut self, r: f32, g: f32, b: f32, a: f32) {
        self.clear_color = Rgba::new(r, g, b, a);
    }

    /// `glViewport`.
    pub fn set_viewport(&mut self, x: i32, y: i32, w: u32, h: u32) {
        self.viewport = (x, y, w, h);
    }

    /// `glScissor`.
    pub fn set_scissor(&mut self, x: i32, y: i32, w: u32, h: u32) {
        self.scissor = (x, y, w, h);
    }

    /// `glLineWidth`.
    pub fn set_line_width(&mut self, w: f32) {
        if w <= 0.0 {
            self.record_error(GlError::InvalidValue);
        } else {
            self.line_width = w;
        }
    }

    /// `glPointSize` (v1).
    pub fn set_point_size(&mut self, s: f32) {
        if s <= 0.0 {
            self.record_error(GlError::InvalidValue);
        } else {
            self.point_size = s;
        }
    }

    /// `glPixelStorei`, including the `APPLE_row_bytes` parameters, which
    /// only the Apple flavor accepts — on Android they are an unknown enum,
    /// exactly the mismatch the bridge's data-dependent diplomat papers
    /// over.
    pub fn pixel_store(&mut self, param: PixelStoreParam, value: usize) {
        match param {
            PixelStoreParam::UnpackAlignment => {
                if matches!(value, 1 | 2 | 4 | 8) {
                    self.pixel_store.unpack_alignment = value;
                } else {
                    self.record_error(GlError::InvalidValue);
                }
            }
            PixelStoreParam::PackAlignment => {
                if matches!(value, 1 | 2 | 4 | 8) {
                    self.pixel_store.pack_alignment = value;
                } else {
                    self.record_error(GlError::InvalidValue);
                }
            }
            PixelStoreParam::UnpackRowBytesApple => {
                if self.flavor == ApiFlavor::Ios {
                    self.pixel_store.unpack_row_bytes = value;
                } else {
                    self.record_error(GlError::InvalidEnum);
                }
            }
            PixelStoreParam::PackRowBytesApple => {
                if self.flavor == ApiFlavor::Ios {
                    self.pixel_store.pack_row_bytes = value;
                } else {
                    self.record_error(GlError::InvalidEnum);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // v1 fixed-function matrix stack
    // ------------------------------------------------------------------

    fn require_v1(&mut self) -> bool {
        if self.version != GlesVersion::V1 {
            self.record_error(GlError::InvalidOperation);
            false
        } else {
            true
        }
    }

    fn require_v2(&mut self) -> bool {
        if self.version != GlesVersion::V2 {
            self.record_error(GlError::InvalidOperation);
            false
        } else {
            true
        }
    }

    fn current_stack(&mut self) -> &mut Vec<Mat4> {
        match self.matrix_mode {
            MatrixMode::ModelView => &mut self.modelview,
            MatrixMode::Projection => &mut self.projection,
        }
    }

    /// `glMatrixMode`.
    pub fn matrix_mode(&mut self, mode: MatrixMode) {
        if self.require_v1() {
            self.matrix_mode = mode;
        }
    }

    /// `glLoadIdentity`.
    pub fn load_identity(&mut self) {
        if self.require_v1() {
            *self.current_stack().last_mut().expect("stack never empty") = Mat4::identity();
        }
    }

    /// `glLoadMatrixf`.
    pub fn load_matrix(&mut self, m: Mat4) {
        if self.require_v1() {
            *self.current_stack().last_mut().expect("stack never empty") = m;
        }
    }

    /// `glMultMatrixf`.
    pub fn mult_matrix(&mut self, m: Mat4) {
        if self.require_v1() {
            let top = self.current_stack().last_mut().expect("stack never empty");
            *top = top.mul(&m);
        }
    }

    /// `glPushMatrix`.
    pub fn push_matrix(&mut self) {
        if self.require_v1() {
            let stack = self.current_stack();
            let top = *stack.last().expect("stack never empty");
            stack.push(top);
        }
    }

    /// `glPopMatrix`.
    pub fn pop_matrix(&mut self) {
        if self.require_v1() {
            let stack = self.current_stack();
            if stack.len() <= 1 {
                self.record_error(GlError::InvalidOperation);
            } else {
                stack.pop();
            }
        }
    }

    /// `glRotatef`.
    pub fn rotate(&mut self, degrees: f32, x: f32, y: f32, z: f32) {
        self.mult_matrix(Mat4::rotate(degrees, x, y, z));
    }

    /// `glTranslatef`.
    pub fn translate(&mut self, x: f32, y: f32, z: f32) {
        self.mult_matrix(Mat4::translate(x, y, z));
    }

    /// `glScalef`.
    pub fn scale(&mut self, x: f32, y: f32, z: f32) {
        self.mult_matrix(Mat4::scale(x, y, z));
    }

    /// `glOrthof`.
    pub fn ortho(&mut self, l: f32, r: f32, b: f32, t: f32, n: f32, f: f32) {
        self.mult_matrix(Mat4::ortho(l, r, b, t, n, f));
    }

    /// `glFrustumf`.
    pub fn frustum(&mut self, l: f32, r: f32, b: f32, t: f32, n: f32, f: f32) {
        self.mult_matrix(Mat4::frustum(l, r, b, t, n, f));
    }

    /// Top of the model-view stack (for tests / bridge introspection).
    pub fn modelview_top(&self) -> Mat4 {
        *self.modelview.last().expect("stack never empty")
    }

    /// `glColor4f` (v1).
    pub fn color4f(&mut self, r: f32, g: f32, b: f32, a: f32) {
        if self.require_v1() {
            self.current_color = Rgba::new(r, g, b, a);
        }
    }

    // ------------------------------------------------------------------
    // v1 client arrays / v2 attributes
    // ------------------------------------------------------------------

    /// `glEnableClientState` / `glDisableClientState` (v1).
    pub fn set_client_state(&mut self, state: ClientState, enabled: bool) {
        if !self.require_v1() {
            return;
        }
        let array = match state {
            ClientState::VertexArray => &mut self.vertex_array,
            ClientState::ColorArray => &mut self.color_array,
            ClientState::TexCoordArray => &mut self.texcoord_array,
        };
        array.enabled = enabled;
    }

    /// `glVertexPointer` / `glColorPointer` / `glTexCoordPointer` (v1). The
    /// client memory is captured by copy, modelling the driver reading the
    /// arrays at draw time.
    pub fn client_pointer(&mut self, state: ClientState, component_size: usize, data: &[f32]) {
        if !self.require_v1() {
            return;
        }
        if !(1..=4).contains(&component_size) {
            self.record_error(GlError::InvalidValue);
            return;
        }
        let array = match state {
            ClientState::VertexArray => &mut self.vertex_array,
            ClientState::ColorArray => &mut self.color_array,
            ClientState::TexCoordArray => &mut self.texcoord_array,
        };
        array.component_size = component_size;
        array.data = data.to_vec();
    }

    /// `glVertexAttribPointer` (v2). Attribute 0 = position, 1 = color,
    /// 2 = texcoord — the convention all simulated shaders follow.
    pub fn vertex_attrib_pointer(&mut self, index: u32, component_size: usize, data: &[f32]) {
        if !self.require_v2() {
            return;
        }
        if !(1..=4).contains(&component_size) {
            self.record_error(GlError::InvalidValue);
            return;
        }
        let entry = self.attribs.entry(index).or_default();
        entry.component_size = component_size;
        entry.data = data.to_vec();
    }

    /// `glEnableVertexAttribArray` / `glDisableVertexAttribArray` (v2).
    pub fn set_vertex_attrib_enabled(&mut self, index: u32, enabled: bool) {
        if self.require_v2() {
            self.attribs.entry(index).or_default().enabled = enabled;
        }
    }

    // ------------------------------------------------------------------
    // Textures
    // ------------------------------------------------------------------

    /// `glGenTextures`.
    pub fn gen_textures(&mut self, count: usize) -> Vec<u32> {
        (0..count)
            .map(|_| {
                let name = self.fresh_name();
                self.textures.insert(name, Texture::default());
                name
            })
            .collect()
    }

    /// `glBindTexture`.
    pub fn bind_texture(&mut self, name: u32) {
        if name != 0 && !self.textures.contains_key(&name) {
            // GL auto-creates on bind.
            self.textures.insert(name, Texture::default());
        }
        self.bound_texture = name;
    }

    /// `glDeleteTextures`. Returns how many textures were actually freed
    /// (the vendor driver's cost scales with it).
    pub fn delete_textures(&mut self, names: &[u32]) -> usize {
        let mut freed = 0;
        for &name in names {
            if self.textures.remove(&name).is_some() {
                freed += 1;
                if self.bound_texture == name {
                    self.bound_texture = 0;
                }
            }
        }
        freed
    }

    /// `glIsTexture`.
    pub fn is_texture(&self, name: u32) -> bool {
        name != 0 && self.textures.contains_key(&name)
    }

    /// `glTexImage2D`: allocates storage for the bound texture and unpacks
    /// `data` (honouring unpack alignment / `APPLE_row_bytes`). Passing
    /// `Bgra` on the Android flavor records `GL_INVALID_ENUM` — Android has
    /// no `APPLE_texture_format_BGRA8888`.
    pub fn tex_image_2d(&mut self, width: u32, height: u32, format: TexFormat, data: Option<&[u8]>) {
        if format == TexFormat::Bgra && self.flavor == ApiFlavor::Android {
            self.record_error(GlError::InvalidEnum);
            return;
        }
        if self.bound_texture == 0 {
            self.record_error(GlError::InvalidOperation);
            return;
        }
        let image = Image::new(width, height, format.pixel_format());
        let bpp = format.bytes_per_pixel();
        if let Some(data) = data {
            let stride = self.pixel_store.unpack_stride(width as usize, bpp);
            if data.len() < stride * (height as usize).saturating_sub(1) + width as usize * bpp {
                self.record_error(GlError::InvalidValue);
                return;
            }
            unpack_into(&image, data, stride, bpp);
            self.device.charge_upload((width as u64) * (height as u64) * bpp as u64);
        } else {
            self.device.charge_upload(0);
        }
        let tex = self
            .textures
            .get_mut(&self.bound_texture)
            .expect("bound texture exists");
        tex.image = Some(image);
        // Re-specifying storage implicitly drops any EGLImage association
        // (the disassociation step of the IOSurfaceLock dance, §6.2).
        tex.external = None;
    }

    /// `glTexSubImage2D`.
    pub fn tex_sub_image_2d(
        &mut self,
        x: u32,
        y: u32,
        width: u32,
        height: u32,
        format: TexFormat,
        data: &[u8],
    ) {
        if format == TexFormat::Bgra && self.flavor == ApiFlavor::Android {
            self.record_error(GlError::InvalidEnum);
            return;
        }
        let stride = self
            .pixel_store
            .unpack_stride(width as usize, format.bytes_per_pixel());
        let Some(tex) = self.textures.get(&self.bound_texture) else {
            self.record_error(GlError::InvalidOperation);
            return;
        };
        let Some(image) = tex.current_image() else {
            self.record_error(GlError::InvalidOperation);
            return;
        };
        if x + width > image.width() || y + height > image.height() {
            self.record_error(GlError::InvalidValue);
            return;
        }
        let bpp = format.bytes_per_pixel();
        let pf = format.pixel_format();
        image.map_rows(|rows| {
            for row in 0..height as usize {
                for col in 0..width as usize {
                    let off = row * stride + col * bpp;
                    let color = pf.decode(&data[off..off + bpp]);
                    rows.set_pixel(x + col as u32, y + row as u32, color);
                }
            }
        });
        self.device
            .charge_upload(u64::from(width) * u64::from(height) * bpp as u64);
    }

    /// `glEGLImageTargetTexture2DOES`: binds external (GraphicBuffer /
    /// IOSurface) memory as the bound texture's storage.
    pub fn egl_image_target_texture(&mut self, source: EglImageSource) {
        if self.bound_texture == 0 {
            self.record_error(GlError::InvalidOperation);
            return;
        }
        let tex = self
            .textures
            .get_mut(&self.bound_texture)
            .expect("bound texture exists");
        tex.external = Some(source);
        tex.image = None;
    }

    /// The image currently backing a texture (for tests and the bridge).
    pub fn texture_image(&self, name: u32) -> Option<Image> {
        self.textures.get(&name).and_then(|t| t.current_image())
    }

    /// Whether a texture currently has an EGLImage association.
    pub fn texture_has_external(&self, name: u32) -> bool {
        self.textures
            .get(&name)
            .is_some_and(|t| t.external.is_some())
    }

    /// The currently bound texture name (0 = none).
    pub fn bound_texture(&self) -> u32 {
        self.bound_texture
    }

    // ------------------------------------------------------------------
    // Buffer objects
    // ------------------------------------------------------------------

    /// `glGenBuffers`.
    pub fn gen_buffers(&mut self, count: usize) -> Vec<u32> {
        (0..count)
            .map(|_| {
                let name = self.fresh_name();
                self.buffers.insert(name, Vec::new());
                name
            })
            .collect()
    }

    /// `glBufferData`: uploads data into a buffer object.
    pub fn buffer_data(&mut self, buffer: u32, data: &[u8]) {
        match self.buffers.get_mut(&buffer) {
            Some(store) => {
                *store = data.to_vec();
                self.device.charge_upload(data.len() as u64);
            }
            None => self.record_error(GlError::InvalidOperation),
        }
    }

    /// `glIsBuffer`.
    pub fn is_buffer(&self, buffer: u32) -> bool {
        self.buffers.contains_key(&buffer)
    }

    /// `glDeleteBuffers`.
    pub fn delete_buffers(&mut self, names: &[u32]) {
        for name in names {
            self.buffers.remove(name);
        }
    }

    /// The size of a buffer object (`glGetBufferParameteriv(GL_BUFFER_SIZE)`).
    pub fn buffer_size(&self, buffer: u32) -> Option<usize> {
        self.buffers.get(&buffer).map(Vec::len)
    }

    // ------------------------------------------------------------------
    // Renderbuffers and framebuffers
    // ------------------------------------------------------------------

    /// `glGenRenderbuffers` (core in v2, `OES` in v1).
    pub fn gen_renderbuffers(&mut self, count: usize) -> Vec<u32> {
        (0..count)
            .map(|_| {
                let name = self.fresh_name();
                self.renderbuffers.insert(name, Renderbuffer::default());
                name
            })
            .collect()
    }

    /// `glBindRenderbuffer`.
    pub fn bind_renderbuffer(&mut self, name: u32) {
        if name != 0 && !self.renderbuffers.contains_key(&name) {
            self.renderbuffers.insert(name, Renderbuffer::default());
        }
        self.bound_renderbuffer = name;
    }

    /// `glRenderbufferStorage`.
    pub fn renderbuffer_storage(&mut self, width: u32, height: u32, format: TexFormat) {
        if self.bound_renderbuffer == 0 {
            self.record_error(GlError::InvalidOperation);
            return;
        }
        let rb = self
            .renderbuffers
            .get_mut(&self.bound_renderbuffer)
            .expect("bound renderbuffer exists");
        rb.image = Some(Image::new(width, height, format.pixel_format()));
        rb.external = None;
    }

    /// Binds external memory as the bound renderbuffer's storage (the
    /// EAGL `renderbufferStorage:fromDrawable:` and EGLImage paths).
    pub fn egl_image_target_renderbuffer(&mut self, source: EglImageSource) {
        if self.bound_renderbuffer == 0 {
            self.record_error(GlError::InvalidOperation);
            return;
        }
        let rb = self
            .renderbuffers
            .get_mut(&self.bound_renderbuffer)
            .expect("bound renderbuffer exists");
        rb.external = Some(source);
        rb.image = None;
    }

    /// The image currently backing a renderbuffer.
    pub fn renderbuffer_image(&self, name: u32) -> Option<Image> {
        self.renderbuffers.get(&name).and_then(|r| r.current_image())
    }

    /// `glGenFramebuffers`.
    pub fn gen_framebuffers(&mut self, count: usize) -> Vec<u32> {
        (0..count)
            .map(|_| {
                let name = self.fresh_name();
                self.framebuffers.insert(name, Framebuffer::default());
                name
            })
            .collect()
    }

    /// `glBindFramebuffer` (0 = the default, window-system framebuffer).
    pub fn bind_framebuffer(&mut self, name: u32) {
        if name != 0 && !self.framebuffers.contains_key(&name) {
            self.framebuffers.insert(name, Framebuffer::default());
        }
        self.bound_framebuffer = name;
    }

    /// The currently bound framebuffer name.
    pub fn bound_framebuffer(&self) -> u32 {
        self.bound_framebuffer
    }

    /// `glFramebufferTexture2D`: attaches a texture as the color buffer.
    pub fn framebuffer_texture(&mut self, texture: u32) {
        if self.bound_framebuffer == 0 {
            self.record_error(GlError::InvalidOperation);
            return;
        }
        let fb = self
            .framebuffers
            .get_mut(&self.bound_framebuffer)
            .expect("bound framebuffer exists");
        fb.color = Attachment::Texture(texture);
    }

    /// `glFramebufferRenderbuffer`.
    pub fn framebuffer_renderbuffer(&mut self, renderbuffer: u32) {
        if self.bound_framebuffer == 0 {
            self.record_error(GlError::InvalidOperation);
            return;
        }
        let fb = self
            .framebuffers
            .get_mut(&self.bound_framebuffer)
            .expect("bound framebuffer exists");
        fb.color = Attachment::Renderbuffer(renderbuffer);
    }

    /// `glCheckFramebufferStatus`.
    pub fn check_framebuffer_status(&self) -> FramebufferStatus {
        if self.bound_framebuffer == 0 {
            return if self.default_fb.is_some() {
                FramebufferStatus::Complete
            } else {
                FramebufferStatus::MissingAttachment
            };
        }
        let Some(fb) = self.framebuffers.get(&self.bound_framebuffer) else {
            return FramebufferStatus::Unsupported;
        };
        match fb.color {
            Attachment::None => FramebufferStatus::MissingAttachment,
            Attachment::Texture(t) => {
                if self.texture_image(t).is_some() {
                    FramebufferStatus::Complete
                } else {
                    FramebufferStatus::IncompleteAttachment
                }
            }
            Attachment::Renderbuffer(r) => {
                if self.renderbuffer_image(r).is_some() {
                    FramebufferStatus::Complete
                } else {
                    FramebufferStatus::IncompleteAttachment
                }
            }
        }
    }

    /// Resolves the image the bound framebuffer renders into.
    pub fn render_target(&self) -> Option<Image> {
        if self.bound_framebuffer == 0 {
            return self.default_fb.clone();
        }
        let fb = self.framebuffers.get(&self.bound_framebuffer)?;
        match fb.color {
            Attachment::None => None,
            Attachment::Texture(t) => self.texture_image(t),
            Attachment::Renderbuffer(r) => self.renderbuffer_image(r),
        }
    }

    // ------------------------------------------------------------------
    // Shaders and programs (v2)
    // ------------------------------------------------------------------

    /// `glCreateShader`.
    pub fn create_shader(&mut self) -> u32 {
        if !self.require_v2() {
            return 0;
        }
        let name = self.fresh_name();
        self.shaders.insert(
            name,
            Shader {
                source: String::new(),
                compiled: false,
            },
        );
        name
    }

    /// `glShaderSource`.
    pub fn shader_source(&mut self, shader: u32, source: &str) {
        match self.shaders.get_mut(&shader) {
            Some(s) => s.source = source.to_owned(),
            None => self.record_error(GlError::InvalidValue),
        }
    }

    /// `glCompileShader`.
    pub fn compile_shader(&mut self, shader: u32) {
        match self.shaders.get_mut(&shader) {
            Some(s) => s.compiled = !s.source.is_empty(),
            None => self.record_error(GlError::InvalidValue),
        }
    }

    /// `glCreateProgram`.
    pub fn create_program(&mut self) -> u32 {
        if !self.require_v2() {
            return 0;
        }
        let name = self.fresh_name();
        self.programs.insert(name, Program::default());
        name
    }

    /// `glAttachShader`.
    pub fn attach_shader(&mut self, program: u32, shader: u32) {
        if !self.shaders.contains_key(&shader) {
            self.record_error(GlError::InvalidValue);
            return;
        }
        match self.programs.get_mut(&program) {
            Some(p) => p.shaders.push(shader),
            None => self.record_error(GlError::InvalidValue),
        }
    }

    /// `glLinkProgram` — charges the (large, Figure 9) link cost.
    pub fn link_program(&mut self, program: u32) {
        let all_compiled = {
            let Some(p) = self.programs.get(&program) else {
                self.record_error(GlError::InvalidValue);
                return;
            };
            !p.shaders.is_empty()
                && p.shaders
                    .iter()
                    .all(|s| self.shaders.get(s).is_some_and(|sh| sh.compiled))
        };
        self.device.charge_link_program();
        let p = self.programs.get_mut(&program).expect("checked above");
        p.linked = all_compiled;
    }

    /// `glGetProgramiv(GL_LINK_STATUS)`.
    pub fn program_linked(&self, program: u32) -> bool {
        self.programs.get(&program).is_some_and(|p| p.linked)
    }

    /// `glUseProgram`.
    pub fn use_program(&mut self, program: u32) {
        if program != 0 && !self.programs.contains_key(&program) {
            self.record_error(GlError::InvalidValue);
            return;
        }
        self.current_program = program;
    }

    /// `glGetUniformLocation`.
    pub fn uniform_location(&mut self, program: u32, name: &str) -> i32 {
        let Some(p) = self.programs.get_mut(&program) else {
            self.record_error(GlError::InvalidValue);
            return -1;
        };
        if let Some(&loc) = p.locations.get(name) {
            return loc;
        }
        let loc = p.next_location;
        p.next_location += 1;
        p.locations.insert(name.to_owned(), loc);
        loc
    }

    fn set_uniform(&mut self, location: i32, value: UniformValue) {
        if self.current_program == 0 {
            self.record_error(GlError::InvalidOperation);
            return;
        }
        let p = self
            .programs
            .get_mut(&self.current_program)
            .expect("current program exists");
        p.values.insert(location, value);
    }

    /// `glUniform1f`.
    pub fn uniform1f(&mut self, location: i32, v: f32) {
        self.set_uniform(location, UniformValue::F1(v));
    }

    /// `glUniform1i`.
    pub fn uniform1i(&mut self, location: i32, v: i32) {
        self.set_uniform(location, UniformValue::I1(v));
    }

    /// `glUniform4f`.
    pub fn uniform4f(&mut self, location: i32, x: f32, y: f32, z: f32, w: f32) {
        self.set_uniform(location, UniformValue::F4([x, y, z, w]));
    }

    /// `glUniformMatrix4fv`.
    pub fn uniform_matrix4(&mut self, location: i32, m: Mat4) {
        self.set_uniform(location, UniformValue::Matrix(m));
    }

    fn program_uniform(&self, name: &str) -> Option<UniformValue> {
        let p = self.programs.get(&self.current_program)?;
        let loc = p.locations.get(name)?;
        p.values.get(loc).copied()
    }

    // ------------------------------------------------------------------
    // Fences (APPLE_fence on iOS, NV_fence on Android)
    // ------------------------------------------------------------------

    /// `glGenFences{APPLE,NV}`.
    pub fn gen_fences(&mut self, count: usize) -> Vec<u32> {
        (0..count)
            .map(|_| {
                let name = self.fresh_name();
                let id = self.device.gen_fence();
                self.fences.insert(name, id);
                name
            })
            .collect()
    }

    /// `glDeleteFences{APPLE,NV}`.
    pub fn delete_fences(&mut self, names: &[u32]) {
        for name in names {
            if let Some(id) = self.fences.remove(name) {
                self.device.delete_fence(id);
            }
        }
    }

    /// `glSetFence{APPLE,NV}`.
    pub fn set_fence(&mut self, name: u32) {
        match self.fences.get(&name) {
            Some(&id) => {
                self.device.set_fence(id, FenceCondition::AllCompleted);
            }
            None => self.record_error(GlError::InvalidOperation),
        }
    }

    /// `glTestFence{APPLE,NV}`.
    pub fn test_fence(&mut self, name: u32) -> bool {
        match self.fences.get(&name).and_then(|&id| self.device.test_fence(id)) {
            Some(signaled) => signaled,
            None => {
                self.record_error(GlError::InvalidOperation);
                true
            }
        }
    }

    /// `glFinishFence{APPLE,NV}`.
    pub fn finish_fence(&mut self, name: u32) {
        match self.fences.get(&name) {
            Some(&id) => {
                self.device.finish_fence(id);
            }
            None => self.record_error(GlError::InvalidOperation),
        }
    }

    /// `glIsFence{APPLE,NV}`.
    pub fn is_fence(&self, name: u32) -> bool {
        self.fences.contains_key(&name)
    }

    // ------------------------------------------------------------------
    // Drawing
    // ------------------------------------------------------------------

    /// `glClear(GL_COLOR_BUFFER_BIT [| GL_DEPTH_BUFFER_BIT])`.
    pub fn clear(&mut self, color: bool, depth: bool) {
        let Some(target) = self.render_target() else {
            self.record_error(GlError::InvalidFramebufferOperation);
            return;
        };
        if color {
            if self.cap(Capability::ScissorTest) {
                let (sx, sy, sw, sh) = self.scissor;
                let clear_color = self.clear_color;
                let x0 = sx.max(0) as u32;
                let y0 = sy.max(0) as u32;
                // One lock for the whole scissor rect (fill_rect clips to
                // the target bounds just like the old per-pixel loops did).
                target.fill_rect(
                    cycada_gpu::raster::Rect { x: x0, y: y0, w: sw, h: sh },
                    clear_color,
                );
                // Scissored clears still cost per covered pixel.
                self.device
                    .charge_upload(u64::from(sw) * u64::from(sh) * 4 / 8);
            } else {
                self.device.clear(&target, self.clear_color, self.draw_class);
            }
        }
        if depth {
            if let Some(d) = self.depth_for(&target) {
                d.fill(f32::INFINITY);
            }
        }
    }

    fn depth_for(&mut self, target: &Image) -> Option<&mut Vec<f32>> {
        let needed = target.pixel_count() as usize;
        let slot = if self.bound_framebuffer == 0 {
            &mut self.default_depth
        } else {
            let fb = self.framebuffers.get_mut(&self.bound_framebuffer)?;
            &mut fb.depth
        };
        match slot {
            Some(d) if d.len() == needed => {}
            _ => *slot = Some(vec![f32::INFINITY; needed]),
        }
        slot.as_mut()
    }

    /// `glDrawArrays` — assembles vertices from client arrays (v1) or
    /// attributes (v2) and rasterizes. Returns fragments shaded.
    pub fn draw_arrays(&mut self, mode: Primitive, first: usize, count: usize) -> u64 {
        let indices: Vec<u32> = (first as u32..(first + count) as u32).collect();
        self.draw_internal(mode, &indices)
    }

    /// `glDrawElements`.
    pub fn draw_elements(&mut self, mode: Primitive, indices: &[u32]) -> u64 {
        self.draw_internal(mode, indices)
    }

    fn gather_vertices(&mut self, indices: &[u32]) -> Option<Vec<Vertex>> {
        let (positions, colors, uvs) = match self.version {
            GlesVersion::V1 => {
                if !self.vertex_array.enabled || self.vertex_array.data.is_empty() {
                    self.record_error(GlError::InvalidOperation);
                    return None;
                }
                (
                    self.vertex_array.clone(),
                    if self.color_array.enabled {
                        Some(self.color_array.clone())
                    } else {
                        None
                    },
                    if self.texcoord_array.enabled {
                        Some(self.texcoord_array.clone())
                    } else {
                        None
                    },
                )
            }
            GlesVersion::V2 => {
                let pos = self.attribs.get(&0).filter(|a| a.enabled).cloned();
                let Some(pos) = pos else {
                    self.record_error(GlError::InvalidOperation);
                    return None;
                };
                (
                    pos,
                    self.attribs.get(&1).filter(|a| a.enabled).cloned(),
                    self.attribs.get(&2).filter(|a| a.enabled).cloned(),
                )
            }
        };

        let base_color = match self.version {
            GlesVersion::V1 => self.current_color,
            GlesVersion::V2 => match self.program_uniform("u_color") {
                Some(UniformValue::F4([r, g, b, a])) => Rgba::new(r, g, b, a),
                _ => Rgba::WHITE,
            },
        };

        let fetch = |arr: &ClientArray, i: usize, dims: usize, default: f32| -> Vec<f32> {
            let start = i * arr.component_size;
            (0..dims)
                .map(|d| {
                    if d < arr.component_size {
                        arr.data.get(start + d).copied().unwrap_or(default)
                    } else {
                        default
                    }
                })
                .collect()
        };

        if positions.component_size == 0 {
            // Enabled array whose pointer was never specified: undefined
            // behaviour in real GL; we fail deterministically.
            self.record_error(GlError::InvalidOperation);
            return None;
        }
        let max_index = *indices.iter().max()? as usize;
        if (max_index + 1) * positions.component_size > positions.data.len() {
            self.record_error(GlError::InvalidOperation);
            return None;
        }

        Some(
            indices
                .iter()
                .map(|&i| {
                    let i = i as usize;
                    let p = fetch(&positions, i, 3, 0.0);
                    let color = match &colors {
                        Some(c) => {
                            let v = fetch(c, i, 4, 1.0);
                            Rgba::new(v[0], v[1], v[2], v[3])
                        }
                        None => base_color,
                    };
                    let uv = match &uvs {
                        Some(t) => {
                            let v = fetch(t, i, 2, 0.0);
                            [v[0], v[1]]
                        }
                        None => [0.0, 0.0],
                    };
                    Vertex {
                        pos: [p[0], p[1], p[2]],
                        color,
                        uv,
                    }
                })
                .collect(),
        )
    }

    fn current_transform(&self) -> Mat4 {
        match self.version {
            GlesVersion::V1 => {
                let p = self.projection.last().expect("stack never empty");
                let m = self.modelview.last().expect("stack never empty");
                p.mul(m)
            }
            GlesVersion::V2 => match self.program_uniform("u_mvp") {
                Some(UniformValue::Matrix(m)) => m,
                _ => Mat4::identity(),
            },
        }
    }

    /// Composes the viewport mapping (NDC -> sub-rectangle of the target).
    fn viewport_matrix(&self, target: &Image) -> Mat4 {
        let (vx, vy, vw, vh) = self.viewport;
        let (tw, th) = (target.width() as f32, target.height() as f32);
        if vw == 0 || vh == 0 || tw == 0.0 || th == 0.0 {
            return Mat4::identity();
        }
        let sx = vw as f32 / tw;
        let sy = vh as f32 / th;
        let tx = (2.0 * vx as f32 + vw as f32) / tw - 1.0;
        let ty = (2.0 * vy as f32 + vh as f32) / th - 1.0;
        let mut m = Mat4::identity();
        m.m[0][0] = sx;
        m.m[1][1] = sy;
        m.m[3][0] = tx;
        m.m[3][1] = ty;
        m
    }

    fn draw_internal(&mut self, mode: Primitive, indices: &[u32]) -> u64 {
        // Per-draw driver cost: state validation, command encoding and
        // kick-off in the vendor driver. Dominates small draws (Figures 9
        // and 10 show tens of microseconds per average draw call), and
        // scales with the device's efficiency on this path — the iPad's 2D
        // path is markedly slower, its 3D path faster (Figure 6).
        const DRAW_CALL_DRIVER_NS: f64 = 14_000.0;
        let class_scale = match self.draw_class {
            DrawClass::TwoD => self.device.cost_model().scale_2d,
            DrawClass::ThreeD => self.device.cost_model().scale_3d,
        };
        self.device
            .clock()
            .charge_ns_f64(DRAW_CALL_DRIVER_NS * class_scale);
        let Some(target) = self.render_target() else {
            self.record_error(GlError::InvalidFramebufferOperation);
            return 0;
        };
        let Some(vertices) = self.gather_vertices(indices) else {
            return 0;
        };
        let transform = self.viewport_matrix(&target).mul(&self.current_transform());
        let blend = if self.cap(Capability::Blend) {
            BlendMode::Alpha
        } else {
            BlendMode::Opaque
        };
        let depth_test = self.cap(Capability::DepthTest);

        // Texture selection: bound texture if texturing makes sense.
        let texture_image = if self.version == GlesVersion::V1 {
            if self.cap(Capability::Texture2D) {
                self.texture_image(self.bound_texture)
            } else {
                None
            }
        } else {
            self.texture_image(self.bound_texture)
        };

        let tri_vertices: Vec<Vertex> = match mode {
            Primitive::Triangles => vertices,
            Primitive::TriangleStrip => {
                let mut out = Vec::new();
                for w in vertices.windows(3) {
                    out.extend_from_slice(w);
                }
                out
            }
            Primitive::TriangleFan => {
                let mut out = Vec::new();
                for i in 1..vertices.len().saturating_sub(1) {
                    out.push(vertices[0]);
                    out.push(vertices[i]);
                    out.push(vertices[i + 1]);
                }
                out
            }
            Primitive::Lines | Primitive::LineStrip | Primitive::LineLoop => {
                let segments: Vec<(Vertex, Vertex)> = match mode {
                    Primitive::Lines => vertices
                        .chunks_exact(2)
                        .map(|c| (c[0], c[1]))
                        .collect(),
                    Primitive::LineStrip => {
                        vertices.windows(2).map(|w| (w[0], w[1])).collect()
                    }
                    _ => {
                        let mut s: Vec<(Vertex, Vertex)> =
                            vertices.windows(2).map(|w| (w[0], w[1])).collect();
                        if vertices.len() > 2 {
                            s.push((vertices[vertices.len() - 1], vertices[0]));
                        }
                        s
                    }
                };
                self.expand_lines(&transform, &target, &segments)
            }
            Primitive::Points => {
                let size = self.point_size;
                self.expand_points(&transform, &target, &vertices, size)
            }
        };

        // Lines/points are pre-transformed to NDC; triangles carry the
        // full transform.
        let pretransformed = matches!(
            mode,
            Primitive::Lines | Primitive::LineStrip | Primitive::LineLoop | Primitive::Points
        );
        // GL clips primitives to the clip volume, which the viewport maps
        // to this pixel rectangle (GL viewport y counts from the bottom).
        let (vx, vy, vw, vh) = self.viewport;
        let clip = if vw > 0 && vh > 0 {
            let y_top = target.height().saturating_sub(vy.max(0) as u32 + vh);
            Some(cycada_gpu::raster::Rect {
                x: vx.max(0) as u32,
                y: y_top,
                w: vw,
                h: vh,
            })
        } else {
            None
        };
        let pipeline = Pipeline {
            transform: if pretransformed {
                Mat4::identity()
            } else {
                transform
            },
            texture: texture_image.as_ref(),
            blend,
            depth_test: depth_test && !pretransformed,
            clip,
        };

        let metrics = if pipeline.depth_test {
            let class = self.draw_class;
            let device = self.device.clone();
            let Some(depth) = self.depth_for(&target) else {
                return 0;
            };
            device.draw(&target, Some(depth), &tri_vertices, None, &pipeline, class)
        } else {
            self.device
                .draw(&target, None, &tri_vertices, None, &pipeline, self.draw_class)
        };
        metrics.fragments
    }

    /// Expands line segments into screen-space quads (two triangles each),
    /// expressed in NDC with an identity transform.
    fn expand_lines(
        &self,
        transform: &Mat4,
        target: &Image,
        segments: &[(Vertex, Vertex)],
    ) -> Vec<Vertex> {
        let (w, h) = (target.width() as f32, target.height() as f32);
        let half_w = self.line_width.max(1.0) / w; // half width in NDC x
        let half_h = self.line_width.max(1.0) / h;
        let mut out = Vec::with_capacity(segments.len() * 6);
        for &(a, b) in segments {
            let pa = transform.transform_point(a.pos);
            let pb = transform.transform_point(b.pos);
            if pa[3] <= f32::EPSILON || pb[3] <= f32::EPSILON {
                continue;
            }
            let (ax, ay) = (pa[0] / pa[3], pa[1] / pa[3]);
            let (bx, by) = (pb[0] / pb[3], pb[1] / pb[3]);
            // Perpendicular in NDC (aspect-corrected).
            let (dx, dy) = (bx - ax, by - ay);
            let len = (dx * dx + dy * dy).sqrt();
            if len <= f32::EPSILON {
                continue;
            }
            let (nx, ny) = (-dy / len * half_w, dx / len * half_h);
            let quad = [
                ([ax - nx, ay - ny, 0.0], a.color, a.uv),
                ([ax + nx, ay + ny, 0.0], a.color, a.uv),
                ([bx + nx, by + ny, 0.0], b.color, b.uv),
                ([ax - nx, ay - ny, 0.0], a.color, a.uv),
                ([bx + nx, by + ny, 0.0], b.color, b.uv),
                ([bx - nx, by - ny, 0.0], b.color, b.uv),
            ];
            out.extend(quad.iter().map(|&(pos, color, uv)| Vertex { pos, color, uv }));
        }
        out
    }

    /// Expands points into screen-space quads.
    fn expand_points(
        &self,
        transform: &Mat4,
        target: &Image,
        points: &[Vertex],
        size: f32,
    ) -> Vec<Vertex> {
        let (w, h) = (target.width() as f32, target.height() as f32);
        let hx = size.max(1.0) / w;
        let hy = size.max(1.0) / h;
        let mut out = Vec::with_capacity(points.len() * 6);
        for p in points {
            let t = transform.transform_point(p.pos);
            if t[3] <= f32::EPSILON {
                continue;
            }
            let (x, y) = (t[0] / t[3], t[1] / t[3]);
            let corners = [
                [x - hx, y - hy, 0.0],
                [x + hx, y - hy, 0.0],
                [x + hx, y + hy, 0.0],
                [x - hx, y + hy, 0.0],
            ];
            for &i in &[0usize, 1, 2, 0, 2, 3] {
                out.push(Vertex {
                    pos: corners[i],
                    color: p.color,
                    uv: p.uv,
                });
            }
        }
        out
    }

    /// Draws `image` as a full-screen textured quad into the currently
    /// bound framebuffer — the "simple GLES vertex and fragment shader
    /// programs" path Cycada's `aegl_bridge_draw_fbo_tex` uses to move an
    /// off-screen EAGL renderbuffer into the default framebuffer (§5).
    /// Returns fragments shaded.
    pub fn draw_fullscreen_image(&mut self, image: &Image) -> u64 {
        let Some(target) = self.render_target() else {
            self.record_error(GlError::InvalidFramebufferOperation);
            return 0;
        };
        self.device
            .fullscreen_image(&target, image, self.draw_class)
            .fragments
    }

    /// [`GlesContext::draw_fullscreen_image`] with the byte work deferred:
    /// the render target is resolved and all costs/stats charged *now*, on
    /// the issuing thread, while the rasterization is appended to `rec`
    /// for a later [`cycada_gpu::GpuDevice::execute`] (DESIGN.md §5f).
    /// Returns fragments shaded, exactly as the immediate path would.
    pub fn record_fullscreen_image(
        &mut self,
        rec: &mut cycada_gpu::CommandRecorder,
        image: &Image,
    ) -> u64 {
        let Some(target) = self.render_target() else {
            self.record_error(GlError::InvalidFramebufferOperation);
            return 0;
        };
        self.device
            .record_fullscreen_image(rec, &target, image, self.draw_class)
            .fragments
    }

    /// `glReadPixels`: packs the target's pixels into `out` honouring the
    /// pack alignment / `APPLE_row_bytes` state. Returns bytes written.
    pub fn read_pixels(
        &mut self,
        x: u32,
        y: u32,
        width: u32,
        height: u32,
        format: TexFormat,
        out: &mut Vec<u8>,
    ) -> usize {
        let Some(target) = self.render_target() else {
            self.record_error(GlError::InvalidFramebufferOperation);
            return 0;
        };
        if x + width > target.width() || y + height > target.height() {
            self.record_error(GlError::InvalidValue);
            return 0;
        }
        let bpp = format.bytes_per_pixel();
        let stride = self.pixel_store.pack_stride(width as usize, bpp);
        let total = stride * height as usize;
        out.resize(total, 0);
        let pf = format.pixel_format();
        target.read_rows(|rows| {
            for row in 0..height {
                for col in 0..width {
                    let color = rows.pixel_rgba(x + col, y + row);
                    let off = row as usize * stride + col as usize * bpp;
                    pf.encode(color, &mut out[off..off + bpp]);
                }
            }
        });
        self.device
            .charge_readback(u64::from(width) * u64::from(height) * bpp as u64);
        total
    }
}

impl fmt::Debug for GlesContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlesContext")
            .field("version", &self.version)
            .field("flavor", &self.flavor)
            .field("textures", &self.textures.len())
            .field("framebuffers", &self.framebuffers.len())
            .finish()
    }
}

fn unpack_into(image: &Image, data: &[u8], stride: usize, bpp: usize) {
    let pf = image.format();
    image.map_rows(|rows| {
        for row in 0..image.height() as usize {
            for col in 0..image.width() as usize {
                let off = row * stride + col * bpp;
                let color = pf.decode(&data[off..off + bpp]);
                rows.set_pixel(col as u32, row as u32, color);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycada_sim::{GpuCostModel, VirtualClock};

    fn ctx(version: GlesVersion, flavor: ApiFlavor) -> GlesContext {
        let device = Arc::new(GpuDevice::new(VirtualClock::new(), GpuCostModel::tegra3()));
        let mut c = GlesContext::new(version, flavor, device);
        c.set_default_framebuffer(Some(Image::new(
            32,
            32,
            cycada_gpu::PixelFormat::Rgba8888,
        )));
        c
    }

    fn fullscreen_quad(c: &mut GlesContext) {
        c.set_client_state(ClientState::VertexArray, true);
        c.client_pointer(
            ClientState::VertexArray,
            2,
            &[-1.0, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0],
        );
    }

    #[test]
    fn clear_writes_default_framebuffer() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        c.clear_color(1.0, 0.0, 0.0, 1.0);
        c.clear(true, false);
        let fb = c.default_framebuffer().unwrap();
        assert_eq!(fb.pixel_rgba(16, 16).to_bytes(), [255, 0, 0, 255]);
    }

    #[test]
    fn scissored_clear_only_touches_rect() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        c.clear_color(0.0, 1.0, 0.0, 1.0);
        c.enable(Capability::ScissorTest);
        c.set_scissor(0, 0, 8, 8);
        c.clear(true, false);
        let fb = c.default_framebuffer().unwrap();
        assert_eq!(fb.pixel_rgba(4, 4).to_bytes(), [0, 255, 0, 255]);
        assert_eq!(fb.pixel_rgba(20, 20).to_bytes(), [0, 0, 0, 0]);
    }

    #[test]
    fn v1_draw_arrays_with_current_color() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        fullscreen_quad(&mut c);
        c.color4f(0.0, 0.0, 1.0, 1.0);
        let frags = c.draw_arrays(Primitive::Triangles, 0, 6);
        assert!(frags > 0);
        let fb = c.default_framebuffer().unwrap();
        assert_eq!(fb.pixel_rgba(16, 16).to_bytes(), [0, 0, 255, 255]);
        assert_eq!(c.get_error(), GlError::NoError);
    }

    #[test]
    fn v1_matrix_stack_transforms_draws() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        fullscreen_quad(&mut c);
        c.color4f(1.0, 1.0, 1.0, 1.0);
        // Shrink everything to the lower-left quadrant...
        c.matrix_mode(MatrixMode::ModelView);
        c.push_matrix();
        c.scale(0.5, 0.5, 1.0);
        c.translate(-1.0, -1.0, 0.0);
        c.draw_arrays(Primitive::Triangles, 0, 6);
        c.pop_matrix();
        let fb = c.default_framebuffer().unwrap();
        // Lower-left quadrant (y flipped: NDC -1,-1 is bottom-left =>
        // image bottom) is drawn.
        assert_eq!(fb.pixel_rgba(4, 28).to_bytes(), [255, 255, 255, 255]);
        assert_eq!(fb.pixel_rgba(28, 4).to_bytes(), [0, 0, 0, 0]);
    }

    #[test]
    fn matrix_ops_require_v1() {
        let mut c = ctx(GlesVersion::V2, ApiFlavor::Android);
        c.push_matrix();
        assert_eq!(c.get_error(), GlError::InvalidOperation);
    }

    #[test]
    fn pop_on_single_entry_stack_errors() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        c.pop_matrix();
        assert_eq!(c.get_error(), GlError::InvalidOperation);
    }

    #[test]
    fn v2_draw_with_attribs_and_uniforms() {
        let mut c = ctx(GlesVersion::V2, ApiFlavor::Android);
        let vs = c.create_shader();
        c.shader_source(vs, "attribute vec2 a_pos; void main() {}");
        c.compile_shader(vs);
        let fs = c.create_shader();
        c.shader_source(fs, "void main() {}");
        c.compile_shader(fs);
        let prog = c.create_program();
        c.attach_shader(prog, vs);
        c.attach_shader(prog, fs);
        c.link_program(prog);
        assert!(c.program_linked(prog));
        c.use_program(prog);
        let color_loc = c.uniform_location(prog, "u_color");
        c.uniform4f(color_loc, 0.0, 1.0, 0.0, 1.0);

        c.set_vertex_attrib_enabled(0, true);
        c.vertex_attrib_pointer(
            0,
            2,
            &[-1.0, -1.0, 3.0, -1.0, -1.0, 3.0],
        );
        c.draw_arrays(Primitive::Triangles, 0, 3);
        let fb = c.default_framebuffer().unwrap();
        assert_eq!(fb.pixel_rgba(16, 16).to_bytes(), [0, 255, 0, 255]);
    }

    #[test]
    fn v2_mvp_uniform_applies() {
        let mut c = ctx(GlesVersion::V2, ApiFlavor::Android);
        let prog = c.create_program();
        let vs = c.create_shader();
        c.shader_source(vs, "x");
        c.compile_shader(vs);
        c.attach_shader(prog, vs);
        c.link_program(prog);
        c.use_program(prog);
        let mvp = c.uniform_location(prog, "u_mvp");
        c.uniform_matrix4(mvp, Mat4::scale(0.0, 0.0, 0.0)); // collapse everything
        c.set_vertex_attrib_enabled(0, true);
        c.vertex_attrib_pointer(0, 2, &[-1.0, -1.0, 3.0, -1.0, -1.0, 3.0]);
        let frags = c.draw_arrays(Primitive::Triangles, 0, 3);
        assert_eq!(frags, 0, "degenerate MVP collapses the triangle");
    }

    #[test]
    fn texture_upload_and_textured_draw() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        let tex = c.gen_textures(1)[0];
        c.bind_texture(tex);
        // 1x1 green RGBA texel.
        c.tex_image_2d(1, 1, TexFormat::Rgba, Some(&[0, 255, 0, 255]));
        c.enable(Capability::Texture2D);
        fullscreen_quad(&mut c);
        c.set_client_state(ClientState::TexCoordArray, true);
        c.client_pointer(
            ClientState::TexCoordArray,
            2,
            &[0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0],
        );
        c.draw_arrays(Primitive::Triangles, 0, 6);
        let fb = c.default_framebuffer().unwrap();
        assert_eq!(fb.pixel_rgba(16, 16).to_bytes(), [0, 255, 0, 255]);
    }

    #[test]
    fn bgra_rejected_on_android_accepted_on_ios() {
        let mut android = ctx(GlesVersion::V2, ApiFlavor::Android);
        let tex = android.gen_textures(1)[0];
        android.bind_texture(tex);
        android.tex_image_2d(1, 1, TexFormat::Bgra, Some(&[255, 0, 0, 255]));
        assert_eq!(android.get_error(), GlError::InvalidEnum);

        let mut ios = ctx(GlesVersion::V2, ApiFlavor::Ios);
        let tex = ios.gen_textures(1)[0];
        ios.bind_texture(tex);
        ios.tex_image_2d(1, 1, TexFormat::Bgra, Some(&[255, 0, 0, 255]));
        assert_eq!(ios.get_error(), GlError::NoError);
        // BGRA bytes [255,0,0,255] decode to blue.
        assert_eq!(
            ios.texture_image(tex).unwrap().pixel_rgba(0, 0).to_bytes(),
            [0, 0, 255, 255]
        );
    }

    #[test]
    fn apple_row_bytes_only_on_ios() {
        let mut android = ctx(GlesVersion::V2, ApiFlavor::Android);
        android.pixel_store(PixelStoreParam::UnpackRowBytesApple, 64);
        assert_eq!(android.get_error(), GlError::InvalidEnum);

        let mut ios = ctx(GlesVersion::V2, ApiFlavor::Ios);
        ios.pixel_store(PixelStoreParam::UnpackRowBytesApple, 12);
        assert_eq!(ios.get_error(), GlError::NoError);
        // Upload a 2x2 RGBA texture from rows 12 bytes apart.
        let tex = ios.gen_textures(1)[0];
        ios.bind_texture(tex);
        let mut data = vec![0u8; 12 * 2];
        data[0..4].copy_from_slice(&[255, 0, 0, 255]); // (0,0) red
        data[12..16].copy_from_slice(&[0, 255, 0, 255]); // (0,1) green
        ios.tex_image_2d(2, 2, TexFormat::Rgba, Some(&data));
        let img = ios.texture_image(tex).unwrap();
        assert_eq!(img.pixel_rgba(0, 0).to_bytes(), [255, 0, 0, 255]);
        assert_eq!(img.pixel_rgba(0, 1).to_bytes(), [0, 255, 0, 255]);
    }

    #[test]
    fn read_pixels_respects_pack_row_bytes() {
        let mut c = ctx(GlesVersion::V2, ApiFlavor::Ios);
        c.clear_color(1.0, 0.0, 0.0, 1.0);
        c.clear(true, false);
        c.pixel_store(PixelStoreParam::PackRowBytesApple, 20);
        let mut out = Vec::new();
        let written = c.read_pixels(0, 0, 2, 2, TexFormat::Rgba, &mut out);
        assert_eq!(written, 40);
        assert_eq!(&out[0..4], &[255, 0, 0, 255]);
        assert_eq!(&out[20..24], &[255, 0, 0, 255]);
        assert_eq!(&out[8..20], &[0; 12], "row padding untouched");
    }

    #[test]
    fn fbo_render_to_texture() {
        let mut c = ctx(GlesVersion::V2, ApiFlavor::Android);
        let tex = c.gen_textures(1)[0];
        c.bind_texture(tex);
        c.tex_image_2d(16, 16, TexFormat::Rgba, None);
        let fbo = c.gen_framebuffers(1)[0];
        c.bind_framebuffer(fbo);
        assert_eq!(
            c.check_framebuffer_status(),
            FramebufferStatus::MissingAttachment
        );
        c.framebuffer_texture(tex);
        assert_eq!(c.check_framebuffer_status(), FramebufferStatus::Complete);
        c.clear_color(0.0, 0.0, 1.0, 1.0);
        c.clear(true, false);
        assert_eq!(
            c.texture_image(tex).unwrap().pixel_rgba(8, 8).to_bytes(),
            [0, 0, 255, 255]
        );
        // Default framebuffer untouched.
        c.bind_framebuffer(0);
        assert_eq!(
            c.default_framebuffer().unwrap().pixel_rgba(8, 8).to_bytes(),
            [0, 0, 0, 0]
        );
    }

    #[test]
    fn renderbuffer_attachment() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Ios);
        let rb = c.gen_renderbuffers(1)[0];
        c.bind_renderbuffer(rb);
        c.renderbuffer_storage(8, 8, TexFormat::Rgba);
        let fbo = c.gen_framebuffers(1)[0];
        c.bind_framebuffer(fbo);
        c.framebuffer_renderbuffer(rb);
        assert_eq!(c.check_framebuffer_status(), FramebufferStatus::Complete);
        c.clear_color(1.0, 1.0, 0.0, 1.0);
        c.clear(true, false);
        assert_eq!(
            c.renderbuffer_image(rb).unwrap().pixel_rgba(4, 4).to_bytes(),
            [255, 255, 0, 255]
        );
    }

    #[test]
    fn delete_textures_reports_freed_count() {
        let mut c = ctx(GlesVersion::V2, ApiFlavor::Android);
        let names = c.gen_textures(3);
        assert_eq!(c.delete_textures(&names), 3);
        assert_eq!(c.delete_textures(&names), 0, "already deleted");
        assert!(!c.is_texture(names[0]));
    }

    #[test]
    fn egl_image_binding_and_respecify_drops_association() {
        let mut c = ctx(GlesVersion::V2, ApiFlavor::Android);
        let tex = c.gen_textures(1)[0];
        c.bind_texture(tex);
        let external = Image::new(4, 4, cycada_gpu::PixelFormat::Rgba8888);
        external.fill(Rgba::GREEN);
        let guard: Arc<dyn Any + Send + Sync> = Arc::new("assoc");
        c.egl_image_target_texture(EglImageSource {
            image: external.clone(),
            guard,
        });
        assert!(c.texture_has_external(tex));
        assert!(c.texture_image(tex).unwrap().aliases(&external));

        // Rebinding to a 1-pixel buffer via glTexImage2D (the multi
        // diplomat's trick) drops the association.
        c.tex_image_2d(1, 1, TexFormat::Rgba, Some(&[0, 0, 0, 255]));
        assert!(!c.texture_has_external(tex));
        assert!(!c.texture_image(tex).unwrap().aliases(&external));
    }

    #[test]
    fn fences_track_device_completion() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        let f = c.gen_fences(1)[0];
        assert!(c.is_fence(f));
        fullscreen_quad(&mut c);
        c.draw_arrays(Primitive::Triangles, 0, 6);
        c.set_fence(f);
        assert!(!c.test_fence(f), "work not retired yet");
        c.finish_fence(f);
        assert!(c.test_fence(f));
        c.delete_fences(&[f]);
        assert!(!c.is_fence(f));
    }

    #[test]
    fn lines_rasterize_as_thin_quads() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        c.set_client_state(ClientState::VertexArray, true);
        c.client_pointer(ClientState::VertexArray, 2, &[-0.9, 0.0, 0.9, 0.0]);
        c.color4f(1.0, 0.0, 0.0, 1.0);
        let frags = c.draw_arrays(Primitive::Lines, 0, 2);
        assert!(frags > 0);
        let fb = c.default_framebuffer().unwrap();
        // Horizontal line through the middle.
        assert_eq!(fb.pixel_rgba(16, 16).to_bytes(), [255, 0, 0, 255]);
        assert_eq!(fb.pixel_rgba(16, 2).to_bytes(), [0, 0, 0, 0]);
    }

    #[test]
    fn points_rasterize_as_quads() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        c.set_client_state(ClientState::VertexArray, true);
        c.client_pointer(ClientState::VertexArray, 2, &[0.0, 0.0]);
        c.set_point_size(4.0);
        c.color4f(0.0, 1.0, 1.0, 1.0);
        let frags = c.draw_arrays(Primitive::Points, 0, 1);
        assert!(frags > 0);
        let fb = c.default_framebuffer().unwrap();
        assert_eq!(fb.pixel_rgba(16, 16).to_bytes(), [0, 255, 255, 255]);
    }

    #[test]
    fn depth_test_between_draws() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        c.enable(Capability::DepthTest);
        c.set_client_state(ClientState::VertexArray, true);
        // Near quad (z=0), green.
        c.client_pointer(
            ClientState::VertexArray,
            3,
            &[-1.0, -1.0, 0.0, 3.0, -1.0, 0.0, -1.0, 3.0, 0.0],
        );
        c.color4f(0.0, 1.0, 0.0, 1.0);
        c.draw_arrays(Primitive::Triangles, 0, 3);
        // Far quad (z=0.5), red — must lose.
        c.client_pointer(
            ClientState::VertexArray,
            3,
            &[-1.0, -1.0, 0.5, 3.0, -1.0, 0.5, -1.0, 3.0, 0.5],
        );
        c.color4f(1.0, 0.0, 0.0, 1.0);
        c.draw_arrays(Primitive::Triangles, 0, 3);
        let fb = c.default_framebuffer().unwrap();
        assert_eq!(fb.pixel_rgba(16, 16).to_bytes(), [0, 255, 0, 255]);
    }

    #[test]
    fn draw_without_arrays_errors() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        let frags = c.draw_arrays(Primitive::Triangles, 0, 3);
        assert_eq!(frags, 0);
        assert_eq!(c.get_error(), GlError::InvalidOperation);
    }

    #[test]
    fn draw_with_out_of_range_indices_errors() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        c.set_client_state(ClientState::VertexArray, true);
        c.client_pointer(ClientState::VertexArray, 2, &[0.0, 0.0, 1.0, 0.0]);
        c.draw_elements(Primitive::Triangles, &[0, 1, 9]);
        assert_eq!(c.get_error(), GlError::InvalidOperation);
    }

    #[test]
    fn viewport_restricts_draw_area() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        c.set_viewport(0, 0, 16, 16);
        fullscreen_quad(&mut c);
        c.color4f(1.0, 1.0, 1.0, 1.0);
        c.draw_arrays(Primitive::Triangles, 0, 6);
        let fb = c.default_framebuffer().unwrap();
        // GL viewport y=0 is the bottom; image bottom-left quadrant drawn.
        assert_eq!(fb.pixel_rgba(8, 24).to_bytes(), [255, 255, 255, 255]);
        assert_eq!(fb.pixel_rgba(24, 8).to_bytes(), [0, 0, 0, 0]);
    }

    #[test]
    fn error_is_sticky_and_clears_on_read() {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android);
        c.set_line_width(-1.0);
        c.pop_matrix(); // would be InvalidOperation, but first error sticks
        assert_eq!(c.get_error(), GlError::InvalidValue);
        assert_eq!(c.get_error(), GlError::NoError);
    }
}
