//! Property-based tests for the GLES state machine and registry.

use std::sync::Arc;

use proptest::prelude::*;

use cycada_gles::{
    ApiFlavor, Capability, ClientState, GlesContext, GlesRegistry, GlesVersion, Primitive,
    StdAvailability, TexFormat,
};
use cycada_gpu::{GpuDevice, Image, PixelFormat};
use cycada_sim::{GpuCostModel, VirtualClock};

fn ctx(version: GlesVersion, flavor: ApiFlavor, size: u32) -> GlesContext {
    let device = Arc::new(GpuDevice::new(VirtualClock::new(), GpuCostModel::tegra3()));
    let mut c = GlesContext::new(version, flavor, device);
    c.set_default_framebuffer(Some(Image::new(size, size, PixelFormat::Rgba8888)));
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn texture_upload_readback_round_trips(
        w in 1u32..8, h in 1u32..8,
        seed: u64,
    ) {
        let mut c = ctx(GlesVersion::V2, ApiFlavor::Ios, 16);
        let mut data = Vec::new();
        let mut state = seed | 1;
        for _ in 0..(w * h * 4) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            data.push((state >> 56) as u8);
        }
        let tex = c.gen_textures(1)[0];
        c.bind_texture(tex);
        c.tex_image_2d(w, h, TexFormat::Rgba, Some(&data));
        let img = c.texture_image(tex).unwrap();
        for y in 0..h {
            for x in 0..w {
                let off = ((y * w + x) * 4) as usize;
                prop_assert_eq!(
                    img.pixel_rgba(x, y).to_bytes(),
                    [data[off], data[off + 1], data[off + 2], data[off + 3]]
                );
            }
        }
    }

    #[test]
    fn clear_color_round_trips_through_framebuffer(r in 0.0f32..=1.0, g in 0.0f32..=1.0, b in 0.0f32..=1.0) {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android, 8);
        c.clear_color(r, g, b, 1.0);
        c.clear(true, false);
        let px = c.default_framebuffer().unwrap().pixel_rgba(4, 4).to_bytes();
        let q = |v: f32| (v * 255.0).round() as u8;
        prop_assert_eq!(px, [q(r), q(g), q(b), 255]);
    }

    #[test]
    fn matrix_stack_depth_is_balanced(ops in prop::collection::vec(any::<bool>(), 0..64)) {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android, 8);
        let mut depth = 1usize;
        for push in ops {
            if push {
                c.push_matrix();
                depth += 1;
            } else if depth > 1 {
                c.pop_matrix();
                depth -= 1;
            } else {
                // Popping the last entry must error, not underflow.
                c.pop_matrix();
                prop_assert_eq!(c.get_error(), cycada_gles::GlError::InvalidOperation);
            }
        }
    }

    #[test]
    fn draws_never_touch_pixels_outside_the_viewport(
        vx in 0i32..6, vy in 0i32..6, vw in 1u32..6, vh in 1u32..6,
    ) {
        let mut c = ctx(GlesVersion::V1, ApiFlavor::Android, 12);
        c.set_viewport(vx, vy, vw, vh);
        c.set_client_state(ClientState::VertexArray, true);
        c.client_pointer(ClientState::VertexArray, 2,
            &[-1.0, -1.0, 3.0, -1.0, -1.0, 3.0]);
        c.color4f(1.0, 0.0, 0.0, 1.0);
        c.draw_arrays(Primitive::Triangles, 0, 3);
        let fb = c.default_framebuffer().unwrap();
        // GL viewport y counts from the bottom of the surface.
        let y_top = 12 - (vy as u32 + vh);
        for y in 0..12u32 {
            for x in 0..12u32 {
                let inside = x >= vx as u32 && x < vx as u32 + vw && y >= y_top && y < y_top + vh;
                let lit = fb.pixel_rgba(x, y).to_bytes() != [0, 0, 0, 0];
                if !inside {
                    prop_assert!(!lit, "pixel ({x},{y}) outside viewport was written");
                }
            }
        }
    }

    #[test]
    fn capabilities_toggle_freely(toggles in prop::collection::vec((0usize..4, any::<bool>()), 0..64)) {
        let caps = [
            Capability::Blend,
            Capability::DepthTest,
            Capability::ScissorTest,
            Capability::Texture2D,
        ];
        let mut c = ctx(GlesVersion::V2, ApiFlavor::Android, 8);
        let mut expect = [false; 4];
        for (idx, on) in toggles {
            if on { c.enable(caps[idx]) } else { c.disable(caps[idx]) }
            expect[idx] = on;
            prop_assert_eq!(c.is_enabled(caps[idx]), expect[idx]);
        }
    }

    #[test]
    fn gen_names_are_unique(count_tex in 0usize..16, count_fb in 0usize..16, count_rb in 0usize..16) {
        let mut c = ctx(GlesVersion::V2, ApiFlavor::Android, 8);
        let mut all: Vec<u32> = Vec::new();
        all.extend(c.gen_textures(count_tex));
        all.extend(c.gen_framebuffers(count_fb));
        all.extend(c.gen_renderbuffers(count_rb));
        let set: std::collections::HashSet<_> = all.iter().collect();
        prop_assert_eq!(set.len(), all.len());
        prop_assert!(!all.contains(&0), "0 is the reserved default name");
    }
}

#[test]
fn registry_population_identities() {
    // Cross-check the registry's internal consistency (beyond the exact
    // Table 1 values asserted in unit tests).
    let reg = GlesRegistry::global();
    let shared = reg
        .std_functions()
        .iter()
        .filter(|f| f.availability == StdAvailability::Shared)
        .count();
    let v1_only = reg
        .std_functions()
        .iter()
        .filter(|f| f.availability == StdAvailability::V1Only)
        .count();
    let v2_only = reg
        .std_functions()
        .iter()
        .filter(|f| f.availability == StdAvailability::V2Only)
        .count();
    assert_eq!(shared + v1_only, 145);
    assert_eq!(shared + v2_only, 142);

    let ios_ext_fns: usize = reg
        .platform_extensions(ApiFlavor::Ios)
        .map(|e| e.functions.len())
        .sum();
    assert_eq!(
        reg.ios_entry_points().len(),
        shared + v1_only + v2_only + ios_ext_fns
    );

    // Common extension functions are exactly those of common extensions.
    let common_fns: usize = reg
        .extensions()
        .iter()
        .filter(|e| e.on_ios && e.on_android)
        .map(|e| e.functions.len())
        .sum();
    assert_eq!(common_fns, 27);

    // No function name appears in two different extensions.
    let mut seen = std::collections::HashSet::new();
    for ext in reg.extensions() {
        for f in &ext.functions {
            assert!(seen.insert(f.clone()), "{f} appears in two extensions");
        }
    }
}
