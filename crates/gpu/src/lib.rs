//! A deterministic software GPU.
//!
//! The paper's prototype drives the Nexus 7's Tegra 3 GPU (and the iPad
//! mini's PowerVR) through proprietary vendor binaries. This crate is the
//! synthetic equivalent: a software GPU with
//!
//! * typed pixel [`PixelFormat`]s and row-padded [`Image`] storage backed by
//!   zero-copy [`cycada_sim::SharedBuffer`]s (so IOSurfaces and
//!   GraphicBuffers can alias GPU memory exactly as on real hardware),
//! * a deterministic triangle [`raster`]izer with texturing, alpha blending
//!   and depth testing — enough to verify rendering pixel-for-pixel,
//! * NV_fence-style [`Fence`]s,
//! * a [`GpuDevice`] front-end that executes commands immediately and
//!   charges calibrated virtual-time costs (per vertex / fragment / byte),
//!   from which the macro-level costs in Figures 9 and 10 emerge.
//!
//! # Examples
//!
//! ```
//! use cycada_sim::{GpuCostModel, VirtualClock};
//! use cycada_gpu::{DrawClass, GpuDevice, Image, PixelFormat, Rgba};
//!
//! let clock = VirtualClock::new();
//! let gpu = GpuDevice::new(clock, GpuCostModel::tegra3());
//! let target = Image::new(64, 64, PixelFormat::Rgba8888);
//! gpu.clear(&target, Rgba::RED, DrawClass::ThreeD);
//! assert_eq!(target.pixel(0, 0), Rgba::RED.to_bytes());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod device;
mod fence;
mod format;
mod image;
pub mod math;
pub mod raster;
pub mod record;

pub use device::{DrawClass, GpuDevice, GpuStats};
pub use fence::{Fence, FenceCondition, FenceId};
pub use format::{PixelFormat, Rgba};
pub use image::{Image, Rows, RowsMut};
pub use raster::{BlendMode, Pipeline, RasterThreads, Vertex};
pub use record::{CommandList, CommandRecorder, GpuCommand};
