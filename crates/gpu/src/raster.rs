//! The deterministic software triangle rasterizer.
//!
//! This is the "black-box GPU hardware" of the simulation: it consumes
//! transformed vertices and produces pixels. It is intentionally small —
//! flat/interpolated color, nearest-neighbour texturing, source-over
//! blending and a depth buffer — but fully deterministic, so two renderings
//! of the same scene through different API stacks can be compared
//! byte-for-byte (the paper's "pixel for pixel" Acid3 criterion).

use crate::format::Rgba;
use crate::image::Image;
use crate::math::Mat4;

/// One input vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vertex {
    /// Object-space position.
    pub pos: [f32; 3],
    /// Vertex color.
    pub color: Rgba,
    /// Texture coordinate (ignored when the pipeline has no texture).
    pub uv: [f32; 2],
}

impl Vertex {
    /// A colored, untextured vertex.
    pub fn colored(pos: [f32; 3], color: Rgba) -> Self {
        Vertex {
            pos,
            color,
            uv: [0.0, 0.0],
        }
    }

    /// A textured vertex with white base color.
    pub fn textured(pos: [f32; 3], uv: [f32; 2]) -> Self {
        Vertex {
            pos,
            color: Rgba::WHITE,
            uv,
        }
    }
}

/// Fragment blending mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlendMode {
    /// Source replaces destination.
    #[default]
    Opaque,
    /// Source-over alpha blending.
    Alpha,
}

/// Fixed-function pipeline state for one draw.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pipeline<'a> {
    /// Combined model-view-projection transform.
    pub transform: Mat4,
    /// Bound texture, if any. Sampled nearest, clamped to edge, modulated
    /// by the interpolated vertex color.
    pub texture: Option<&'a Image>,
    /// Blending mode.
    pub blend: BlendMode,
    /// Whether to depth-test (requires a depth buffer on the draw call).
    pub depth_test: bool,
    /// Pixel-space clip rectangle (GL clips primitives to the clip volume,
    /// which the viewport transform maps to this rectangle). `None` clips
    /// to the whole target.
    pub clip: Option<Rect>,
}

/// Work actually performed by a draw, used by the device to charge
/// virtual-time costs proportional to real work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasterMetrics {
    /// Vertices transformed.
    pub vertices: u64,
    /// Fragments shaded (pixels covered by triangles).
    pub fragments: u64,
}

impl RasterMetrics {
    /// Component-wise sum.
    pub fn merge(self, other: RasterMetrics) -> RasterMetrics {
        RasterMetrics {
            vertices: self.vertices + other.vertices,
            fragments: self.fragments + other.fragments,
        }
    }
}

/// A simple rectangle (pixel coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// A rectangle covering a whole image.
    pub fn of_image(img: &Image) -> Rect {
        Rect {
            x: 0,
            y: 0,
            w: img.width(),
            h: img.height(),
        }
    }
}

/// Allocates a depth buffer (initialized to the far plane) for `target`.
pub fn depth_buffer_for(target: &Image) -> Vec<f32> {
    vec![f32::INFINITY; target.pixel_count() as usize]
}

/// Draws a triangle list: every 3 vertices form one triangle.
///
/// Returns the work performed. Triangles with any vertex at `w <= 0`
/// (behind the eye) are skipped rather than clipped — the simulated
/// workloads never straddle the near plane.
pub fn draw_triangles(
    target: &Image,
    depth: Option<&mut [f32]>,
    vertices: &[Vertex],
    pipeline: &Pipeline<'_>,
) -> RasterMetrics {
    let indices: Vec<u32> = (0..vertices.len() as u32).collect();
    draw_indexed(target, depth, vertices, &indices, pipeline)
}

/// Draws an indexed triangle list.
///
/// # Panics
///
/// Panics if an index is out of range, or if `pipeline.depth_test` is set
/// with a depth buffer of the wrong size.
pub fn draw_indexed(
    target: &Image,
    mut depth: Option<&mut [f32]>,
    vertices: &[Vertex],
    indices: &[u32],
    pipeline: &Pipeline<'_>,
) -> RasterMetrics {
    if let Some(d) = depth.as_deref() {
        assert_eq!(
            d.len(),
            target.pixel_count() as usize,
            "depth buffer size mismatch"
        );
    }
    let mut metrics = RasterMetrics::default();
    let width = target.width() as f32;
    let height = target.height() as f32;
    // Pixel bounds the fill loops may touch (the viewport/clip rectangle).
    let (clip_x0, clip_y0, clip_x1, clip_y1) = match pipeline.clip {
        Some(c) => (
            c.x.min(target.width()),
            c.y.min(target.height()),
            (c.x + c.w).min(target.width()),
            (c.y + c.h).min(target.height()),
        ),
        None => (0, 0, target.width(), target.height()),
    };

    // Transform all referenced vertices once.
    let transformed: Vec<([f32; 4], Rgba, [f32; 2])> = vertices
        .iter()
        .map(|v| {
            metrics.vertices += 1;
            (pipeline.transform.transform_point(v.pos), v.color, v.uv)
        })
        .collect();

    for tri in indices.chunks_exact(3) {
        let [i0, i1, i2] = [tri[0] as usize, tri[1] as usize, tri[2] as usize];
        let (c0, c1, c2) = (&transformed[i0], &transformed[i1], &transformed[i2]);
        if c0.0[3] <= f32::EPSILON || c1.0[3] <= f32::EPSILON || c2.0[3] <= f32::EPSILON {
            continue; // behind the eye; skip (no near clipping)
        }
        // Perspective divide and viewport transform (y flipped: NDC +y is
        // up, image rows grow downward).
        let to_screen = |c: &[f32; 4]| {
            let inv_w = 1.0 / c[3];
            [
                (c[0] * inv_w + 1.0) * 0.5 * width,
                (1.0 - (c[1] * inv_w + 1.0) * 0.5) * height,
                c[2] * inv_w,
            ]
        };
        let p0 = to_screen(&c0.0);
        let p1 = to_screen(&c1.0);
        let p2 = to_screen(&c2.0);

        let area = edge(p0, p1, p2);
        if area.abs() <= f32::EPSILON {
            continue; // degenerate
        }

        let min_x = (p0[0].min(p1[0]).min(p2[0]).floor().max(0.0) as u32).max(clip_x0);
        let max_x = ((p0[0].max(p1[0]).max(p2[0]).ceil() as i64)
            .clamp(0, i64::from(target.width())) as u32)
            .min(clip_x1);
        let min_y = (p0[1].min(p1[1]).min(p2[1]).floor().max(0.0) as u32).max(clip_y0);
        let max_y = ((p0[1].max(p1[1]).max(p2[1]).ceil() as i64)
            .clamp(0, i64::from(target.height())) as u32)
            .min(clip_y1);

        for py in min_y..max_y {
            for px in min_x..max_x {
                let p = [px as f32 + 0.5, py as f32 + 0.5, 0.0];
                let w0 = edge(p1, p2, p) / area;
                let w1 = edge(p2, p0, p) / area;
                let w2 = edge(p0, p1, p) / area;
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                metrics.fragments += 1;

                let z = w0 * p0[2] + w1 * p1[2] + w2 * p2[2];
                if pipeline.depth_test {
                    if let Some(d) = depth.as_deref_mut() {
                        let idx = py as usize * target.width() as usize + px as usize;
                        if z > d[idx] {
                            continue;
                        }
                        d[idx] = z;
                    }
                }

                let mut color = Rgba {
                    r: w0 * c0.1.r + w1 * c1.1.r + w2 * c2.1.r,
                    g: w0 * c0.1.g + w1 * c1.1.g + w2 * c2.1.g,
                    b: w0 * c0.1.b + w1 * c1.1.b + w2 * c2.1.b,
                    a: w0 * c0.1.a + w1 * c1.1.a + w2 * c2.1.a,
                };
                if let Some(tex) = pipeline.texture {
                    let u = w0 * c0.2[0] + w1 * c1.2[0] + w2 * c2.2[0];
                    let v = w0 * c0.2[1] + w1 * c1.2[1] + w2 * c2.2[1];
                    color = sample_nearest(tex, u, v).modulate(color);
                }

                let out = match pipeline.blend {
                    BlendMode::Opaque => color,
                    BlendMode::Alpha => color.over(target.pixel_rgba(px, py)),
                };
                target.set_pixel(px, py, out);
            }
        }
    }
    metrics
}

/// Copies `src_rect` of `src` into `dst_rect` of `dst` with nearest-neighbour
/// scaling and format conversion. Returns the number of destination pixels
/// written (the unit the device charges copy costs in).
///
/// # Panics
///
/// Panics if either rectangle exceeds its image bounds.
pub fn blit(src: &Image, src_rect: Rect, dst: &Image, dst_rect: Rect) -> u64 {
    assert!(
        src_rect.x + src_rect.w <= src.width() && src_rect.y + src_rect.h <= src.height(),
        "source rect out of bounds"
    );
    assert!(
        dst_rect.x + dst_rect.w <= dst.width() && dst_rect.y + dst_rect.h <= dst.height(),
        "destination rect out of bounds"
    );
    if dst_rect.w == 0 || dst_rect.h == 0 || src_rect.w == 0 || src_rect.h == 0 {
        return 0;
    }
    for dy in 0..dst_rect.h {
        let sy = src_rect.y + dy * src_rect.h / dst_rect.h;
        for dx in 0..dst_rect.w {
            let sx = src_rect.x + dx * src_rect.w / dst_rect.w;
            let c = src.pixel_rgba(sx, sy);
            dst.set_pixel(dst_rect.x + dx, dst_rect.y + dy, c);
        }
    }
    u64::from(dst_rect.w) * u64::from(dst_rect.h)
}

fn edge(a: [f32; 3], b: [f32; 3], p: [f32; 3]) -> f32 {
    (p[0] - a[0]) * (b[1] - a[1]) - (p[1] - a[1]) * (b[0] - a[0])
}

fn sample_nearest(tex: &Image, u: f32, v: f32) -> Rgba {
    let x = ((u.clamp(0.0, 1.0) * tex.width() as f32) as u32).min(tex.width().saturating_sub(1));
    let y = ((v.clamp(0.0, 1.0) * tex.height() as f32) as u32).min(tex.height().saturating_sub(1));
    tex.pixel_rgba(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::PixelFormat;

    fn fullscreen_tri() -> Vec<Vertex> {
        // Covers the whole NDC square (and then some).
        vec![
            Vertex::colored([-1.0, -1.0, 0.0], Rgba::RED),
            Vertex::colored([3.0, -1.0, 0.0], Rgba::RED),
            Vertex::colored([-1.0, 3.0, 0.0], Rgba::RED),
        ]
    }

    #[test]
    fn fullscreen_triangle_covers_target() {
        let img = Image::new(16, 16, PixelFormat::Rgba8888);
        let m = draw_triangles(&img, None, &fullscreen_tri(), &Pipeline::default());
        assert_eq!(m.vertices, 3);
        assert_eq!(m.fragments, 16 * 16);
        assert_eq!(img.pixel_rgba(0, 0).to_bytes(), [255, 0, 0, 255]);
        assert_eq!(img.pixel_rgba(15, 15).to_bytes(), [255, 0, 0, 255]);
    }

    #[test]
    fn half_screen_triangle_leaves_other_half() {
        let img = Image::new(16, 16, PixelFormat::Rgba8888);
        let verts = vec![
            Vertex::colored([-1.0, -1.0, 0.0], Rgba::GREEN),
            Vertex::colored([1.0, -1.0, 0.0], Rgba::GREEN),
            Vertex::colored([-1.0, 1.0, 0.0], Rgba::GREEN),
        ];
        draw_triangles(&img, None, &verts, &Pipeline::default());
        // Lower-left is covered, upper-right is not.
        assert_eq!(img.pixel_rgba(1, 14).to_bytes(), [0, 255, 0, 255]);
        assert_eq!(img.pixel_rgba(14, 1).to_bytes(), [0, 0, 0, 0]);
    }

    #[test]
    fn transform_is_applied() {
        let img = Image::new(16, 16, PixelFormat::Rgba8888);
        // Draw in pixel space via an ortho transform.
        let pipeline = Pipeline {
            transform: Mat4::ortho(0.0, 16.0, 16.0, 0.0, -1.0, 1.0),
            ..Pipeline::default()
        };
        let verts = vec![
            Vertex::colored([0.0, 0.0, 0.0], Rgba::BLUE),
            Vertex::colored([16.0, 0.0, 0.0], Rgba::BLUE),
            Vertex::colored([0.0, 16.0, 0.0], Rgba::BLUE),
        ];
        draw_triangles(&img, None, &verts, &pipeline);
        assert_eq!(img.pixel_rgba(0, 0).to_bytes(), [0, 0, 255, 255]);
        assert_eq!(img.pixel_rgba(15, 15).to_bytes(), [0, 0, 0, 0]);
    }

    #[test]
    fn texture_modulates() {
        let tex = Image::new(2, 2, PixelFormat::Rgba8888);
        tex.fill(Rgba::new(0.0, 1.0, 0.0, 1.0));
        let img = Image::new(8, 8, PixelFormat::Rgba8888);
        let verts: Vec<Vertex> = [
            ([-1.0, -1.0, 0.0], [0.0, 0.0]),
            ([3.0, -1.0, 0.0], [2.0, 0.0]),
            ([-1.0, 3.0, 0.0], [0.0, 2.0]),
        ]
        .iter()
        .map(|&(p, uv)| Vertex::textured(p, uv))
        .collect();
        let pipeline = Pipeline {
            texture: Some(&tex),
            ..Pipeline::default()
        };
        draw_triangles(&img, None, &verts, &pipeline);
        assert_eq!(img.pixel_rgba(4, 4).to_bytes(), [0, 255, 0, 255]);
    }

    #[test]
    fn alpha_blend_mixes_with_destination() {
        let img = Image::new(4, 4, PixelFormat::Rgba8888);
        img.fill(Rgba::BLUE);
        let mut verts = fullscreen_tri();
        for v in &mut verts {
            v.color = Rgba::new(1.0, 0.0, 0.0, 0.5);
        }
        let pipeline = Pipeline {
            blend: BlendMode::Alpha,
            ..Pipeline::default()
        };
        draw_triangles(&img, None, &verts, &pipeline);
        let px = img.pixel_rgba(2, 2).to_bytes();
        assert!(px[0] > 100 && px[2] > 100, "mixed red+blue: {px:?}");
    }

    #[test]
    fn depth_test_keeps_nearer_fragment() {
        let img = Image::new(4, 4, PixelFormat::Rgba8888);
        let mut depth = depth_buffer_for(&img);
        let near = fullscreen_tri()
            .iter()
            .map(|v| Vertex::colored([v.pos[0], v.pos[1], 0.0], Rgba::GREEN))
            .collect::<Vec<_>>();
        let far = fullscreen_tri()
            .iter()
            .map(|v| Vertex::colored([v.pos[0], v.pos[1], 0.9], Rgba::RED))
            .collect::<Vec<_>>();
        let pipeline = Pipeline {
            depth_test: true,
            ..Pipeline::default()
        };
        draw_triangles(&img, Some(&mut depth), &near, &pipeline);
        draw_triangles(&img, Some(&mut depth), &far, &pipeline);
        assert_eq!(img.pixel_rgba(2, 2).to_bytes(), [0, 255, 0, 255]);
    }

    #[test]
    fn behind_eye_triangles_are_skipped() {
        let img = Image::new(4, 4, PixelFormat::Rgba8888);
        let pipeline = Pipeline {
            transform: Mat4::frustum(-1.0, 1.0, -1.0, 1.0, 1.0, 10.0),
            ..Pipeline::default()
        };
        // z = +5 is behind the eye for this frustum.
        let verts = vec![
            Vertex::colored([-1.0, -1.0, 5.0], Rgba::RED),
            Vertex::colored([1.0, -1.0, 5.0], Rgba::RED),
            Vertex::colored([0.0, 1.0, 5.0], Rgba::RED),
        ];
        let m = draw_triangles(&img, None, &verts, &pipeline);
        assert_eq!(m.fragments, 0);
        assert_eq!(img.pixel_rgba(2, 2).to_bytes(), [0, 0, 0, 0]);
    }

    #[test]
    fn blit_scales_and_converts() {
        let src = Image::new(2, 2, PixelFormat::Bgra8888);
        src.fill(Rgba::RED);
        let dst = Image::new(4, 4, PixelFormat::Rgba8888);
        let n = blit(&src, Rect::of_image(&src), &dst, Rect::of_image(&dst));
        assert_eq!(n, 16);
        assert_eq!(dst.pixel_rgba(3, 3).to_bytes(), [255, 0, 0, 255]);
    }

    #[test]
    #[should_panic(expected = "source rect out of bounds")]
    fn blit_validates_rects() {
        let src = Image::new(2, 2, PixelFormat::Rgba8888);
        let dst = Image::new(2, 2, PixelFormat::Rgba8888);
        blit(
            &src,
            Rect { x: 1, y: 1, w: 2, h: 2 },
            &dst,
            Rect::of_image(&dst),
        );
    }

    #[test]
    fn fully_offscreen_triangle_draws_nothing_and_terminates() {
        // Regression: a triangle entirely left of the viewport once
        // produced a negative max_x that wrapped to ~4 billion when cast
        // to u32, turning the fill loop into an effectively infinite scan.
        let img = Image::new(8, 8, PixelFormat::Rgba8888);
        let verts = vec![
            Vertex::colored([-3.0, -0.5, 0.0], Rgba::RED),
            Vertex::colored([-2.0, -0.5, 0.0], Rgba::RED),
            Vertex::colored([-2.5, 0.5, 0.0], Rgba::RED),
        ];
        let m = draw_triangles(&img, None, &verts, &Pipeline::default());
        assert_eq!(m.fragments, 0);
        // Above the viewport too.
        let verts = vec![
            Vertex::colored([-0.5, 3.0, 0.0], Rgba::RED),
            Vertex::colored([0.5, 3.0, 0.0], Rgba::RED),
            Vertex::colored([0.0, 2.0, 0.0], Rgba::RED),
        ];
        let m = draw_triangles(&img, None, &verts, &Pipeline::default());
        assert_eq!(m.fragments, 0);
    }

    #[test]
    fn degenerate_triangle_draws_nothing() {
        let img = Image::new(4, 4, PixelFormat::Rgba8888);
        let verts = vec![
            Vertex::colored([0.0, 0.0, 0.0], Rgba::RED); 3
        ];
        let m = draw_triangles(&img, None, &verts, &Pipeline::default());
        assert_eq!(m.fragments, 0);
    }
}
